"""Legacy setup shim.

The execution environment is offline with setuptools 65.5 and no ``wheel``
package, so PEP 660 editable installs (which need ``bdist_wheel``) fail.
This shim lets ``pip install -e . --no-use-pep517 --no-build-isolation``
(and plain ``pip install -e .`` via the fallback path) work offline.
Metadata lives in pyproject.toml; keep the two in sync.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="DSXplore reproduction: sliding-channel convolutions for CNNs (IPDPS 2021)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
