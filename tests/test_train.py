"""Optimizer, schedulers, loss, trainer convergence."""
import numpy as np
import pytest

from repro import nn
from repro.data import DataLoader, make_dataset, train_test_split
from repro.nn.module import Parameter
from repro.tensor import Tensor
from repro.train import SGD, CosineLR, StepLR, Trainer, TrainConfig, cross_entropy
from repro.train.trainer import clip_gradients
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(91)


def test_sgd_plain_step():
    p = Parameter(np.array([1.0, 2.0], dtype=np.float32))
    p.grad = np.array([0.5, -0.5], dtype=np.float32)
    SGD([p], lr=0.1).step()
    np.testing.assert_allclose(p.data, [0.95, 2.05])


def test_sgd_momentum_accumulates():
    p = Parameter(np.array([0.0], dtype=np.float32))
    opt = SGD([p], lr=1.0, momentum=0.9)
    p.grad = np.array([1.0], dtype=np.float32)
    opt.step()   # v=1, p=-1
    np.testing.assert_allclose(p.data, [-1.0])
    p.grad = np.array([1.0], dtype=np.float32)
    opt.step()   # v=1.9, p=-2.9
    np.testing.assert_allclose(p.data, [-2.9])


def test_sgd_weight_decay():
    p = Parameter(np.array([2.0], dtype=np.float32))
    opt = SGD([p], lr=0.1, weight_decay=0.5)
    p.grad = np.zeros(1, dtype=np.float32)
    opt.step()
    np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])


def test_sgd_nesterov():
    p = Parameter(np.array([0.0], dtype=np.float32))
    opt = SGD([p], lr=1.0, momentum=0.5, nesterov=True)
    p.grad = np.array([1.0], dtype=np.float32)
    opt.step()   # v=1, update g + mu*v = 1.5
    np.testing.assert_allclose(p.data, [-1.5])


def test_sgd_skips_gradless_params():
    p = Parameter(np.array([1.0], dtype=np.float32))
    SGD([p], lr=0.1).step()   # no grad -> no change, no crash
    np.testing.assert_allclose(p.data, [1.0])


def test_sgd_validation():
    p = Parameter(np.zeros(1))
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    with pytest.raises(ValueError):
        SGD([p], lr=0.0)
    with pytest.raises(ValueError):
        SGD([p], lr=0.1, nesterov=True)


def test_step_lr_schedule():
    p = Parameter(np.zeros(1))
    opt = SGD([p], lr=1.0)
    sched = StepLR(opt, step_size=2, gamma=0.1)
    lrs = []
    for _ in range(4):
        sched.step()
        lrs.append(opt.lr)
    np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])


def test_cosine_lr_endpoints():
    p = Parameter(np.zeros(1))
    opt = SGD([p], lr=1.0)
    sched = CosineLR(opt, total_epochs=10, min_lr=0.1)
    for _ in range(10):
        sched.step()
    assert abs(opt.lr - 0.1) < 1e-9
    with pytest.raises(ValueError):
        CosineLR(opt, total_epochs=0)


def test_cross_entropy_matches_manual():
    logits = Tensor(np.array([[2.0, 0.0], [0.0, 1.0]], dtype=np.float32), requires_grad=True)
    labels = np.array([0, 1])
    loss = cross_entropy(logits, labels)
    manual = -np.log([np.exp(2) / (np.exp(2) + 1), np.exp(1) / (np.exp(1) + 1)]).mean()
    assert abs(float(loss.data) - manual) < 1e-6
    loss.backward()
    probs = np.exp(logits.data) / np.exp(logits.data).sum(axis=1, keepdims=True)
    expected_grad = probs.copy()
    expected_grad[0, 0] -= 1
    expected_grad[1, 1] -= 1
    np.testing.assert_allclose(logits.grad, expected_grad / 2, rtol=1e-5)


def test_cross_entropy_label_smoothing():
    logits = Tensor(np.array([[10.0, 0.0]], dtype=np.float32))
    hard = float(cross_entropy(logits, np.array([0])).data)
    soft = float(cross_entropy(logits, np.array([0]), label_smoothing=0.2).data)
    assert soft > hard   # smoothing penalises over-confidence


def test_cross_entropy_validation():
    with pytest.raises(ValueError, match="logits"):
        cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
    with pytest.raises(ValueError, match="label_smoothing"):
        cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1]), label_smoothing=1.0)


def test_clip_gradients():
    model = nn.Linear(4, 2)
    model.weight.grad = np.full((2, 4), 10.0, dtype=np.float32)
    model.bias.grad = np.zeros(2, dtype=np.float32)
    norm = clip_gradients(model, max_norm=1.0)
    assert norm > 1.0
    total = np.sqrt((model.weight.grad**2).sum() + (model.bias.grad**2).sum())
    assert abs(total - 1.0) < 1e-5


def _toy_model(classes=4):
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, bias=False),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, classes),
    )


def test_trainer_reduces_loss():
    ds = make_dataset(400, num_classes=4, image_size=8, noise=0.15, seed=5)
    train, test = train_test_split(ds, 0.2, seed=5)
    model = _toy_model()
    trainer = Trainer(model, TrainConfig(epochs=6, lr=0.1, momentum=0.9))
    hist = trainer.fit(DataLoader(train, batch_size=32, seed=6),
                       DataLoader(test, batch_size=64, shuffle=False))
    assert hist.losses[-1] < hist.losses[0]
    assert hist.final_test_acc is not None
    assert hist.best_test_acc > 1.0 / 4 + 0.08   # clearly above chance
    assert hist.best_test_acc >= hist.final_test_acc - 1e-9


def test_trainer_scheduler_integration():
    ds = make_dataset(40, num_classes=2, image_size=8, seed=6)
    model = _toy_model(2)
    trainer = Trainer(
        model,
        TrainConfig(epochs=2, lr=1.0, momentum=0.0),
        scheduler_factory=lambda opt: StepLR(opt, step_size=1, gamma=0.5),
    )
    trainer.fit(DataLoader(ds, batch_size=20, seed=1))
    assert abs(trainer.optimizer.lr - 0.25) < 1e-9


def test_trainer_grad_clip_runs():
    ds = make_dataset(20, num_classes=2, image_size=8, seed=7)
    model = _toy_model(2)
    trainer = Trainer(model, TrainConfig(epochs=1, lr=0.1, grad_clip=0.5))
    hist = trainer.fit(DataLoader(ds, batch_size=10, seed=1))
    assert len(hist.epochs) == 1


def test_evaluate_is_deterministic_and_eval_mode():
    ds = make_dataset(30, num_classes=3, image_size=8, seed=8)
    model = _toy_model(3)
    trainer = Trainer(model)
    loader = DataLoader(ds, batch_size=16, shuffle=False)
    a = trainer.evaluate(loader)
    b = trainer.evaluate(loader)
    assert a == b
    assert not model.training  # evaluate leaves eval mode set
