"""Workload extraction, strategy kernel counts, memory model, orderings."""
import numpy as np
import pytest

from repro import nn
from repro.core.blocks import make_separable_block
from repro.gpusim import (
    MemoryModel,
    OutOfMemoryError,
    extract_layer_shapes,
    model_step_kernels,
    scc_layer_kernels,
    tesla_v100,
    training_step_time,
    inference_time,
)
from repro.gpusim.timeline import backward_only_time
from repro.gpusim.workloads import LayerShape, SCCGeometry, conv_layer_kernels
from repro.models import build_model
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(111)


@pytest.fixture
def dev():
    return tesla_v100()


def _scc_shape(cin=64, cout=128, cg=2, co=0.5, hw=8):
    from repro.core.channel_map import cyclic_distance

    return LayerShape(
        name="scc", kind="scc", cin=cin, cout=cout,
        hin=hw, win=hw, hout=hw, wout=hw,
        scc=SCCGeometry(cg=cg, co=co, group_width=cin // cg,
                        cyclic_dist=cyclic_distance(cin, cg, co, cout)),
    )


def test_extract_shapes_from_block():
    block = make_separable_block(8, 16, scheme="scc", cg=2, co=0.5)
    shapes = extract_layer_shapes(block, (8, 8, 8))
    kinds = [s.kind for s in shapes]
    assert "dw" in kinds and "scc" in kinds and "bn" in kinds and "elementwise" in kinds
    scc = next(s for s in shapes if s.kind == "scc")
    assert scc.scc.group_width == 4


def test_extract_shapes_follows_residuals():
    model = build_model("resnet18", width_mult=0.125)
    shapes = extract_layer_shapes(model, (3, 16, 16))
    # shortcut 1x1 convs appear as pw layers
    assert any(s.kind == "pw" for s in shapes)
    assert any(s.kind == "linear" for s in shapes)


def test_channel_stack_kernel_count():
    shape = _scc_shape(cout=32)
    fwd = scc_layer_kernels(shape, 4, "channel_stack", include_backward=False)
    # Cout slices + concat + groupconv
    assert len(fwd) == 32 + 2
    full = scc_layer_kernels(shape, 4, "channel_stack")
    assert len(full) == 32 + 2 + 3


def test_conv_stack_kernel_count_follows_cyclic_dist():
    shape = _scc_shape(cin=64, cout=128, cg=2, co=0.5)
    cd = shape.scc.cyclic_dist
    fwd = scc_layer_kernels(shape, 4, "conv_stack", include_backward=False)
    assert len(fwd) == 2 * cd
    full = scc_layer_kernels(shape, 4, "conv_stack")
    assert len(full) == 2 * cd + 3 * cd


def test_dsxplore_single_fused_forward():
    shape = _scc_shape()
    fwd = scc_layer_kernels(shape, 4, "dsxplore", include_backward=False)
    assert len(fwd) == 1
    full = scc_layer_kernels(shape, 4, "dsxplore")
    assert len(full) == 3


def test_dsxplore_backward_designs_atomics():
    shape = _scc_shape()
    pull = scc_layer_kernels(shape, 4, "dsxplore", "input_centric")
    push = scc_layer_kernels(shape, 4, "dsxplore", "output_centric")
    assert sum(k.atomic_ops for k in pull) == 0
    assert sum(k.atomic_ops for k in push) > 0


def test_scc_kernels_validation():
    with pytest.raises(ValueError, match="SCC layer"):
        scc_layer_kernels(LayerShape(name="x", kind="conv"), 4, "dsxplore")
    with pytest.raises(ValueError, match="unknown SCC strategy"):
        scc_layer_kernels(_scc_shape(), 4, "magic")
    with pytest.raises(ValueError, match="backward design"):
        scc_layer_kernels(_scc_shape(), 4, "dsxplore", "diagonal")


def test_conv_layer_kernels_unknown_kind():
    with pytest.raises(ValueError, match="no kernel rule"):
        conv_layer_kernels(LayerShape(name="x", kind="mystery"), 4)


def test_strategy_time_ordering(dev):
    """The paper's headline: DSXplore < Pytorch-Opt < Pytorch-Base."""
    model = build_model("vgg16", scheme="scc", cg=2, co=0.5)
    shapes = extract_layer_shapes(model, (3, 32, 32))
    times = {
        s: training_step_time(shapes, 128, dev, scc_strategy=s).total
        for s in ("channel_stack", "conv_stack", "dsxplore")
    }
    assert times["dsxplore"] < times["conv_stack"] < times["channel_stack"]
    # Magnitudes in the paper's ballpark: several-fold, not thousands.
    assert 2 < times["channel_stack"] / times["dsxplore"] < 50


def test_input_centric_backward_faster(dev):
    model = build_model("mobilenet", scheme="scc", cg=2, co=0.5)
    shapes = extract_layer_shapes(model, (3, 32, 32))
    t_in = backward_only_time(shapes, 128, dev, "dsxplore", "input_centric")
    t_out = backward_only_time(shapes, 128, dev, "dsxplore", "output_centric")
    assert t_in < t_out
    assert 1.05 < t_out / t_in < 5.0   # paper Fig. 9: ~1.55x


def test_inference_cheaper_than_training(dev):
    model = build_model("vgg16", scheme="scc", cg=2, co=0.5, width_mult=0.25)
    shapes = extract_layer_shapes(model, (3, 32, 32))
    fwd = inference_time(shapes, 64, dev).total
    step = training_step_time(shapes, 64, dev).total
    assert fwd < step / 2   # backward dominates (paper Section IV-B)


def test_batch_size_knee(dev):
    """Paper Fig. 13: time flat while the GPU is under-saturated."""
    model = build_model("mobilenet", scheme="scc", cg=2, co=0.5)
    shapes = extract_layer_shapes(model, (3, 32, 32))
    t16 = training_step_time(shapes, 16, dev).total
    t64 = training_step_time(shapes, 64, dev).total
    t1024 = training_step_time(shapes, 1024, dev).total
    # Per-sample time falls while the GPU is under-saturated...
    assert t64 / 64 < 0.95 * (t16 / 16)
    # ...and is nearly flat once saturated (close-to-linear total scaling).
    assert (t1024 / 1024) / (t64 / 64) > 0.55


def test_memory_cc_optimisation_saves(dev):
    """Paper Fig. 10: CC cuts memory by 72-83%."""
    model = build_model("vgg16", scheme="scc", cg=2, co=0.5)
    shapes = extract_layer_shapes(model, (3, 32, 32))
    mm = MemoryModel(dev)
    with_cc = mm.report(shapes, 128, "conv_stack", cc_enabled=True).total
    without = mm.report(shapes, 128, "conv_stack", cc_enabled=False).total
    saving = 1 - with_cc / without
    assert 0.5 < saving < 0.99


def test_memory_dsxplore_no_temporaries(dev):
    model = build_model("mobilenet", scheme="scc", cg=2, co=0.5)
    shapes = extract_layer_shapes(model, (3, 32, 32))
    mm = MemoryModel(dev)
    assert mm.report(shapes, 64, "dsxplore").temporaries == 0
    assert mm.report(shapes, 64, "channel_stack").temporaries > 0


def test_imagenet_channel_stack_ooms(dev):
    """Paper Section V-C: Pytorch-Base cannot run on ImageNet."""
    model = build_model("resnet50", scheme="scc", cg=2, co=0.5,
                        imagenet_stem=True, num_classes=1000)
    shapes = extract_layer_shapes(model, (3, 224, 224))
    mm = MemoryModel(dev)
    base = mm.report(shapes, 64, "channel_stack", cc_enabled=False)
    with pytest.raises(OutOfMemoryError):
        mm.check(base, "Pytorch-Base on ImageNet")
    dsx = mm.report(shapes, 64, "dsxplore")
    mm.check(dsx)   # must not raise


def test_model_step_includes_optimizer_update():
    model = build_model("mobilenet", scheme="scc", cg=2, co=0.5, width_mult=0.25)
    shapes = extract_layer_shapes(model, (3, 16, 16))
    kernels = model_step_kernels(shapes, 8)
    assert kernels[-1].name == "sgd.update"
    fwd_only = model_step_kernels(shapes, 8, include_backward=False)
    assert all(k.name != "sgd.update" for k in fwd_only)


def test_strategy_ordering_is_device_robust():
    """The paper's conclusions shouldn't hinge on V100 constants: the same
    strategy ordering must hold on a different device spec (A100)."""
    from repro.gpusim.device import nvidia_a100

    a100 = nvidia_a100()
    model = build_model("vgg16", scheme="scc", cg=2, co=0.5)
    shapes = extract_layer_shapes(model, (3, 32, 32))
    times = {
        s: training_step_time(shapes, 128, a100, scc_strategy=s).total
        for s in ("channel_stack", "conv_stack", "dsxplore")
    }
    assert times["dsxplore"] < times["conv_stack"] < times["channel_stack"]
    t_in = backward_only_time(shapes, 128, a100, "dsxplore", "input_centric")
    t_out = backward_only_time(shapes, 128, a100, "dsxplore", "output_centric")
    assert t_in < t_out
