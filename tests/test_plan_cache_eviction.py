"""PlanCache eviction policy + per-owner accounting regressions.

Until the multi-model router, nothing ever drove the cache to its
``maxsize`` bound — these tests pin down the LRU semantics that the bound
implies (re-touch ordering, eviction at exactly capacity), the per-owner
counters the router's metrics are built on (they must sum to the global
counters), the traffic-weighted victim selection that keeps a hot model's
plans resident, and ``clear()``'s epoch behaviour with builds in flight.
"""
import threading
import time

import pytest

from repro.backend import Workload, plan_owner
from repro.backend.workload import PlanCache


def wl(i: int) -> Workload:
    return Workload.make("evict", (i,))


def fill(cache: PlanCache, indices, owner: str | None = None):
    with plan_owner(owner):
        for i in indices:
            cache.get_or_build(wl(i), lambda i=i: f"plan-{i}")


# ---------------------------------------------------------------------------
# LRU order and the maxsize bound
# ---------------------------------------------------------------------------

def test_get_or_build_retouch_updates_lru_order():
    cache = PlanCache(maxsize=2)
    fill(cache, [0, 1])
    cache.get_or_build(wl(0), lambda: "never built")  # hit: 0 becomes MRU
    fill(cache, [2])                                  # overflow: 1 is LRU now
    assert wl(0) in cache and wl(2) in cache
    assert wl(1) not in cache
    assert cache.stats()["evictions"] == 1


def test_no_eviction_at_exactly_maxsize():
    cache = PlanCache(maxsize=4)
    fill(cache, range(4))
    stats = cache.stats()
    assert stats["size"] == 4 and stats["evictions"] == 0
    fill(cache, [4])  # one past capacity: exactly one eviction
    stats = cache.stats()
    assert stats["size"] == 4 and stats["evictions"] == 1
    assert wl(0) not in cache  # the LRU entry went


def test_eviction_bound_holds_under_churn():
    cache = PlanCache(maxsize=3)
    fill(cache, range(20))
    stats = cache.stats()
    assert stats["size"] == len(cache) == 3
    assert stats["evictions"] == 17
    # size always reconciles with builds - evictions when nothing was cleared
    assert stats["size"] == stats["builds"] - stats["evictions"]


def test_single_owner_eviction_degrades_to_exact_lru():
    cache = PlanCache(maxsize=2)
    fill(cache, range(6), owner="only")
    assert wl(4) in cache and wl(5) in cache


def test_resize_shrinks_in_place_and_counts_evictions():
    cache = PlanCache(maxsize=8)
    fill(cache, range(8))
    cache.resize(3)
    stats = cache.stats()
    assert stats["size"] == 3 and cache.maxsize == 3
    assert stats["evictions"] == 5
    assert all(wl(i) in cache for i in (5, 6, 7))  # MRU tail survives
    cache.resize(8)
    fill(cache, range(8))  # regrowing admits new entries again
    assert cache.stats()["size"] == 8
    with pytest.raises(ValueError, match="maxsize"):
        cache.resize(0)


# ---------------------------------------------------------------------------
# Traffic-weighted eviction: hot owners resist cold-owner churn
# ---------------------------------------------------------------------------

def test_hot_owner_plans_survive_cold_owner_churn():
    cache = PlanCache(maxsize=4)
    fill(cache, [0, 1], owner="hot")
    with plan_owner("hot"):                 # hot traffic: many re-touches
        for _ in range(50):
            cache.get_or_build(wl(0), lambda: "x")
            cache.get_or_build(wl(1), lambda: "x")
    fill(cache, [10, 11], owner="cold")     # cache now full; hot entries are LRU
    fill(cache, [12, 13], owner="cold")     # overflow: victims must be cold's
    assert wl(0) in cache and wl(1) in cache
    assert wl(10) not in cache and wl(11) not in cache
    owners = cache.owner_stats()
    assert owners["cold"]["evictions"] == 2
    assert owners["hot"]["evictions"] == 0


def test_fresh_cold_build_is_never_its_own_eviction_victim():
    # Regression: when the cache is no larger than the candidate window,
    # the just-inserted MRU entry used to be a candidate — a low-traffic
    # owner's brand-new plan could be evicted immediately, dooming it to a
    # permanent build-evict-build cycle with a 0% hit rate.
    cache = PlanCache(maxsize=4, eviction_candidates=8)
    fill(cache, range(4), owner="hot")
    with plan_owner("hot"):
        for _ in range(50):
            for i in range(4):
                cache.get_or_build(wl(i), lambda: "x")
    fill(cache, [10], owner="cold")
    assert wl(10) in cache                   # the fresh build survived
    with plan_owner("cold"):
        cache.get_or_build(wl(10), lambda: "never rebuilt")
    owners = cache.owner_stats()
    assert owners["cold"] == {"hits": 1, "misses": 1, "builds": 1,
                              "evictions": 0, "size": 1}


def test_pure_lru_would_have_evicted_the_hot_entries():
    # Control for the test above: with equal traffic the same access
    # pattern evicts the oldest entries regardless of owner.
    cache = PlanCache(maxsize=4)
    fill(cache, [0, 1], owner="a")
    fill(cache, [10, 11], owner="b")
    fill(cache, [12, 13], owner="b")
    assert wl(0) not in cache and wl(1) not in cache


def test_traffic_decay_lets_a_gone_cold_owner_lose_protection():
    cache = PlanCache(maxsize=4, traffic_decay_every=16)
    fill(cache, [0, 1], owner="was-hot")
    with plan_owner("was-hot"):
        for _ in range(8):
            cache.get_or_build(wl(0), lambda: "x")
            cache.get_or_build(wl(1), lambda: "x")
    # "was-hot" stops submitting; steady "now-hot" traffic decays its weight.
    fill(cache, [10, 11], owner="now-hot")
    with plan_owner("now-hot"):
        for _ in range(40):
            cache.get_or_build(wl(10), lambda: "x")
            cache.get_or_build(wl(11), lambda: "x")
    fill(cache, [12, 13], owner="now-hot")
    # After decay, was-hot's stale weight no longer outranks live traffic:
    # its idle entries are the victims even though now-hot built most
    # recently.
    assert wl(0) not in cache and wl(1) not in cache
    assert wl(10) in cache and wl(11) in cache


# ---------------------------------------------------------------------------
# Entry re-ownership on hit: shared workloads follow their consumers
# ---------------------------------------------------------------------------

def test_entry_reowned_on_hit_protects_shared_workload():
    # A plan built by one model but since hit mostly by another must be
    # shielded by the *consumer's* traffic: ownership re-tags on access.
    cache = PlanCache(maxsize=4)
    fill(cache, [0], owner="builder")
    with plan_owner("consumer"):                # the actual hot consumer
        for _ in range(50):
            cache.get_or_build(wl(0), lambda: "never rebuilt")
    fill(cache, [1, 2, 3], owner="builder")     # cache now full
    fill(cache, [4, 5], owner="builder")        # overflow twice
    assert wl(0) in cache                       # consumer traffic shields it
    owners = cache.owner_stats()
    assert owners["consumer"]["size"] == 1      # entry followed the consumer
    assert owners["builder"]["evictions"] == 2  # builder's own churn paid
    assert owners["consumer"]["evictions"] == 0


def test_eviction_charged_to_current_owner_after_retag():
    cache = PlanCache(maxsize=2)
    fill(cache, [0], owner="a")
    with plan_owner("b"):
        cache.get_or_build(wl(0), lambda: "x")  # one touch re-tags a -> b
    fill(cache, [1, 2], owner="a")              # overflow: victim is b's now
    owners = cache.owner_stats()
    assert wl(0) not in cache
    assert owners["b"]["evictions"] == 1
    assert owners["a"]["evictions"] == 0


def test_untagged_hit_releases_entry_to_the_none_owner():
    # Re-ownership is symmetric: an untagged client touching a served plan
    # moves it to the None owner (and None traffic then weighs for it).
    cache = PlanCache(maxsize=4)
    fill(cache, [0], owner="served")
    cache.get_or_build(wl(0), lambda: "x")      # untagged accessor
    owners = cache.owner_stats()
    assert owners[None]["size"] == 1
    assert owners["served"]["size"] == 0


# ---------------------------------------------------------------------------
# Per-owner stats reconcile with the global counters
# ---------------------------------------------------------------------------

def test_owner_stats_sum_to_global_stats():
    cache = PlanCache(maxsize=3)
    fill(cache, [0, 1], owner="a")
    fill(cache, [1, 2, 3], owner="b")      # b hits a's plan 1, builds 2, 3
    cache.get_or_build(wl(3), lambda: "x")  # untagged hit -> owner None
    stats = cache.stats()
    owners = cache.owner_stats()
    assert set(owners) == {"a", "b", None}
    for key in ("hits", "misses", "builds", "evictions"):
        assert sum(acc[key] for acc in owners.values()) == stats[key], key
    assert sum(acc["size"] for acc in owners.values()) == stats["size"]
    # Access attribution goes to the accessor, entry ownership to the builder.
    assert owners["b"]["hits"] == 1 and owners["b"]["builds"] == 2
    assert owners[None]["hits"] == 1 and owners[None]["builds"] == 0


def test_eviction_attributed_to_owner_of_evicted_entry():
    cache = PlanCache(maxsize=2)
    fill(cache, [0], owner="a")
    fill(cache, [1, 2], owner="b")   # evicts a's entry
    owners = cache.owner_stats()
    assert owners["a"]["evictions"] == 1
    assert owners["b"]["evictions"] == 0
    assert owners["a"]["size"] == 0 and owners["b"]["size"] == 2


# ---------------------------------------------------------------------------
# Per-owner floor: a hard residency quota under cross-model churn
# ---------------------------------------------------------------------------

def test_owner_floor_keeps_exact_floor_under_hot_churn():
    # A cold model holding more than its floor loses entries oldest-first
    # down to *exactly* the floor, then becomes untouchable: the remaining
    # churn is paid by the hot owner itself.
    cache = PlanCache(maxsize=6, owner_floor=2)
    fill(cache, [0, 1, 2, 3], owner="cold")
    fill(cache, range(10, 30), owner="hot")       # 20 builds of hot churn
    owners = cache.owner_stats()
    assert owners["cold"]["size"] == 2
    assert wl(2) in cache and wl(3) in cache      # the MRU two survived
    assert wl(0) not in cache and wl(1) not in cache
    assert owners["cold"]["evictions"] == 2       # down to the floor, no more
    assert owners["hot"]["evictions"] == cache.stats()["evictions"] - 2
    assert cache.stats()["size"] == 6             # maxsize stays a hard bound


def test_owner_floor_zero_gives_no_protection():
    # Control: the identical churn with the default floor evicts the cold
    # owner completely (traffic-weighted victim selection alone).
    cache = PlanCache(maxsize=6, owner_floor=0)
    fill(cache, [0, 1, 2, 3], owner="cold")
    fill(cache, range(10, 30), owner="hot")
    assert cache.owner_stats()["cold"]["size"] == 0


def test_owner_floor_widens_scan_past_protected_candidates():
    # The candidate window holds only floor-protected entries: eviction
    # must widen over the full LRU order and take the first evictable
    # entry instead of violating a floor.
    cache = PlanCache(maxsize=4, eviction_candidates=2, owner_floor=2)
    fill(cache, [0, 1], owner="a")        # LRU head; a is at its floor
    fill(cache, [10, 11], owner="b")
    fill(cache, [12], owner="b")          # overflow; window = a's entries
    assert wl(0) in cache and wl(1) in cache
    assert wl(10) not in cache            # b's own oldest paid instead
    assert wl(11) in cache and wl(12) in cache
    owners = cache.owner_stats()
    assert owners["a"]["evictions"] == 0 and owners["b"]["evictions"] == 1


def test_owner_floor_everything_protected_falls_back_to_lru():
    # Floors alone exceed capacity: maxsize is the harder bound, so the
    # eviction falls back to the unprotected (traffic-then-LRU) choice.
    cache = PlanCache(maxsize=2, owner_floor=2)
    fill(cache, [0], owner="a")
    fill(cache, [1], owner="b")
    fill(cache, [2], owner="c")           # every resident entry protected
    stats = cache.stats()
    assert stats["size"] == 2 and stats["evictions"] == 1
    assert wl(0) not in cache             # equal traffic: exact-LRU victim


def test_owner_floor_protection_follows_retag():
    # Floor accounting rides the same per-owner sizes re-ownership updates:
    # an entry retagged to its consumer counts against the *consumer's*
    # floor and is shielded as such.
    cache = PlanCache(maxsize=4, owner_floor=1)
    fill(cache, [0], owner="builder")
    with plan_owner("consumer"):
        cache.get_or_build(wl(0), lambda: "never rebuilt")   # retag
    fill(cache, [1, 2, 3], owner="churner")   # full
    fill(cache, [4, 5], owner="churner")      # overflow twice
    assert wl(0) in cache                     # consumer's floor of one holds
    owners = cache.owner_stats()
    assert owners["consumer"]["size"] == 1
    assert owners["churner"]["evictions"] == 2


def test_owner_floor_validation():
    with pytest.raises(ValueError, match="owner_floor"):
        PlanCache(owner_floor=-1)


# ---------------------------------------------------------------------------
# clear() epoch behaviour with in-flight builds
# ---------------------------------------------------------------------------

def test_clear_resets_eviction_and_owner_accounting():
    cache = PlanCache(maxsize=2)
    fill(cache, range(4), owner="a")
    assert cache.stats()["evictions"] == 2
    cache.clear()
    stats = cache.stats()
    assert stats == {"size": 0, "hits": 0, "misses": 0, "builds": 0,
                     "evictions": 0, "in_flight": 0}
    assert cache.owner_stats() == {}


def test_clear_during_inflight_build_keeps_owner_table_consistent():
    # The epoch check must also keep the *owner* bookkeeping out: a plan
    # whose insert was invalidated by clear() must not leave a dangling
    # per-owner size entry.
    cache = PlanCache(maxsize=4)
    release = threading.Event()

    def runner():
        with plan_owner("racer"):
            cache.get_or_build(wl(0), lambda: release.wait(2.0) or "plan")

    thread = threading.Thread(target=runner)
    thread.start()
    from tests.helpers import wait_for

    wait_for(lambda: cache.stats()["in_flight"])  # the build is in flight
    cache.clear()
    release.set()
    thread.join()
    assert wl(0) not in cache
    owners = cache.owner_stats()
    assert sum(acc["size"] for acc in owners.values()) == 0
    # The post-clear cache still works and re-attributes fresh traffic.
    fill(cache, [0], owner="racer")
    assert cache.owner_stats()["racer"]["size"] == 1


# ---------------------------------------------------------------------------
# Traffic-map pruning: ephemeral owners must not accumulate forever
# ---------------------------------------------------------------------------

def test_traffic_map_prunes_ephemeral_owners():
    # Regression: decay halved weights but never removed owners, so a
    # long-lived cache visited by per-request/per-test owner names grew its
    # traffic dict without bound.  Owners whose weight decays below the
    # epsilon *and* who hold no resident entry must be dropped.
    cache = PlanCache(maxsize=4, traffic_decay_every=8)
    fill(cache, [1, 2], owner="resident")
    for i in range(200):
        with plan_owner(f"ephemeral-{i}"):
            cache.get_or_build(wl(0), lambda: "shared")
    # Steady resident traffic drives enough decay rounds that every
    # ephemeral weight (~1 access each) sinks below the epsilon.
    with plan_owner("resident"):
        for _ in range(200):
            cache.get_or_build(wl(1), lambda: "x")
    survivors = set(cache._traffic)
    # Only live traffic and owners still holding a resident entry remain:
    # wl(0) was re-tagged to its last accessor, which keeps that one owner
    # (the resident-entry guard), while the other 199 are pruned.
    assert survivors == {"resident", "ephemeral-199"}
    # The size table is pruned in step: no zero-entry owners linger.
    assert set(cache._owner_sizes) <= survivors | {None}


def test_traffic_prune_never_drops_owner_with_resident_entries():
    cache = PlanCache(maxsize=4, traffic_decay_every=4)
    fill(cache, [0], owner="idle-holder")
    # idle-holder never submits again; a hot owner drives many decays.
    fill(cache, [1], owner="hot")
    with plan_owner("hot"):
        for _ in range(100):
            cache.get_or_build(wl(1), lambda: "x")
    assert cache._traffic.get("idle-holder", 0.0) < PlanCache.TRAFFIC_EPSILON
    assert "idle-holder" in cache._traffic          # entry keeps it alive
    assert cache._owner_sizes["idle-holder"] == 1
    assert wl(0) in cache
