"""Scheduling-core policies: pure, clock-injected, zero threads/sleeps.

Every test drives the :mod:`repro.serve.sched` objects with explicit
``now`` values (a virtual clock), so the full decision sequence is
deterministic on any machine — the pattern the transports' own timing
tests converge on, and the reason these policies were extracted from the
thread/lock plumbing in the first place.
"""
import pytest

from repro.serve.sched import (
    AdmissionPolicy,
    BucketPolicy,
    FairnessPolicy,
    SchedCore,
    SchedRequest,
    ShedPolicy,
)

SHAPE = (3, 16, 16)


# ---------------------------------------------------------------------------
# AdmissionPolicy
# ---------------------------------------------------------------------------

def test_admission_bounds_and_counts():
    policy = AdmissionPolicy(max_pending=2)
    assert policy.admit(0) and policy.admit(1)
    assert not policy.admit(2)
    assert policy.rejected == 1
    assert not policy.at_capacity(1) and policy.at_capacity(3)

    unbounded = AdmissionPolicy(None)
    assert all(unbounded.admit(n) for n in (0, 10**6))
    with pytest.raises(ValueError, match="max_pending"):
        AdmissionPolicy(0)


# ---------------------------------------------------------------------------
# BucketPolicy: EWMA arrival rate -> adaptive bucket target
# ---------------------------------------------------------------------------

def test_fixed_policy_always_targets_max_bucket():
    policy = BucketPolicy((1, 2, 4, 8), max_latency=0.01, adaptive=False)
    for t in (0.0, 0.001, 1.0):
        policy.observe_arrival(t)
    assert policy.target_bucket() == 8
    assert policy.fit_bucket(3) == 4 and policy.fit_bucket(64) == 8


def test_adaptive_bucket_grows_and_shrinks_across_load_ramp():
    # Simulated load ramp: sparse arrivals -> bucket 1; a heavy burst grows
    # the target toward the max; thinning traffic shrinks it back.  The
    # grow AND shrink sides both matter: a one-way ratchet would never
    # recover single-request latency after a burst.
    policy = BucketPolicy((1, 2, 4, 8), max_latency=0.01, adaptive=True)
    now = 0.0
    for _ in range(10):                   # light: 1 req/s
        policy.observe_arrival(now)
        now += 1.0
    assert policy.target_bucket() == 1

    targets = [policy.target_bucket()]
    for _ in range(200):                  # heavy: 1000 req/s
        policy.observe_arrival(now)
        now += 0.001
        targets.append(policy.target_bucket())
    assert policy.target_bucket() == 8    # 1000/s * 10ms window = 10 > 8
    assert targets == sorted(targets)     # monotone growth along the ramp

    shrink = []
    for _ in range(200):                  # back to light: 2 req/s
        policy.observe_arrival(now)
        now += 0.5
        shrink.append(policy.target_bucket())
    assert policy.target_bucket() == 1
    assert shrink == sorted(shrink, reverse=True)  # monotone decay


def test_adaptive_target_matches_rate_times_window():
    policy = BucketPolicy((1, 2, 4, 8), max_latency=0.01, adaptive=True)
    now = 0.0
    for _ in range(300):                  # 400 req/s steady
        policy.observe_arrival(now)
        now += 0.0025
    assert policy.arrival_rate() == pytest.approx(400.0, rel=0.01)
    # 400/s * 10ms = 4 expected batch-mates -> exactly the 4-bucket.
    assert policy.target_bucket() == 4


def test_bucket_policy_validation():
    with pytest.raises(ValueError, match="bucket_sizes"):
        BucketPolicy(())
    with pytest.raises(ValueError, match="max_latency"):
        BucketPolicy((1,), max_latency=0.0)
    with pytest.raises(ValueError, match="alpha"):
        BucketPolicy((1,), alpha=0.0)


# ---------------------------------------------------------------------------
# ShedPolicy: blown-budget detection
# ---------------------------------------------------------------------------

def _req(rid, deadline=None, arrived=0.0):
    return SchedRequest(id=rid, model="m", shape=SHAPE, arrived_at=arrived,
                        deadline=deadline)


def test_request_exactly_at_deadline_is_not_blown():
    policy = ShedPolicy("deadline")
    at = _req(0, deadline=5.0)
    assert not policy.blown(at, 5.0)      # the boundary is viable
    assert policy.blown(at, 5.0 + 1e-9)   # strictly past is not
    assert not policy.blown(_req(1, deadline=None), 1e18)  # no SLO, never


def test_exec_estimate_sharpens_blown_detection():
    # With a known batch execution time, a request whose remaining budget
    # cannot cover the execution is already blown *before* the deadline.
    policy = ShedPolicy("deadline", exec_estimate=2.0)
    req = _req(0, deadline=5.0)
    assert not policy.blown(req, 3.0)     # 3.0 + 2.0 == 5.0: still makes it
    assert policy.blown(req, 3.5)         # 3.5 + 2.0 > 5.0: cannot make it
    viable, blown = policy.split_blown([_req(1, 10.0), _req(2, 4.0)], 3.0)
    assert [r.id for r in viable] == [1] and [r.id for r in blown] == [2]


# ---------------------------------------------------------------------------
# FairnessPolicy: deficit round robin vs FIFO
# ---------------------------------------------------------------------------

def test_drr_splits_service_evenly_between_equal_flows():
    policy = FairnessPolicy("drr", quantum=4.0)
    served = {"a": 0, "b": 0}
    for _ in range(40):
        winner = policy.select({"a": (4.0, 0.0), "b": (4.0, 0.0)})
        served[winner] += 1
    assert served["a"] == served["b"] == 20


def test_drr_fairness_under_95_5_traffic_skew():
    # 95/5 skew with the heavy model's batches 8x the light model's cost:
    # DRR still serves the light flow every few selections (bounded service
    # gap), while FIFO lets the heavy backlog starve it.
    drr = FairnessPolicy("drr", quantum=8.0)
    gap, last_light, selections = [], 0, []
    for step in range(400):
        # Both flows always have work (the skew shows up as cost, not
        # presence): heavy batches cost 8, light ones 1.
        winner = drr.select({"heavy": (8.0, 0.0), "light": (1.0, 0.1)})
        selections.append(winner)
        if winner == "light":
            gap.append(step - last_light)
            last_light = step
    light_share = selections.count("light") / len(selections)
    # Equal quanta -> equal *cost* shares: the light flow wins ~8x more
    # selections (each 8x cheaper).  It must never wait long.
    assert light_share == pytest.approx(8 / 9, abs=0.05)
    assert max(gap) <= 3

    fifo = FairnessPolicy("fifo")
    # FIFO always serves the older head: a standing heavy backlog (arrived
    # earlier forever) starves the light flow completely.
    for _ in range(50):
        assert fifo.select({"heavy": (8.0, 0.0), "light": (1.0, 0.1)}) == "heavy"


def test_drr_departed_flow_forfeits_deficit():
    # A flow that goes idle leaves the round; returning, it starts with
    # zero credit (no bursting on banked deficit) — standard DRR.
    policy = FairnessPolicy("drr", quantum=2.0)
    for _ in range(6):
        policy.select({"a": (2.0, 0.0), "b": (2.0, 0.0)})
    assert policy.select({"b": (2.0, 0.0)}) == "b"   # a departs
    assert policy.deficit("a") == 0.0
    policy.select({"a": (2.0, 0.0), "b": (2.0, 0.0)})  # a rejoins at the tail
    assert policy.deficit("a") <= policy.quantum


def test_fairness_select_empty_and_validation():
    assert FairnessPolicy("drr").select({}) is None
    with pytest.raises(ValueError, match="mode"):
        FairnessPolicy("priority")
    with pytest.raises(ValueError, match="quantum"):
        FairnessPolicy("drr", quantum=0.0)


# ---------------------------------------------------------------------------
# SchedCore: the composite the transports drive
# ---------------------------------------------------------------------------

def _core(**kwargs):
    defaults = dict(bucket_sizes=(1, 2, 4), max_latency=0.01,
                    adaptive_buckets=False, shed_policy="deadline",
                    fairness="drr")
    defaults.update(kwargs)
    return SchedCore(**defaults)


def test_core_batches_on_full_bucket_and_deadline():
    core = _core()
    core.add_model("m")
    for i in range(3):
        core.submit("m", SHAPE, now=0.001 * i)
    assert core.next_batch(now=0.005) is None          # 3 < max bucket 4
    batch = core.next_batch(now=0.012)                 # head aged past 10ms
    assert batch is not None and len(batch.requests) == 3
    assert batch.bucket == 4                           # padded to the fit
    assert core.pending_count() == 0

    for i in range(5):
        core.submit("m", SHAPE, now=1.0)
    batch = core.next_batch(now=1.0)                   # full trigger, no age
    assert len(batch.requests) == 4 and batch.bucket == 4
    assert core.next_batch(now=1.0) is None            # remainder waits
    assert core.next_batch(now=1.0, force=True) is not None  # drain takes it


def test_core_next_event_announces_flush_and_shed_times():
    core = _core()
    core.add_model("m")
    core.submit("m", SHAPE, now=0.0, deadline=0.004)
    # Earliest decision point: the deadline (0.004) beats the flush (0.010).
    assert core.next_event(now=0.0) == pytest.approx(0.004)
    core.shed_blown(now=0.005)
    assert core.next_event(now=0.005) is None          # queue emptied
    core.submit("m", SHAPE, now=1.0)
    assert core.next_event(now=1.0) == pytest.approx(1.010)


def test_core_displaces_blown_victims_at_capacity():
    core = _core(max_pending=2)
    core.add_model("m")
    core.submit("m", SHAPE, now=0.0, deadline=0.5)
    core.submit("m", SHAPE, now=0.0, deadline=100.0)
    # At capacity with one blown victim: the newcomer displaces it.
    outcome = core.submit("m", SHAPE, now=1.0, deadline=100.0)
    assert outcome.accepted
    assert [v.id for v in outcome.displaced] == [0]
    assert core.stats("m")["shed_deadline"] == 1
    # At capacity with only viable work: backpressure rejects the newcomer.
    outcome = core.submit("m", SHAPE, now=1.0, deadline=100.0)
    assert not outcome.accepted and not outcome.displaced
    assert core.stats("m")["rejected"] == 1


def test_core_newest_policy_never_displaces():
    core = _core(max_pending=1, shed_policy="newest")
    core.add_model("m")
    core.submit("m", SHAPE, now=0.0, deadline=0.5)     # will blow its budget
    outcome = core.submit("m", SHAPE, now=1.0, deadline=100.0)
    assert not outcome.accepted                        # tail-drop: newest loses
    assert core.shed_blown(now=1.0) == []              # no deadline shed either
    assert core.pending_count() == 1


def test_core_drr_interleaves_models_fifo_does_not():
    def fill(core):
        core.add_model("heavy", request_cost=8.0)
        core.add_model("light", request_cost=1.0)
        for i in range(8):
            core.submit("heavy", SHAPE, now=0.0)
        for i in range(8):
            core.submit("light", SHAPE, now=0.001)
        order = []
        while True:
            batch = core.next_batch(now=1.0)
            if batch is None:
                break
            order.append(batch.model)
        return order

    drr_order = fill(_core(fairness="drr", quantum=8.0))
    fifo_order = fill(_core(fairness="fifo"))
    assert fifo_order == ["heavy", "heavy", "light", "light"]  # arrival order
    # DRR charges the heavy model 8x per slot, so the light model is served
    # before the heavy backlog clears.
    assert drr_order.index("light") < drr_order.index("heavy", 1)


def test_core_shed_all_and_registration_errors():
    core = _core()
    core.add_model("m")
    for i in range(3):
        core.submit("m", SHAPE, now=0.0)
    victims = core.shed_all()
    assert len(victims) == 3 and core.pending_count() == 0
    with pytest.raises(ValueError, match="registered"):
        core.add_model("m")
    with pytest.raises(KeyError, match="no model"):
        core.submit("ghost", SHAPE, now=0.0)


# ---------------------------------------------------------------------------
# Cross-check: EWMA bucket adaptation vs the gpusim analytic optimum
# ---------------------------------------------------------------------------

def test_adaptive_bucket_tracks_gpusim_optimal_bucket():
    # Both the EWMA policy and the analytic queueing model must call the
    # same direction: bucket targets grow monotonically with arrival rate,
    # small at light load and max at saturation.  (The policy sees arrival
    # gaps; the model sees rates — this pins their qualitative agreement.)
    import numpy as np

    from repro.gpusim.device import tesla_v100
    from repro.gpusim.timeline import optimal_bucket, serving_latency
    from repro.gpusim.workloads import extract_layer_shapes
    from repro.models import build_model

    model = build_model("mobilenet", scheme="scc", width_mult=0.25,
                        rng=np.random.default_rng(2))
    shapes = extract_layer_shapes(model, SHAPE)
    device = tesla_v100()
    buckets = (1, 2, 4, 8)
    window = 0.01

    rates = [10.0, 100.0, 1000.0, 5000.0, 20000.0]
    analytic = [
        optimal_bucket(shapes, buckets, device, rate, window) for rate in rates
    ]
    policy_targets = []
    for rate in rates:
        policy = BucketPolicy(buckets, max_latency=window, adaptive=True)
        now = 0.0
        for _ in range(100):
            policy.observe_arrival(now)
            now += 1.0 / rate
        policy_targets.append(policy.target_bucket())

    assert analytic == sorted(analytic)            # monotone in load
    assert policy_targets == sorted(policy_targets)
    assert analytic[0] == policy_targets[0] == 1   # light load: latency wins
    assert analytic[-1] == policy_targets[-1] == 8  # saturation: throughput

    # The queueing-delay term itself: grows with bucket, caps at max_wait,
    # zero for bucket 1.
    waits = [device.batching_queue_wait(1000.0, b, window) for b in buckets]
    assert waits[0] == 0.0 and waits == sorted(waits)
    assert max(waits) <= 0.5 * window
    est = serving_latency(shapes, 4, device, 1000.0, window)
    assert est.latency == pytest.approx(est.queue_wait + est.exec)
    assert est.stable
