"""Inference-graph fusion: staged conv epilogues stay bitwise-honest.

:func:`repro.nn.fuse_inference` absorbs bias / eval-mode BN / activation
into the producing kernel's staged epilogue.  The contract under test:

- fused output == unfused output **bitwise** — the epilogue replays the
  exact elementwise op sequence the module stack composes, for Conv2d and
  SCC layers, with and without BN, for both activations, on both the
  ``numpy`` and ``threaded`` backends;
- the fused fast path engages only under no-grad eval execution; under
  autograd (or on a backend without a fused kernel) the layer composes
  the same stages as Tensor ops and still matches bitwise;
- fusion bookkeeping surfaces end to end: ``count_fused``, ModelPlan's
  ``fused_layers``, and the serving ``Server``/``Router`` metrics.
"""
import numpy as np
import pytest

from repro import nn
from repro.backend import PLAN_CACHE, EpilogueSpec
from repro.core.blocks import DepthwiseSeparableBlock
from repro.core.scc import SlidingChannelConv2d
from repro.tensor import Tensor, no_grad


def _randomize_bn(bn: nn.BatchNorm2d, rng: np.random.Generator) -> None:
    """Non-trivial gamma/beta/running stats so the affine actually bites."""
    bn.weight.data[:] = rng.uniform(0.5, 1.5, bn.num_features).astype(np.float32)
    bn.bias.data[:] = rng.standard_normal(bn.num_features).astype(np.float32)
    bn._buffers["running_mean"][:] = rng.standard_normal(
        bn.num_features).astype(np.float32)
    bn._buffers["running_var"][:] = rng.uniform(
        0.2, 2.0, bn.num_features).astype(np.float32)


def _eval_out(model: nn.Module, x: np.ndarray) -> np.ndarray:
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


def _assert_fuse_bitwise(model: nn.Module, x: np.ndarray, expect_fused: int):
    before = _eval_out(model, x)
    assert nn.fuse_inference(model) == expect_fused
    assert nn.count_fused(model) == expect_fused
    after = _eval_out(model, x)
    assert np.array_equal(before, after)
    return before


# ---------------------------------------------------------------------------
# Fused == unfused, bitwise, across stage combinations and backends
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["numpy", "threaded"])
def test_conv_bn_relu_fuses_bitwise(backend):
    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(8, 16, 3, padding=1, bias=True, backend=backend,
                  rng=np.random.default_rng(1)),
        nn.BatchNorm2d(16),
        nn.ReLU(),
    )
    _randomize_bn(model._modules["1"], rng)
    x = rng.standard_normal((2, 8, 6, 6)).astype(np.float32)
    _assert_fuse_bitwise(model, x, expect_fused=1)
    # The absorbed stages were replaced by Identity: the conv now carries
    # the whole epilogue.
    assert isinstance(model._modules["1"], nn.Identity)
    assert isinstance(model._modules["2"], nn.Identity)
    conv = model._modules["0"]
    assert conv._fused_epilogue.spec() == EpilogueSpec(
        bias=True, affine=True, activation="relu")
    assert conv._fused_epilogue.spec().stages == 3


def test_bias_only_conv_fuses_bitwise():
    rng = np.random.default_rng(2)
    model = nn.Sequential(
        nn.Conv2d(4, 8, 3, padding=1, bias=True, rng=np.random.default_rng(3)),
    )
    x = rng.standard_normal((2, 4, 5, 5)).astype(np.float32)
    _assert_fuse_bitwise(model, x, expect_fused=1)
    spec = model._modules["0"]._fused_epilogue.spec()
    assert spec == EpilogueSpec(bias=True, affine=False, activation=None)
    assert spec.stages == 1


def test_conv_relu6_fuses_bitwise():
    rng = np.random.default_rng(4)
    model = nn.Sequential(
        nn.Conv2d(4, 8, 3, padding=1, bias=False, rng=np.random.default_rng(5)),
        nn.ReLU6(),
    )
    # Large inputs so the 6.0 clamp actually clips some activations.
    x = (rng.standard_normal((2, 4, 5, 5)) * 4).astype(np.float32)
    _assert_fuse_bitwise(model, x, expect_fused=1)
    spec = model._modules["0"]._fused_epilogue.spec()
    assert spec.activation == "relu6" and spec.stages == 1


def test_scc_bn_relu_fuses_bitwise():
    rng = np.random.default_rng(6)
    model = nn.Sequential(
        SlidingChannelConv2d(16, 32, cg=4, co=0.25, bias=True,
                             rng=np.random.default_rng(7)),
        nn.BatchNorm2d(32),
        nn.ReLU(),
    )
    _randomize_bn(model._modules["1"], rng)
    x = rng.standard_normal((2, 16, 6, 6)).astype(np.float32)
    _assert_fuse_bitwise(model, x, expect_fused=1)


def test_separable_block_fuses_both_stages_bitwise():
    rng = np.random.default_rng(8)
    block = DepthwiseSeparableBlock(8, 16, scheme="scc", cg=2, co=0.5,
                                    rng=np.random.default_rng(9))
    _randomize_bn(block.bn1, rng)
    _randomize_bn(block.bn2, rng)
    x = rng.standard_normal((2, 8, 8, 8)).astype(np.float32)
    before = _eval_out(block, x)
    assert nn.fuse_inference(block) == 2          # depthwise and pointwise
    assert nn.count_fused(block) == 2
    assert isinstance(block.bn1, nn.Identity)
    assert isinstance(block.act2, nn.Identity)
    assert np.array_equal(before, _eval_out(block, x))


def test_fuse_is_idempotent():
    model = nn.Sequential(
        nn.Conv2d(4, 8, 3, bias=True, rng=np.random.default_rng(10)),
        nn.ReLU(),
    )
    assert nn.fuse_inference(model) == 1
    assert nn.fuse_inference(model) == 0          # already fused: no-op
    assert nn.count_fused(model) == 1


def test_unfusable_conv_left_alone():
    # Nothing to absorb (no bias, no BN, no activation): stay on the plain
    # conv dispatch rather than paying the fused plan's epilogue machinery.
    model = nn.Sequential(
        nn.Conv2d(4, 8, 3, bias=False, rng=np.random.default_rng(11)),
    )
    assert nn.fuse_inference(model) == 0
    assert nn.count_fused(model) == 0
    assert model._modules["0"]._fused_epilogue is None


def test_bn_width_mismatch_not_absorbed():
    # A BN that does not normalize the conv's own output channels must not
    # be folded into its epilogue.
    model = nn.Sequential(
        nn.Conv2d(4, 8, 3, padding=1, bias=True, rng=np.random.default_rng(12)),
        nn.Identity(),
        nn.BatchNorm2d(8),
    )
    assert nn.fuse_inference(model) == 1          # bias-only fusion
    spec = model._modules["0"]._fused_epilogue.spec()
    assert spec.affine is False
    assert isinstance(model._modules["2"], nn.BatchNorm2d)  # BN kept live


# ---------------------------------------------------------------------------
# Fallback paths: autograd and fused-kernel-less backends
# ---------------------------------------------------------------------------

def test_fused_layer_composes_under_autograd():
    rng = np.random.default_rng(13)
    model = nn.Sequential(
        nn.Conv2d(4, 8, 3, padding=1, bias=True, rng=np.random.default_rng(14)),
        nn.BatchNorm2d(8),
        nn.ReLU(),
    )
    _randomize_bn(model._modules["1"], rng)
    x = rng.standard_normal((2, 4, 5, 5)).astype(np.float32)
    reference = _eval_out(model, x)
    nn.fuse_inference(model)
    model.eval()
    inp = Tensor(x, requires_grad=True)
    out = model(inp)                              # grad enabled: composed path
    assert np.array_equal(out.data, reference)
    out.sum().backward()
    assert inp.grad is not None
    assert np.isfinite(inp.grad).all()


def test_fused_layer_composes_on_backend_without_fused_kernel():
    # The reference backend registers no conv2d_fused: the fused layer must
    # silently compose the same epilogue with Tensor ops.
    rng = np.random.default_rng(15)
    model = nn.Sequential(
        nn.Conv2d(4, 8, 3, padding=1, bias=True, backend="reference",
                  rng=np.random.default_rng(16)),
        nn.ReLU(),
    )
    x = rng.standard_normal((2, 4, 5, 5)).astype(np.float32)
    _assert_fuse_bitwise(model, x, expect_fused=1)


def test_epilogue_spec_validation():
    with pytest.raises(ValueError, match="activation"):
        EpilogueSpec(activation="sigmoid")
    assert EpilogueSpec().stages == 0
    assert EpilogueSpec(bias=True, activation="relu6").stages == 2


# ---------------------------------------------------------------------------
# Bookkeeping: ModelPlan and the serving metrics
# ---------------------------------------------------------------------------

def _tiny_fused_model(seed: int) -> nn.Module:
    model = nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, bias=True,
                  rng=np.random.default_rng(seed)),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.Conv2d(8, 8, 3, padding=1, bias=True,
                  rng=np.random.default_rng(seed + 1)),
        nn.ReLU(),
    )
    model.eval()
    nn.fuse_inference(model)
    return model


def test_model_plan_reports_fused_layers():
    from repro.backend import ModelPlan

    model = _tiny_fused_model(17)
    plan = ModelPlan(model, (3, 8, 8), include_backward=False)
    assert plan.fused_layers == 2
    assert plan.stats()["fused_layers"] == 2


def test_server_metrics_report_fused_layers():
    from repro.serve import Server, ServerConfig

    server = Server(_tiny_fused_model(19), input_shapes=[(3, 8, 8)],
                    config=ServerConfig(bucket_sizes=(1,), max_latency=60.0))
    assert server.fused_layers == 2
    rng = np.random.default_rng(20)
    server.submit(rng.standard_normal((3, 8, 8)).astype(np.float32))
    server.flush()
    assert server.metrics().fused_layers == 2


def test_router_metrics_sum_fused_layers_and_set_owner_floor():
    from repro.serve import Router, ServerConfig

    previous_floor = PLAN_CACHE.owner_floor
    try:
        router = Router(server_config=ServerConfig(bucket_sizes=(1,),
                                                   max_latency=60.0),
                        cache_owner_floor=2)
        assert PLAN_CACHE.owner_floor == 2
        router.register("a", _tiny_fused_model(21), input_shapes=[(3, 8, 8)])
        router.register("b", _tiny_fused_model(23), input_shapes=[(3, 8, 8)])
        assert router.metrics().fused_layers == 4
    finally:
        PLAN_CACHE.owner_floor = previous_floor


def test_router_rejects_negative_owner_floor():
    from repro.serve import Router

    with pytest.raises(ValueError, match="cache_owner_floor"):
        Router(cache_owner_floor=-1)
