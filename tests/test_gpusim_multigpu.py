"""Ring all-reduce and data-parallel scaling model (paper Fig. 14)."""
import pytest

from repro.gpusim import (
    data_parallel_step_time,
    extract_layer_shapes,
    ring_allreduce_time,
    tesla_v100,
)
from repro.models import build_model
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(121)


@pytest.fixture
def dev():
    return tesla_v100()


def test_allreduce_zero_for_single_device(dev):
    assert ring_allreduce_time(1e9, 1, dev) == 0.0


def test_allreduce_volume_term(dev):
    t2 = ring_allreduce_time(1e9, 2, dev)
    t4 = ring_allreduce_time(1e9, 4, dev)
    # 2(K-1)/K factor: K=2 -> 1.0x, K=4 -> 1.5x of the buffer.
    vol2 = 1e9 / dev.interconnect_bandwidth
    assert t2 >= vol2
    assert t4 > t2


def test_allreduce_validation(dev):
    with pytest.raises(ValueError):
        ring_allreduce_time(1e9, 0, dev)


def test_multi_gpu_speedup_shape(dev):
    """Speedup grows with K and approaches linear at K=4 (paper Fig. 14)."""
    model = build_model("vgg16", scheme="scc", cg=2, co=0.5)
    shapes = extract_layer_shapes(model, (3, 32, 32))
    grad_bytes = 4 * sum(
        s.cout * (s.cin // max(s.groups, 1)) * s.kernel**2
        for s in shapes if s.kind in ("conv", "dw", "pw", "gpw", "gc")
    )
    batch = 512
    t1 = data_parallel_step_time(shapes, batch, 1, dev, grad_bytes).total
    speedups = [
        t1 / data_parallel_step_time(shapes, batch, k, dev, grad_bytes).total
        for k in (1, 2, 3, 4)
    ]
    assert speedups[0] == pytest.approx(1.0)
    assert speedups[0] < speedups[1] < speedups[2] < speedups[3]
    assert speedups[3] > 2.5          # near-linear at 4 GPUs
    assert speedups[1] < 2.0          # sub-linear at 2 (comm not amortised)


def test_overlap_fraction_validated(dev):
    model = build_model("mobilenet", scheme="scc", width_mult=0.125)
    shapes = extract_layer_shapes(model, (3, 16, 16))
    with pytest.raises(ValueError):
        data_parallel_step_time(shapes, 64, 2, dev, 1e6, overlap_fraction=1.5)


def test_communication_zero_on_one_device(dev):
    model = build_model("mobilenet", scheme="scc", width_mult=0.125)
    shapes = extract_layer_shapes(model, (3, 16, 16))
    step = data_parallel_step_time(shapes, 64, 1, dev, 1e9)
    assert step.communication == 0.0


# ---------------------------------------------------------------------------
# Host process tier: worker processes as devices, pipes as the interconnect
# ---------------------------------------------------------------------------

def test_process_speedup_amdahl_shape(dev):
    assert dev.process_speedup(1) == pytest.approx(1.0)
    s2, s4, s8 = (dev.process_speedup(k) for k in (2, 4, 8))
    assert 1.0 < s2 < s4 < s8
    # Bounded by the serial dispatch fraction.
    assert s8 < 1.0 / dev.host_process_serial_fraction
    with pytest.raises(ValueError):
        dev.process_speedup(0)


def test_host_fabric_rebinds_interconnect(dev):
    from repro.gpusim import host_fabric_device

    fabric = host_fabric_device(dev)
    assert fabric.interconnect_bandwidth == dev.host_ipc_bandwidth
    assert fabric.interconnect_latency == dev.host_ipc_latency
    # Everything else is untouched; the source spec is not mutated.
    assert fabric.name == dev.name
    assert dev.interconnect_bandwidth != dev.host_ipc_bandwidth


def test_host_process_step_time_scales_and_charges_ipc(dev):
    from repro.gpusim import host_process_step_time

    tasks = [0.01] * 8
    t1 = host_process_step_time(tasks, 1, dev)
    t4 = host_process_step_time(tasks, 4, dev, ipc_bytes=1e6, round_trips=8)
    assert t1.communication == 0.0       # no pipes on one process
    assert t4.compute < t1.compute       # makespan shrinks across lanes
    expected_comm = (
        8 * dev.host_ipc_latency + 1e6 / dev.host_ipc_bandwidth
    )
    assert t4.communication == pytest.approx(expected_comm)
    # Amdahl residue keeps scaling sub-linear.
    assert t1.total / t4.total < 4.0
    assert t1.total / t4.total > 1.8     # but well past the bench gate ratio


def test_host_process_step_time_validation(dev):
    from repro.gpusim import host_process_step_time

    with pytest.raises(ValueError):
        host_process_step_time([0.01], 0, dev)
    with pytest.raises(ValueError):
        host_process_step_time([0.01], 2, dev, ipc_bytes=-1.0)
    with pytest.raises(ValueError):
        host_process_step_time([0.01], 2, dev, round_trips=-1)
