"""Serving front-end: shape-bucketed batching correctness + metrics.

The bitwise-equality tests exploit the server's core numerical property:
padding every batch to a fixed bucket size makes the GEMM shapes (and hence
BLAS blocking and summation order) identical no matter how many real
requests share the batch, so a request's output is bit-identical whether it
rode alone or fully coalesced.
"""
import threading

import numpy as np
import pytest

from repro.models import build_model
from repro.serve import Server, ServerConfig
from repro.tensor import Tensor, no_grad
from repro.utils import seed_all

INPUT = (3, 16, 16)


@pytest.fixture(autouse=True)
def _seed():
    seed_all(33)


def _model(impl="dsxplore", backend="default"):
    return build_model("mobilenet", scheme="scc", width_mult=0.25,
                       impl=impl, backend=backend,
                       rng=np.random.default_rng(2))


def _images(n, shape=INPUT, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape).astype(np.float32) for _ in range(n)]


# ---------------------------------------------------------------------------
# Correctness: bucketed batches == per-request inference
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("impl", ["channel_stack", "conv_stack", "dsxplore"])
@pytest.mark.parametrize("backend", ["numpy", "reference"])
def test_bucketed_outputs_bitwise_equal_per_request(impl, backend):
    model = _model(impl=impl, backend=backend)
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(4,), max_latency=1.0))
    images = _images(4)

    # Coalesced: all four requests share one bucket.
    ids = [server.submit(im) for im in images]
    batched = [server.result(i).output for i in ids]

    # Per-request: each request rides its own (padded) bucket.
    solo = []
    for im in images:
        rid = server.submit(im)
        server.flush()
        solo.append(server.result(rid).output)

    for a, b in zip(batched, solo):
        np.testing.assert_array_equal(a, b)


def test_partial_bucket_padding_does_not_leak_between_requests():
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(4,), max_latency=1.0))
    images = _images(3, seed=4)
    # Same three requests next to different batch-mates: identical outputs.
    first_ids = [server.submit(im) for im in images]
    server.flush()
    first = [server.result(i).output for i in first_ids]

    decoys = _images(1, seed=99)
    second_ids = [server.submit(im) for im in images + decoys]
    server.flush()
    second = [server.result(i).output for i in second_ids[:3]]
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a, b)


def test_server_outputs_match_naive_unbatched_inference():
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(1, 2, 4), max_latency=1.0))
    images = _images(6, seed=7)
    ids = [server.submit(im) for im in images]
    server.flush()
    with no_grad():
        for rid, im in zip(ids, images):
            naive = model(Tensor(im[None])).data[0]
            np.testing.assert_allclose(server.result(rid).output, naive,
                                       rtol=1e-5, atol=1e-5)


# ---------------------------------------------------------------------------
# Batching policy: bucket sizes + max-latency flush
# ---------------------------------------------------------------------------

def test_full_bucket_flushes_immediately_partial_waits_for_deadline():
    clock = [0.0]
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(2, 4), max_latency=0.5),
                    clock=lambda: clock[0])
    images = _images(6, seed=1)

    # Four submissions hit the max bucket: flushed inline, no poll needed.
    ids = [server.submit(im) for im in images[:4]]
    assert all(server.result(i) is not None for i in ids)
    assert server.result(ids[0]).bucket_size == 4
    assert server.result(ids[0]).batch_requests == 4

    # One pending request: stays queued until the deadline passes.
    rid = server.submit(images[4])
    assert server.poll() == 0 and server.result(rid) is None
    clock[0] = 0.6
    assert server.poll() == 1
    result = server.result(rid)
    assert result is not None
    assert result.bucket_size == 2  # smallest configured bucket that fits
    assert result.latency == pytest.approx(0.6)


def test_flush_drains_queue_larger_than_max_bucket():
    # Regression: flush()/stop() used to run one max-size batch and strand
    # the sub-bucket remainder when a burst outran the worker thread.
    from repro.serve.server import Request

    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(1, 2, 4), max_latency=1.0))
    images = _images(10, seed=13)
    with server._lock:  # simulate a threaded-mode burst the worker missed
        queue = server._pending.setdefault(INPUT, [])
        for i, image in enumerate(images):
            queue.append(Request(id=1000 + i, image=image, submitted_at=0.0))
    assert server.flush() == 3  # 4 + 4 + 2
    assert all(server.result(1000 + i) is not None for i in range(10))
    assert server.metrics().completed == 10


def test_unread_result_retention_is_bounded():
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(2,), max_latency=1.0,
                                        result_capacity=4, metrics_window=6))
    ids = [server.submit(im) for im in _images(10, seed=14)]
    server.flush()
    # Oldest unread results are evicted; recent ones and the aggregate
    # counters survive.
    assert server.result(ids[0]) is None
    assert server.result(ids[-1]) is not None
    metrics = server.metrics()
    assert metrics.completed == 10
    assert metrics.latency_p50 > 0
    with pytest.raises(ValueError, match="result_capacity"):
        ServerConfig(result_capacity=0)


def test_waited_results_survive_capacity_eviction():
    # A result someone is blocked in wait_result() on must not be evicted
    # by result_capacity — otherwise the waiter times out on a request
    # that actually completed.
    from tests.helpers import wait_for

    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(8,), max_latency=5.0,
                                        result_capacity=4))
    ids = [server.submit(im) for im in _images(7, seed=20)]  # queued, < bucket
    got = {}
    waiter = threading.Thread(
        target=lambda: got.update(result=server.wait_result(ids[0], timeout=10.0))
    )
    waiter.start()

    def _waiter_registered():
        with server._lock:
            return ids[0] in server._waiting

    wait_for(_waiter_registered)
    server.flush()                         # publishes 7 results, capacity 4
    waiter.join()
    assert got["result"].id == ids[0]      # waited result survived eviction
    assert server.result(ids[1]) is None   # an unwaited old result was evicted
    assert server.result(ids[-1]) is not None


def test_requests_of_unseen_shape_build_cold_plans_but_complete():
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(2,), max_latency=1.0))
    server.reset_metrics()
    other = (3, 8, 8)
    ids = [server.submit(im) for im in _images(2, shape=other, seed=3)]
    server.flush()
    assert all(server.result(i) is not None for i in ids)
    metrics = server.metrics()
    assert metrics.completed == 2
    assert metrics.plan_builds > 0  # the cold path is visible in metrics


def test_metrics_warm_serving_window():
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(1, 2, 4), max_latency=1.0))
    # Warmup traffic, then measure a clean window.
    for im in _images(4, seed=8):
        server.submit(im)
    server.flush()
    server.reset_metrics()

    for im in _images(8, seed=9):
        server.submit(im)
    server.flush()
    metrics = server.metrics()
    assert metrics.completed == 8
    assert metrics.batches == 2
    assert metrics.plan_builds == 0
    assert metrics.plan_cache_hit_rate == 1.0
    assert metrics.throughput > 0
    assert metrics.latency_p95 >= metrics.latency_p50 > 0
    assert metrics.mean_batch_occupancy == 4.0
    assert metrics.mean_bucket_fill == 1.0
    assert metrics.as_dict()["completed"] == 8


def test_server_config_validation():
    with pytest.raises(ValueError, match="bucket_sizes"):
        ServerConfig(bucket_sizes=())
    with pytest.raises(ValueError, match="max_latency"):
        ServerConfig(max_latency=0)
    config = ServerConfig(bucket_sizes=(8, 2, 2, 4))
    assert config.bucket_sizes == (2, 4, 8)
    assert config.bucket_for(1) == 2 and config.bucket_for(5) == 8
    assert config.bucket_for(64) == 8
    model = _model()
    server = Server(model, input_shapes=[INPUT])
    with pytest.raises(ValueError, match="image"):
        server.submit(np.zeros((2, *INPUT), dtype=np.float32))


# ---------------------------------------------------------------------------
# Shutdown semantics: no submitted request is silently dropped
# ---------------------------------------------------------------------------

def test_stop_drains_requests_racing_shutdown():
    # Requests submitted concurrently with stop() must all complete: stop
    # claims the worker under the lock before its final drain, so a racing
    # submit either lands in the drain or applies sync-mode semantics itself.
    from repro.serve import ServingMetrics

    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(1, 2, 4), max_latency=0.005))
    server.start()
    ids = []
    lock = threading.Lock()
    stop_now = threading.Event()

    def client(seed):
        for i, im in enumerate(_images(6, seed=seed)):
            rid = server.submit(im)
            with lock:
                ids.append(rid)
            if i == 2:
                stop_now.set()  # let stop() race the middle of the stream

    clients = [threading.Thread(target=client, args=(s,)) for s in range(3)]
    for t in clients:
        t.start()
    stop_now.wait(5.0)
    server.stop()             # drain=True: joins worker, then flushes
    for t in clients:
        t.join()
    server.flush()            # requests submitted after stop() returned
    assert len(ids) == 18
    assert all(server.result(rid) is not None for rid in ids)
    metrics = server.metrics()
    assert isinstance(metrics, ServingMetrics)
    assert metrics.completed == 18 and metrics.shed == 0


def test_stop_without_drain_sheds_pending_and_reports_them():
    from repro.serve import RequestShed

    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(8,), max_latency=5.0))
    executed = server.submit(_images(1, seed=30)[0])
    server.flush()
    pending = [server.submit(im) for im in _images(3, seed=31)]
    server.stop(drain=False)
    # Executed results survive; pending ones are shed, not silently dropped.
    assert server.result(executed) is not None
    for rid in pending:
        assert server.result(rid) is None
        assert server.was_shed(rid)
    with pytest.raises(RequestShed, match="shed"):
        server.wait_result(pending[0], timeout=1.0)
    assert server.pending_count() == 0
    assert server.metrics().shed == 3
    # stop() is idempotent and safe without start().
    server.stop()


def test_shed_id_retention_is_bounded():
    # Like unread results, shed-id bookkeeping must not grow forever on a
    # long-lived server that repeatedly stops without draining.
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(8,), max_latency=5.0,
                                        result_capacity=4))
    first_batch = [server.submit(im) for im in _images(3, seed=34)]
    server.stop(drain=False)
    second_batch = [server.submit(im) for im in _images(4, seed=35)]
    server.stop(drain=False)
    assert len(server._shed_ids) <= 4
    assert all(server.was_shed(rid) for rid in second_batch)  # newest kept
    assert not server.was_shed(first_batch[0])                # oldest trimmed
    assert server.metrics().shed == 7                         # counter exact


def test_shed_wakes_blocked_waiters():
    from repro.serve import RequestShed
    from tests.helpers import wait_for

    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(8,), max_latency=5.0))
    rid = server.submit(_images(1, seed=32)[0])
    caught = []
    waiter = threading.Thread(
        target=lambda: caught.append(
            pytest.raises(RequestShed, server.wait_result, rid, timeout=10.0)
        )
    )
    waiter.start()

    def _waiter_registered():
        with server._lock:
            return rid in server._waiting

    wait_for(_waiter_registered)
    server.stop(drain=False)
    waiter.join(5.0)
    assert not waiter.is_alive() and len(caught) == 1


def test_admission_control_bounds_server_queue():
    from repro.serve import QueueFull

    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(8,), max_latency=5.0,
                                        max_pending=2))
    images = _images(4, seed=33)
    accepted = [server.submit(im) for im in images[:2]]
    with pytest.raises(QueueFull, match="max_pending"):
        server.submit(images[2])
    server.flush()            # draining frees capacity again
    accepted.append(server.submit(images[3]))
    server.flush()
    assert all(server.result(rid) is not None for rid in accepted)
    metrics = server.metrics()
    assert metrics.rejected == 1 and metrics.completed == 3
    with pytest.raises(ValueError, match="max_pending"):
        ServerConfig(max_pending=0)


# ---------------------------------------------------------------------------
# Request lifecycle: status(), deadlines, queue-wait split, adaptive buckets
# ---------------------------------------------------------------------------

def test_status_disambiguates_result_none():
    # result() is None both for still-pending and for evicted-unread
    # requests; status() tells them apart (plus DONE and SHED).
    from repro.serve import RequestStatus

    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(2,), max_latency=5.0,
                                        result_capacity=4))
    # Each full pair flushes inline: 8 complete, the 9th stays queued, and
    # result_capacity=4 evicts the 4 oldest unread results.
    ids = [server.submit(im) for im in _images(9, seed=40)]
    assert server.result(ids[0]) is None
    assert server.status(ids[0]) == RequestStatus.EVICTED
    assert server.status(ids[-2]) == RequestStatus.DONE
    assert server.status(ids[-1]) == RequestStatus.PENDING  # odd one still queued
    server.stop(drain=False)
    assert server.status(ids[-1]) == RequestStatus.SHED
    with pytest.raises(KeyError, match="never issued"):
        server.status(10_000)


def test_deadline_shed_raises_deadline_exceeded():
    # Under shed_policy="deadline", a queued request whose absolute deadline
    # passes is dropped at the next poll — viable queue-mates survive — and
    # its waiter gets DeadlineExceeded (a RequestShed subclass).
    from repro.serve import DeadlineExceeded, RequestShed, RequestStatus

    clock = [0.0]
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(4,), max_latency=10.0,
                                        shed_policy="deadline"),
                    clock=lambda: clock[0])
    images = _images(2, seed=41)
    blown = server.submit(images[0], deadline=1.0)
    viable = server.submit(images[1], deadline=100.0)
    clock[0] = 2.0
    assert server.poll() == 0          # nothing due yet; the blown one shed
    assert server.was_shed(blown)
    assert server.status(blown) == RequestStatus.SHED
    with pytest.raises(DeadlineExceeded, match="deadline"):
        server.wait_result(blown, timeout=0.1)
    assert isinstance(DeadlineExceeded("x"), RequestShed)
    clock[0] = 12.0                    # viable request flushes on max_latency
    assert server.poll() == 1
    result = server.result(viable)
    assert result is not None
    metrics = server.metrics()
    assert metrics.shed_deadline == 1
    assert metrics.completed == 1
    # The survivor completed within its budget: no deadline miss.
    assert metrics.deadline_misses == 0 and metrics.deadline_miss_rate == 0.0


def test_completion_exactly_at_deadline_is_not_a_miss():
    # The SLO boundary is inclusive: done == deadline meets it.  A miss
    # requires strictly-later completion.
    clock = [0.0]
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(1, 2), max_latency=10.0),
                    clock=lambda: clock[0])
    rid = server.submit(_images(1, seed=42)[0], deadline=0.0)
    server.flush()                     # executes at t=0.0: done == deadline
    assert server.result(rid) is not None
    metrics = server.metrics()
    assert metrics.deadline_misses == 0 and metrics.deadline_miss_rate == 0.0

    late = server.submit(_images(1, seed=43)[0], deadline=1.0)
    clock[0] = 5.0
    server.flush()
    assert server.result(late) is not None    # no shed policy: still executed
    metrics = server.metrics()
    assert metrics.deadline_misses == 1 and metrics.deadline_miss_rate == 0.5


def test_shed_then_wait_result_race():
    # wait_result() registered *after* the shed must still raise, not block
    # to timeout: shed bookkeeping outlives the queue entry.
    from repro.serve import DeadlineExceeded

    clock = [0.0]
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(4,), max_latency=10.0,
                                        shed_policy="deadline"),
                    clock=lambda: clock[0])
    rid = server.submit(_images(1, seed=44)[0], deadline=0.5)
    clock[0] = 1.0
    server.poll()                      # sheds before any waiter exists
    with pytest.raises(DeadlineExceeded):
        server.wait_result(rid, timeout=0.1)


def test_metrics_split_queue_wait_vs_exec():
    # latency = queue_wait (submit -> batch start, on the injected clock)
    # + execution; with a virtual clock the wait component is exact.
    clock = [0.0]
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(2,), max_latency=1.0),
                    clock=lambda: clock[0])
    rid = server.submit(_images(1, seed=45)[0])
    clock[0] = 2.0
    server.poll()
    result = server.result(rid)
    assert result.queue_wait == pytest.approx(2.0)
    assert result.latency >= result.queue_wait
    metrics = server.metrics()
    assert metrics.queue_wait_mean == pytest.approx(2.0)
    assert metrics.queue_wait_p95 == pytest.approx(2.0)
    assert metrics.exec_mean >= 0.0
    assert metrics.bucket_target == 2  # fixed mode reports the max bucket


def test_adaptive_server_shrinks_bucket_under_light_load():
    # adaptive_buckets=True: sparse arrivals target the smallest bucket, so
    # a lone request flushes as soon as one batch-mate window passes — and
    # outputs stay bitwise-equal to the fixed-bucket server (same
    # bucket_for padding at execution).
    clock = [0.0]
    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(1, 4), max_latency=1.0,
                                        adaptive_buckets=True),
                    clock=lambda: clock[0])
    images = _images(3, seed=46)
    # Sparse arrivals: EWMA gap 5s >> max_latency -> target bucket 1, so
    # every submit triggers an immediate inline flush.
    outs = []
    for im in images:
        rid = server.submit(im)
        outs.append(server.result(rid))
        clock[0] += 5.0
    assert all(r is not None for r in outs)
    assert server.metrics().bucket_target == 1
    assert all(r.bucket_size == 1 for r in outs)

    fixed = Server(_model(), input_shapes=[INPUT],
                   config=ServerConfig(bucket_sizes=(1, 4), max_latency=1.0))
    for im, adaptive_result in zip(images, outs):
        rid = fixed.submit(im)
        fixed.flush()
        np.testing.assert_array_equal(fixed.result(rid).output,
                                      adaptive_result.output)


def test_server_config_rejects_unknown_shed_policy():
    with pytest.raises(ValueError, match="shed_policy"):
        ServerConfig(shed_policy="oldest")


# ---------------------------------------------------------------------------
# Threaded mode: concurrent clients on the single-flight cache
# ---------------------------------------------------------------------------

def test_threaded_server_serves_concurrent_clients():
    from repro.backend import plan_cache_stats

    model = _model()
    server = Server(model, input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(1, 2, 4), max_latency=0.02))
    base = plan_cache_stats()
    server.start()
    try:
        outputs = {}
        lock = threading.Lock()

        def client(seed):
            for i, im in enumerate(_images(5, seed=seed)):
                rid = server.submit(im)
                result = server.wait_result(rid, timeout=30.0)
                with lock:
                    outputs[(seed, i)] = result
        clients = [threading.Thread(target=client, args=(s,)) for s in range(3)]
        for t in clients:
            t.start()
        for t in clients:
            t.join()
    finally:
        server.stop()

    assert len(outputs) == 15
    assert all(r.output.shape == (10,) for r in outputs.values())
    # Warm plans + single-flight: the serving window built nothing.
    after = plan_cache_stats()
    assert after["builds"] == base["builds"]
    assert after["misses"] == base["misses"]
    assert server.metrics().completed == 15
