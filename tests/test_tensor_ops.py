"""Unit tests: elementwise / reduction / movement ops and their VJPs."""
import numpy as np
import pytest

from repro.tensor import Tensor, tensor, zeros, ones, randn
from repro.tensor.tensor import cat
from repro.utils import seed_all

from tests.helpers import assert_grad_close, numerical_grad


@pytest.fixture(autouse=True)
def _seed():
    seed_all(123)


def _check_unary(op, np_op, shape=(3, 4), positive=False):
    x_data = np.random.default_rng(0).standard_normal(shape).astype(np.float32)
    if positive:
        x_data = np.abs(x_data) + 0.5
    x = Tensor(x_data.copy(), requires_grad=True)
    out = op(x)
    np.testing.assert_allclose(out.data, np_op(x_data), rtol=1e-5)
    out.sum().backward()

    x64 = x_data.astype(np.float64)
    num = numerical_grad(lambda: float(np_op(x64).sum()), x64)
    assert_grad_close(x.grad, num, name=np_op.__name__)


def test_exp():
    _check_unary(lambda t: t.exp(), np.exp)


def test_log():
    _check_unary(lambda t: t.log(), np.log, positive=True)


def test_relu():
    _check_unary(lambda t: t.relu(), lambda a: np.maximum(a, 0.0))


def test_sqrt():
    _check_unary(lambda t: t.sqrt(), np.sqrt, positive=True)


def test_neg():
    _check_unary(lambda t: -t, lambda a: -a)


def test_pow():
    _check_unary(lambda t: t**3.0, lambda a: a**3.0)


@pytest.mark.parametrize(
    "shape_a,shape_b",
    [((3, 4), (3, 4)), ((3, 4), (4,)), ((3, 1), (1, 4)), ((2, 3, 4), (4,)), ((5,), ())],
)
def test_binary_broadcast_grads(shape_a, shape_b):
    rng = np.random.default_rng(1)
    a_data = np.asarray(rng.standard_normal(shape_a), dtype=np.float64)
    b_data = np.asarray(rng.standard_normal(shape_b) + 2.0, dtype=np.float64)

    for op, np_op in [
        (lambda x, y: x + y, np.add),
        (lambda x, y: x - y, np.subtract),
        (lambda x, y: x * y, np.multiply),
        (lambda x, y: x / y, np.divide),
    ]:
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        out = op(a, b)
        np.testing.assert_allclose(out.data, np_op(a_data, b_data).astype(np.float32), rtol=1e-5)
        out.sum().backward()
        na = numerical_grad(lambda: float(np_op(a_data, b_data).sum()), a_data)
        nb = numerical_grad(lambda: float(np_op(a_data, b_data).sum()), b_data)
        assert a.grad.shape == a_data.shape
        assert b.grad.shape == b_data.shape
        assert_grad_close(a.grad, na, name=f"{np_op.__name__}/a")
        assert_grad_close(b.grad, nb, name=f"{np_op.__name__}/b")


def test_scalar_operand_wrapping():
    x = Tensor([1.0, 2.0], requires_grad=True)
    out = (2.0 * x + 1.0) / 2.0 - 0.5
    np.testing.assert_allclose(out.data, [1.0, 2.0])
    out.sum().backward()
    np.testing.assert_allclose(x.grad, [1.0, 1.0])


def test_rsub_rdiv():
    x = Tensor([2.0, 4.0], requires_grad=True)
    np.testing.assert_allclose((1.0 - x).data, [-1.0, -3.0])
    np.testing.assert_allclose((8.0 / x).data, [4.0, 2.0])


def test_matmul_2d():
    rng = np.random.default_rng(2)
    a_data = rng.standard_normal((3, 5)).astype(np.float64)
    b_data = rng.standard_normal((5, 2)).astype(np.float64)
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    out = a @ b
    np.testing.assert_allclose(out.data, (a_data @ b_data).astype(np.float32), rtol=1e-5)
    (out * out).sum().backward()
    na = numerical_grad(lambda: float(((a_data @ b_data) ** 2).sum()), a_data)
    nb = numerical_grad(lambda: float(((a_data @ b_data) ** 2).sum()), b_data)
    assert_grad_close(a.grad, na, name="matmul/a")
    assert_grad_close(b.grad, nb, name="matmul/b")


def test_matmul_batched():
    rng = np.random.default_rng(3)
    a_data = rng.standard_normal((4, 3, 5)).astype(np.float64)
    b_data = rng.standard_normal((5, 2)).astype(np.float64)
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    out = a @ b
    assert out.shape == (4, 3, 2)
    out.sum().backward()
    nb = numerical_grad(lambda: float((a_data @ b_data).sum()), b_data)
    assert_grad_close(b.grad, nb, name="batched-matmul/b")
    assert a.grad.shape == a_data.shape


@pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 2), False)])
def test_sum_mean(axis, keepdims):
    rng = np.random.default_rng(4)
    x_data = rng.standard_normal((2, 3, 4)).astype(np.float64)
    for tensor_op, np_op in [
        (lambda t: t.sum(axis=axis, keepdims=keepdims), lambda a: a.sum(axis=axis, keepdims=keepdims)),
        (lambda t: t.mean(axis=axis, keepdims=keepdims), lambda a: a.mean(axis=axis, keepdims=keepdims)),
    ]:
        x = Tensor(x_data, requires_grad=True)
        out = tensor_op(x)
        np.testing.assert_allclose(out.data, np_op(x_data).astype(np.float32), rtol=1e-5)
        (out * out).sum().backward()
        num = numerical_grad(lambda: float((np_op(x_data) ** 2).sum()), x_data)
        assert_grad_close(x.grad, num, name="sum/mean")


@pytest.mark.parametrize("axis,keepdims", [(None, False), (1, False), (2, True)])
def test_max(axis, keepdims):
    rng = np.random.default_rng(5)
    x_data = rng.standard_normal((3, 4, 5)).astype(np.float64)
    x = Tensor(x_data, requires_grad=True)
    out = x.max(axis=axis, keepdims=keepdims)
    np.testing.assert_allclose(out.data, x_data.max(axis=axis, keepdims=keepdims).astype(np.float32))
    out.sum().backward()
    num = numerical_grad(lambda: float(x_data.max(axis=axis, keepdims=keepdims).sum()), x_data, eps=1e-6)
    assert_grad_close(x.grad, num, name="max")


def test_max_tie_splits_gradient():
    x = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
    x.max().backward()
    np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])


def test_reshape_transpose_roundtrip():
    rng = np.random.default_rng(6)
    x_data = rng.standard_normal((2, 3, 4)).astype(np.float32)
    x = Tensor(x_data, requires_grad=True)
    out = x.reshape(6, 4).transpose(1, 0).reshape(-1)
    assert out.shape == (24,)
    (out * out).sum().backward()
    np.testing.assert_allclose(x.grad, 2 * x_data, rtol=1e-5)


def test_transpose_default_reverses():
    x = Tensor(np.zeros((2, 3, 4)))
    assert x.transpose().shape == (4, 3, 2)


def test_getitem_grad_scatter():
    x = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
    out = x[1]
    out.sum().backward()
    expected = np.zeros((3, 4), dtype=np.float32)
    expected[1] = 1.0
    np.testing.assert_allclose(x.grad, expected)


def test_getitem_repeated_index_accumulates():
    x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    idx = np.array([0, 0, 2])
    out = x[idx]
    out.sum().backward()
    np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])


def test_concat_forward_backward():
    a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
    b = Tensor(2 * np.ones((2, 3), dtype=np.float32), requires_grad=True)
    out = cat([a, b], axis=1)
    assert out.shape == (2, 5)
    (out * Tensor(np.arange(10, dtype=np.float32).reshape(2, 5))).sum().backward()
    np.testing.assert_allclose(a.grad, [[0, 1], [5, 6]])
    np.testing.assert_allclose(b.grad, [[2, 3, 4], [7, 8, 9]])


def test_pad2d():
    x = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32), requires_grad=True)
    out = x.pad2d(1)
    assert out.shape == (1, 1, 4, 4)
    assert float(out.data.sum()) == 4.0
    out.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))


def test_pad2d_zero_is_identity():
    x = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32), requires_grad=True)
    out = x.pad2d(0)
    assert out.shape == x.shape
    out.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(x.data))


def test_constructors():
    assert zeros(2, 3).shape == (2, 3)
    assert float(ones(4).data.sum()) == 4.0
    assert randn(2, 2).shape == (2, 2)
    assert tensor([1, 2]).dtype == np.float32
