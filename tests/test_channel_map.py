"""Algorithm 1 / channel-window algebra: paper examples + invariants.

Property-based tests (hypothesis) cover the full (Cin, cg, co, Cout) space;
the worked examples of paper Figures 2 and 5 are pinned exactly.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channel_map import (
    SCCConfig,
    channel_windows,
    compute_channel_cycle,
    cyclic_distance,
    reverse_window_map,
    window_segments,
)


# -- paper worked examples --------------------------------------------------

def test_fig5a_cycle():
    # Cin=4, cg=2, co=50%: windows slide by 1, cyclic_dist = 4.
    cycle = compute_channel_cycle(4, 2, 0.5, 100)
    assert cycle == [(0, 2), (1, 3), (2, 0), (3, 1)]
    assert cyclic_distance(4, 2, 0.5, 100) == 4


def test_fig5b_cycle():
    # Cin=6, cg=2, co=33%: cyclic_dist = 3 (paper Fig. 5b).
    assert cyclic_distance(6, 2, 1 / 3, 100) == 3
    cycle = compute_channel_cycle(6, 2, 1 / 3, 100)
    assert len(cycle) == 3
    assert cycle[0] == (0, 3)


def test_fig2c_windows():
    # SCC-cg2-co50% with 4 in / 4 out: filter windows from paper Fig. 2c:
    # f0:{0,1} f1:{1,2} f2:{2,3} f3:{3,0} (channel circulation).
    wins = channel_windows(4, 4, 2, 0.5)
    np.testing.assert_array_equal(wins, [[0, 1], [1, 2], [2, 3], [3, 0]])


def test_pw_corner_full_window():
    # cg=1: every filter sees all channels (PW corner of Table I).
    wins = channel_windows(8, 5, 1, 0.0)
    assert wins.shape == (5, 8)
    for row in wins:
        assert sorted(row) == list(range(8))
    assert cyclic_distance(8, 1, 0.0, 5) == 1


def test_gpw_corner_no_overlap():
    # co=0: disjoint group windows, exactly the GPW mapping (paper Fig. 2b).
    wins = channel_windows(8, 8, 2, 0.0)
    np.testing.assert_array_equal(wins[0], [0, 1, 2, 3])
    np.testing.assert_array_equal(wins[1], [4, 5, 6, 7])
    np.testing.assert_array_equal(wins[2], [0, 1, 2, 3])
    assert cyclic_distance(8, 2, 0.0, 8) == 2


# -- config validation --------------------------------------------------------

def test_config_rejects_bad_cg():
    with pytest.raises(ValueError, match="divide"):
        SCCConfig(10, 4, 3, 0.5)
    with pytest.raises(ValueError, match="cg"):
        SCCConfig(8, 4, 0, 0.5)


def test_config_rejects_bad_co():
    with pytest.raises(ValueError, match="co"):
        SCCConfig(8, 4, 2, 1.0)
    with pytest.raises(ValueError, match="co"):
        SCCConfig(8, 4, 2, -0.1)


def test_config_rejects_nonpositive_channels():
    with pytest.raises(ValueError, match="positive"):
        SCCConfig(0, 4, 1, 0.0)


def test_config_properties():
    cfg = SCCConfig(64, 128, 4, 0.5)
    assert cfg.group_width == 16
    assert cfg.overlap_channels == 8
    assert cfg.slide_stride == 8
    assert cfg.label() == "SCC-cg4-co50%"


def test_window_segments_contiguous():
    segs = window_segments(2, 3, 8)
    assert segs == [(slice(2, 5), slice(0, 3))]


def test_window_segments_wrapped():
    segs = window_segments(6, 4, 8)
    assert segs == [(slice(6, 8), slice(0, 2)), (slice(0, 2), slice(2, 4))]


def test_window_segments_reject_oversized():
    with pytest.raises(ValueError, match="exceeds"):
        window_segments(0, 9, 8)


# -- property-based invariants -----------------------------------------------

valid_configs = st.tuples(
    st.sampled_from([4, 6, 8, 12, 16, 24, 32, 48, 64]),   # cin
    st.integers(1, 64),                                    # cout
    st.sampled_from([1, 2, 3, 4, 8]),                      # cg
    st.sampled_from([0.0, 0.25, 1 / 3, 0.5, 0.66, 0.75]),  # co
).filter(lambda t: t[0] % t[2] == 0)


@settings(max_examples=60, deadline=None)
@given(valid_configs)
def test_windows_have_group_width(params):
    cin, cout, cg, co = params
    wins = channel_windows(cin, cout, cg, co)
    assert wins.shape == (cout, cin // cg)
    assert wins.min() >= 0 and wins.max() < cin
    # Channels within one window are distinct.
    for row in wins:
        assert len(set(row.tolist())) == cin // cg


@settings(max_examples=60, deadline=None)
@given(valid_configs)
def test_cycle_matches_closed_form(params):
    cin, cout, cg, co = params
    cycle = compute_channel_cycle(cin, cg, co, cout)
    assert len(cycle) == cyclic_distance(cin, cg, co, cout)


@settings(max_examples=60, deadline=None)
@given(valid_configs)
def test_windows_are_periodic_with_cyclic_dist(params):
    cin, cout, cg, co = params
    wins = channel_windows(cin, cout, cg, co)
    cd = cyclic_distance(cin, cg, co, cout)
    for oid in range(cout):
        np.testing.assert_array_equal(wins[oid], wins[oid % cd])


@settings(max_examples=60, deadline=None)
@given(valid_configs)
def test_windows_are_cyclic_ranges(params):
    # Every window must be a contiguous arc on the channel circle.
    cin, cout, cg, co = params
    wins = channel_windows(cin, cout, cg, co)
    gw = cin // cg
    for row in wins:
        start = row[0]
        np.testing.assert_array_equal(row, (start + np.arange(gw)) % cin)


@settings(max_examples=60, deadline=None)
@given(valid_configs)
def test_adjacent_window_overlap_matches_co(params):
    cin, cout, cg, co = params
    cfg = SCCConfig(cin, cout, cg, co)
    wins = channel_windows(cin, cout, cg, co)
    if cout < 2:
        return
    # Two arcs of length gw offset by d on the channel circle intersect on
    # max(0, gw-d) channels ahead plus max(0, gw-(cin-d)) behind (wraparound).
    gw = cfg.group_width
    d = cfg.slide_stride % cin
    expected_overlap = min(gw, max(0, gw - d) + max(0, gw - (cin - d)))
    shared = len(set(wins[0].tolist()) & set(wins[1].tolist()))
    assert shared == expected_overlap


@settings(max_examples=60, deadline=None)
@given(valid_configs)
def test_full_coverage_when_enough_filters(params):
    # Once Cout >= cyclic_dist * 1 and stride > 0, the sliding windows cover
    # every input channel (channel circulation guarantees wraparound).
    cin, cout, cg, co = params
    cfg = SCCConfig(cin, cout, cg, co)
    wins = channel_windows(cin, cout, cg, co)
    if cfg.slide_stride == 0:
        return
    # Coverage needs the whole (uncapped) window period to fit into Cout,
    # and stride small enough that consecutive windows leave no gap.
    period = cin // np.gcd(cfg.slide_stride, cin)
    if cout >= period and np.gcd(cfg.slide_stride, cin) <= cfg.group_width:
        assert set(wins[:period].reshape(-1).tolist()) == set(range(cin))


@settings(max_examples=40, deadline=None)
@given(valid_configs)
def test_reverse_map_is_exact_inverse(params):
    cin, cout, cg, co = params
    wins = channel_windows(cin, cout, cg, co)
    rev = reverse_window_map(wins, cin)
    total = sum(len(r) for r in rev)
    assert total == wins.size
    for c, readers in enumerate(rev):
        for oid, col in readers:
            assert wins[oid, col] == c


def test_reverse_map_balanced_when_divisible():
    wins = channel_windows(8, 16, 2, 0.5)
    rev = reverse_window_map(wins, 8)
    counts = {len(r) for r in rev}
    assert counts == {16 * 4 // 8}
