"""Depth-truncation options (num_blocks / stage_blocks) for reduced models."""
import numpy as np
import pytest

from repro.models import build_mobilenet, build_resnet
from repro.models.mobilenet import MOBILENET_PLAN
from repro.tensor import Tensor, no_grad
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(131)


def test_mobilenet_num_blocks_truncates():
    full = build_mobilenet(width_mult=0.25)
    mini = build_mobilenet(width_mult=0.25, num_blocks=4)
    assert len(mini.blocks) == 4
    assert len(full.blocks) == len(MOBILENET_PLAN)
    assert mini.num_parameters() < full.num_parameters()


def test_mobilenet_mini_forward_shape():
    mini = build_mobilenet(width_mult=0.5, num_blocks=4, num_classes=7, in_channels=8)
    with no_grad():
        out = mini.eval()(Tensor(np.zeros((2, 8, 12, 12), dtype=np.float32)))
    assert out.shape == (2, 7)


def test_resnet_stage_blocks_truncates():
    full = build_resnet("resnet18", width_mult=0.25)
    mini = build_resnet("resnet18", width_mult=0.25, stage_blocks=[1, 1])
    assert len(mini.stages) == 2
    assert mini.num_parameters() < full.num_parameters()


def test_resnet_mini_forward_and_gradients():
    mini = build_resnet("resnet50", scheme="scc", cg=2, co=0.5, width_mult=0.25,
                        stage_blocks=[1, 1], num_classes=5, in_channels=8)
    x = Tensor(np.random.default_rng(0).standard_normal((2, 8, 12, 12)).astype(np.float32))
    out = mini(x)
    assert out.shape == (2, 5)
    (out * out).sum().backward()
    assert all(p.grad is not None for p in mini.parameters())


def test_resnet_stage_blocks_validation():
    with pytest.raises(ValueError, match="stage_blocks"):
        build_resnet("resnet18", stage_blocks=[1, 1, 1, 1, 1])
    with pytest.raises(ValueError, match="stage_blocks"):
        build_resnet("resnet18", stage_blocks=[0, 1])


def test_truncated_models_keep_scheme():
    from repro.core.scc import SlidingChannelConv2d

    mini = build_mobilenet(scheme="scc", cg=2, co=0.5, width_mult=0.5, num_blocks=3)
    n_scc = sum(isinstance(m, SlidingChannelConv2d) for _, m in mini.named_modules())
    assert n_scc == 3
