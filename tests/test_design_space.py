"""Design-space enumeration and Pareto extraction."""
import pytest

from repro.core.design_space import DesignPoint, enumerate_configs, layer_costs, pareto_front


def test_layer_costs_scale_with_cg():
    f1, p1 = layer_costs(64, 128, 1)
    f2, p2 = layer_costs(64, 128, 2)
    f4, p4 = layer_costs(64, 128, 4)
    assert f1 == 2 * f2 == 4 * f4
    assert p1 == 2 * p2 == 4 * p4


def test_layer_costs_independent_of_spatial_params():
    _, p1 = layer_costs(64, 128, 2, spatial=1)
    _, p2 = layer_costs(64, 128, 2, spatial=56)
    assert p1 == p2


def test_enumerate_skips_invalid():
    points = enumerate_configs(12, 24, cgs=(1, 2, 3, 8), cos=(0.0, 0.5))
    cgs = {p.cg for p in points}
    assert 8 not in cgs      # 12 % 8 != 0
    assert {1, 2, 3} <= cgs


def test_enumerate_attaches_cyclic_dist():
    points = enumerate_configs(8, 16, cgs=(2,), cos=(0.5,))
    assert len(points) == 1
    assert points[0].cyclic_dist == 4  # stride 2 on 8 channels


def test_pareto_front_on_cost_only():
    pts = enumerate_configs(64, 64, cgs=(1, 2, 4), cos=(0.0,))
    front = pareto_front(pts)
    # cheapest config dominates on both axes: only cg=4 survives
    assert len(front) == 1 and front[0].cg == 4


def test_pareto_front_with_accuracy_tradeoff():
    a = DesignPoint(cg=1, co=0.0, flops=100, params=100, cyclic_dist=1, accuracy=0.95)
    b = DesignPoint(cg=2, co=0.5, flops=50, params=50, cyclic_dist=4, accuracy=0.93)
    c = DesignPoint(cg=2, co=0.0, flops=50, params=50, cyclic_dist=2, accuracy=0.90)
    front = pareto_front([a, b, c])
    assert a in front and b in front and c not in front


def test_with_accuracy_returns_new_point():
    p = DesignPoint(cg=2, co=0.5, flops=1, params=1, cyclic_dist=2)
    q = p.with_accuracy(0.9)
    assert q.accuracy == 0.9 and p.accuracy is None
    assert q.label() == "SCC-cg2-co50%"
