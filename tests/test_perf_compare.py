"""The perf-trajectory comparator that gates CI on benchmark regressions."""
import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from perf_compare import (
    collect_metrics,
    compare,
    env_mismatch,
    main,
    metric_direction,
)


def test_metric_direction_classification():
    assert metric_direction("speedup") == +1
    assert metric_direction("throughput_ratio") == +1
    assert metric_direction("hit_rate") == +1
    assert metric_direction("cold_ms") == -1
    assert metric_direction("latency_p95") == -1
    assert metric_direction("num_layers") == 0
    assert metric_direction("seed") == 0


def test_collect_metrics_flattens_and_keys_rows_by_identity():
    data = {
        "rows": [
            {"workload": "scc 32->64", "cold_ms": 1.4, "speedup": 1.8, "seed": 3},
            {"workload": "conv 8->16", "cold_ms": 0.8, "speedup": 1.5},
        ],
        "naive_rps": 24.0,
    }
    metrics = collect_metrics(data)
    assert metrics["rows[scc 32->64].speedup"] == 1.8
    assert metrics["rows[conv 8->16].cold_ms"] == 0.8
    assert metrics["naive_rps"] == 24.0
    assert not any("seed" in k for k in metrics)  # untracked keys dropped


def test_collect_metrics_ratios_only_drops_wallclock():
    data = {"rows": [{"workload": "w", "cold_ms": 1.0, "speedup": 2.0,
                      "throughput_rps": 50.0}]}
    metrics = collect_metrics(data, ratios_only=True)
    assert list(metrics) == ["rows[w].speedup"]


def test_compare_flags_only_true_regressions():
    baseline = {"rows[w].speedup": 2.0, "rows[w].cold_ms": 1.0}
    # Speedup dropped 40% -> regression; cold_ms improved -> fine.
    current = {"rows[w].speedup": 1.2, "rows[w].cold_ms": 0.5}
    regressions = compare(current, baseline, threshold=0.20)
    assert len(regressions) == 1
    assert regressions[0]["metric"] == "rows[w].speedup"
    assert regressions[0]["change"] == pytest.approx(-0.4)

    # Within threshold: no regression.
    assert compare({"rows[w].speedup": 1.7, "rows[w].cold_ms": 1.1},
                   baseline, threshold=0.20) == []
    # Latency regression is caught in the bad direction.
    worse = compare({"rows[w].speedup": 2.0, "rows[w].cold_ms": 1.5},
                    baseline, threshold=0.20)
    assert [r["metric"] for r in worse] == ["rows[w].cold_ms"]


def test_compare_noise_floor_exempts_near_unity_ratios_only():
    baseline = {"rows[w].speedup": 1.1, "rows[x].throughput_ratio": 7.0,
                "rows[w].hit_rate": 1.0}
    current = {"rows[w].speedup": 0.8,           # -27%, but noise-bound
               "rows[x].throughput_ratio": 4.0,  # -43%, real regression
               "rows[w].hit_rate": 0.7}          # bounded metric: always gated
    regressions = compare(current, baseline, threshold=0.20, noise_floor=1.6)
    assert sorted(r["metric"] for r in regressions) == \
           ["rows[w].hit_rate", "rows[x].throughput_ratio"]
    # Floor off: the noisy speedup is gated again.
    assert len(compare(current, baseline, threshold=0.20)) == 3


def test_compare_ignores_missing_and_new_metrics():
    baseline = {"a.speedup": 2.0, "gone.speedup": 3.0}
    current = {"a.speedup": 2.0, "new.speedup": 1.0}
    assert compare(current, baseline, threshold=0.20) == []


def test_env_mismatch_refuses_cross_backend_diffs():
    numpy_env = {"env": {"backend": "numpy", "num_workers": 1, "host_cpus": 4}}
    threaded_env = {"env": {"backend": "threaded", "num_workers": 4}}
    assert env_mismatch(numpy_env, dict(numpy_env)) is None
    assert "backend" in env_mismatch(threaded_env, numpy_env)
    assert "num_workers" in env_mismatch(
        {"env": {"backend": "numpy", "num_workers": 2}}, numpy_env)
    # host_cpus is a machine property, not a configuration: ignored.
    other_host = {"env": {"backend": "numpy", "num_workers": 1, "host_cpus": 96}}
    assert env_mismatch(other_host, numpy_env) is None
    # Legacy reports without an env block are grandfathered on either side.
    assert env_mismatch({}, numpy_env) is None
    assert env_mismatch(threaded_env, {}) is None


def _write_report(directory: Path, name: str, rows, env=None):
    directory.mkdir(parents=True, exist_ok=True)
    payload = {"name": name, "data": {"rows": rows}, "text": ""}
    if env is not None:
        payload["env"] = env
    (directory / f"{name}.json").write_text(json.dumps(payload))


def test_main_directory_mode_pass_and_fail(tmp_path, capsys):
    current_dir = tmp_path / "current"
    baseline_dir = tmp_path / "baseline"
    _write_report(baseline_dir, "bench", [{"workload": "w", "speedup": 2.0}])

    _write_report(current_dir, "bench", [{"workload": "w", "speedup": 1.9}])
    assert main(["--baseline-dir", str(baseline_dir),
                 "--results-dir", str(current_dir)]) == 0

    _write_report(current_dir, "bench", [{"workload": "w", "speedup": 1.0}])
    assert main(["--baseline-dir", str(baseline_dir),
                 "--results-dir", str(current_dir)]) == 1
    out = capsys.readouterr().out
    assert "PERF REGRESSIONS" in out and "speedup" in out


def test_main_skips_incomparable_environments(tmp_path, capsys):
    current_dir = tmp_path / "current"
    baseline_dir = tmp_path / "baseline"
    _write_report(baseline_dir, "bench", [{"workload": "w", "speedup": 2.0}],
                  env={"backend": "numpy", "num_workers": 1})
    # A huge "regression" measured under a different backend is a config
    # change, not a perf signal: the pair must be skipped, not failed.
    _write_report(current_dir, "bench", [{"workload": "w", "speedup": 0.5}],
                  env={"backend": "threaded", "num_workers": 4})
    assert main(["--baseline-dir", str(baseline_dir),
                 "--results-dir", str(current_dir)]) == 0
    assert "incomparable environments" in capsys.readouterr().out


def test_main_skips_reports_without_baseline(tmp_path):
    current_dir = tmp_path / "current"
    _write_report(current_dir, "brand_new", [{"workload": "w", "speedup": 1.0}])
    assert main(["--baseline-dir", str(tmp_path / "missing"),
                 "--results-dir", str(current_dir)]) == 0


def test_main_against_git_previous_commit_runs():
    # Smoke the git-ref path against the real repo: the committed baselines
    # at HEAD must not be regressed by the current working tree's results
    # (ratios only, so the check is machine-independent).
    assert main(["--baseline-ref", "HEAD", "--ratios-only"]) == 0
