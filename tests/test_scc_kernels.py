"""The three SCC execution strategies must be numerically interchangeable.

This is the reproduction's core correctness claim: Pytorch-Base
(channel-stack), Pytorch-Opt (conv-stack + CC) and the fused DSXplore kernel
— with either backward design — compute the same function and the same
gradients (paper Section IV).
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channel_map import SCCConfig, channel_windows
from repro.core.scc_kernels import (
    ChannelStack,
    ConvStackCC,
    Dsxplore,
    make_strategy,
    scc_forward_reference,
)

STRATEGY_NAMES = ("channel_stack", "conv_stack", "dsxplore")


def _rand(cfg: SCCConfig, n=2, h=4, w=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, cfg.in_channels, h, w)).astype(np.float32)
    wgt = rng.standard_normal((cfg.out_channels, cfg.group_width)).astype(np.float32)
    return x, wgt


CONFIGS = [
    SCCConfig(4, 8, 2, 0.5),
    SCCConfig(6, 12, 2, 1 / 3),
    SCCConfig(8, 16, 4, 0.5),
    SCCConfig(16, 16, 1, 0.0),    # PW corner
    SCCConfig(8, 8, 2, 0.0),      # GPW corner
    SCCConfig(12, 10, 3, 0.25),   # Cout not multiple of cd
    SCCConfig(8, 8, 8, 0.0),      # DW-width windows
    SCCConfig(16, 5, 4, 0.75),    # fewer filters than one cycle
]


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.label() + f"-{c.in_channels}x{c.out_channels}")
@pytest.mark.parametrize("name", STRATEGY_NAMES)
def test_forward_matches_reference(cfg, name):
    x, w = _rand(cfg)
    wins = channel_windows(cfg.in_channels, cfg.out_channels, cfg.cg, cfg.co)
    ref = scc_forward_reference(x, w, wins)
    out = make_strategy(name, cfg).forward(x, w)
    np.testing.assert_allclose(out, ref, atol=1e-5)


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.label() + f"-{c.in_channels}x{c.out_channels}")
@pytest.mark.parametrize(
    "name,kwargs",
    [
        ("channel_stack", {}),
        ("conv_stack", {}),
        ("dsxplore", {"backward_design": "input_centric"}),
        ("dsxplore", {"backward_design": "output_centric"}),
    ],
)
def test_backward_matches_reference(cfg, name, kwargs):
    x, w = _rand(cfg, seed=3)
    wins = channel_windows(cfg.in_channels, cfg.out_channels, cfg.cg, cfg.co)
    strat = make_strategy(name, cfg, **kwargs)
    out = strat.forward(x, w)
    grad = np.random.default_rng(4).standard_normal(out.shape).astype(np.float32)
    gx, gw = strat.backward(grad)

    gw_ref = np.zeros_like(w)
    gx_ref = np.zeros_like(x)
    for o in range(cfg.out_channels):
        for k in range(cfg.group_width):
            gw_ref[o, k] = (grad[:, o] * x[:, wins[o, k]]).sum()
            gx_ref[:, wins[o, k]] += grad[:, o] * w[o, k]
    np.testing.assert_allclose(gw, gw_ref, rtol=2e-3, atol=1e-3)
    np.testing.assert_allclose(gx, gx_ref, rtol=2e-3, atol=1e-3)


def test_backward_partial_grads():
    cfg = SCCConfig(8, 8, 2, 0.5)
    x, w = _rand(cfg)
    strat = Dsxplore(cfg)
    out = strat.forward(x, w)
    grad = np.ones_like(out)
    gx, gw = strat.backward(grad, need_input_grad=False)
    assert gx is None and gw is not None
    gx, gw = strat.backward(grad, need_weight_grad=False)
    assert gx is not None and gw is None


def test_shape_validation():
    cfg = SCCConfig(8, 8, 2, 0.5)
    strat = Dsxplore(cfg)
    with pytest.raises(ValueError, match="expected input"):
        strat.forward(np.zeros((1, 4, 2, 2), dtype=np.float32), np.zeros((8, 4), dtype=np.float32))
    with pytest.raises(ValueError, match="expected weight"):
        strat.forward(np.zeros((1, 8, 2, 2), dtype=np.float32), np.zeros((8, 3), dtype=np.float32))


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="unknown SCC strategy"):
        make_strategy("nope", SCCConfig(4, 4, 2, 0.5))


def test_unknown_backward_design_rejected():
    with pytest.raises(ValueError, match="backward_design"):
        Dsxplore(SCCConfig(4, 4, 2, 0.5), backward_design="sideways")


def test_channel_stack_materialises_duplicated_bytes():
    cfg = SCCConfig(8, 16, 2, 0.5)
    x, w = _rand(cfg)
    strat = ChannelStack(cfg)
    strat.forward(x, w)
    # Stacked tensor: N * Cout * gw * H * W * 4 bytes.
    expected = 2 * 16 * 4 * 4 * 4 * 4
    assert strat.stats.bytes_materialized == expected


def test_conv_stack_materialises_only_one_cycle():
    cfg = SCCConfig(8, 16, 2, 0.5)   # cd = 4
    x, w = _rand(cfg)
    strat = ConvStackCC(cfg)
    strat.forward(x, w)
    window_bytes = 2 * 4 * 4 * 4 * 4
    assert strat.cyclic_dist == 4
    assert strat.stats.bytes_materialized == strat.cyclic_dist * window_bytes
    # CC optimisation: strictly less duplication than channel-stack.
    chs = ChannelStack(cfg)
    chs.forward(x, w)
    assert strat.stats.bytes_materialized < chs.stats.bytes_materialized


def test_dsxplore_forward_materialises_nothing():
    cfg = SCCConfig(8, 16, 2, 0.5)
    x, w = _rand(cfg)
    strat = Dsxplore(cfg)
    strat.forward(x, w)
    assert strat.stats.bytes_materialized == 0


def test_input_centric_backward_has_no_scatter():
    cfg = SCCConfig(8, 16, 2, 0.5)
    x, w = _rand(cfg)
    pull = Dsxplore(cfg, backward_design="input_centric")
    out = pull.forward(x, w)
    pull.backward(np.ones_like(out))
    assert pull.stats.scatter_adds == 0

    push = Dsxplore(cfg, backward_design="output_centric")
    out = push.forward(x, w)
    push.backward(np.ones_like(out))
    assert push.stats.scatter_adds > 0
    assert push.stats.conflicting_scatter_adds > 0


def test_atomic_reduction_exceeds_ninety_percent():
    # Paper Section V-D: input-centric removes >90% of atomic operations.
    cfg = SCCConfig(64, 128, 2, 0.5)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 64, 4, 4)).astype(np.float32)
    w = rng.standard_normal((128, 32)).astype(np.float32)
    push = Dsxplore(cfg, backward_design="output_centric")
    pull = Dsxplore(cfg, backward_design="input_centric")
    g = np.ones((2, 128, 4, 4), dtype=np.float32)
    push.forward(x, w)
    push.backward(g)
    pull.forward(x, w)
    pull.backward(g)
    assert pull.stats.scatter_adds <= 0.1 * push.stats.scatter_adds


def test_gemm_call_counts_follow_cycle_structure():
    cfg = SCCConfig(8, 16, 2, 0.5)   # cd=4, no wraparound splits at gw=4? some wrap
    x, w = _rand(cfg)
    cos = ConvStackCC(cfg)
    cos.forward(x, w)
    assert cos.stats.gemm_calls == cos.cyclic_dist
    chs = ChannelStack(cfg)
    chs.forward(x, w)
    assert chs.stats.gemm_calls == 1


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from([4, 6, 8, 12, 16]),
    st.integers(1, 24),
    st.sampled_from([1, 2, 4]),
    st.sampled_from([0.0, 0.25, 0.5, 0.75]),
    st.integers(0, 10_000),
)
def test_strategies_agree_on_random_configs(cin, cout, cg, co, seed):
    if cin % cg:
        return
    cfg = SCCConfig(cin, cout, cg, co)
    x, w = _rand(cfg, n=1, h=3, w=3, seed=seed)
    outs = [make_strategy(n, cfg).forward(x, w) for n in STRATEGY_NAMES]
    np.testing.assert_allclose(outs[0], outs[1], atol=1e-5)
    np.testing.assert_allclose(outs[0], outs[2], atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_scc_is_linear_in_input(seed):
    # SCC is a linear operator in x for fixed w: f(ax+by) = af(x)+bf(y).
    cfg = SCCConfig(8, 12, 2, 0.5)
    rng = np.random.default_rng(seed)
    x1 = rng.standard_normal((2, 8, 3, 3)).astype(np.float32)
    x2 = rng.standard_normal((2, 8, 3, 3)).astype(np.float32)
    w = rng.standard_normal((12, 4)).astype(np.float32)
    strat = Dsxplore(cfg)
    lhs = strat.forward(2.0 * x1 + 3.0 * x2, w)
    rhs = 2.0 * strat.forward(x1, w) + 3.0 * strat.forward(x2, w)
    np.testing.assert_allclose(lhs, rhs, atol=1e-4)
