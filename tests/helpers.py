"""Shared test utilities: numerical gradient checking + condition waits."""
from __future__ import annotations

import time
from typing import Callable

import numpy as np


def wait_for(
    predicate: Callable[[], bool], timeout: float = 10.0, interval: float = 0.001
) -> None:
    """Poll ``predicate`` until true, failing the test after ``timeout``.

    The standard replacement for fixed-count ``time.sleep`` spin loops when
    a test must wait on another *thread* (never on scheduling policy —
    policy tests inject a virtual clock instead): the deadline scales to
    loaded CI runners while the fast path returns in one poll.
    """
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"condition not met within {timeout}s: {predicate}"
            )
        time.sleep(interval)


def numerical_grad(
    f: Callable[[], float], x: np.ndarray, eps: float = 1e-4
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``x`` (in place)."""
    grad = np.zeros(x.shape, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        f_plus = f()
        x[idx] = old - eps
        f_minus = f()
        x[idx] = old
        grad[idx] = (f_plus - f_minus) / (2 * eps)
    return grad


def assert_grad_close(
    analytic: np.ndarray, numeric: np.ndarray, rtol: float = 1e-3, name: str = ""
) -> None:
    """Relative max-error comparison robust to large-magnitude gradients."""
    denom = max(np.abs(numeric).max(), np.abs(analytic).max(), 1e-8)
    err = np.abs(analytic - numeric).max() / denom
    assert err < rtol, f"{name} gradient mismatch: rel err {err:.2e} >= {rtol:.0e}"
