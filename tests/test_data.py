"""Synthetic data generator, splits and loaders."""
import numpy as np
import pytest

from repro.data import (
    DataLoader,
    SyntheticImageDataset,
    cifar10_like,
    imagenet_like,
    make_dataset,
    train_test_split,
)
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(81)


def test_dataset_shapes_and_dtypes():
    ds = make_dataset(50, num_classes=5, image_size=8, channels=3)
    assert ds.images.shape == (50, 3, 8, 8)
    assert ds.images.dtype == np.float32
    assert ds.labels.dtype == np.int64
    assert ds.labels.min() >= 0 and ds.labels.max() < 5
    assert len(ds) == 50
    assert ds.image_shape == (3, 8, 8)


def test_dataset_deterministic_in_seed():
    a = make_dataset(20, seed=7)
    b = make_dataset(20, seed=7)
    np.testing.assert_array_equal(a.images, b.images)
    np.testing.assert_array_equal(a.labels, b.labels)
    c = make_dataset(20, seed=8)
    assert not np.array_equal(a.images, c.images)


def test_dataset_standardised():
    ds = make_dataset(200, image_size=8)
    assert abs(float(ds.images.mean())) < 1e-3
    assert abs(float(ds.images.std()) - 1.0) < 1e-3


def test_label_signal_is_cross_channel():
    # Per-channel marginal stats should be nearly label-free: the class
    # signal lives in cross-channel correlation (DESIGN.md section 2).
    ds = make_dataset(600, num_classes=2, image_size=8, channels=4, noise=0.1, seed=3)
    means = []
    for k in (0, 1):
        sel = ds.images[ds.labels == k]
        means.append(sel.std(axis=(0, 2, 3)))   # per-channel std by class
    # channel stds differ across classes by < 20% ...
    assert np.abs(means[0] - means[1]).max() / means[0].mean() < 0.2
    # ... but cross-channel correlations differ strongly.
    def corr(sel):
        flat = sel.transpose(1, 0, 2, 3).reshape(4, -1)
        return np.corrcoef(flat)

    c0 = corr(ds.images[ds.labels == 0])
    c1 = corr(ds.images[ds.labels == 1])
    assert np.abs(c0 - c1).max() > 0.2


def test_dataset_validation():
    with pytest.raises(ValueError, match="per class"):
        make_dataset(3, num_classes=10)
    with pytest.raises(ValueError, match="NCHW"):
        SyntheticImageDataset(np.zeros((4, 3, 8)), np.zeros(4, dtype=np.int64), 2)
    with pytest.raises(ValueError, match="labels"):
        SyntheticImageDataset(np.zeros((4, 3, 8, 8)), np.zeros(3, dtype=np.int64), 2)


def test_cifar_and_imagenet_like_presets():
    c = cifar10_like(num_samples=30, image_size=8)
    assert c.num_classes == 10 and c.images.shape == (30, 3, 8, 8)
    i = imagenet_like(num_samples=120, num_classes=20, image_size=8)
    assert i.num_classes == 20


def test_split_disjoint_and_complete():
    ds = make_dataset(100, image_size=4)
    train, test = train_test_split(ds, 0.25, seed=1)
    assert len(train) == 75 and len(test) == 25
    # Determinism
    train2, test2 = train_test_split(ds, 0.25, seed=1)
    np.testing.assert_array_equal(test.images, test2.images)


def test_split_validates_fraction():
    ds = make_dataset(10, image_size=4)
    with pytest.raises(ValueError):
        train_test_split(ds, 0.0)
    with pytest.raises(ValueError):
        train_test_split(ds, 1.0)


def test_loader_batching():
    ds = make_dataset(25, image_size=4)
    loader = DataLoader(ds, batch_size=10, shuffle=False)
    batches = list(loader)
    assert len(loader) == 3
    assert [b[0].shape[0] for b in batches] == [10, 10, 5]
    np.testing.assert_array_equal(batches[0][0], ds.images[:10])


def test_loader_drop_last():
    ds = make_dataset(25, image_size=4)
    loader = DataLoader(ds, batch_size=10, shuffle=False, drop_last=True)
    assert len(loader) == 2
    assert sum(1 for _ in loader) == 2


def test_loader_shuffles_between_epochs():
    ds = make_dataset(64, image_size=4)
    loader = DataLoader(ds, batch_size=64, shuffle=True, seed=3)
    first = next(iter(loader))[1].copy()
    second = next(iter(loader))[1].copy()
    assert not np.array_equal(first, second)
    assert sorted(first.tolist()) == sorted(second.tolist())


def test_loader_covers_all_samples_once_per_epoch():
    ds = make_dataset(40, image_size=4)
    loader = DataLoader(ds, batch_size=7, shuffle=True, seed=2)
    labels = np.concatenate([lbl for _, lbl in loader])
    assert labels.shape[0] == 40
    assert sorted(labels.tolist()) == sorted(ds.labels.tolist())


def test_loader_augment_preserves_shape_and_labels():
    ds = make_dataset(16, image_size=8)
    loader = DataLoader(ds, batch_size=16, shuffle=False, augment=True, seed=4)
    images, labels = next(iter(loader))
    assert images.shape == ds.images.shape
    np.testing.assert_array_equal(labels, ds.labels)
    assert not np.array_equal(images, ds.images)  # something moved


def test_loader_validates_batch_size():
    ds = make_dataset(10, image_size=4)
    with pytest.raises(ValueError):
        DataLoader(ds, batch_size=0)
