"""Sharded multi-process serving: ring determinism, bitwise equality.

The load-bearing guarantee: a model served by a :class:`ShardedRouter`
shard process returns **bitwise-identical** outputs to the same registry
model served by an in-process :class:`Router` — shards rebuild weights
deterministically from ``(registry name, seed)``, so no array ever crosses
the process boundary during registration.
"""
import numpy as np
import pytest

from repro.models import build_serving_model
from repro.serve import HashRing, Router, ServingPolicy, ShardedRouter
from repro.utils import seed_all

INPUT = (3, 16, 16)


@pytest.fixture(autouse=True)
def _seed():
    seed_all(77)


def _images(n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(INPUT).astype(np.float32) for _ in range(n)]


# ---------------------------------------------------------------------------
# HashRing
# ---------------------------------------------------------------------------

def test_ring_deterministic_across_instances():
    a, b = HashRing(4), HashRing(4)
    keys = [f"model-{i}" for i in range(64)]
    assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]


def test_ring_covers_all_shards():
    ring = HashRing(4)
    owners = {ring.owner(f"model-{i}") for i in range(256)}
    assert owners == {0, 1, 2, 3}


def test_ring_growth_remaps_a_minority():
    keys = [f"model-{i}" for i in range(512)]
    before, after = HashRing(4), HashRing(5)
    moved = sum(before.owner(k) != after.owner(k) for k in keys)
    # Consistent hashing: ~1/(N+1) of keys move; allow generous slack but
    # require far less churn than the ~4/5 a modulo assignment would cause.
    assert moved / len(keys) < 0.45


def test_ring_validation():
    with pytest.raises(ValueError, match="shards"):
        HashRing(0)
    with pytest.raises(ValueError, match="replicas"):
        HashRing(2, replicas=0)


# ---------------------------------------------------------------------------
# ShardedRouter
# ---------------------------------------------------------------------------

def test_sharded_outputs_bitwise_equal_in_process_router():
    images = _images(6, seed=5)
    policy = ServingPolicy(bucket_sizes=(1, 2), max_latency=5.0)

    reference = Router(server_config=policy)
    reference.register("narrow", "mobilenet", input_shapes=[INPUT],
                       scheme="scc", width_mult=0.25, seed=11)
    reference.register("wide", "mobilenet", input_shapes=[INPUT],
                       scheme="scc", width_mult=0.5, seed=12)
    expect = {}
    for name in ("narrow", "wide"):
        handles = [reference.submit(name, img) for img in images[:3]]
        reference.flush()
        expect[name] = [reference.result(h).output for h in handles]

    with ShardedRouter(shards=2, server_config=policy) as sharded:
        sharded.register("narrow", "mobilenet", input_shapes=[INPUT],
                         scheme="scc", width_mult=0.25, seed=11)
        sharded.register("wide", "mobilenet", input_shapes=[INPUT],
                         scheme="scc", width_mult=0.5, seed=12)
        for name in ("narrow", "wide"):
            handles = [sharded.submit(name, img) for img in images[:3]]
            sharded.flush()
            for handle, ref in zip(handles, expect[name]):
                got = sharded.result(handle).output
                np.testing.assert_array_equal(ref, got)

        metrics = sharded.metrics()
        assert metrics["shards"] == 2
        assert metrics["completed"] == 6
        assert set(metrics["model_shards"]) == {"narrow", "wide"}
        assert len(metrics["per_shard"]) == 2


def test_sharded_rejects_built_models_and_duplicates():
    with ShardedRouter(shards=1) as sharded:
        model = build_serving_model("mobilenet", scheme="scc",
                                    width_mult=0.25, seed=3)
        with pytest.raises(TypeError, match="registry name"):
            sharded.register("m", model, input_shapes=[INPUT])
        sharded.register("m", "mobilenet", input_shapes=[INPUT],
                         scheme="scc", width_mult=0.25, seed=3)
        with pytest.raises(ValueError, match="already registered"):
            sharded.register("m", "mobilenet", input_shapes=[INPUT],
                             scheme="scc", width_mult=0.25, seed=3)
        with pytest.raises(KeyError, match="no model"):
            sharded.shard_of("ghost")


def test_sharded_assignment_follows_ring():
    with ShardedRouter(shards=3) as sharded:
        shard = sharded.register("m", "mobilenet", input_shapes=[INPUT],
                                 scheme="scc", width_mult=0.25, seed=3)
        assert shard == sharded.ring.owner("m")
        assert sharded.shard_of("m") == shard
        assert sharded.models() == ("m",)


def test_sharded_shard_errors_proxied():
    with ShardedRouter(shards=1) as sharded:
        sharded.register("m", "mobilenet", input_shapes=[INPUT],
                         scheme="scc", width_mult=0.25, seed=3)
        with pytest.raises(ValueError, match="C, H, W"):
            # A malformed image raises inside the shard; the exception
            # crosses the pipe and re-raises here.
            sharded.submit("m", np.zeros((7, 7), dtype=np.float32))
    # stop() is idempotent (context manager already stopped it).
    sharded.stop()
