"""Stress/soak suite: the router hammered on a deliberately tiny plan cache.

Everything else in the test suite serves from a cache far larger than any
working set; here the *global* cache is resized to ~8 entries so every
batch churns through eviction and rebuild while N client threads hammer ≥3
models concurrently.  The invariants under that contention:

- no deadlock and no lost or duplicated requests (every submitted id
  completes exactly once with a well-formed output);
- single-flight holds under eviction pressure: ``misses == builds``;
- per-owner counters reconcile with the global ``plan_cache_stats()``;
- the eviction counter is consistent with the resident size
  (``size == builds - evictions`` from a cleared cache);
- the maxsize bound is never exceeded.

Marked ``slow``: CI runs this file in its own job (tier-1 still includes
it; deselect locally with ``-m "not slow"`` for quick iteration).
"""
import threading

import numpy as np
import pytest

from repro.backend import PLAN_CACHE, clear_plan_cache, plan_cache_stats
from repro.serve import Router, ServerConfig
from repro.utils import seed_all

pytestmark = pytest.mark.slow

INPUT = (3, 8, 8)
TINY_CACHE = 8


@pytest.fixture
def tiny_global_cache():
    """Shrink the process-wide cache to TINY_CACHE entries, then restore."""
    old_maxsize = PLAN_CACHE.maxsize
    clear_plan_cache()          # counters from a known-zero baseline
    PLAN_CACHE.resize(TINY_CACHE)
    try:
        yield PLAN_CACHE
    finally:
        PLAN_CACHE.resize(old_maxsize)
        clear_plan_cache()      # later tests re-warm from a clean slate


def _three_model_router(**config_kwargs):
    seed_all(57)
    config_kwargs.setdefault("max_latency", 0.01)
    config = ServerConfig(bucket_sizes=(1, 2, 4), **config_kwargs)
    router = Router(server_config=config)
    router.register("mnet-a", "mobilenet", input_shapes=[INPUT],
                    scheme="scc", width_mult=0.25, seed=71)
    router.register("mnet-b", "mobilenet", input_shapes=[INPUT],
                    scheme="pw", width_mult=0.25, seed=72)
    router.register("mnet-c", "mobilenet", input_shapes=[INPUT],
                    scheme="scc", cg=1, co=0.75, width_mult=0.5, seed=73)
    return router


def _assert_cache_invariants(cache, stats=None):
    stats = stats or plan_cache_stats()
    assert stats["misses"] == stats["builds"], stats
    assert stats["size"] == len(cache) <= TINY_CACHE, stats
    # From a cleared cache with no failed builds, every build inserted one
    # entry and every eviction removed one.
    assert stats["size"] == stats["builds"] - stats["evictions"], stats
    owners = cache.owner_stats()
    for key in ("hits", "misses", "builds", "evictions"):
        assert sum(acc[key] for acc in owners.values()) == stats[key], key
    assert sum(acc["size"] for acc in owners.values()) == stats["size"]
    return owners


def test_threaded_hammer_on_tiny_cache(tiny_global_cache):
    router = _three_model_router()
    router.reset_metrics()
    window_base = plan_cache_stats()   # registration churn precedes the window
    router.start()
    requests_per_client = 6
    client_specs = [(name, seed) for name in router.models() for seed in range(2)]
    results = {}
    errors = []
    lock = threading.Lock()
    try:
        def client(name, seed):
            rng = np.random.default_rng(100 * seed + hash(name) % 97)
            try:
                for i in range(requests_per_client):
                    image = rng.standard_normal(INPUT).astype(np.float32)
                    handle = router.submit(name, image)
                    result = router.wait_result(handle, timeout=60.0)
                    with lock:
                        key = (name, seed, i)
                        assert key not in results  # no duplicated completion
                        results[key] = result
            except BaseException as exc:  # surfaced after join
                with lock:
                    errors.append((name, seed, exc))

        threads = [threading.Thread(target=client, args=spec)
                   for spec in client_specs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads), "deadlocked client threads"
    finally:
        router.stop()

    assert errors == []
    # No lost requests: every (client, index) completed with a sane output.
    assert len(results) == len(client_specs) * requests_per_client
    assert all(r.output.shape == (10,) and np.isfinite(r.output).all()
               for r in results.values())

    stats = plan_cache_stats()
    owners = _assert_cache_invariants(tiny_global_cache, stats)
    # The tiny cache really was driven through eviction, by every model.
    assert stats["evictions"] > 0
    assert all(owners[name]["misses"] > 0 for name in router.models())
    metrics = router.metrics()
    assert metrics.completed == len(results)
    assert metrics.shed == 0 and metrics.rejected == 0
    assert metrics.cache_evictions == stats["evictions"] - window_base["evictions"]


def test_sync_soak_interleaved_models_on_tiny_cache(tiny_global_cache):
    # Deterministic (single-threaded) soak: a long interleaved stream, the
    # cache thrashing on every batch, every result still bit-identical to a
    # rerun of the same stream.
    router = _three_model_router(max_latency=10.0)
    rng = np.random.default_rng(3)
    stream = [(("mnet-a", "mnet-b", "mnet-c")[rng.integers(3)],
               rng.standard_normal(INPUT).astype(np.float32))
              for _ in range(60)]

    def run():
        handles = [router.submit(name, image) for name, image in stream]
        router.flush()
        return [router.result(h).output for h in handles]

    first = run()
    _assert_cache_invariants(tiny_global_cache)
    second = run()
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a, b)
    assert plan_cache_stats()["evictions"] > 0


def test_shed_under_overload_loses_nothing_silently(tiny_global_cache):
    # Admission control under concurrent overload: every submit either
    # returns a handle that completes, or raises QueueFull and is counted.
    from repro.serve import QueueFull

    router = _three_model_router(max_pending=4)
    router.reset_metrics()
    router.start()
    outcomes = {"completed": 0, "rejected": 0}
    lock = threading.Lock()
    try:
        def client(name, seed):
            rng = np.random.default_rng(seed)
            for _ in range(8):
                image = rng.standard_normal(INPUT).astype(np.float32)
                try:
                    handle = router.submit(name, image)
                except QueueFull:
                    with lock:
                        outcomes["rejected"] += 1
                    continue
                router.wait_result(handle, timeout=60.0)
                with lock:
                    outcomes["completed"] += 1

        threads = [threading.Thread(target=client, args=(name, seed))
                   for name in router.models() for seed in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads)
    finally:
        router.stop()

    metrics = router.metrics()
    total = 3 * 2 * 8
    assert outcomes["completed"] + outcomes["rejected"] == total
    assert metrics.completed == outcomes["completed"]
    assert metrics.rejected == outcomes["rejected"]
    assert metrics.shed == 0
    _assert_cache_invariants(tiny_global_cache)
