"""Layer-level behaviour: Linear, BatchNorm running stats, activations,
pooling, dropout, initializers, conv module variants."""
import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import init
from repro.tensor import Tensor
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(31)


def test_linear_matches_manual():
    layer = nn.Linear(4, 3)
    x = np.random.default_rng(0).standard_normal((5, 4)).astype(np.float32)
    out = layer(Tensor(x))
    expected = x @ layer.weight.data.T + layer.bias.data
    np.testing.assert_allclose(out.data, expected, rtol=1e-5)


def test_linear_no_bias():
    layer = nn.Linear(4, 3, bias=False)
    assert layer.bias is None
    assert layer.num_parameters() == 12


def test_conv2d_module_bias_broadcast():
    layer = nn.Conv2d(2, 3, 3, padding=1)
    x = Tensor(np.zeros((1, 2, 4, 4), dtype=np.float32))
    out = layer(x)
    assert out.shape == (1, 3, 4, 4)
    np.testing.assert_allclose(
        out.data, np.broadcast_to(layer.bias.data.reshape(1, 3, 1, 1), out.shape), rtol=1e-6
    )


def test_conv_module_validates_groups():
    with pytest.raises(ValueError, match="groups"):
        nn.Conv2d(4, 6, 3, groups=3)


def test_depthwise_is_grouped_per_channel():
    dw = nn.DepthwiseConv2d(6)
    assert dw.groups == 6 and dw.in_channels == dw.out_channels == 6
    assert dw.weight.shape == (6, 1, 3, 3)


def test_pointwise_shapes():
    pw = nn.PointwiseConv2d(8, 16)
    assert pw.kernel_size == 1
    assert pw.weight.shape == (16, 8, 1, 1)
    gpw = nn.GroupPointwiseConv2d(8, 16, groups=4)
    assert gpw.weight.shape == (16, 2, 1, 1)


def test_batchnorm_running_stats_update_and_eval():
    bn = nn.BatchNorm2d(3, momentum=0.5)
    rng = np.random.default_rng(1)
    x = rng.standard_normal((16, 3, 4, 4)).astype(np.float32) * 2 + 5
    bn(Tensor(x))
    # running stats moved toward batch stats
    assert np.all(bn.running_mean > 1.0)
    bn.eval()
    out = bn(Tensor(x))
    expected = (x - bn.running_mean.reshape(1, -1, 1, 1)) / np.sqrt(
        bn.running_var.reshape(1, -1, 1, 1) + bn.eps
    )
    np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-4)


def test_batchnorm_channel_mismatch():
    bn = nn.BatchNorm2d(3)
    with pytest.raises(ValueError, match="channels"):
        bn(Tensor(np.zeros((1, 4, 2, 2), dtype=np.float32)))


def test_relu6_clamps():
    act = nn.ReLU6()
    x = Tensor(np.array([[-1.0, 0.5, 7.0]], dtype=np.float32))
    np.testing.assert_allclose(act(x).data, [[0.0, 0.5, 6.0]])


def test_relu6_gradient_zero_outside_band():
    act = nn.ReLU6()
    x = Tensor(np.array([-1.0, 3.0, 7.0], dtype=np.float32), requires_grad=True)
    act(x).sum().backward()
    np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


def test_maxpool_module_shape():
    pool = nn.MaxPool2d(3, stride=2, padding=1)
    out = pool(Tensor(np.zeros((1, 2, 7, 7), dtype=np.float32)))
    assert out.shape == (1, 2, 4, 4)


def test_global_avg_pool():
    x = np.random.default_rng(2).standard_normal((2, 3, 4, 4)).astype(np.float32)
    out = nn.GlobalAvgPool2d()(Tensor(x))
    np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)), rtol=1e-5)


def test_flatten():
    out = nn.Flatten()(Tensor(np.zeros((2, 3, 4, 4), dtype=np.float32)))
    assert out.shape == (2, 48)


def test_dropout_train_vs_eval():
    drop = nn.Dropout(0.5)
    x = Tensor(np.ones((1000,), dtype=np.float32))
    out = drop(x)
    # inverted dropout preserves expectation
    assert 0.7 < float(out.data.mean()) < 1.3
    assert set(np.unique(out.data)).issubset({0.0, 2.0})
    drop.eval()
    np.testing.assert_array_equal(drop(x).data, x.data)


def test_dropout_validates_p():
    with pytest.raises(ValueError):
        nn.Dropout(1.0)
    with pytest.raises(ValueError):
        nn.Dropout(-0.1)


def test_identity():
    x = Tensor(np.ones(3))
    assert nn.Identity()(x) is x


def test_kaiming_normal_scale():
    w = init.kaiming_normal((256, 128, 3, 3), rng=np.random.default_rng(0))
    expected_std = np.sqrt(2.0 / (128 * 9))
    assert abs(w.std() - expected_std) / expected_std < 0.05


def test_xavier_normal_scale():
    w = init.xavier_normal((200, 300), rng=np.random.default_rng(0))
    expected_std = np.sqrt(2.0 / 500)
    assert abs(w.std() - expected_std) / expected_std < 0.1


def test_fan_in_out_rejects_vectors():
    with pytest.raises(ValueError):
        init.kaiming_normal((5,))


def test_log_softmax_stable_and_normalised():
    x = Tensor(np.array([[1000.0, 1000.0], [0.0, -1000.0]], dtype=np.float32))
    out = F.log_softmax(x)
    assert np.all(np.isfinite(out.data))
    np.testing.assert_allclose(np.exp(out.data).sum(axis=1), [1.0, 1.0], rtol=1e-5)


def test_softmax_sums_to_one():
    x = Tensor(np.random.default_rng(3).standard_normal((4, 7)).astype(np.float32))
    np.testing.assert_allclose(F.softmax(x).data.sum(axis=1), np.ones(4), rtol=1e-5)


def test_one_hot_and_validation():
    out = F.one_hot(np.array([0, 2]), 3)
    np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])
    with pytest.raises(ValueError, match="out of range"):
        F.one_hot(np.array([3]), 3)


def test_accuracy():
    logits = np.array([[2.0, 1.0], [0.0, 1.0]])
    assert F.accuracy(logits, np.array([0, 1])) == 1.0
    assert F.accuracy(logits, np.array([1, 1])) == 0.5
