"""Model-level planning: batch-aware shape harvest + whole-model pre-build."""
import numpy as np
import pytest

from repro.backend import ModelPlan, Workload, clear_plan_cache, layer_workload, plan_cache_stats
from repro.gpusim import extract_layer_shapes, plan_build_time, tesla_v100, training_step_time
from repro.models import build_model
from repro.tensor import Tensor, no_grad
from repro.train import Trainer, TrainConfig
from repro.utils import seed_all

INPUT = (3, 16, 16)


@pytest.fixture(autouse=True)
def _seed():
    seed_all(21)


def _mini_model(**kwargs):
    return build_model("mobilenet", scheme="scc", width_mult=0.25, **kwargs)


# ---------------------------------------------------------------------------
# Batch-parameterized shape extraction (regression: hardcoded batch-1 probe)
# ---------------------------------------------------------------------------

def test_extract_layer_shapes_accepts_batch_size():
    model = _mini_model()
    s1 = extract_layer_shapes(model, INPUT, batch_size=1)
    s4 = extract_layer_shapes(model, INPUT, batch_size=4)
    # Per-layer geometry is batch-invariant; the probe just must not crash
    # or harvest a different layer list at serving batch sizes.
    assert [(s.name, s.kind, s.cin, s.cout) for s in s1] == \
           [(s.name, s.kind, s.cin, s.cout) for s in s4]
    with pytest.raises(ValueError, match="batch_size"):
        extract_layer_shapes(model, INPUT, batch_size=0)


def test_layer_workload_is_batch_parameterized():
    model = _mini_model()
    shapes = extract_layer_shapes(model, INPUT)
    conv = next(s for s in shapes if s.kind in ("conv", "dw", "pw", "gpw", "gc"))
    wl1, wl8 = layer_workload(conv, 1), layer_workload(conv, 8)
    assert wl1 != wl8
    assert wl1.in_shape[0] == 1 and wl8.in_shape[0] == 8
    # Harvested conv workloads carry the module's true stride/padding.
    assert wl8.param("stride") == conv.stride
    assert wl8.param("padding") == conv.padding


# ---------------------------------------------------------------------------
# ModelPlan: pre-built plans make step 1 fully warm
# ---------------------------------------------------------------------------

def test_model_plan_makes_training_step_fully_warm():
    model = _mini_model()
    clear_plan_cache()
    plan = ModelPlan(model, INPUT, batch_size=4, include_backward=True)
    assert plan.prebuilt_plans > 0
    assert plan.planned_layers and len(plan.layers) >= len(plan.planned_layers)

    base = plan_cache_stats()
    x = Tensor(np.random.default_rng(0).standard_normal((4, *INPUT)).astype(np.float32))
    out = model(x)
    out.sum().backward()
    model.zero_grad()
    after = plan_cache_stats()
    assert after["misses"] == base["misses"], "planned step must not build plans"
    assert after["builds"] == base["builds"]
    assert after["hits"] > base["hits"]


def test_model_plan_inference_only_warm_and_probe_side_effect_free():
    model = _mini_model()
    before = model.state_dict()
    clear_plan_cache()
    plan = ModelPlan(model, INPUT, batch_size=2, include_backward=False)
    assert plan.gradient_bytes == 0 and plan.activation_bytes > 0

    # Planning must leave parameters, buffers and grads untouched.
    after = model.state_dict()
    assert before.keys() == after.keys()
    for key in before:
        np.testing.assert_array_equal(before[key], after[key], err_msg=key)
    assert all(p.grad is None or not p.grad.any() for p in model.parameters())

    base = plan_cache_stats()
    with no_grad():
        model.eval()(Tensor(np.zeros((2, *INPUT), dtype=np.float32)))
    assert plan_cache_stats()["builds"] == base["builds"]


def test_model_plan_training_probe_restores_model_state():
    model = _mini_model()
    before = model.state_dict()
    ModelPlan(model, INPUT, batch_size=2, include_backward=True)
    after = model.state_dict()
    for key in before:
        np.testing.assert_array_equal(before[key], after[key], err_msg=key)


def test_stage_batch_pads_and_validates():
    model = _mini_model()
    plan = ModelPlan(model, INPUT, batch_size=4, include_backward=False, warmup=False)
    imgs = np.ones((2, *INPUT), dtype=np.float32)
    staged = plan.stage_batch(imgs)
    assert staged is plan.input_buffer and staged.shape == (4, *INPUT)
    np.testing.assert_array_equal(staged[:2], imgs)
    assert not staged[2:].any()
    with pytest.raises(ValueError, match="stage"):
        plan.stage_batch(np.ones((5, *INPUT), dtype=np.float32))
    with pytest.raises(ValueError, match="stage"):
        plan.stage_batch(np.ones((2, 3, 8, 8), dtype=np.float32))
    assert plan.matches((4, *INPUT)) and not plan.matches((2, *INPUT))


# ---------------------------------------------------------------------------
# build_model hook + trainer integration
# ---------------------------------------------------------------------------

def test_build_model_plan_hook_attaches_model_plan():
    model = _mini_model(plan_input_shape=INPUT, plan_batch_size=4)
    assert isinstance(model.model_plan, ModelPlan)
    assert model.model_plan.batch_size == 4
    assert model.model_plan.include_backward


def test_trainer_uses_model_plan_for_full_batches():
    model = _mini_model(plan_input_shape=INPUT, plan_batch_size=4)
    trainer = Trainer(model, TrainConfig(epochs=1, lr=0.01))
    assert trainer.model_plan is model.model_plan

    rng = np.random.default_rng(5)
    base = plan_cache_stats()
    full = rng.standard_normal((4, *INPUT)).astype(np.float32)
    loss, _ = trainer.train_step(full, np.array([0, 1, 2, 3]))
    assert np.isfinite(loss)
    assert trainer.planned_steps == 1
    assert plan_cache_stats()["builds"] == base["builds"]

    # Ragged final batch falls back to the plain path.
    ragged = rng.standard_normal((3, *INPUT)).astype(np.float32)
    loss, _ = trainer.train_step(ragged, np.array([0, 1, 2]))
    assert np.isfinite(loss)
    assert trainer.planned_steps == 1


def test_trainer_planned_and_plain_steps_agree():
    seed_all(9)
    planned_model = _mini_model(rng=np.random.default_rng(7),
                                plan_input_shape=INPUT, plan_batch_size=4)
    seed_all(9)
    plain_model = _mini_model(rng=np.random.default_rng(7))
    rng = np.random.default_rng(11)
    images = rng.standard_normal((4, *INPUT)).astype(np.float32)
    labels = np.array([0, 1, 2, 3])
    loss_a, acc_a = Trainer(planned_model, TrainConfig(epochs=1)).train_step(images, labels)
    loss_b, acc_b = Trainer(plain_model, TrainConfig(epochs=1)).train_step(images, labels)
    assert loss_a == pytest.approx(loss_b, rel=1e-6) and acc_a == acc_b


# ---------------------------------------------------------------------------
# gpusim: cold-vs-warm plan cost
# ---------------------------------------------------------------------------

def test_simulated_cold_step_charges_unique_plan_builds():
    model = _mini_model()
    shapes = extract_layer_shapes(model, INPUT)
    device = tesla_v100()
    warm = training_step_time(shapes, 8, device)
    cold = training_step_time(shapes, 8, device, cold_plans=True)
    build = plan_build_time(shapes, 8, device)
    assert warm.plan_build == 0.0
    assert cold.plan_build == pytest.approx(build)
    assert cold.total == pytest.approx(warm.total + build)
    assert build > 0
    # Unique workloads, not layer occurrences: repeated blocks share builds.
    unique = {layer_workload(s, 8) for s in shapes} - {None}
    occurrences = sum(1 for s in shapes if layer_workload(s, 8) is not None)
    assert len(unique) < occurrences
    assert build == pytest.approx(len(unique) * device.plan_build_overhead)
