"""The persistent plan database and its schedule-resolution hook.

The contract under test: ``REPRO_PLAN_DB`` absent and no ``set_plan_db``
call means schedule resolution is bit-for-bit the static tables; a database
record for ``(workload, current env)`` overrides exactly the fields it
carries; records persist as JSON lines where the last record wins and a
fresh load (or process) sees the same schedules.
"""
import json

import pytest

from repro.backend import (
    Workload,
    clear_plan_cache,
    conv2d_plan,
    scc_plan,
)
from repro.backend.plan_db import (
    PlanDatabase,
    active_plan_db,
    env_stamp,
    set_plan_db,
    tuned_plan,
    use_plan_db,
)
from repro.backend.schedule import TileSchedule, conv_schedule, pull_tile_for
from repro.core.channel_map import SCCConfig


@pytest.fixture(autouse=True)
def _no_ambient_db():
    """Run each test with no active database and a cold plan cache."""
    with use_plan_db(None):
        clear_plan_cache()
        yield
    clear_plan_cache()


def conv_wl(n=8, cin=64, cout=128):
    return Workload.make(
        "conv2d", (n, cin, 16, 16), (cout, cin, 3, 3), "float32",
        stride=1, padding=1, groups=1,
    )


# ---------------------------------------------------------------------------
# Workload <-> key serialization
# ---------------------------------------------------------------------------

def test_workload_key_round_trips():
    for wl in (
        conv_wl(),
        Workload.make("scc_plan", cin=64, cout=128, cg=4, co=0.25),
        Workload.make("einsum", in_shape=((2, 3), (3, 4)), dtype="float64",
                      subscripts="ij,jk->ik"),
    ):
        key = wl.to_key()
        assert Workload.from_key(key) == wl
        assert Workload.from_key(key).to_key() == key   # stable fixpoint
        json.loads(key)                                 # valid JSON


def test_workload_key_is_canonical_across_param_order():
    a = Workload.make("op", (1, 2), stride=1, padding=0)
    b = Workload.make("op", (1, 2), padding=0, stride=1)
    assert a.to_key() == b.to_key()


# ---------------------------------------------------------------------------
# PlanDatabase: record / lookup / persistence
# ---------------------------------------------------------------------------

def test_record_and_lookup_in_memory():
    db = PlanDatabase()                    # path=None: in-memory
    wl = conv_wl()
    assert db.lookup(wl) is None
    db.record(wl, {"k_tile": 8, "gradw_tile": 2})
    assert db.lookup(wl) == {"k_tile": 8, "gradw_tile": 2}
    assert len(db) == 1
    assert db.workloads() == [wl]


def test_lookup_refuses_cross_env_records():
    db = PlanDatabase()
    wl = conv_wl()
    other_env = dict(env_stamp(), num_workers=999)
    db.record(wl, {"k_tile": 8}, env=other_env)
    # A schedule tuned under a different pool configuration is not evidence
    # about this one: the current-env lookup must miss.
    assert db.lookup(wl) is None
    assert db.lookup(wl, env=other_env) == {"k_tile": 8}


def test_last_record_wins_and_round_trips_through_file(tmp_path):
    path = tmp_path / "plans.jsonl"
    db = PlanDatabase(path)
    wl = conv_wl()
    db.record(wl, {"k_tile": 8})
    db.record(wl, {"k_tile": 32})
    assert db.lookup(wl) == {"k_tile": 32}
    # Two JSON lines on disk; a fresh load folds them last-wins.
    assert len(path.read_text().splitlines()) == 2
    fresh = PlanDatabase(path)
    assert len(fresh) == 1
    assert fresh.lookup(wl) == {"k_tile": 32}


def test_missing_file_loads_empty_and_creates_on_record(tmp_path):
    path = tmp_path / "not-yet" / "plans.jsonl"
    db = PlanDatabase(path)                # fleets point at shared paths
    assert len(db) == 0                    # before the first tune exists
    db.record(conv_wl(), {"k_tile": 4})
    assert path.exists()


def test_reload_picks_up_foreign_appends(tmp_path):
    path = tmp_path / "plans.jsonl"
    writer, reader = PlanDatabase(path), PlanDatabase(path)
    writer.record(conv_wl(), {"k_tile": 16})
    assert reader.lookup(conv_wl()) is None        # not seen yet
    assert reader.reload().lookup(conv_wl()) == {"k_tile": 16}


# ---------------------------------------------------------------------------
# Corruption tolerance: torn writes must not take the shared file down
# ---------------------------------------------------------------------------

def test_load_quarantines_corrupt_rows_and_reports(tmp_path, caplog):
    path = tmp_path / "plans.jsonl"
    wl = conv_wl()
    good = json.dumps({"workload": wl.to_key(), "env": env_stamp(),
                       "plan": {"k_tile": 8}})
    path.write_text(
        "\n".join([
            good,
            good[: len(good) // 2],                    # torn write (truncated)
            "{not json at all",                        # garbage
            json.dumps(["wrong", "type"]),             # not a dict
            json.dumps({"workload": 42, "env": {}, "plan": {}}),  # bad field
            json.dumps({"workload": wl.to_key()}),     # missing keys
            "",                                        # blank line: not an error
        ]) + "\n"
    )
    with caplog.at_level("WARNING", logger="repro.backend.plan_db"):
        db = PlanDatabase(path)
    # The one valid row loaded; the five bad rows were skipped and counted.
    assert db.lookup(wl) == {"k_tile": 8}
    assert db.load_report() == {"path": str(path), "loaded": 1, "skipped": 5}
    # One env-stamped quarantine line naming the file and the bad lines.
    quarantine = [r for r in caplog.records if "quarantined" in r.getMessage()]
    assert len(quarantine) == 1
    message = quarantine[0].getMessage()
    assert str(path) in message and "5 corrupt row(s)" in message
    assert "2,3,4,5,6" in message and "env" in message


def test_injected_torn_write_is_survived_by_fresh_load(tmp_path):
    from repro.faults import FaultInjector, FaultSpec, use_faults

    path = tmp_path / "plans.jsonl"
    db = PlanDatabase(path)
    wl_ok, wl_torn = conv_wl(), conv_wl(n=4)
    db.record(wl_ok, {"k_tile": 8})
    inj = FaultInjector([FaultSpec(site="plan_db_row", rate=1.0, max_fires=1)])
    with use_faults(inj):
        db.record(wl_torn, {"k_tile": 16})     # the on-disk row is truncated
    # The writing process keeps its in-memory entry (the write tore, the
    # record didn't), and a fresh process skips the torn row but still sees
    # every intact one.
    assert db.lookup(wl_torn) == {"k_tile": 16}
    fresh = PlanDatabase(path)
    assert fresh.lookup(wl_ok) == {"k_tile": 8}
    assert fresh.lookup(wl_torn) is None
    assert fresh.load_report()["skipped"] == 1


# ---------------------------------------------------------------------------
# Activation: set_plan_db / use_plan_db / tuned_plan
# ---------------------------------------------------------------------------

def test_no_database_means_no_tuned_plans():
    assert active_plan_db() is None
    assert tuned_plan(conv_wl()) is None
    assert tuned_plan(None) is None


def test_set_plan_db_installs_and_clears(tmp_path):
    db = set_plan_db(tmp_path / "plans.jsonl")     # a path loads it
    assert active_plan_db() is db
    set_plan_db(None)
    assert active_plan_db() is None


def test_use_plan_db_restores_previous_state():
    outer = PlanDatabase()
    set_plan_db(outer)
    with use_plan_db(PlanDatabase()) as inner:
        assert active_plan_db() is inner
    assert active_plan_db() is outer


# ---------------------------------------------------------------------------
# Schedule resolution consults the active database
# ---------------------------------------------------------------------------

def test_conv_schedule_prefers_tuned_record_per_field():
    wl = conv_wl()
    db = PlanDatabase()
    db.record(wl, {"k_tile": 8})           # no gradw_tile in the record
    static = conv_schedule((8, 64, 16, 16), (128, 64, 3, 3), 1, 1)
    with use_plan_db(db):
        tuned = conv_schedule((8, 64, 16, 16), (128, 64, 3, 3), 1, 1,
                              workload=wl)
    # Tuned field wins; the missing field inherits the static value.
    assert tuned == TileSchedule(k_tile=8, gradw_tile=static.gradw_tile)
    # Without the workload (or outside the db scope) the static entry holds.
    with use_plan_db(db):
        assert conv_schedule((8, 64, 16, 16), (128, 64, 3, 3), 1, 1) == static
    assert conv_schedule((8, 64, 16, 16), (128, 64, 3, 3), 1, 1,
                         workload=wl) == static


def test_pull_tile_prefers_tuned_record():
    wl = Workload.make("scc_plan", cin=64, cout=128, cg=4, co=0.25)
    db = PlanDatabase()
    db.record(wl, {"pull_tile": 64})
    assert pull_tile_for(64, 128) == 32            # static table entry
    with use_plan_db(db):
        assert pull_tile_for(64, 128, workload=wl) == 64


def test_built_plans_resolve_tuned_tiles():
    wl = conv_wl(n=6, cin=24, cout=40)
    db = PlanDatabase()
    db.record(wl, {"k_tile": 12, "gradw_tile": 3})
    scc_wl = Workload.make("scc_plan", cin=64, cout=128, cg=4, co=0.25)
    db.record(scc_wl, {"pull_tile": 64})
    with use_plan_db(db):
        plan = conv2d_plan((6, 24, 16, 16), (40, 24, 3, 3), 1, 1, 1, "float32")
        assert (plan.k_tile, plan.gradw_tile) == (12, 3)
        assert scc_plan(SCCConfig(64, 128, 4, 0.25)).pull_tile == 64
    clear_plan_cache()
    # No database: the same workloads build on the static/heuristic tiles.
    plan = conv2d_plan((6, 24, 16, 16), (40, 24, 3, 3), 1, 1, 1, "float32")
    assert (plan.k_tile, plan.gradw_tile) == (0, 2)
    assert scc_plan(SCCConfig(64, 128, 4, 0.25)).pull_tile == 32


def test_env_stamp_shape():
    stamp = env_stamp()
    assert set(stamp) == {"backend", "num_workers", "host_cpus"}
    assert isinstance(stamp["backend"], str)
    assert stamp["host_cpus"] >= 1
    # num_workers is configuration only when pinned/threaded; under the
    # default test env it must be None so same-machine runs with different
    # idle pool sizes still match (and perf_compare's env guard agrees).
    assert stamp["num_workers"] is None or isinstance(stamp["num_workers"], int)
