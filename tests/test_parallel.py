"""Simulated data-parallel training must equal single-device training."""
import numpy as np
import pytest

from repro import nn
from repro.data import make_dataset
from repro.tensor import Tensor
from repro.train import DataParallelTrainer, Trainer, TrainConfig, cross_entropy
from repro.train.optim import SGD
from repro.utils import seed_all


def _model():
    seed_all(101)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, bias=False),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 4),
    )
    # (no BatchNorm: per-shard batch statistics legitimately differ from
    # full-batch statistics, exactly like unsynchronised BN on real GPUs)


@pytest.mark.parametrize("num_devices", [1, 2, 4])
def test_gradients_match_full_batch(num_devices):
    ds = make_dataset(32, num_classes=4, image_size=8, seed=11)
    images, labels = ds.images, ds.labels

    # Reference: single full-batch gradient.
    ref = _model()
    logits = ref(Tensor(images))
    cross_entropy(logits, labels).backward()
    ref_grads = {n: p.grad.copy() for n, p in ref.named_parameters()}

    # Data-parallel path on an identically-initialised model.
    par_model = _model()
    for (_, a), (_, b) in zip(ref.named_parameters(), par_model.named_parameters()):
        np.testing.assert_array_equal(a.data, b.data)
    dp = DataParallelTrainer(par_model, num_devices=num_devices, lr=0.1, momentum=0.0)
    dp.train_step(images, labels)

    # After one step the parameters must match the reference SGD step.
    for (name, p_ref), (_, p_par) in zip(ref.named_parameters(), par_model.named_parameters()):
        expected = p_ref.data - 0.1 * ref_grads[name]
        np.testing.assert_allclose(p_par.data, expected, rtol=1e-4, atol=1e-5,
                                   err_msg=f"parameter {name}")


def test_uneven_shards_still_exact():
    ds = make_dataset(10, num_classes=2, image_size=8, seed=12)
    model = _model()
    dp = DataParallelTrainer(model, num_devices=3, lr=0.1)  # 10 = 4+3+3
    loss, acc = dp.train_step(ds.images, ds.labels)
    assert np.isfinite(loss) and 0.0 <= acc <= 1.0


def test_batch_smaller_than_devices_rejected():
    ds = make_dataset(2, num_classes=2, image_size=8, seed=13)
    model = _model()
    dp = DataParallelTrainer(model, num_devices=4)
    with pytest.raises(ValueError, match="sharded"):
        dp.train_step(ds.images, ds.labels)


def test_num_devices_validation():
    with pytest.raises(ValueError):
        DataParallelTrainer(_model(), num_devices=0)


def test_gradient_bytes():
    model = _model()
    dp = DataParallelTrainer(model, num_devices=2)
    assert dp.gradient_bytes() == sum(p.data.nbytes for p in model.parameters())


def test_parallel_loss_decreases_over_steps():
    ds = make_dataset(64, num_classes=2, image_size=8, noise=0.2, seed=14)
    model = _model()
    dp = DataParallelTrainer(model, num_devices=2, lr=0.2, momentum=0.9)
    losses = [dp.train_step(ds.images, ds.labels)[0] for _ in range(8)]
    assert losses[-1] < losses[0]
