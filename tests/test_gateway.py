"""Asyncio serving gateway: bitwise parity with the sync server + SLO paths.

No ``pytest-asyncio`` dependency: each test is a plain function running its
coroutine under ``asyncio.run`` — the gateway needs nothing from the test
framework beyond an event loop.
"""
import asyncio
import threading

import numpy as np
import pytest

from repro.models import build_model
from repro.serve import (
    AsyncGateway,
    DeadlineExceeded,
    GatewayConfig,
    QueueFull,
    RequestShed,
    Server,
    ServerConfig,
)
from repro.utils import seed_all

INPUT = (3, 16, 16)


@pytest.fixture(autouse=True)
def _seed():
    seed_all(33)


def _model():
    return build_model("mobilenet", scheme="scc", width_mult=0.25,
                       rng=np.random.default_rng(2))


def _images(n, shape=INPUT, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape).astype(np.float32) for _ in range(n)]


# ---------------------------------------------------------------------------
# Acceptance: gateway == sync server == per-request, bitwise, fixed bucket
# ---------------------------------------------------------------------------

def test_gateway_outputs_bitwise_equal_sync_server_and_per_request():
    images = _images(8, seed=10)

    # Sync server, coalesced.
    server = Server(_model(), input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(4,), max_latency=1.0))
    ids = [server.submit(im) for im in images]
    server.flush()
    sync_out = [server.result(i).output for i in ids]

    # Sync server, per-request (each rides its own padded bucket).
    solo_server = Server(_model(), input_shapes=[INPUT],
                         config=ServerConfig(bucket_sizes=(4,), max_latency=1.0))
    solo_out = []
    for im in images:
        rid = solo_server.submit(im)
        solo_server.flush()
        solo_out.append(solo_server.result(rid).output)

    # Async gateway at the same fixed bucket.  However the scheduler loop
    # splits the stream into batches, every batch pads to bucket 4, so the
    # outputs must be bit-identical to both sync modes.
    async def run_gateway():
        gw = AsyncGateway(GatewayConfig(bucket_sizes=(4,), max_latency=0.005,
                                        adaptive_buckets=False))
        gw.register("m", _model(), input_shapes=[INPUT])
        results = await asyncio.gather(
            *[gw.submit("m", im, budget=30.0) for im in images]
        )
        await gw.stop()
        return [r.output for r in results]

    async_out = asyncio.run(run_gateway())
    for sync_row, solo_row, async_row in zip(sync_out, solo_out, async_out):
        np.testing.assert_array_equal(sync_row, solo_row)
        np.testing.assert_array_equal(sync_row, async_row)


# ---------------------------------------------------------------------------
# SLO paths: deadline shed, admission backpressure, shutdown semantics
# ---------------------------------------------------------------------------

def test_blown_budget_resolves_with_deadline_exceeded():
    async def main():
        gw = AsyncGateway(GatewayConfig(bucket_sizes=(4,), max_latency=0.005))
        gw.register("m", _model(), input_shapes=[INPUT])
        # A budget that is already blown at submission: deterministic shed
        # on the scheduler's first pass, no timing assumptions.
        with pytest.raises(DeadlineExceeded, match="budget"):
            await gw.submit("m", _images(1)[0], budget=-1.0)
        metrics = gw.metrics()["m"]
        assert metrics.shed_deadline == 1 and metrics.completed == 0
        # The gateway still serves viable traffic afterwards.
        result = await gw.submit("m", _images(1, seed=2)[0], budget=30.0)
        assert result.output.shape == (10,)
        await gw.stop()

    asyncio.run(main())


def test_admission_backpressure_raises_queue_full():
    async def main():
        gw = AsyncGateway(GatewayConfig(bucket_sizes=(8,), max_latency=30.0,
                                        max_pending=2, adaptive_buckets=False))
        gw.register("m", _model(), input_shapes=[INPUT])
        images = _images(3, seed=3)
        # Enqueue two (bucket 8 + long flush window: nothing dispatches);
        # the third submit hits the bound and sheds at the door.  Viable
        # queued work is never displaced — only blown budgets are.
        waiters = [asyncio.ensure_future(gw.submit("m", im, budget=60.0))
                   for im in images[:2]]
        await asyncio.sleep(0)            # let both submissions enqueue
        with pytest.raises(QueueFull, match="capacity"):
            await gw.submit("m", images[2], budget=60.0)
        assert gw.metrics()["m"].rejected == 1
        await gw.stop()                   # drains the two queued requests
        results = await asyncio.gather(*waiters)
        assert all(r.output.shape == (10,) for r in results)

    asyncio.run(main())


def test_stop_without_drain_sheds_awaiters():
    async def main():
        gw = AsyncGateway(GatewayConfig(bucket_sizes=(8,), max_latency=30.0,
                                        adaptive_buckets=False))
        gw.register("m", _model(), input_shapes=[INPUT])
        waiters = [asyncio.ensure_future(gw.submit("m", im, budget=60.0))
                   for im in _images(3, seed=4)]
        await asyncio.sleep(0)
        await gw.stop(drain=False)
        outcomes = await asyncio.gather(*waiters, return_exceptions=True)
        assert all(isinstance(o, RequestShed) for o in outcomes)

    asyncio.run(main())


def test_async_context_manager_drains_on_exit():
    async def main():
        async with AsyncGateway(GatewayConfig(bucket_sizes=(8,),
                                              max_latency=30.0,
                                              adaptive_buckets=False)) as gw:
            gw.register("m", _model(), input_shapes=[INPUT])
            waiter = asyncio.ensure_future(
                gw.submit("m", _images(1, seed=5)[0], budget=60.0)
            )
            await asyncio.sleep(0)
        # __aexit__ drained: the queued request completed rather than shed.
        result = await waiter
        assert result.output.shape == (10,)
        assert result.batch_requests == 1 and result.bucket_size == 8

    asyncio.run(main())


def test_gateway_validation_errors():
    async def main():
        gw = AsyncGateway()
        gw.register("m", _model(), input_shapes=[INPUT])
        with pytest.raises(ValueError, match="already registered"):
            gw.register("m", _model())
        with pytest.raises(KeyError, match="no model"):
            await gw.submit("ghost", _images(1)[0])
        with pytest.raises(ValueError, match="image"):
            await gw.submit("m", np.zeros((2, *INPUT), dtype=np.float32))
        await gw.stop()

    asyncio.run(main())


def test_gateway_metrics_split_and_fairness_accounting():
    async def main():
        gw = AsyncGateway(GatewayConfig(bucket_sizes=(1, 2, 4),
                                        max_latency=0.005))
        gw.register("a", _model(), input_shapes=[INPUT], request_cost=1.0)
        gw.register("b", _model(), input_shapes=[INPUT], request_cost=4.0)
        results = await asyncio.gather(
            *[gw.submit("a", im, budget=30.0) for im in _images(4, seed=6)],
            *[gw.submit("b", im, budget=30.0) for im in _images(2, seed=7)],
        )
        await gw.stop()
        assert all(r.latency >= r.queue_wait >= 0.0 for r in results)
        metrics = gw.metrics()
        assert metrics["a"].completed == 4 and metrics["b"].completed == 2
        for m in metrics.values():
            assert m.exec_seconds_total > 0.0
            assert m.latency_mean >= m.queue_wait_mean
            assert m.bucket_target in (1, 2, 4)
            assert m.deadline_miss_rate <= 1.0

    asyncio.run(main())


# ---------------------------------------------------------------------------
# Soak (slow-marked): sustained mixed traffic, every future resolves
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_gateway_soak_every_submission_is_accounted_for():
    # Sustained two-model traffic with a mix of generous, tight and blown
    # budgets under a small admission bound: every submission must resolve
    # (result, DeadlineExceeded, RequestShed or QueueFull) — the gateway's
    # nothing-silently-dropped contract under churn.
    async def main():
        gw = AsyncGateway(GatewayConfig(bucket_sizes=(1, 2, 4),
                                        max_latency=0.002, max_pending=16))
        gw.register("small", _model(), input_shapes=[INPUT], request_cost=1.0)
        gw.register("large", _model(), input_shapes=[INPUT], request_cost=2.0)
        rng = np.random.default_rng(8)
        budgets = [None, 30.0, 0.05, -1.0]

        async def client(model, n, seed):
            outcomes = []
            for im in _images(n, seed=seed):
                budget = budgets[rng.integers(len(budgets))]
                try:
                    outcomes.append(await gw.submit(model, im, budget=budget))
                except (DeadlineExceeded, QueueFull, RequestShed) as exc:
                    outcomes.append(exc)
                if rng.random() < 0.3:
                    await asyncio.sleep(0.001)
            return outcomes

        per_client = 25
        outcomes = await asyncio.gather(
            client("small", per_client, 100),
            client("small", per_client, 101),
            client("large", per_client, 102),
            client("large", per_client, 103),
        )
        await gw.stop()
        flat = [o for sub in outcomes for o in sub]
        assert len(flat) == 4 * per_client       # every submission resolved
        completed = sum(1 for o in flat if not isinstance(o, Exception))
        shed = sum(1 for o in flat if isinstance(o, (DeadlineExceeded,
                                                     RequestShed)))
        rejected = sum(1 for o in flat if isinstance(o, QueueFull))
        assert completed + shed + rejected == 4 * per_client
        assert completed > 0                     # traffic actually served
        metrics = gw.metrics()
        assert sum(m.completed for m in metrics.values()) == completed
        assert sum(m.shed_deadline for m in metrics.values()) \
            + sum(m.rejected for m in metrics.values()) == shed + rejected
        # No dangling futures: everything resolved or failed.
        assert not gw._futures

    asyncio.run(main())


def test_gateway_runs_with_threaded_kernel_backend_without_deadlock():
    # The batch executor runs *on* the shared pool; a model forward that
    # itself reaches parallel_map (threaded backend) must run inline on its
    # worker rather than re-submitting — submit_pooled marks the task, so
    # pool starvation cannot deadlock the gateway.
    from repro.backend import num_workers

    async def main():
        gw = AsyncGateway(GatewayConfig(bucket_sizes=(2,), max_latency=0.005,
                                        max_concurrent_batches=2))
        gw.register("m", _model(), input_shapes=[INPUT])
        results = await asyncio.gather(
            *[gw.submit("m", im, budget=30.0) for im in _images(4, seed=9)]
        )
        await gw.stop()
        return results

    with num_workers(2):
        results = asyncio.run(main())
    assert len(results) == 4
    assert all(r.output.shape == (10,) for r in results)
