"""Fault-injection plane + the serving stack's tolerance machinery.

The contract under test (ISSUE 9): faults are deterministic pure functions
of (seed, site, key, attempt); batch failure isolation bisects a raising
batch so only poisoned requests fail — survivors bitwise-identical to a
clean run; transient faults are retried with deterministic backoff (zero
real sleeps: every delay goes through an injected sleep); per-model circuit
breakers open on windowed error rate, shed with ModelUnavailable, half-open
probe and close; repeated kernel faults demote the affected workload down
the backend chain; and the chaos soak sustains >= 99% goodput for
non-poisoned requests with zero silent drops.
"""
import asyncio

import numpy as np
import pytest

from repro.backend import ShardError, parallel_map, submit_pooled
from repro.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    PoisonedRequest,
    active_faults,
    use_faults,
)
from repro.models import build_model
from repro.serve import (
    AsyncGateway,
    CircuitBreaker,
    GatewayConfig,
    ModelExecutor,
    ModelUnavailable,
    RequestFailed,
    RequestStatus,
    ResultTimeout,
    RetryPolicy,
    Router,
    Server,
    ServerConfig,
)
from repro.utils import seed_all

INPUT = (3, 16, 16)


@pytest.fixture(autouse=True)
def _seed_and_clean():
    seed_all(33)
    yield
    assert active_faults() is None, "a test leaked an installed fault injector"


def _model():
    return build_model("mobilenet", scheme="scc", width_mult=0.25,
                       rng=np.random.default_rng(2))


def _images(n, shape=INPUT, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape).astype(np.float32) for _ in range(n)]


def _virtual_time():
    """(clock, sleep) pair over one virtual timeline — zero real sleeping."""
    t = [0.0]
    return (lambda: t[0]), (lambda dt: t.__setitem__(0, t[0] + dt)), t


# ---------------------------------------------------------------------------
# The fault plane itself: deterministic, budgeted, scoped
# ---------------------------------------------------------------------------

def test_fault_decisions_are_deterministic_and_attempt_sensitive():
    spec = FaultSpec(site="kernel", rate=0.3)
    draws = []
    for _ in range(2):
        inj = FaultInjector([spec], seed=7)
        fired = []
        for key in range(200):
            try:
                inj.check("kernel", key=(key,), attempt=0)
                fired.append(False)
            except InjectedFault:
                fired.append(True)
        draws.append(fired)
    # Same seed, same keys -> the identical fault schedule, independent of
    # any clock or ordering state.
    assert draws[0] == draws[1]
    rate = sum(draws[0]) / len(draws[0])
    assert 0.15 < rate < 0.45  # ~0.3 by construction
    # A retry is a fresh opportunity: some keys that fired at attempt 0
    # pass at attempt 1 (that is what makes transient faults retryable).
    recovered = 0
    inj = FaultInjector([spec], seed=7)
    for key in (k for k, f in enumerate(draws[0]) if f):
        try:
            inj.check("kernel", key=(key,), attempt=1)
        except InjectedFault:
            continue
        recovered += 1
    assert recovered > 0


def test_max_fires_budget_scripts_a_finite_outage():
    inj = FaultInjector([FaultSpec(site="kernel", rate=1.0, max_fires=3)])
    fired = 0
    for key in range(10):
        try:
            inj.check("kernel", key=(key,))
        except InjectedFault:
            fired += 1
    assert fired == 3
    assert inj.stats()["site_fires"]["kernel"] == 3


def test_spec_filters_by_model_and_backend():
    spec = FaultSpec(site="kernel", rate=1.0, models=("broken",),
                     backends=("numpy",))
    inj = FaultInjector([spec])
    inj.check("kernel", model="healthy", backend="numpy")   # wrong model
    inj.check("kernel", model="broken", backend="threaded")  # wrong backend
    with pytest.raises(InjectedFault):
        inj.check("kernel", model="broken", backend="numpy")


def test_poisoned_requests_fail_every_attempt():
    inj = FaultInjector(poison_ids=[("m", 7)])
    assert inj.poisoned_subset([5, 6, 7, 8], model="m") == [7]
    assert inj.poisoned_subset([5, 6, 7, 8], model="other") == []
    for attempt in range(3):  # deterministic: no retry can ever succeed
        with pytest.raises(PoisonedRequest) as exc_info:
            inj.kernel_fault([6, 7], model="m", attempt=attempt)
        assert exc_info.value.ids == (7,)


def test_use_faults_scopes_the_active_injector():
    assert active_faults() is None
    inj = FaultInjector()
    with use_faults(inj):
        assert active_faults() is inj
    assert active_faults() is None


# ---------------------------------------------------------------------------
# RetryPolicy + CircuitBreaker (pure policies)
# ---------------------------------------------------------------------------

def test_retry_policy_backoff_grows_and_jitter_is_deterministic():
    rp = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=2.0,
                     max_delay=0.05, jitter=0.5, seed=3)
    assert rp.should_retry(0) and rp.should_retry(2) and not rp.should_retry(3)
    d = [rp.delay(a, token=9) for a in range(4)]
    assert d == [rp.delay(a, token=9) for a in range(4)]  # deterministic
    assert d[0] < d[1] < d[2]                             # exponential
    assert all(dd <= 0.05 * 1.5 for dd in d)              # capped (+jitter)
    assert rp.delay(0, token=1) != rp.delay(0, token=2)   # de-synchronised


def test_circuit_breaker_lifecycle():
    cb = CircuitBreaker(window=8, threshold=0.5, min_samples=4, cooldown=1.0)
    assert cb.state == cb.CLOSED
    for t in range(4):
        assert cb.allow(float(t))
        cb.record(False, float(t))
    assert cb.state == cb.OPEN and cb.opens == 1
    assert not cb.allow(3.5)          # still cooling down
    assert cb.rejected == 1
    assert cb.allow(10.0)             # cooldown passed -> half-open probe
    assert cb.state == cb.HALF_OPEN
    assert not cb.allow(10.0)         # probe quota is 1
    cb.record(True, 10.5)             # probe succeeded
    assert cb.state == cb.CLOSED and cb.closes == 1
    trans = [(frm, to) for _, frm, to in cb.transitions]
    assert trans == [("closed", "open"), ("open", "half_open"),
                     ("half_open", "closed")]
    snap = cb.snapshot()
    assert snap["state"] == "closed" and len(snap["transitions"]) == 3


def test_circuit_breaker_failed_probe_reopens():
    cb = CircuitBreaker(window=4, threshold=0.5, min_samples=2, cooldown=1.0)
    cb.record(False, 0.0)
    cb.record(False, 0.0)
    assert cb.state == cb.OPEN
    assert cb.allow(2.0)
    cb.record(False, 2.0)             # probe failed: cooldown restarts
    assert cb.state == cb.OPEN and cb.opens == 2
    assert not cb.allow(2.5)
    assert cb.allow(3.5)


# ---------------------------------------------------------------------------
# Batch failure isolation (the tentpole's core guarantee)
# ---------------------------------------------------------------------------

def test_isolation_fails_only_poisoned_requests_bitwise_survivors():
    images = _images(8, seed=4)
    clean = ModelExecutor(_model(), input_shapes=[INPUT], bucket_sizes=(8,))
    clean_rows, errors, _, _ = clean.run_resilient(images, 8)
    assert not errors

    executor = ModelExecutor(_model(), input_shapes=[INPUT], bucket_sizes=(8,))
    inj = FaultInjector(poison_ids=[2, 5])
    with use_faults(inj):
        rows, errors, stats, _ = executor.run_resilient(
            images, 8, request_ids=list(range(8))
        )
    assert sorted(errors) == [2, 5]
    for idx, err in errors.items():
        assert isinstance(err, RequestFailed)
        assert err.request_id == idx
        assert isinstance(err.__cause__, PoisonedRequest)
    assert stats.splits > 0
    # Every survivor re-padded to the same bucket: bitwise equal to the
    # fault-free run even though the grouping was bisected apart.
    for i in range(8):
        if i in errors:
            assert rows[i] is None
        else:
            np.testing.assert_array_equal(rows[i], clean_rows[i])


def test_transient_fault_retried_with_virtual_sleep():
    executor = ModelExecutor(_model(), input_shapes=[INPUT], bucket_sizes=(4,))
    clock, sleep, t = _virtual_time()
    inj = FaultInjector([FaultSpec(site="kernel", rate=1.0, max_fires=1)])
    retry = RetryPolicy(max_attempts=3, base_delay=0.01, seed=2)
    with use_faults(inj):
        rows, errors, stats, _ = executor.run_resilient(
            _images(4, seed=1), 4, clock=clock,
            request_ids=[0, 1, 2, 3], retry=retry, sleep=sleep,
        )
    assert not errors and all(r is not None for r in rows)
    assert stats.retries == 1 and stats.faults == 1 and stats.attempts == 2
    assert t[0] > 0.0  # the backoff elapsed on the virtual timeline only


def test_plan_build_fault_is_retried():
    executor = ModelExecutor(_model(), input_shapes=[INPUT], bucket_sizes=(2,))
    clock, sleep, _ = _virtual_time()
    inj = FaultInjector([FaultSpec(site="plan_build", rate=1.0, max_fires=1)])
    with use_faults(inj):
        rows, errors, stats, _ = executor.run_resilient(
            _images(2, seed=2), 2, clock=clock,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0), sleep=sleep,
        )
    assert not errors and stats.retries == 1


def test_slow_batch_fault_delays_on_the_injected_sleep():
    executor = ModelExecutor(_model(), input_shapes=[INPUT], bucket_sizes=(2,))
    clock, sleep, t = _virtual_time()
    inj = FaultInjector([FaultSpec(site="slow_batch", rate=1.0, max_fires=1,
                                   delay=0.25)])
    with use_faults(inj):
        out, timing = executor.run(_images(2, seed=3), 2, clock=clock,
                                   sleep=sleep)
    assert t[0] == pytest.approx(0.25)
    assert timing.finished - timing.started >= 0.25


def test_retry_exhaustion_without_isolation_fails_whole_batch():
    executor = ModelExecutor(_model(), input_shapes=[INPUT], bucket_sizes=(4,))
    inj = FaultInjector([FaultSpec(site="kernel", rate=1.0)])
    clock, sleep, _ = _virtual_time()
    with use_faults(inj):
        rows, errors, stats, _ = executor.run_resilient(
            _images(4, seed=5), 4, clock=clock, request_ids=[0, 1, 2, 3],
            retry=RetryPolicy(max_attempts=2, base_delay=0.0), sleep=sleep,
            isolate=False,
        )
    assert sorted(errors) == [0, 1, 2, 3]
    assert all(r is None for r in rows)
    assert all(isinstance(e, RequestFailed) for e in errors.values())


# ---------------------------------------------------------------------------
# Graceful degradation down the backend chain
# ---------------------------------------------------------------------------

def test_repeated_kernel_faults_demote_workload_and_recover():
    # "numpy is broken": faults fire only while the resolved backend is
    # numpy, so demoting the workload to the threaded backend (bitwise
    # numpy sharded on the pool) makes them stop — observable recovery.
    executor = ModelExecutor(
        _model(), input_shapes=[INPUT], bucket_sizes=(2,),
        degrade_after=2, degrade_chain=("numpy", "threaded"),
    )
    inj = FaultInjector([FaultSpec(site="kernel", rate=1.0,
                                   backends=("numpy",))])
    images = _images(2, seed=6)
    clean = ModelExecutor(_model(), input_shapes=[INPUT], bucket_sizes=(2,))
    clean_rows, _, _, _ = clean.run_resilient(images, 2)
    clock, sleep, _ = _virtual_time()
    with use_faults(inj):
        for _ in range(2):  # two consecutive non-poison kernel faults
            _, errors, _, _ = executor.run_resilient(
                images, 2, clock=clock, sleep=sleep, isolate=False)
            assert errors
        events = executor.degraded()
        assert len(events) == 1
        assert events[0]["backend"] == "threaded"
        assert events[0]["bucket"] == 2
        # Demoted: the backend filter no longer matches, batches succeed —
        # and bitwise-identically (threaded shards the same numpy kernels).
        rows, errors, _, _ = executor.run_resilient(
            images, 2, clock=clock, sleep=sleep)
        assert not errors
    for row, clean_row in zip(rows, clean_rows):
        np.testing.assert_array_equal(row, clean_row)


# ---------------------------------------------------------------------------
# Server integration: typed failures, accounting, ResultTimeout
# ---------------------------------------------------------------------------

def test_server_surfaces_request_failed_and_accounts_it():
    clock, sleep, t = _virtual_time()
    server = Server(
        _model(), input_shapes=[INPUT],
        config=ServerConfig(bucket_sizes=(4,), max_latency=1.0,
                            retry=RetryPolicy(max_attempts=2, base_delay=0.0)),
        clock=clock, sleep=sleep, name="m",
    )
    inj = FaultInjector(poison_ids=[("m", 1)])
    with use_faults(inj):
        ids = [server.submit(im) for im in _images(4, seed=7)]
        server.flush()
    assert server.status(ids[1]) == RequestStatus.FAILED
    assert isinstance(server.failure(ids[1]), RequestFailed)
    with pytest.raises(RequestFailed):
        server.wait_result(ids[1], timeout=0.1)
    for rid in (ids[0], ids[2], ids[3]):
        assert server.status(rid) == RequestStatus.DONE
        assert server.result(rid) is not None
    m = server.metrics()
    assert m.completed == 3 and m.failed == 1 and m.isolated_batches == 1
    assert server.pending_count() == 0  # nothing leaked


def test_wait_result_timeout_raises_typed_result_timeout():
    server = Server(_model(), input_shapes=[INPUT],
                    config=ServerConfig(bucket_sizes=(4,), max_latency=10.0))
    rid = server.submit(_images(1)[0])
    with pytest.raises(ResultTimeout) as exc_info:
        server.wait_result(rid, timeout=0.05)
    err = exc_info.value
    assert isinstance(err, TimeoutError)       # legacy handlers keep working
    assert err.request_id == rid and err.timeout == 0.05
    assert err.status == RequestStatus.PENDING
    assert server.pending_count() == 1          # accounted, not leaked
    server.flush()
    assert server.result(rid) is not None       # still completes afterwards


def test_server_breaker_opens_sheds_and_recloses():
    clock, sleep, t = _virtual_time()
    server = Server(
        _model(), input_shapes=[INPUT],
        config=ServerConfig(bucket_sizes=(4,), max_latency=1.0,
                            breaker_window=16, breaker_min_samples=4,
                            breaker_threshold=0.5, breaker_cooldown=0.5),
        clock=clock, sleep=sleep, name="broken",
    )
    # 7 fires fail one isolated batch of 4 completely (1 full + 2 halves +
    # 4 singletons), then the outage ends.
    inj = FaultInjector([FaultSpec(site="kernel", rate=1.0, max_fires=7,
                                   models=("broken",))])
    with use_faults(inj):
        ids = [server.submit(im) for im in _images(4, seed=8)]
        server.flush()
        assert server.metrics().failed == 4
        assert server.metrics().breaker_state == "open"
        with pytest.raises(ModelUnavailable):
            server.submit(_images(1)[0])
        assert server.metrics().unavailable == 1
        t[0] += 1.0                         # cooldown passes (virtual clock)
        probe = server.submit(_images(1, seed=9)[0])   # half-open probe
        server.flush()
        assert server.result(probe) is not None
        assert server.metrics().breaker_state == "closed"
        snap = server.breaker_snapshot()
        assert [(frm, to) for _, frm, to in
                [tuple(tr) for tr in snap["transitions"]]] == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed")]
        assert snap["opens"] == 1 and snap["closes"] == 1


# ---------------------------------------------------------------------------
# Chaos soak: 5% transient faults + poison, virtual clock, bitwise goodput
# ---------------------------------------------------------------------------

def _soak_router(clock, sleep):
    router = Router(
        server_config=ServerConfig(
            bucket_sizes=(4,), max_latency=0.05,
            retry=RetryPolicy(max_attempts=3, base_delay=0.001, seed=11),
            breaker_window=32, breaker_min_samples=8,
            breaker_threshold=0.5, breaker_cooldown=0.5,
        ),
        clock=clock, overlap=False, sleep=sleep,
    )
    router.register("healthy", _model(), input_shapes=[INPUT])
    return router


def _drive_soak(router, images, t):
    handles = []
    for im in images:
        t[0] += 0.001
        handles.append(router.submit("healthy", im))
        router.poll()
    t[0] += 1.0
    router.flush()
    return handles


@pytest.mark.slow
def test_chaos_soak_goodput_bitwise_and_breaker_visibility():
    images = _images(100, seed=12)
    poison = [("healthy", 17), ("healthy", 42)]

    # Fault-free reference run of the identical trace.
    clock, sleep, t = _virtual_time()
    router = _soak_router(clock, sleep)
    handles = _drive_soak(router, images, t)
    reference = [router.result(h).output for h in handles]

    # Chaos run: 5% transient kernel faults + two poisoned requests, plus a
    # scripted outage on a co-registered broken model.
    clock, sleep, t = _virtual_time()
    router = _soak_router(clock, sleep)
    router.register(
        "broken", _model(), input_shapes=[INPUT],
        config=ServerConfig(bucket_sizes=(4,), max_latency=0.05,
                            breaker_window=16, breaker_min_samples=4,
                            breaker_threshold=0.5, breaker_cooldown=0.5),
    )
    inj = FaultInjector(
        [
            FaultSpec(site="kernel", rate=0.05, models=("healthy",)),
            FaultSpec(site="kernel", rate=1.0, max_fires=7,
                      models=("broken",)),
        ],
        seed=13,
        poison_ids=poison,
    )
    with use_faults(inj):
        handles = _drive_soak(router, images, t)

        # Break the broken model, observe the breaker open, recover it.
        broken_ids = [router.submit("broken", im) for im in _images(4, seed=14)]
        router.flush()
        with pytest.raises(ModelUnavailable):
            router.submit("broken", _images(1)[0])
        t[0] += 1.0
        probe = router.submit("broken", _images(1, seed=15)[0])
        router.flush()

    healthy = router.server("healthy")
    poisoned_ids = {rid for _, rid in poison}
    succeeded = failed = 0
    for handle in handles:
        status = router.status(handle)
        if status == RequestStatus.DONE:
            succeeded += 1
        elif status == RequestStatus.FAILED:
            failed += 1
            # Zero silent drops: every failure carries a typed exception.
            assert isinstance(healthy.failure(handle.request_id), RequestFailed)
        else:  # no third state may exist for an executed trace
            raise AssertionError(f"unaccounted request: {status}")
    assert succeeded + failed == len(images)
    assert failed <= len(poisoned_ids)

    # >= 99% goodput for non-poisoned requests, every survivor bitwise
    # identical to the fault-free run (same bucket padding discipline).
    non_poisoned = [h for h in handles if h.request_id not in poisoned_ids]
    good = 0
    for handle, ref in zip(handles, reference):
        if handle.request_id in poisoned_ids:
            continue
        result = router.result(handle)
        if result is None:
            continue
        np.testing.assert_array_equal(result.output, ref)
        good += 1
    assert good / len(non_poisoned) >= 0.99
    assert inj.stats()["site_fires"]["kernel"] > 0  # chaos actually happened

    # Breaker transitions are visible in RouterMetrics.
    metrics = router.metrics()
    assert metrics.failed >= 4                       # broken model's batch
    assert metrics.unavailable >= 1
    assert metrics.breaker_opens >= 1
    transitions = [(frm, to) for _, frm, to in
                   metrics.breakers["broken"]["transitions"]]
    assert ("closed", "open") in transitions
    assert ("half_open", "closed") in transitions
    assert metrics.breakers["broken"]["state"] == "closed"
    assert router.result(probe) is not None
    # Retries happened on the virtual timeline only (no real sleeping).
    assert metrics.retries >= 0 and t[0] > 0.0


# ---------------------------------------------------------------------------
# AsyncGateway: drain with a raising in-flight batch, breaker recovery
# ---------------------------------------------------------------------------

def test_gateway_drain_resolves_every_future_of_a_raising_batch():
    async def main():
        gw = AsyncGateway(GatewayConfig(bucket_sizes=(4,), max_latency=30.0,
                                        adaptive_buckets=False))
        gw.register("m", _model(), input_shapes=[INPUT])
        inj = FaultInjector([FaultSpec(site="kernel", rate=1.0, models=("m",))])
        with use_faults(inj):
            tasks = [asyncio.ensure_future(gw.submit("m", im))
                     for im in _images(3, seed=22)]
            await asyncio.sleep(0)      # enqueued; 3 < bucket 4, nothing due
            await gw.stop(drain=True)   # drain force-dispatches the remainder
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        # Every await-er resolves — with the typed per-request failure, not
        # a hang or a silent drop.
        assert len(outcomes) == 3
        for outcome in outcomes:
            assert isinstance(outcome, RequestFailed)
            assert isinstance(outcome.__cause__, InjectedFault)
        m = gw.metrics()["m"]
        assert m.failed == 3 and m.completed == 0

    asyncio.run(main())


def test_gateway_breaker_opens_sheds_and_recloses():
    async def main():
        t = [0.0]
        gw = AsyncGateway(
            GatewayConfig(bucket_sizes=(4,), max_latency=0.005,
                          adaptive_buckets=False, breaker_window=16,
                          breaker_min_samples=4, breaker_threshold=0.5,
                          breaker_cooldown=0.5),
            clock=lambda: t[0],
            sleep=lambda dt: t.__setitem__(0, t[0] + dt),
        )
        gw.register("m", _model(), input_shapes=[INPUT])
        # One full batch of 4 fails completely in exactly 7 fires (full +
        # 2 halves + 4 singletons), then the scripted outage ends.
        inj = FaultInjector([FaultSpec(site="kernel", rate=1.0, max_fires=7,
                                       models=("m",))])
        with use_faults(inj):
            outcomes = await asyncio.gather(
                *[gw.submit("m", im) for im in _images(4, seed=20)],
                return_exceptions=True,
            )
            assert all(isinstance(o, RequestFailed) for o in outcomes)
            with pytest.raises(ModelUnavailable):
                await gw.submit("m", _images(1)[0])
            t[0] += 1.0             # virtual cooldown passes
            probe = asyncio.ensure_future(
                gw.submit("m", _images(1, seed=21)[0])
            )
            await asyncio.sleep(0)  # half-open probe admitted and enqueued
            t[0] += 1.0             # its flush deadline passes (virtually)
            gw.kick()
            result = await probe
            assert result.output.shape == (10,)
            await gw.stop()
        m = gw.metrics()["m"]
        assert m.failed == 4 and m.unavailable == 1
        assert m.breaker_opens == 1 and m.breaker_state == "closed"
        trans = [(frm, to) for _, frm, to in
                 gw.breaker_snapshots()["m"]["transitions"]]
        assert trans == [("closed", "open"), ("open", "half_open"),
                         ("half_open", "closed")]

    asyncio.run(main())


# ---------------------------------------------------------------------------
# Worker-pool context wrapping + pool_submit faults (satellite b)
# ---------------------------------------------------------------------------

def test_parallel_map_wraps_worker_exception_with_workload_context():
    def boom(item):
        raise ValueError("kaboom in shard")

    with pytest.raises(ShardError) as exc_info:
        parallel_map(boom, [np.zeros((2, 3), dtype=np.float32)],
                     op="conv2d.fwd")
    err = exc_info.value
    assert err.op == "conv2d.fwd" and err.shard == 0
    assert "conv2d.fwd" in str(err)
    assert "ndarray(shape=(2, 3))" in str(err)   # operand shape, not a repr dump
    assert "kaboom in shard" in str(err)          # original error rides along
    assert isinstance(err.__cause__, ValueError)


def test_parallel_map_pooled_path_names_the_failing_shard():
    from repro.backend import num_workers

    def boom(item):
        if item == 2:
            raise ValueError("shard failed")
        return item

    with num_workers(2):
        with pytest.raises(ShardError, match="shard failed") as exc_info:
            parallel_map(boom, [0, 1, 2, 3], op="scc.shards")
    assert exc_info.value.shard == 2
    assert "slice" not in str(exc_info.value)    # plain item: repr'd directly


def test_pool_submit_fault_fires_once_then_recovers():
    inj = FaultInjector([FaultSpec(site="pool_submit", rate=1.0, max_fires=1)])
    with use_faults(inj):
        with pytest.raises(InjectedFault, match="pool_submit"):
            submit_pooled(len, [1, 2])
        future = submit_pooled(len, [1, 2, 3])   # budget spent: flows again
        assert future.result(timeout=10) == 3
