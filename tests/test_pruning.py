"""SCC magnitude pruning (paper Section II-C future-work combination)."""
import numpy as np
import pytest

from repro import nn
from repro.core.blocks import make_separable_block
from repro.core.pruning import SCCPruner
from repro.core.scc import SlidingChannelConv2d
from repro.data import DataLoader, make_dataset
from repro.tensor import Tensor
from repro.train import Trainer, TrainConfig
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(151)


def _model():
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, bias=False),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        make_separable_block(8, 16, scheme="scc", cg=2, co=0.5),
        make_separable_block(16, 32, scheme="scc", cg=2, co=0.5),
        nn.GlobalAvgPool2d(),
        nn.Linear(32, 4),
    )


def test_prune_hits_requested_global_sparsity():
    model = _model()
    pruner = SCCPruner(model, sparsity=0.5)
    report = pruner.prune()
    assert report.layers_pruned == 2
    assert abs(report.sparsity - 0.5) < 0.05
    assert pruner.effective_parameters() == report.weights_total - report.weights_zeroed


def test_prune_zero_sparsity_is_noop():
    model = _model()
    before = [
        m.weight.data.copy()
        for _, m in model.named_modules()
        if isinstance(m, SlidingChannelConv2d)
    ]
    report = SCCPruner(model, sparsity=0.0).prune()
    assert report.weights_zeroed == 0
    after = [
        m.weight.data
        for _, m in model.named_modules()
        if isinstance(m, SlidingChannelConv2d)
    ]
    for b, a in zip(before, after):
        np.testing.assert_array_equal(b, a)


def test_prune_keeps_largest_magnitudes():
    model = _model()
    layers = [m for _, m in model.named_modules() if isinstance(m, SlidingChannelConv2d)]
    biggest = max(float(np.abs(l.weight.data).max()) for l in layers)
    SCCPruner(model, sparsity=0.9).prune()
    still_biggest = max(float(np.abs(l.weight.data).max()) for l in layers)
    assert still_biggest == pytest.approx(biggest)


def test_reapply_restores_zeros_after_update():
    model = _model()
    pruner = SCCPruner(model, sparsity=0.6)
    pruner.prune()
    layer = next(m for _, m in model.named_modules() if isinstance(m, SlidingChannelConv2d))
    mask = pruner.masks[id(layer)]
    layer.weight.data = layer.weight.data + 1.0   # simulate an optimizer step
    pruner.reapply()
    assert np.all(layer.weight.data[mask == 0] == 0)


def test_reapply_before_prune_raises():
    with pytest.raises(RuntimeError, match="before prune"):
        SCCPruner(_model(), sparsity=0.5).reapply()


def test_validation():
    with pytest.raises(ValueError, match="sparsity"):
        SCCPruner(_model(), sparsity=1.0)
    with pytest.raises(ValueError, match="no SCC layers"):
        SCCPruner(nn.Sequential(nn.Linear(4, 2)), sparsity=0.5)


def test_masked_training_keeps_sparsity_and_learns():
    ds = make_dataset(120, num_classes=4, image_size=8, noise=0.2, seed=15)
    model = _model()
    pruner = SCCPruner(model, sparsity=0.5)
    pruner.prune()
    trainer = Trainer(model, TrainConfig(epochs=2, lr=0.1, momentum=0.9))
    loader = DataLoader(ds, batch_size=24, seed=16)
    losses = []
    for _ in range(trainer.config.epochs):
        for images, labels in loader:
            loss, _ = trainer.train_step(images, labels)
            pruner.reapply()
            losses.append(loss)
    assert losses[-1] < losses[0]
    layers = [m for _, m in model.named_modules() if isinstance(m, SlidingChannelConv2d)]
    total = sum(l.weight.size for l in layers)
    zeros = sum(int((l.weight.data == 0).sum()) for l in layers)
    assert abs(zeros / total - 0.5) < 0.05   # sparsity survived training
