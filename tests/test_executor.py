"""Execution tiers: protocol conformance, process shipping, sharded serving.

The contract under test is the one the tier table in
``repro.backend.parallel`` promises: every ``REPRO_EXECUTOR`` tier —
``thread``, ``process``, ``inline`` — produces **bitwise-identical**
results through the same ``parallel_map`` / ``submit_pooled`` surface, at
every worker count.  The process tier earns this either by shipping a
registered pure function (whose result is location-invariant) or by
falling back to the in-process thread lane; the sharded router earns it by
rebuilding registry models deterministically per shard.
"""
import concurrent.futures
import os

import numpy as np
import pytest

from repro.backend import PLAN_CACHE, dispatch_plan
from repro.backend.parallel import (
    EXECUTOR_TIERS,
    InlineExecutor,
    ThreadExecutor,
    get_executor,
    get_num_workers,
    num_workers,
    parallel_map,
    set_executor,
    submit_pooled,
    use_executor,
    worker_limit,
)
from repro.backend.procpool import (
    SHM_MIN_BYTES,
    ProcessExecutor,
    is_process_safe,
    process_safe,
    shippable_args,
)
from repro.backend.numpy_backend import dense_fwd_partial
from repro.faults.plane import derive_worker_seed
from repro.tensor.conv_ops import Conv2d
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(23)
    yield
    set_executor(None)  # never leak a tier into other tests


def _conv_workload(backend="threaded"):
    """One conv forward+backward on the pooled (threaded) backend."""
    rng = np.random.default_rng(7)
    x = rng.standard_normal((4, 8, 12, 12)).astype(np.float32)
    w = rng.standard_normal((16, 8, 3, 3)).astype(np.float32)
    fn = Conv2d()
    fn.needs_input_grad = (True, True)
    out = fn.forward(x, w, 1, 1, 1, backend=backend)
    gx, gw = fn.backward(np.ones_like(out))
    return out, gx, gw


def _scc_workload():
    """One SCC strategy forward+backward (pull GEMM exercises the pool)."""
    from repro.core.channel_map import SCCConfig
    from repro.core.scc_kernels import Dsxplore

    cfg = SCCConfig(in_channels=16, out_channels=16, cg=4, co=0.5)
    layer = Dsxplore(cfg)
    rng = np.random.default_rng(11)
    x = rng.standard_normal((2, 16, 6, 6)).astype(np.float32)
    w = rng.standard_normal((16, cfg.group_width)).astype(np.float32)
    out = layer.forward(x, w)
    gx, gw = layer.backward(np.ones_like(out))
    return out, gx, gw


# ---------------------------------------------------------------------------
# Tier conformance: thread == process == inline, bitwise, at 1/2/4 workers
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("workload", [_conv_workload, _scc_workload])
def test_tiers_bitwise_identical_at_every_worker_count(workload, workers):
    results = {}
    for tier in EXECUTOR_TIERS:
        with use_executor(tier), num_workers(workers):
            results[tier] = workload()
    for tier in ("process", "inline"):
        for ref, got in zip(results["thread"], results[tier]):
            np.testing.assert_array_equal(
                ref, got, err_msg=f"tier {tier} diverged at {workers} workers"
            )


def test_parallel_map_results_ordered_on_every_tier():
    items = list(range(17))
    expect = [i * i for i in items]
    for tier in EXECUTOR_TIERS:
        with use_executor(tier), num_workers(4):
            assert parallel_map(lambda i: i * i, items, op="square") == expect


def test_submit_pooled_returns_future_on_every_tier():
    for tier in EXECUTOR_TIERS:
        with use_executor(tier):
            future = submit_pooled(pow, 3, 4)
            assert isinstance(future, concurrent.futures.Future)
            assert future.result(timeout=30) == 81


# ---------------------------------------------------------------------------
# Tier selection: env resolution, runtime override, validation
# ---------------------------------------------------------------------------

def test_env_selects_tier(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "inline")
    set_executor(None)  # force re-resolution from env
    try:
        assert isinstance(get_executor(), InlineExecutor)
    finally:
        set_executor(None)


def test_invalid_tier_name_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "gpu")
    set_executor(None)
    with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
        get_executor()
    set_executor(None)
    with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
        set_executor("fibers")


def test_use_executor_restores_previous_tier():
    base = get_executor()
    with use_executor("inline") as tier:
        assert get_executor() is tier
        assert tier.serial
    assert get_executor() is base


def test_describe_names_tier_and_workers():
    with use_executor("inline"):
        info = get_executor().describe()
        assert info["tier"] == "inline"
        assert info["workers"] == get_num_workers()
    proc = ProcessExecutor()
    try:
        assert "start_method" in proc.describe()
    finally:
        proc.shutdown()


# ---------------------------------------------------------------------------
# worker_limit: thread-scoped caps
# ---------------------------------------------------------------------------

def test_worker_limit_caps_and_lifts():
    with num_workers(4):
        assert get_num_workers() == 4
        with worker_limit(2):
            assert get_num_workers() == 2
            with worker_limit(None):  # None lifts the enclosing cap
                assert get_num_workers() == 4
            assert get_num_workers() == 2
        assert get_num_workers() == 4
    with pytest.raises(ValueError, match="worker_limit"):
        with worker_limit(0):
            pass


def test_worker_limit_never_raises_above_pool_size():
    with num_workers(2), worker_limit(16):
        assert get_num_workers() == 2


# ---------------------------------------------------------------------------
# Process tier: shipping rules and shared-memory transport
# ---------------------------------------------------------------------------

def test_kernel_partials_are_registered_shippable():
    assert is_process_safe(dense_fwd_partial)


def test_process_safe_rejects_non_module_level():
    with pytest.raises(ValueError, match="module-level"):
        process_safe(lambda x: x)


def test_shippable_args_rules():
    arr = np.zeros(4)
    assert shippable_args((arr, 3, "s", slice(0, 2), (1.0, arr)))
    assert not shippable_args(({"k": 1},))
    assert not shippable_args(([1, 2],))


def test_process_ship_matches_inline_above_and_below_shm_threshold():
    rng = np.random.default_rng(3)
    # Big operands ride shared memory, small ones the pickle path; both
    # must round-trip bit-for-bit.
    big_n = int(np.ceil((SHM_MIN_BYTES / 4) ** 0.25)) + 2
    for shape in ((2, 3, 4, 4, 3, 3), (big_n, big_n, big_n, big_n, 3, 3)):
        patches = rng.standard_normal(shape).astype(np.float32)
        weight = rng.standard_normal((5, shape[1], 3, 3)).astype(np.float32)
        expect = dense_fwd_partial(patches, weight, slice(0, shape[1]))
        proc = ProcessExecutor(max_workers=2)
        try:
            got = proc.submit(
                dense_fwd_partial, patches, weight, slice(0, shape[1])
            ).result(timeout=120)
        finally:
            proc.shutdown(wait=True)
        np.testing.assert_array_equal(expect, got)


def test_process_tier_thread_lane_for_unshippable_tasks():
    # A closure is not process-safe: it must run in-process (observable
    # because it mutates enclosing state, which a forked child could not).
    hits = []
    proc = ProcessExecutor(max_workers=2)
    try:
        proc.submit(hits.append, 1).result(timeout=30)
    finally:
        proc.shutdown(wait=True)
    assert hits == [1]


# ---------------------------------------------------------------------------
# Per-worker fault-seed derivation
# ---------------------------------------------------------------------------

def test_derive_worker_seed_deterministic_and_distinct():
    seeds = [derive_worker_seed(123, i) for i in range(8)]
    assert seeds == [derive_worker_seed(123, i) for i in range(8)]
    assert len(set(seeds)) == len(seeds)
    assert derive_worker_seed(124, 0) != seeds[0]


def test_for_worker_derives_independent_injector():
    from repro.faults import FaultInjector

    parent = FaultInjector(seed=5)
    child_a = parent.for_worker(1)
    child_b = parent.for_worker(2)
    assert child_a.seed == derive_worker_seed(5, 1)
    assert child_b.seed == derive_worker_seed(5, 2)
    assert child_a.seed != child_b.seed


# ---------------------------------------------------------------------------
# Plan-resolved execution (PlanDatabase backend/workers at dispatch)
# ---------------------------------------------------------------------------

def _tuned_db(workers=2, backend="threaded"):
    from repro.backend import PlanDatabase
    from repro.backend.workload import Workload

    db = PlanDatabase()
    wl = Workload.make(
        "conv2d", (2, 4, 8, 8), (4, 4, 3, 3), np.float32,
        stride=1, padding=1, groups=1,
    )
    db.record(
        wl,
        plan={"k_tile": 0, "gradw_tile": 0,
              "backend": backend, "workers": workers},
        score=1.0,
    )
    return db


def test_plan_resolves_tuned_backend_and_workers():
    from repro.backend import conv2d_plan, use_plan_db

    PLAN_CACHE.clear()
    try:
        with use_plan_db(_tuned_db()):
            plan = conv2d_plan((2, 4, 8, 8), (4, 4, 3, 3), 1, 1, 1, np.float32)
        assert plan.resolved_backend == "threaded"
        assert plan.resolved_workers == 2
        assert plan.resolved_executor == "threaded@2"
    finally:
        PLAN_CACHE.clear()


def test_plan_without_db_resolves_nothing():
    from repro.backend import conv2d_plan

    PLAN_CACHE.clear()
    plan = conv2d_plan((2, 4, 8, 8), (4, 4, 3, 3), 1, 1, 1, np.float32)
    assert plan.resolved_backend is None
    assert plan.resolved_workers is None
    assert plan.resolved_executor is None


def test_dispatch_plan_applies_and_releases_overrides():
    from repro.backend import conv2d_plan, use_plan_db
    from repro.backend.registry import current_backend_override

    PLAN_CACHE.clear()
    try:
        with use_plan_db(_tuned_db()):
            plan = conv2d_plan((2, 4, 8, 8), (4, 4, 3, 3), 1, 1, 1, np.float32)
        with num_workers(4):
            with dispatch_plan(plan):
                assert current_backend_override() == "threaded"
                assert get_num_workers() == 2
            assert current_backend_override() is None
            assert get_num_workers() == 4
            with dispatch_plan(plan, apply_backend=False):
                assert current_backend_override() is None
                assert get_num_workers() == 2
    finally:
        PLAN_CACHE.clear()


def test_dispatch_plan_defers_to_active_override():
    from repro.backend import conv2d_plan, use_plan_db
    from repro.backend.registry import backend_override, current_backend_override

    PLAN_CACHE.clear()
    try:
        with use_plan_db(_tuned_db(backend="numpy")):
            plan = conv2d_plan((2, 4, 8, 8), (4, 4, 3, 3), 1, 1, 1, np.float32)
        with backend_override("reference"):
            with dispatch_plan(plan):
                # An explicit caller override outranks the tuned record.
                assert current_backend_override() == "reference"
    finally:
        PLAN_CACHE.clear()


def test_tuned_dispatch_is_bitwise_invisible():
    from repro.backend import use_plan_db

    PLAN_CACHE.clear()
    base = _conv_workload(backend="default")
    PLAN_CACHE.clear()
    try:
        with use_plan_db(_tuned_db(workers=1)):
            tuned = _conv_workload(backend="default")
    finally:
        PLAN_CACHE.clear()
    for ref, got in zip(base, tuned):
        np.testing.assert_array_equal(ref, got)
