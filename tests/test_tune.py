"""The plan auto-tuner: sweep soundness and the cross-process contract.

The headline invariant — the static-table schedule is always in the
candidate set, so the tuned winner can never model worse than static — and
the persistence loop: tune, write the database, and have a *fresh
interpreter* (``REPRO_PLAN_DB``) build plans on the tuned tiles with
results bitwise-identical to the untuned run.

On bitwise-identity across *different* tile sizes: tile size changes the
canonical combine order, so equality for arbitrary float data only holds
per tile size.  The round-trip test therefore feeds integer-valued float32
inputs — every partial sum is exact, making any schedule of the same
contraction bit-identical — so it can assert the tuned schedule changes
*nothing* about results while changing the execution plan.
"""
import hashlib
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.backend import (
    Workload,
    clear_plan_cache,
    conv2d_plan,
    get_kernel,
)
from repro.backend.plan_db import PlanDatabase, use_plan_db
from repro.tune import (
    Candidate,
    gate_workloads,
    tune_conv2d,
    tune_pull_gemm,
    tune_workloads,
)
from repro.tune import _tile_candidates, _worker_candidates

REPO_ROOT = Path(__file__).resolve().parents[1]

X_SHAPE = (4, 16, 8, 8)       # small: tuning sweeps dozens of measured runs
W_SHAPE = (8, 16, 3, 3)


@pytest.fixture(autouse=True)
def _clean():
    with use_plan_db(None):
        clear_plan_cache()
        yield
    clear_plan_cache()


# ---------------------------------------------------------------------------
# Candidate generation
# ---------------------------------------------------------------------------

def test_tile_candidates_include_untiled_and_static():
    cands = _tile_candidates(64, static=16)
    assert 0 in cands and 16 in cands
    assert 32 in cands and 8 in cands          # 2-way and 8-way partitions
    assert cands == sorted(set(cands))


def test_worker_candidates_cover_powers_up_to_target():
    assert _worker_candidates(4) == [2, 4]
    assert _worker_candidates(6) == [2, 4, 6]
    assert _worker_candidates(1) == []          # serial host: numpy only


# ---------------------------------------------------------------------------
# Sweep soundness
# ---------------------------------------------------------------------------

def test_tune_conv2d_never_worse_than_static_and_records():
    db = PlanDatabase()
    res = tune_conv2d(X_SHAPE, W_SHAPE, workers=4, repeats=1, db=db)
    assert res.best.score_s <= res.static.score_s
    assert any(c.tiles == res.static_tiles for c in res.candidates)
    assert all(isinstance(c, Candidate) and c.score_s >= 0.0
               for c in res.candidates)
    # The record landed under the exact workload key conv2d_plan builds.
    wl = Workload.make("conv2d", X_SHAPE, W_SHAPE, "float32",
                       stride=1, padding=1, groups=1)
    plan = db.lookup(wl)
    assert plan is not None
    assert {"backend", "workers", "k_tile", "gradw_tile"} <= set(plan)


def test_tune_pull_gemm_never_worse_than_static_and_records():
    db = PlanDatabase()
    res = tune_pull_gemm((16, 32, 4, 0.25), n=2, hw=6, workers=4,
                         repeats=1, db=db)
    assert res.best.score_s <= res.static.score_s
    wl = Workload.make("scc_plan", cin=16, cout=32, cg=4, co=0.25)
    plan = db.lookup(wl)
    assert plan is not None and "pull_tile" in plan


def test_tune_conv2d_rejects_grouped_workloads():
    with pytest.raises(ValueError, match="dense"):
        tune_conv2d((4, 16, 8, 8), (16, 8, 3, 3), groups=2)


def test_gate_workloads_contain_an_off_table_conv():
    specs = gate_workloads()
    assert any("offtable" in s["name"] for s in specs)
    quick = gate_workloads(quick=True)
    assert len(quick) == 1                      # the CI smoke budget


def test_tune_workloads_dry_run_records_nothing():
    res = tune_workloads(
        [{"kind": "conv2d", "name": "t", "x_shape": X_SHAPE,
          "w_shape": W_SHAPE, "stride": 1, "padding": 1}],
        db=None, workers=2, repeats=1,
    )
    assert len(res) == 1 and res[0].record is None


# ---------------------------------------------------------------------------
# The round trip: tune -> persist -> fresh process applies tuned tiles
# ---------------------------------------------------------------------------

_CHILD = textwrap.dedent(
    """
    import hashlib, json, sys
    import numpy as np
    from repro.backend import conv2d_plan, get_kernel

    spec = json.loads(sys.argv[1])
    x = np.asarray(spec["x"], dtype=np.float32)
    w = np.asarray(spec["w"], dtype=np.float32)
    plan = conv2d_plan(x.shape, w.shape, 1, 1, 1, "float32")
    out, ctx = get_kernel("conv2d", "numpy")(plan, x, w)
    grad = np.ones(plan.out_shape, dtype=np.float32)
    gx, gw = get_kernel("conv2d_backward", "numpy")(plan, ctx, grad)
    print(json.dumps({
        "k_tile": plan.k_tile, "gradw_tile": plan.gradw_tile,
        "digest": hashlib.sha256(
            out.tobytes() + gx.tobytes() + gw.tobytes()).hexdigest(),
    }))
    """
)


def test_tuned_db_round_trips_into_fresh_process_bitwise(tmp_path):
    db_path = tmp_path / "plans.jsonl"
    res = tune_conv2d(X_SHAPE, W_SHAPE, workers=4, repeats=1,
                      db=PlanDatabase(db_path))
    recorded = {k: res.best.tiles[k] for k in ("k_tile", "gradw_tile")}

    # Integer-valued inputs: exact partial sums, so results are bitwise
    # invariant to the schedule (see module docstring).
    rng = np.random.default_rng(3)
    x = rng.integers(-3, 4, X_SHAPE).astype(np.float32)
    w = rng.integers(-3, 4, W_SHAPE).astype(np.float32)
    spec = json.dumps({"x": x.tolist(), "w": w.tolist()})

    def run_child(extra_env):
        env = dict(os.environ)
        env.pop("REPRO_PLAN_DB", None)
        env.update(extra_env)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run([sys.executable, "-c", _CHILD, spec], env=env,
                              capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout)

    tuned = run_child({"REPRO_PLAN_DB": str(db_path)})
    static = run_child({})

    # The fresh process resolved exactly the tuned tiles from disk...
    assert {k: tuned[k] for k in recorded} == recorded
    # ...the untuned process stayed on the static schedule...
    assert (static["k_tile"], static["gradw_tile"]) \
        == (res.static_tiles["k_tile"], res.static_tiles["gradw_tile"])
    # ...and both computed bitwise-identical results.
    assert tuned["digest"] == static["digest"]
