"""Multi-model router: routing correctness, admission control, metrics.

The bitwise-equality tests extend ``test_serve.py``'s single-model
guarantee across the router: because every (shape, bucket) pair runs at a
fixed padded batch size, a request's output is bit-identical whether it is
routed through the multi-model front-end, served solo, or — at bucket 1 —
computed by a direct ``model.forward`` call.
"""
import threading

import numpy as np
import pytest

from repro.backend import PLAN_CACHE, plan_cache_stats
from repro.models import build_serving_model
from repro.serve import (
    QueueFull,
    RequestShed,
    Router,
    RouterHandle,
    Server,
    ServerConfig,
)
from repro.tensor import Tensor, no_grad
from repro.utils import seed_all

INPUT = (3, 16, 16)


@pytest.fixture(autouse=True)
def _seed():
    seed_all(41)


def _images(n, shape=INPUT, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape).astype(np.float32) for _ in range(n)]


def _router(bucket_sizes=(1, 2, 4), max_latency=5.0, **config_kwargs):
    router = Router(server_config=ServerConfig(
        bucket_sizes=bucket_sizes, max_latency=max_latency, **config_kwargs))
    router.register("narrow", "mobilenet", input_shapes=[INPUT],
                    scheme="scc", width_mult=0.25, seed=11)
    router.register("wide", "mobilenet", input_shapes=[INPUT],
                    scheme="scc", width_mult=0.5, seed=12)
    return router


# ---------------------------------------------------------------------------
# Bitwise equality: routed outputs == direct per-request inference
# ---------------------------------------------------------------------------

def test_bucket1_routed_outputs_equal_direct_forward_bitwise():
    router = _router(bucket_sizes=(1,))
    models = {name: router.server(name).model for name in router.models()}
    for name in router.models():
        for image in _images(3, seed=hash(name) % 1000):
            handle = router.submit(name, image)
            routed = router.result(handle).output
            with no_grad():
                direct = models[name](Tensor(image[None])).data[0]
            np.testing.assert_array_equal(routed, direct)


def test_routed_coalesced_outputs_equal_solo_outputs_bitwise():
    router = _router(bucket_sizes=(4,))
    for name in router.models():
        images = _images(4, seed=5)
        handles = [router.submit(name, im) for im in images]  # one full bucket
        coalesced = [router.result(h).output for h in handles]
        solo = []
        for im in images:
            handle = router.submit(name, im)
            router.flush()
            solo.append(router.result(handle).output)
        for a, b in zip(coalesced, solo):
            np.testing.assert_array_equal(a, b)


def test_interleaved_models_do_not_perturb_each_other():
    # The same stream per model, with and without the other model's traffic
    # interleaved, yields identical outputs: no shared mutable state leaks
    # across servers.
    router = _router(bucket_sizes=(2,))
    images = _images(4, seed=9)
    alone = {}
    for name in router.models():
        handles = [router.submit(name, im) for im in images]
        router.flush()
        alone[name] = [router.result(h).output for h in handles]
    mixed_handles = {name: [] for name in router.models()}
    for im in images:
        for name in router.models():
            mixed_handles[name].append(router.submit(name, im))
    router.flush()
    for name in router.models():
        for a, h in zip(alone[name], mixed_handles[name]):
            np.testing.assert_array_equal(a, router.result(h).output)


# ---------------------------------------------------------------------------
# Registration and routing
# ---------------------------------------------------------------------------

def test_register_accepts_built_model_and_rejects_duplicates():
    router = Router(server_config=ServerConfig(bucket_sizes=(2,)))
    model = build_serving_model("mobilenet", scheme="scc", width_mult=0.25, seed=3)
    server = router.register("m", model, input_shapes=[INPUT])
    assert isinstance(server, Server) and server.name == "m"
    assert router.models() == ("m",)
    with pytest.raises(ValueError, match="already registered"):
        router.register("m", model, input_shapes=[INPUT])
    with pytest.raises(ValueError, match="build_kwargs"):
        router.register("m2", model, input_shapes=[INPUT], width_mult=0.5)


def test_submit_to_unknown_model_raises():
    router = _router()
    with pytest.raises(KeyError, match="no model"):
        router.submit("missing", _images(1)[0])
    with pytest.raises(KeyError, match="no model"):
        router.result(RouterHandle("missing", 0))


# ---------------------------------------------------------------------------
# Admission control: bounded per-model queue, shed on overload
# ---------------------------------------------------------------------------

def test_admission_control_sheds_on_overload_and_counts_rejections():
    router = _router(bucket_sizes=(8,), max_pending=3)
    images = _images(6, seed=2)
    accepted = [router.submit("narrow", im) for im in images[:3]]
    for im in images[3:]:
        with pytest.raises(QueueFull):
            router.submit("narrow", im)
    # The other model's queue is bounded independently.
    other = router.submit("wide", images[0])
    router.flush()
    assert all(router.result(h) is not None for h in accepted + [other])
    metrics = router.metrics()
    assert metrics.rejected == 3
    assert metrics.per_model["narrow"].rejected == 3
    assert metrics.per_model["wide"].rejected == 0
    assert metrics.completed == 4


def test_pending_count_tracks_queue_and_drains():
    router = _router(bucket_sizes=(4,), max_pending=8)
    server = router.server("narrow")
    for im in _images(3, seed=6):
        router.submit("narrow", im)
    assert server.pending_count() == 3
    router.flush()
    assert server.pending_count() == 0


# ---------------------------------------------------------------------------
# Metrics: per-model attribution over the shared cache
# ---------------------------------------------------------------------------

def test_per_model_cache_attribution_is_exact_under_mixed_traffic():
    router = _router(bucket_sizes=(2,))
    router.reset_metrics()
    # Drive only one model: the other's cache delta must stay zero even
    # though both share the process-wide cache.
    for im in _images(4, seed=7):
        router.submit("narrow", im)
    router.flush()
    metrics = router.metrics()
    narrow = metrics.per_model_cache["narrow"]
    wide = metrics.per_model_cache["wide"]
    assert narrow["hits"] > 0 and narrow["hit_rate"] == 1.0
    assert wide["hits"] == 0 and wide["misses"] == 0
    assert metrics.per_model["narrow"].plan_cache_hit_rate == 1.0
    assert metrics.aggregate_hit_rate == 1.0
    assert metrics.plan_builds == 0
    assert metrics.completed == 4
    assert metrics.throughput > 0
    payload = metrics.as_dict()
    assert payload["per_model"]["narrow"]["completed"] == 4


def test_metrics_survive_midwindow_cache_clear_without_negative_deltas():
    # Regression: clear_plan_cache() zeroes the cache's counters; metrics
    # windows opened before the clear used to report negative plan_builds
    # and garbage hit rates.  Attribution now restarts from the clear.
    from repro.backend import clear_plan_cache

    router = _router(bucket_sizes=(2,))
    router.reset_metrics()
    for im in _images(4, seed=21):
        router.submit("narrow", im)
    router.flush()
    clear_plan_cache()
    for im in _images(2, seed=22):
        router.submit("narrow", im)
    router.flush()
    metrics = router.metrics()
    assert metrics.plan_builds >= 0
    assert 0.0 <= metrics.aggregate_hit_rate <= 1.0
    narrow = metrics.per_model_cache["narrow"]
    assert narrow["builds"] >= 0 and 0.0 <= narrow["hit_rate"] <= 1.0
    served = metrics.per_model["narrow"]
    assert served.plan_builds >= 0
    assert 0.0 <= served.plan_cache_hit_rate <= 1.0
    assert metrics.completed == 6


def test_evictions_do_not_contaminate_per_model_window_deltas():
    # Regression: clear-detection once compared the non-monotonic "size"
    # gauge, so any eviction that shrank an owner's resident size below its
    # window snapshot wiped the base and turned window deltas into lifetime
    # totals (warmup + registration traffic included).
    router = _router(bucket_sizes=(2,))
    for im in _images(4, seed=23):        # pre-window traffic
        router.submit("narrow", im)
    router.flush()
    router.reset_metrics()
    old_maxsize = PLAN_CACHE.maxsize
    try:
        PLAN_CACHE.resize(2)              # mass eviction, zero new traffic
        metrics = router.metrics()
        narrow = metrics.per_model_cache["narrow"]
        assert narrow["hits"] == 0 and narrow["misses"] == 0
        assert narrow["hit_rate"] == 1.0
    finally:
        PLAN_CACHE.resize(old_maxsize)


def test_model_registered_mid_window_excludes_its_registration_builds():
    router = _router(bucket_sizes=(2,))
    router.reset_metrics()
    router.register("late", "mobilenet", input_shapes=[INPUT],
                    scheme="scc", width_mult=0.25, seed=13)
    metrics = router.metrics()
    late = metrics.per_model_cache["late"]
    # Registration pre-builds are not in-window serving traffic.
    assert late["builds"] == 0 and late["misses"] == 0
    assert late["hit_rate"] == 1.0
    for im in _images(2, seed=24):
        router.submit("late", im)
    router.flush()
    assert router.metrics().per_model["late"].completed == 2


def test_owner_stats_reconcile_with_global_after_serving():
    router = _router(bucket_sizes=(1, 2))
    for name in router.models():
        for im in _images(3, seed=8):
            router.submit(name, im)
    router.flush()
    owners = PLAN_CACHE.owner_stats()
    stats = plan_cache_stats()
    for key in ("hits", "misses", "builds", "evictions"):
        assert sum(acc[key] for acc in owners.values()) == stats[key], key
    assert sum(acc["size"] for acc in owners.values()) == stats["size"]


# ---------------------------------------------------------------------------
# Threaded mode + shutdown semantics through the router
# ---------------------------------------------------------------------------

def test_threaded_router_serves_concurrent_multi_model_clients():
    router = _router(bucket_sizes=(1, 2, 4), max_latency=0.02)
    router.reset_metrics()
    router.start()
    results = {}
    lock = threading.Lock()
    try:
        def client(name, seed):
            for i, im in enumerate(_images(4, seed=seed)):
                handle = router.submit(name, im)
                result = router.wait_result(handle, timeout=30.0)
                with lock:
                    results[(name, seed, i)] = result

        clients = [
            threading.Thread(target=client, args=(name, seed))
            for name in router.models() for seed in (0, 1)
        ]
        for t in clients:
            t.start()
        for t in clients:
            t.join()
    finally:
        router.stop()
    assert len(results) == 16
    metrics = router.metrics()
    assert metrics.completed == 16
    assert metrics.plan_builds == 0  # warm plans + single-flight cache
    with pytest.raises(RuntimeError, match="already started"):
        router.start().start()
    router.stop()


def test_router_stop_without_drain_sheds_and_reports():
    router = _router(bucket_sizes=(8,))
    handles = [router.submit("narrow", im) for im in _images(3, seed=4)]
    router.stop(drain=False)
    assert all(router.result(h) is None for h in handles)
    assert all(router.was_shed(h) for h in handles)
    with pytest.raises(RequestShed):
        router.wait_result(handles[0], timeout=1.0)
    metrics = router.metrics()
    assert metrics.shed == 3 and metrics.completed == 0


def test_router_status_passthrough():
    from repro.serve import RequestStatus

    router = _router(bucket_sizes=(8,))
    pending = router.submit("narrow", _images(1, seed=50)[0])
    assert router.status(pending) == RequestStatus.PENDING
    router.flush()
    assert router.status(pending) == RequestStatus.DONE
    shed = router.submit("wide", _images(1, seed=51)[0])
    router.stop(drain=False)
    assert router.status(shed) == RequestStatus.SHED
    with pytest.raises(KeyError, match="never issued"):
        router.status(type(pending)("narrow", 10_000))


def test_router_forwards_deadlines_and_aggregates_slo_metrics():
    clock = [0.0]
    router = Router(
        server_config=ServerConfig(bucket_sizes=(4,), max_latency=10.0,
                                   shed_policy="deadline"),
        clock=lambda: clock[0], overlap=False,
    )
    router.register("narrow", "mobilenet", input_shapes=[INPUT],
                    scheme="scc", width_mult=0.25, seed=11)
    blown = router.submit("narrow", _images(1, seed=52)[0], deadline=1.0)
    kept = router.submit("narrow", _images(1, seed=53)[0], deadline=100.0)
    clock[0] = 2.0
    router.poll()                       # sheds the blown request only
    assert router.was_shed(blown) and not router.was_shed(kept)
    clock[0] = 12.0
    router.poll()                       # flushes the survivor on max_latency
    assert router.result(kept) is not None
    metrics = router.metrics()
    assert metrics.shed_deadline == 1
    assert metrics.deadline_misses == 0
    assert metrics.per_model["narrow"].shed_deadline == 1
