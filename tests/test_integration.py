"""Cross-module integration: end-to-end training through the full stack."""
import numpy as np
import pytest

from repro import nn
from repro.core.blocks import convert_model, make_separable_block, set_scc_impl
from repro.data import DataLoader, make_dataset, train_test_split
from repro.models import build_model
from repro.tensor import Tensor
from repro.train import Trainer, TrainConfig
from repro.utils import seed_all


def _small_scc_net(width=12, cg=2, co=0.5, impl="dsxplore"):
    return nn.Sequential(
        nn.Conv2d(3, width, 3, padding=1, bias=False),
        nn.BatchNorm2d(width),
        nn.ReLU(),
        make_separable_block(width, 2 * width, stride=2, scheme="scc", cg=cg, co=co, impl=impl),
        nn.GlobalAvgPool2d(),
        nn.Linear(2 * width, 4),
    )


def test_scc_network_trains_end_to_end():
    seed_all(201)
    ds = make_dataset(240, num_classes=4, image_size=8, noise=0.2, seed=20)
    train, test = train_test_split(ds, 0.2, seed=20)
    model = _small_scc_net()
    trainer = Trainer(model, TrainConfig(epochs=4, lr=0.1, momentum=0.9))
    hist = trainer.fit(DataLoader(train, batch_size=32, seed=21),
                       DataLoader(test, batch_size=64, shuffle=False))
    assert hist.losses[-1] < hist.losses[0]
    assert hist.best_test_acc > 0.3


@pytest.mark.parametrize("impl", ["channel_stack", "conv_stack"])
def test_training_trajectory_identical_across_impls(impl):
    """The three implementations are the same math: training curves match."""
    ds = make_dataset(60, num_classes=3, image_size=8, seed=22)

    def run(which):
        seed_all(222)
        model = _small_scc_net(impl=which)
        trainer = Trainer(model, TrainConfig(epochs=2, lr=0.05, momentum=0.9))
        loader = DataLoader(ds, batch_size=20, shuffle=True, seed=23)
        return trainer.fit(loader).losses

    ref = run("dsxplore")
    other = run(impl)
    np.testing.assert_allclose(other, ref, rtol=2e-3, atol=2e-4)


def test_switching_impl_mid_training_is_seamless():
    seed_all(203)
    ds = make_dataset(40, num_classes=2, image_size=8, seed=24)
    model = _small_scc_net()
    trainer = Trainer(model, TrainConfig(epochs=1, lr=0.05))
    loader = DataLoader(ds, batch_size=20, seed=25)
    trainer.fit(loader)
    set_scc_impl(model, "conv_stack")
    # keeps training without error, from the same weights
    hist = trainer.fit(loader)
    assert np.isfinite(hist.losses[-1])


def test_converted_vgg_trains():
    # VGG's five pools need >= 32x32 inputs (8x8 would go spatially empty —
    # covered by test_too_small_input_raises below).
    seed_all(204)
    ds = make_dataset(48, num_classes=4, image_size=32, noise=0.25, seed=26)
    model = build_model("vgg16", width_mult=0.125, num_classes=4)
    model, replaced = convert_model(model, scheme="scc", cg=2, co=0.5)
    assert replaced == 12
    trainer = Trainer(model, TrainConfig(epochs=1, lr=0.05, momentum=0.9))
    hist = trainer.fit(DataLoader(ds, batch_size=24, seed=27))
    assert np.isfinite(hist.losses[-1])


def test_too_small_input_raises_instead_of_nan():
    seed_all(207)
    model = build_model("vgg16", width_mult=0.125, num_classes=4)
    with pytest.raises(ValueError, match="empty output|too small"):
        model(Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32)))


def test_eval_deterministic_after_training():
    seed_all(205)
    ds = make_dataset(60, num_classes=3, image_size=8, seed=28)
    model = _small_scc_net()
    trainer = Trainer(model, TrainConfig(epochs=1, lr=0.05))
    trainer.fit(DataLoader(ds, batch_size=30, seed=29))
    model.eval()
    x = Tensor(ds.images[:8])
    from repro.tensor import no_grad

    with no_grad():
        a = model(x).data.copy()
        b = model(x).data.copy()
    np.testing.assert_array_equal(a, b)


def test_state_dict_roundtrip_preserves_predictions():
    seed_all(206)
    model = _small_scc_net()
    seed_all(999)
    clone = _small_scc_net()
    clone.load_state_dict(model.state_dict())
    x = Tensor(np.random.default_rng(0).standard_normal((4, 3, 8, 8)).astype(np.float32))
    from repro.tensor import no_grad

    model.eval(), clone.eval()
    with no_grad():
        np.testing.assert_allclose(model(x).data, clone(x).data, atol=1e-6)
