"""Model zoo: construction, shapes, known parameter counts, factorization."""
import numpy as np
import pytest

from repro import nn
from repro.core.scc import SlidingChannelConv2d
from repro.models import build_model, available_models
from repro.models.vgg import scale_width
from repro.tensor import Tensor, no_grad
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(61)


def _forward(model, size=16):
    model.eval()
    with no_grad():
        return model(Tensor(np.zeros((2, 3, size, size), dtype=np.float32)))


def test_available_models():
    assert set(available_models()) == {"vgg16", "vgg19", "mobilenet", "resnet18", "resnet50"}


def test_unknown_model_rejected():
    with pytest.raises(ValueError, match="unknown model"):
        build_model("alexnet")


@pytest.mark.parametrize("name", ["vgg16", "mobilenet", "resnet18"])
def test_origin_forward_shapes(name):
    model = build_model(name, width_mult=0.25, num_classes=7)
    out = _forward(model, 32)
    assert out.shape == (2, 7)


@pytest.mark.parametrize("name", ["vgg16", "mobilenet", "resnet18"])
def test_scc_forward_shapes(name):
    model = build_model(name, scheme="scc", cg=2, co=0.5, width_mult=0.25, num_classes=7)
    out = _forward(model, 32)
    assert out.shape == (2, 7)
    n_scc = sum(isinstance(m, SlidingChannelConv2d) for _, m in model.named_modules())
    assert n_scc > 0


# Known full-size parameter counts (CIFAR geometry), cross-checked against
# the paper's Table II "Param." column where the paper is self-consistent.
KNOWN_PARAMS = {
    "vgg16": 14_724_042,
    "vgg19": 20_035_018,
    "resnet18": 11_173_962,
    "resnet50": 23_520_842,
    "mobilenet": 3_217_226,
}


@pytest.mark.parametrize("name", sorted(KNOWN_PARAMS))
def test_full_size_parameter_counts(name):
    model = build_model(name)
    assert model.num_parameters() == KNOWN_PARAMS[name]


def test_paper_param_matches_table2():
    # Table II reports 14.73M / 20.04M / 11.17M / 23.52M for these models.
    for name, paper_m in [("vgg16", 14.73), ("vgg19", 20.04), ("resnet18", 11.17), ("resnet50", 23.52)]:
        ours = build_model(name).num_parameters() / 1e6
        assert abs(ours - paper_m) < 0.01, f"{name}: {ours:.2f}M vs paper {paper_m}M"


def test_scc_conversion_shrinks_models():
    for name in ["vgg16", "mobilenet", "resnet18"]:
        origin = build_model(name, width_mult=0.25)
        factorized = build_model(name, scheme="scc", cg=2, co=0.5, width_mult=0.25)
        assert factorized.num_parameters() < origin.num_parameters(), name


def test_gpw_and_scc_models_same_size():
    for name in ["mobilenet", "vgg16"]:
        gpw = build_model(name, scheme="gpw", cg=4, width_mult=0.25)
        scc = build_model(name, scheme="scc", cg=4, co=0.5, width_mult=0.25)
        assert gpw.num_parameters() == scc.num_parameters(), name


def test_resnet_bottleneck_keeps_pointwise_convs():
    model = build_model("resnet50", scheme="scc", width_mult=0.125)
    kinds = [type(m).__name__ for _, m in model.named_modules()]
    # 1x1 reduce/expand convs survive factorization (paper Section V-C).
    assert "Conv2d" in kinds and "SlidingChannelConv2d" in kinds


def test_vgg_stem_is_standard_conv():
    model = build_model("vgg16", scheme="scc", width_mult=0.125)
    first_conv = model.features[0]
    assert isinstance(first_conv, nn.Conv2d) and first_conv.in_channels == 3


def test_imagenet_stem_downsamples():
    cifar = build_model("resnet18", width_mult=0.125)
    imagenet = build_model("resnet18", width_mult=0.125, imagenet_stem=True)
    with no_grad():
        x = Tensor(np.zeros((1, 3, 64, 64), dtype=np.float32))
        c = cifar.eval().stem(x)
        i = imagenet.eval().stem(x)
    assert c.shape[2] == 64 and i.shape[2] == 16


def test_mobilenet_scheme_variants_block_types():
    pw = build_model("mobilenet", width_mult=0.25)
    assert isinstance(pw.blocks[0].pointwise, nn.PointwiseConv2d)
    scc = build_model("mobilenet", scheme="scc", cg=2, co=0.5, width_mult=0.25)
    assert isinstance(scc.blocks[0].pointwise, SlidingChannelConv2d)


def test_scale_width():
    assert scale_width(64, 1.0) == 64
    assert scale_width(64, 0.5) == 32
    assert scale_width(64, 0.01) == 8   # floor keeps cg<=8 valid
    assert scale_width(100, 0.5) == 48  # rounds to multiple of 8


def test_width_mult_monotone():
    small = build_model("vgg16", width_mult=0.125).num_parameters()
    big = build_model("vgg16", width_mult=0.25).num_parameters()
    assert small < big


def test_models_train_mode_gradients():
    model = build_model("resnet18", scheme="scc", cg=2, co=0.5, width_mult=0.125)
    x = Tensor(np.random.default_rng(0).standard_normal((2, 3, 16, 16)).astype(np.float32))
    out = model(x)
    (out * out).sum().backward()
    missing = [n for n, p in model.named_parameters() if p.grad is None]
    assert not missing, f"layers with no gradient: {missing[:5]}"
