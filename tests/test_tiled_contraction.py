"""Tiled contraction kernels: the bitwise-stability contract.

PR "tiled bitwise-stable contractions" splits the dense conv2d forward /
grad-weight and the SCC input-centric pull-GEMM along their contraction
axes and combines the per-tile partials in the canonical fixed-order
pairwise tree (:func:`repro.backend.combine_partials_tree`).  The contract
under test:

- for **any** tile size and **any** worker count, ``threaded`` output is
  bitwise-equal to ``numpy`` output at the same tile size (the tree order
  depends only on the tile count, never on completion order);
- the ``fast`` precision tier relaxes exactly this — completion-order
  accumulation, ``allclose`` to the canonical result within the documented
  bounds — and only on the threaded combine (numpy is always canonical);
- tile sizes come from the explicit schedule table with a measured-default
  fallback, and ``tile_override`` bypasses both without touching plan
  cache keys.
"""
import numpy as np
import pytest

from repro.backend import (
    combine_partials_tree,
    conv2d_plan,
    get_kernel,
    num_workers,
    precision,
    precision_tier,
    scc_plan,
    schedule_table,
    set_precision_tier,
    tile_override,
    tile_slices,
)
from repro.backend.schedule import (
    TileSchedule,
    conv_schedule,
    current_tile_override,
    effective_gradw_tile,
    effective_k_tile,
    effective_pull_tile,
    pull_tile_for,
)
from repro.core.channel_map import SCCConfig

# The grid the acceptance criteria name: every tile size crossed with every
# worker count, each point asserted bitwise against numpy at the same tile.
TILE_SWEEP = (8, 32, 128, 0)   # 0 = the monolithic untiled contraction
WORKERS = (1, 2, 4)


# ---------------------------------------------------------------------------
# The canonical combine and the tiling primitives
# ---------------------------------------------------------------------------

def test_combine_partials_tree_is_fixed_pairwise_order():
    rng = np.random.default_rng(0)
    parts = [rng.standard_normal((3, 4)).astype(np.float32) for _ in range(5)]
    copies = [p.copy() for p in parts]
    # ((p0 + p1) + (p2 + p3)) + p4, spelled out level by level.
    expected = ((copies[0] + copies[1]) + (copies[2] + copies[3])) + copies[4]
    assert np.array_equal(combine_partials_tree(parts), expected)


def test_combine_partials_tree_differs_from_left_fold():
    # Non-associativity witness: the tree order is a *different* float
    # result than the naive left fold, which is exactly why the combine
    # order must be pinned for bitwise stability.
    vals = [5e7, 5e7, 4.0, 4.0]
    parts = [np.array([v], dtype=np.float32) for v in vals]
    left = parts[0].copy()
    for p in parts[1:]:
        left = left + p                  # ((p0 + p1) + p2) + p3 == 1e8
    tree = combine_partials_tree(parts)  # (p0 + p1) + (p2 + p3) == 1e8 + 8
    assert not np.array_equal(tree, left)
    assert tree == pytest.approx(left, rel=1e-6)


def test_combine_partials_tree_single_and_empty():
    only = np.arange(4.0)
    assert combine_partials_tree([only]) is only
    with pytest.raises(ValueError, match="at least one partial"):
        combine_partials_tree([])


def test_tile_slices_partition_in_order():
    slices = tile_slices(10, 4)
    assert slices == [slice(0, 4), slice(4, 8), slice(8, 10)]
    covered = [i for sl in slices for i in range(sl.start, sl.stop)]
    assert covered == list(range(10))
    # Untiled degenerate cases: non-positive tile or tile >= extent.
    assert tile_slices(10, 0) == [slice(0, 10)]
    assert tile_slices(10, -3) == [slice(0, 10)]
    assert tile_slices(10, 10) == [slice(0, 10)]
    assert tile_slices(10, 64) == [slice(0, 10)]


# ---------------------------------------------------------------------------
# Schedule table resolution and the tile override
# ---------------------------------------------------------------------------

def test_conv_schedule_explicit_entry_wins():
    # The bench workload class has a hand-picked table entry.
    sched = conv_schedule((8, 64, 16, 16), (128, 64, 3, 3), stride=1, groups=1)
    assert sched == TileSchedule(k_tile=16, gradw_tile=2)
    assert schedule_table()["conv2d"][(64, 128, 3, 1)] == (16, 2)


def test_conv_schedule_grouped_convs_stay_untiled():
    # Grouped convs parallelize over the group loop; K-tiling them would
    # stack overhead on an axis that is already sharded.
    sched = conv_schedule((8, 64, 16, 16), (128, 32, 3, 3), stride=1, groups=2)
    assert sched == TileSchedule(k_tile=0, gradw_tile=0)


def test_conv_schedule_fallback_targets_four_tiles():
    # Unknown dense workload: ~4 tiles of >= 16 channels each.
    sched = conv_schedule((8, 100, 16, 16), (24, 100, 5, 5), stride=1, groups=1)
    assert sched.k_tile == 25
    assert sched.gradw_tile == 2
    # Extents too small for two minimum tiles stay untiled.
    tiny = conv_schedule((2, 16, 8, 8), (24, 16, 5, 5), stride=1, groups=1)
    assert tiny.k_tile == 0 and tiny.gradw_tile == 0


def test_conv_schedule_fallback_small_batch_never_singleton_tiles():
    # Regression: the fallback used to shred n in 4..7 into ceil(n/4) = 1
    # batch tiles — n singleton einsums plus a combine tree, pure overhead.
    # The guard mirrors _default_tile: tiles never drop below the minimum
    # extent (2), and batches too small for two such tiles stay untiled.
    for n in (4, 5, 6, 7):
        sched = conv_schedule((n, 100, 16, 16), (24, 100, 5, 5),
                              stride=1, groups=1)
        assert sched.gradw_tile >= 2, n
    for n in (1, 2, 3):
        sched = conv_schedule((n, 100, 16, 16), (24, 100, 5, 5),
                              stride=1, groups=1)
        assert sched.gradw_tile == 0, n
    # Larger batches: ~4 tiles, as before.
    assert conv_schedule((16, 100, 16, 16), (24, 100, 5, 5),
                         stride=1, groups=1).gradw_tile == 4


@pytest.mark.parametrize("n", [4, 5, 7])
def test_dense_gradw_small_batch_schedule_bitwise(n):
    # The guarded small-batch schedules stay on the bitwise contract: the
    # plan-resolved gradw tile gives identical numpy/threaded grads.
    rng = np.random.default_rng(12)
    x = rng.standard_normal((n, 100, 8, 8)).astype(np.float32)
    w = rng.standard_normal((24, 100, 5, 5)).astype(np.float32)
    plan = conv2d_plan(x.shape, w.shape, 1, 1, 1, x.dtype)
    assert plan.gradw_tile == 2
    grad = rng.standard_normal(plan.out_shape).astype(np.float32)
    _, ctx_np = get_kernel("conv2d", "numpy")(plan, x, w)
    _, gw_np = get_kernel("conv2d_backward", "numpy")(plan, ctx_np, grad)
    with num_workers(3):
        _, ctx_th = get_kernel("conv2d", "threaded")(plan, x, w)
        _, gw_th = get_kernel("conv2d_backward", "threaded")(plan, ctx_th, grad)
    assert np.array_equal(gw_np, gw_th)


def test_pull_tile_table_and_fallback():
    assert pull_tile_for(64, 128) == 32          # explicit table entry
    assert schedule_table()["pull_gemm"][(64, 128)] == 32
    assert pull_tile_for(40, 96) == 24           # fallback: ceil(96 / 4)
    assert pull_tile_for(40, 24) == 0            # too small: untiled


def test_tile_override_is_scoped_and_merges():
    assert current_tile_override() is None
    assert effective_k_tile(16) == 16            # plan default wins unopposed
    with tile_override(k_tile=8):
        assert effective_k_tile(16) == 8
        assert effective_gradw_tile(2) == 2      # untouched field passes through
        with tile_override(pull_tile=4):         # nested override merges
            assert effective_k_tile(16) == 8
            assert effective_pull_tile(32) == 4
        assert effective_pull_tile(32) == 32
    assert current_tile_override() is None
    with tile_override(k_tile=0):                # 0 forces the untiled path
        assert effective_k_tile(16) == 0


# ---------------------------------------------------------------------------
# Precision tiers
# ---------------------------------------------------------------------------

def test_precision_tier_defaults_and_context():
    assert precision_tier() == "bitwise"
    with precision("fast"):
        assert precision_tier() == "fast"
        with precision("bitwise"):
            assert precision_tier() == "bitwise"
        assert precision_tier() == "fast"
    assert precision_tier() == "bitwise"


def test_precision_tier_validation():
    with pytest.raises(ValueError, match="tier"):
        set_precision_tier("approximate")
    with pytest.raises(ValueError, match="tier"):
        with precision("loose"):
            pass  # pragma: no cover


def test_set_precision_tier_process_wide():
    try:
        set_precision_tier("fast")
        assert precision_tier() == "fast"
        with precision("bitwise"):               # thread-local still wins
            assert precision_tier() == "bitwise"
    finally:
        set_precision_tier("bitwise")
    assert precision_tier() == "bitwise"


# ---------------------------------------------------------------------------
# Bitwise grid: dense conv2d forward/backward, every tile x every worker
# ---------------------------------------------------------------------------

def _dense_conv_case():
    rng = np.random.default_rng(42)
    x = rng.standard_normal((2, 256, 5, 5)).astype(np.float32)
    w = rng.standard_normal((8, 256, 3, 3)).astype(np.float32)
    plan = conv2d_plan(x.shape, w.shape, 1, 1, 1, x.dtype)
    grad = rng.standard_normal((2, 8, 5, 5)).astype(np.float32)
    return plan, x, w, grad


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("tile", TILE_SWEEP)
def test_dense_conv_bitwise_across_tiles_and_workers(tile, workers):
    plan, x, w, grad = _dense_conv_case()
    with tile_override(k_tile=tile, gradw_tile=min(tile, 2) if tile else 0):
        out_np, ctx_np = get_kernel("conv2d", "numpy")(plan, x, w)
        gx_np, gw_np = get_kernel("conv2d_backward", "numpy")(plan, ctx_np, grad)
        with num_workers(workers):
            out_th, ctx_th = get_kernel("conv2d", "threaded")(plan, x, w)
            gx_th, gw_th = get_kernel("conv2d_backward", "threaded")(
                plan, ctx_th, grad)
    assert np.array_equal(out_np, out_th)
    assert np.array_equal(gx_np, gx_th)
    assert np.array_equal(gw_np, gw_th)


def test_dense_conv_default_schedule_bitwise_across_workers():
    # No override: the plan's own schedule-table tiles (the production path).
    rng = np.random.default_rng(7)
    x = rng.standard_normal((4, 64, 6, 6)).astype(np.float32)
    w = rng.standard_normal((128, 64, 3, 3)).astype(np.float32)
    plan = conv2d_plan(x.shape, w.shape, 1, 1, 1, x.dtype)
    assert plan.k_tile == 16 and plan.gradw_tile == 2   # table entry resolved
    grad = rng.standard_normal((4, 128, 6, 6)).astype(np.float32)
    out_np, ctx_np = get_kernel("conv2d", "numpy")(plan, x, w)
    gx_np, gw_np = get_kernel("conv2d_backward", "numpy")(plan, ctx_np, grad)
    for workers in WORKERS:
        with num_workers(workers):
            out_th, ctx_th = get_kernel("conv2d", "threaded")(plan, x, w)
            gx_th, gw_th = get_kernel("conv2d_backward", "threaded")(
                plan, ctx_th, grad)
        assert np.array_equal(out_np, out_th), workers
        assert np.array_equal(gx_np, gx_th), workers
        assert np.array_equal(gw_np, gw_th), workers


@pytest.mark.parametrize("gradw_tile", [1, 2, 3, 0])
def test_dense_gradw_batch_tiling_bitwise(gradw_tile):
    rng = np.random.default_rng(9)
    x = rng.standard_normal((6, 32, 5, 5)).astype(np.float32)
    w = rng.standard_normal((8, 32, 3, 3)).astype(np.float32)
    plan = conv2d_plan(x.shape, w.shape, 1, 1, 1, x.dtype)
    grad = rng.standard_normal((6, 8, 5, 5)).astype(np.float32)
    with tile_override(k_tile=0, gradw_tile=gradw_tile):
        _, ctx_np = get_kernel("conv2d", "numpy")(plan, x, w)
        _, gw_np = get_kernel("conv2d_backward", "numpy")(plan, ctx_np, grad)
        with num_workers(3):
            _, ctx_th = get_kernel("conv2d", "threaded")(plan, x, w)
            _, gw_th = get_kernel("conv2d_backward", "threaded")(
                plan, ctx_th, grad)
    assert np.array_equal(gw_np, gw_th)


def test_tiled_conv_matches_untiled_to_tolerance():
    # Different tile counts reassociate the K-reduction, so across tile
    # sizes equality is allclose, not bitwise — the bitwise contract is
    # per tile size, across backends/workers.
    plan, x, w, _ = _dense_conv_case()
    with tile_override(k_tile=0):
        ref, _ = get_kernel("conv2d", "numpy")(plan, x, w)
    for tile in (8, 32, 128):
        with tile_override(k_tile=tile):
            out, _ = get_kernel("conv2d", "numpy")(plan, x, w)
        # Same bounds the fast tier documents: the atol floor covers
        # outputs near zero whose partials cancel.
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)


# ---------------------------------------------------------------------------
# Bitwise grid: the SCC input-centric pull-GEMM
# ---------------------------------------------------------------------------

def _pull_case():
    cfg = SCCConfig(64, 256, 4, 0.25)
    plan = scc_plan(cfg)
    rng = np.random.default_rng(11)
    x = rng.standard_normal((2, cfg.in_channels, 5, 5)).astype(np.float32)
    w = rng.standard_normal((cfg.out_channels, cfg.group_width)).astype(np.float32)
    grad = rng.standard_normal((2, cfg.out_channels, 5, 5)).astype(np.float32)
    return plan, x, w, grad


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("tile", TILE_SWEEP)
def test_pull_gemm_bitwise_across_tiles_and_workers(tile, workers):
    plan, x, w, grad = _pull_case()
    kwargs = dict(strategy="dsxplore", backward_design="input_centric")
    with tile_override(pull_tile=tile):
        gx_np, gw_np = get_kernel("scc_backward", "numpy")(
            plan, {"x": x, "w": w}, grad, **kwargs)
        with num_workers(workers):
            gx_th, gw_th = get_kernel("scc_backward", "threaded")(
                plan, {"x": x, "w": w}, grad, **kwargs)
    assert np.array_equal(gx_np, gx_th)
    assert np.array_equal(gw_np, gw_th)


def test_pull_gemm_plan_resolves_schedule_tile():
    plan = scc_plan(SCCConfig(64, 128, 4, 0.25))
    assert plan.pull_tile == 32                    # explicit table entry


# ---------------------------------------------------------------------------
# The fast tier: completion-order combine within documented bounds
# ---------------------------------------------------------------------------

FAST_RTOL = 1e-4
FAST_ATOL = 1e-4


def test_fast_tier_within_documented_bounds():
    plan, x, w, _ = _dense_conv_case()
    with tile_override(k_tile=8):
        canonical, _ = get_kernel("conv2d", "numpy")(plan, x, w)
        with precision("fast"), num_workers(4):
            fast, _ = get_kernel("conv2d", "threaded")(plan, x, w)
    assert np.allclose(fast, canonical, rtol=FAST_RTOL, atol=FAST_ATOL)


def test_fast_tier_never_touches_numpy_backend():
    # The tier only selects the *threaded* combine; numpy stays canonical,
    # so a fast-tier process still has a bitwise reference to compare to.
    plan, x, w, _ = _dense_conv_case()
    with tile_override(k_tile=8):
        canonical, _ = get_kernel("conv2d", "numpy")(plan, x, w)
        with precision("fast"):
            still_canonical, _ = get_kernel("conv2d", "numpy")(plan, x, w)
    assert np.array_equal(canonical, still_canonical)


def test_bitwise_tier_threaded_is_deterministic_across_repeats():
    plan, x, w, _ = _dense_conv_case()
    outs = []
    with tile_override(k_tile=32), num_workers(4):
        for _ in range(3):
            out, _ = get_kernel("conv2d", "threaded")(plan, x, w)
            outs.append(out)
    assert np.array_equal(outs[0], outs[1])
    assert np.array_equal(outs[0], outs[2])
