"""Module container mechanics: traversal, state dicts, hooks, modes."""
import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(21)


def small_model():
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, bias=False),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 4),
    )


def test_named_parameters_paths():
    m = small_model()
    names = dict(m.named_parameters())
    assert "0.weight" in names
    assert "1.weight" in names and "1.bias" in names
    assert "4.weight" in names and "4.bias" in names
    assert len(names) == 5


def test_num_parameters():
    m = small_model()
    expected = 8 * 3 * 9 + 8 + 8 + 8 * 4 + 4
    assert m.num_parameters() == expected


def test_named_modules_includes_nested():
    m = nn.Sequential(nn.Sequential(nn.ReLU()), nn.Identity())
    names = [n for n, _ in m.named_modules()]
    assert "" in names and "0" in names and "0.0" in names and "1" in names


def test_train_eval_propagates():
    m = small_model()
    m.eval()
    assert all(not mod.training for _, mod in m.named_modules())
    m.train()
    assert all(mod.training for _, mod in m.named_modules())


def test_zero_grad_clears_all():
    m = small_model()
    out = m(Tensor(np.random.default_rng(0).standard_normal((2, 3, 8, 8)).astype(np.float32)))
    out.sum().backward()
    assert any(p.grad is not None for p in m.parameters())
    m.zero_grad()
    assert all(p.grad is None for p in m.parameters())


def test_state_dict_roundtrip():
    m1 = small_model()
    m2 = small_model()
    state = m1.state_dict()
    assert "1.running_mean" in state  # buffers included
    m2.load_state_dict(state)
    for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
        assert n1 == n2
        np.testing.assert_array_equal(p1.data, p2.data)


def test_load_state_dict_rejects_bad_shape():
    m = small_model()
    state = m.state_dict()
    state["4.bias"] = np.zeros(5, dtype=np.float32)
    with pytest.raises(ValueError, match="shape mismatch"):
        m.load_state_dict(state)


def test_load_state_dict_rejects_unknown_key():
    m = small_model()
    with pytest.raises(KeyError, match="unexpected"):
        m.load_state_dict({"nope": np.zeros(1)})


def test_forward_hooks_fire_and_remove():
    m = small_model()
    calls = []
    handle = m[0].register_forward_hook(lambda mod, args, out: calls.append(out.shape))
    x = Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32))
    m(x)
    assert calls == [(1, 8, 8, 8)]
    handle.remove()
    m(x)
    assert len(calls) == 1


def test_sequential_indexing_and_len():
    m = small_model()
    assert len(m) == 5
    assert isinstance(m[0], nn.Conv2d)
    assert isinstance(m[4], nn.Linear)
    assert len(list(iter(m))) == 5


def test_module_list():
    ml = nn.ModuleList([nn.ReLU(), nn.Identity()])
    ml.append(nn.Flatten())
    assert len(ml) == 3
    assert isinstance(ml[2], nn.Flatten)
    assert isinstance(ml[-1], nn.Flatten)
    # children registered for traversal
    assert len(list(ml.children())) == 3


def test_repr_contains_children():
    text = repr(small_model())
    assert "Conv2d" in text and "Linear" in text
