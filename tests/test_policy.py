"""ServingPolicy consolidation: shim equivalence, deprecation, coercion.

The contract: a bare :class:`ServingPolicy` passed to any transport behaves
bit-for-bit like the legacy per-transport config carrying the same shared
fields; the legacy classes still construct (as deprecated shims) and
``coerce`` normalises every accepted form without emitting the user-facing
deprecation warning on internal paths.
"""
import pickle
import warnings

import numpy as np
import pytest

from repro.serve import (
    AsyncGateway,
    GatewayConfig,
    Server,
    ServerConfig,
    ServingPolicy,
)
from repro.serve.sched import RetryPolicy, SchedCore


def _silent(factory):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return factory()


# ---------------------------------------------------------------------------
# The shared dataclass
# ---------------------------------------------------------------------------

def test_policy_defaults_match_legacy_server_defaults():
    policy = ServingPolicy()
    legacy = _silent(ServerConfig)
    for name in ("bucket_sizes", "max_latency", "max_pending",
                 "adaptive_buckets", "shed_policy", "retry",
                 "isolate_failures", "breaker_window", "degrade_after"):
        assert getattr(policy, name) == getattr(legacy, name)


def test_policy_validation():
    with pytest.raises(ValueError, match="bucket_sizes"):
        ServingPolicy(bucket_sizes=())
    with pytest.raises(ValueError, match="bucket_sizes"):
        ServingPolicy(bucket_sizes=(0, 2))
    with pytest.raises(ValueError, match="max_latency"):
        ServingPolicy(max_latency=0.0)
    with pytest.raises(ValueError, match="max_pending"):
        ServingPolicy(max_pending=0)
    with pytest.raises(ValueError, match="shed_policy"):
        ServingPolicy(shed_policy="oldest")
    with pytest.raises(ValueError, match="breaker_window"):
        ServingPolicy(breaker_window=0)
    with pytest.raises(ValueError, match="degrade_after"):
        ServingPolicy(degrade_after=0)


def test_policy_sorts_and_dedups_buckets():
    assert ServingPolicy(bucket_sizes=(8, 2, 2, 4)).bucket_sizes == (2, 4, 8)


def test_policy_bucket_helpers():
    policy = ServingPolicy(bucket_sizes=(2, 4, 8))
    assert policy.max_bucket == 8
    assert policy.bucket_for(1) == 2
    assert policy.bucket_for(3) == 4
    assert policy.bucket_for(9) == 8


def test_make_breaker_mirrors_knobs():
    assert ServingPolicy().make_breaker() is None
    breaker = ServingPolicy(
        breaker_window=16, breaker_threshold=0.25,
        breaker_min_samples=4, breaker_cooldown=2.0,
    ).make_breaker()
    assert breaker is not None
    assert breaker.window == 16
    assert breaker.threshold == 0.25


# ---------------------------------------------------------------------------
# Deprecated shims
# ---------------------------------------------------------------------------

def test_direct_shim_construction_warns():
    for shim in (ServerConfig, GatewayConfig):
        with pytest.warns(DeprecationWarning, match=shim.__name__):
            shim()


def test_internal_coercion_never_warns():
    policy = ServingPolicy(max_latency=0.02)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        ServerConfig.coerce(None)
        ServerConfig.coerce(policy)
        GatewayConfig.coerce(None)
        GatewayConfig.coerce(policy)
        GatewayConfig.from_policy(policy, fairness="fifo")


def test_coerce_forms():
    policy = ServingPolicy(max_latency=0.02, breaker_window=4)
    lifted = ServerConfig.coerce(policy)
    assert isinstance(lifted, ServerConfig)
    assert lifted.max_latency == 0.02
    assert lifted.breaker_window == 4
    assert lifted.result_capacity == 65536   # extras keep their defaults

    legacy = _silent(lambda: ServerConfig(max_latency=0.03))
    assert ServerConfig.coerce(legacy) is legacy   # instances pass through

    assert ServerConfig.coerce(None).max_latency == ServingPolicy().max_latency
    with pytest.raises(TypeError, match="ServingPolicy"):
        ServerConfig.coerce({"max_latency": 0.02})


def test_gateway_shim_keeps_historical_defaults():
    config = GatewayConfig.coerce(None)
    assert config.adaptive_buckets is True
    assert config.shed_policy == "deadline"
    assert config.fairness == "drr"
    # A bare policy means what it says: gateway defaults do NOT leak in.
    lifted = GatewayConfig.coerce(ServingPolicy())
    assert lifted.adaptive_buckets is False
    assert lifted.shed_policy is None


def test_from_policy_carries_retry_and_extras():
    policy = ServingPolicy(retry=RetryPolicy(max_attempts=3), max_pending=7)
    config = GatewayConfig.from_policy(policy, max_concurrent_batches=2)
    assert config.retry is policy.retry
    assert config.max_pending == 7
    assert config.max_concurrent_batches == 2


def test_shims_pickle_without_warning():
    legacy = _silent(lambda: ServerConfig(max_latency=0.02))
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        clone = pickle.loads(pickle.dumps(legacy))
    assert clone == legacy


# ---------------------------------------------------------------------------
# Transports accept a bare policy
# ---------------------------------------------------------------------------

def test_server_accepts_policy_and_legacy_equally():
    from repro.models import build_serving_model

    policy = ServingPolicy(bucket_sizes=(1, 2), max_latency=1.0)
    legacy = _silent(lambda: ServerConfig(bucket_sizes=(1, 2), max_latency=1.0))
    image = np.random.default_rng(0).standard_normal((3, 16, 16))
    image = image.astype(np.float32)
    outs = []
    for config in (policy, legacy):
        model = build_serving_model("mobilenet", scheme="scc",
                                    width_mult=0.25, seed=9)
        server = Server(model, input_shapes=[(3, 16, 16)], config=config)
        handle = server.submit(image)
        server.flush()
        outs.append(server.result(handle).output)
        assert isinstance(server.config, ServerConfig)
    np.testing.assert_array_equal(outs[0], outs[1])


def test_gateway_accepts_policy():
    gateway = AsyncGateway(ServingPolicy(bucket_sizes=(1, 2)))
    assert isinstance(gateway.config, GatewayConfig)
    # Policy semantics preserved: no deadline shedding unless asked for.
    assert gateway.config.shed_policy is None


# ---------------------------------------------------------------------------
# exec_estimate auto-calibration (SchedCore.observe_exec)
# ---------------------------------------------------------------------------

def test_observe_exec_seeds_then_ewma():
    core = SchedCore(bucket_sizes=(1,))
    core.add_model("m", exec_estimate=None)
    assert core.stats("m")["exec_auto"] is True
    assert core.stats("m")["exec_estimate"] == 0.0
    assert core.observe_exec("m", 0.10) == pytest.approx(0.10)   # seed
    est = core.observe_exec("m", 0.20, alpha=0.25)               # EWMA
    assert est == pytest.approx(0.10 + 0.25 * (0.20 - 0.10))
    assert core.stats("m")["exec_estimate"] == pytest.approx(est)


def test_observe_exec_static_estimates_never_move():
    core = SchedCore(bucket_sizes=(1,))
    core.add_model("m", exec_estimate=0.05)
    assert core.stats("m")["exec_auto"] is False
    assert core.observe_exec("m", 10.0) == 0.05
    assert core.stats("m")["exec_estimate"] == 0.05


def test_observe_exec_validation():
    core = SchedCore(bucket_sizes=(1,))
    core.add_model("m", exec_estimate=None)
    with pytest.raises(ValueError, match="seconds"):
        core.observe_exec("m", -1.0)
    with pytest.raises(ValueError):
        core.add_model("bad", exec_estimate=-0.1)
