"""SlidingChannelConv2d autograd integration tests."""
import numpy as np
import pytest

from repro.core.channel_map import channel_windows
from repro.core.scc import SCCFunction, SlidingChannelConv2d
from repro.tensor import Tensor
from repro.utils import seed_all

from tests.helpers import assert_grad_close, numerical_grad


@pytest.fixture(autouse=True)
def _seed():
    seed_all(41)


def test_forward_shape_and_bias():
    layer = SlidingChannelConv2d(8, 16, cg=2, co=0.5)
    x = Tensor(np.zeros((2, 8, 5, 5), dtype=np.float32))
    out = layer(x)
    assert out.shape == (2, 16, 5, 5)
    np.testing.assert_allclose(
        out.data, np.broadcast_to(layer.bias.data.reshape(1, -1, 1, 1), out.shape), atol=1e-6
    )


def test_weight_shape_is_group_width():
    layer = SlidingChannelConv2d(16, 32, cg=4, co=0.25, bias=False)
    assert layer.weight.shape == (32, 4)
    assert layer.num_parameters() == 128


@pytest.mark.parametrize("impl", ["channel_stack", "conv_stack", "dsxplore"])
def test_gradcheck_all_impls(impl):
    rng = np.random.default_rng(0)
    x_data = rng.standard_normal((2, 6, 3, 3)).astype(np.float64)
    layer = SlidingChannelConv2d(6, 9, cg=3, co=0.5, bias=True, impl=impl)
    w_data = layer.weight.data.astype(np.float64)
    b_data = layer.bias.data.astype(np.float64)

    x = Tensor(x_data, requires_grad=True)
    out = layer(x)
    (out * out).sum().backward()

    wins = channel_windows(6, 9, 3, 0.5)

    def loss():
        o = np.zeros((2, 9, 3, 3))
        for oid in range(9):
            for k in range(wins.shape[1]):
                o[:, oid] += w_data[oid, k] * x_data[:, wins[oid, k]]
            o[:, oid] += b_data[oid]
        return float((o**2).sum())

    assert_grad_close(x.grad, numerical_grad(loss, x_data), name=f"{impl}/x")
    assert_grad_close(layer.weight.grad, numerical_grad(loss, w_data), name=f"{impl}/w")
    assert_grad_close(layer.bias.grad, numerical_grad(loss, b_data), name=f"{impl}/b")


def test_output_centric_backward_grads_match_input_centric():
    rng = np.random.default_rng(1)
    x_data = rng.standard_normal((2, 8, 4, 4)).astype(np.float32)
    grads = {}
    for design in ("input_centric", "output_centric"):
        seed_all(5)
        layer = SlidingChannelConv2d(8, 16, cg=2, co=0.5, impl="dsxplore",
                                     backward_design=design, bias=False)
        x = Tensor(x_data.copy(), requires_grad=True)
        (layer(x) ** 2).sum().backward()
        grads[design] = (x.grad.copy(), layer.weight.grad.copy())
    np.testing.assert_allclose(grads["input_centric"][0], grads["output_centric"][0], rtol=1e-4, atol=1e-4)
    np.testing.assert_allclose(grads["input_centric"][1], grads["output_centric"][1], rtol=1e-4, atol=1e-4)


def test_reentrant_double_forward_then_backward():
    # Two forward calls through the same layer before backward: per-call
    # saved state must not be clobbered (checkpointed on the Function node).
    layer = SlidingChannelConv2d(4, 4, cg=2, co=0.5, bias=False)
    rng = np.random.default_rng(2)
    x1 = Tensor(rng.standard_normal((1, 4, 3, 3)).astype(np.float32), requires_grad=True)
    x2 = Tensor(rng.standard_normal((1, 4, 3, 3)).astype(np.float32), requires_grad=True)
    out = (layer(x1) * layer(x2)).sum()
    out.backward()
    assert x1.grad is not None and x2.grad is not None
    # d/dx1 sum(f(x1)*f(x2)) where f linear: grad_x1 = f^T(f(x2)); nonzero.
    assert np.abs(x1.grad).max() > 0
    assert np.abs(x2.grad).max() > 0


def test_same_math_across_impls_same_weights():
    seed_all(9)
    ref = SlidingChannelConv2d(8, 12, cg=2, co=0.5, impl="dsxplore")
    x = Tensor(np.random.default_rng(3).standard_normal((2, 8, 4, 4)).astype(np.float32))
    out_ref = ref(x).data.copy()
    for impl in ("channel_stack", "conv_stack"):
        ref.set_impl(impl)
        np.testing.assert_allclose(ref(x).data, out_ref, atol=1e-5)
    ref.set_impl("dsxplore", backward_design="output_centric")
    np.testing.assert_allclose(ref(x).data, out_ref, atol=1e-5)
    assert ref.backward_design == "output_centric"


def test_invalid_configuration_raises_at_construction():
    with pytest.raises(ValueError):
        SlidingChannelConv2d(10, 4, cg=4, co=0.5)   # cg does not divide Cin
    with pytest.raises(ValueError):
        SlidingChannelConv2d(8, 4, cg=2, co=1.0)    # co out of range
    with pytest.raises(ValueError, match="unknown SCC strategy"):
        SlidingChannelConv2d(8, 4, cg=2, co=0.5, impl="magic")


def test_function_requires_strategy():
    with pytest.raises(ValueError, match="strategy"):
        SCCFunction.apply(Tensor(np.zeros((1, 4, 2, 2))), Tensor(np.zeros((4, 2))))


def test_cyclic_dist_property():
    layer = SlidingChannelConv2d(8, 16, cg=2, co=0.5)
    # group_width 4, overlap 2 -> stride 2; period = 8/gcd(2,8) = 4.
    assert layer.cyclic_dist == 4
    from repro.core.channel_map import cyclic_distance

    assert layer.cyclic_dist == cyclic_distance(8, 2, 0.5, 16)


def test_repr_mentions_config():
    text = repr(SlidingChannelConv2d(8, 16, cg=2, co=0.5))
    assert "cg=2" in text and "co=0.50" in text
