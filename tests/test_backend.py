"""The kernel-backend registry and execution-plan cache."""
import numpy as np
import pytest

from repro.backend import (
    KernelRegistry,
    Workload,
    available_backends,
    clear_plan_cache,
    contraction_path,
    conv2d_plan,
    get_kernel,
    plan_cache_stats,
    planned_einsum,
    pool2d_plan,
)
from repro.core.channel_map import SCCConfig, channel_windows
from repro.core.scc_kernels import make_strategy
from repro.tensor import Tensor
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(77)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

CORE_OPS = (
    "conv2d", "conv2d_backward",
    "scc_forward", "scc_backward",
    "maxpool2d", "maxpool2d_backward",
    "avgpool2d", "avgpool2d_backward",
)


def test_registry_has_reference_and_numpy_for_every_op():
    from repro.backend import REGISTRY

    for op in CORE_OPS:
        assert op in REGISTRY.ops()
        # Superset, not equality: additional backends (numba, threaded, ...)
        # must be registrable without touching this test.
        assert {"numpy", "reference"} <= set(available_backends(op)), op


def test_default_backend_follows_preference_order():
    import os

    from repro.backend import REGISTRY

    for op in CORE_OPS:
        expected = next(
            name for name in REGISTRY.default_order
            if name in REGISTRY.backends(op)
        )
        assert get_kernel(op) is get_kernel(op, expected)
        if not os.environ.get("REPRO_BACKEND"):
            # Without an env override the default is the numpy fast path.
            assert REGISTRY.resolve_name(op, "default") == "numpy"
            assert get_kernel(op) is get_kernel(op, "numpy")


def test_registry_unknown_op_and_backend_rejected():
    with pytest.raises(ValueError, match="unknown kernel op"):
        get_kernel("warp_drive")
    with pytest.raises(ValueError, match="no backend"):
        get_kernel("conv2d", "cuda")


def test_registry_register_and_preference_order():
    reg = KernelRegistry()
    reg.register("op", "reference")(lambda: "ref")
    assert reg.get("op", "default")() == "ref"   # falls back when numpy absent
    reg.register("op", "numpy")(lambda: "np")
    assert reg.get("op", "default")() == "np"


# ---------------------------------------------------------------------------
# Workload / plan cache
# ---------------------------------------------------------------------------

def test_workload_is_hashable_and_order_insensitive():
    a = Workload.make("conv2d", (1, 2, 3, 3), (4, 2, 1, 1), "float32",
                      stride=1, padding=0)
    b = Workload.make("conv2d", (1, 2, 3, 3), (4, 2, 1, 1), np.float32,
                      padding=0, stride=1)
    assert a == b and hash(a) == hash(b)
    assert a.param("stride") == 1
    assert a != Workload.make("conv2d", (1, 2, 3, 3), (4, 2, 1, 1), "float32",
                              stride=2, padding=0)


def test_plan_cache_hits_on_repeated_shapes():
    clear_plan_cache()
    p1 = conv2d_plan((2, 4, 8, 8), (6, 4, 3, 3), 1, 1, 1, "float32")
    misses = plan_cache_stats()["misses"]
    p2 = conv2d_plan((2, 4, 8, 8), (6, 4, 3, 3), 1, 1, 1, "float32")
    assert p1 is p2
    assert plan_cache_stats()["misses"] == misses
    assert plan_cache_stats()["hits"] >= 1


def test_scc_plan_shared_across_strategy_instances():
    cfg = SCCConfig(8, 16, 2, 0.5)
    s1 = make_strategy("dsxplore", cfg)
    s2 = make_strategy("channel_stack", cfg)
    assert s1.plan is s2.plan
    np.testing.assert_array_equal(s1.windows, channel_windows(8, 16, 2, 0.5))


def test_plan_cache_eviction_bounded():
    from repro.backend.workload import PlanCache

    cache = PlanCache(maxsize=3)
    for i in range(10):
        cache.get_or_build(Workload.make("x", (i,)), lambda i=i: i)
    assert len(cache) == 3
    # Most recent entries survive.
    assert Workload.make("x", (9,)) in cache


def test_invalid_workload_raises_every_call():
    # Builder failures are not cached: the same bad workload fails twice.
    for _ in range(2):
        with pytest.raises(ValueError, match="groups"):
            conv2d_plan((1, 4, 5, 5), (6, 2, 3, 3), 1, 0, 3, "float64")


def test_planned_einsum_matches_numpy():
    rng = np.random.default_rng(3)
    a = rng.standard_normal((4, 5, 6)).astype(np.float32)
    b = rng.standard_normal((6, 3)).astype(np.float32)
    want = np.einsum("abc,cd->abd", a, b, optimize=True)
    got = planned_einsum("abc,cd->abd", a, b)
    np.testing.assert_allclose(got, want, rtol=1e-6)
    # The path is cached under the (subscripts, shapes, dtype) workload.
    path = contraction_path("abc,cd->abd", (a.shape, b.shape), a.dtype)
    assert path == contraction_path("abc,cd->abd", (a.shape, b.shape), a.dtype)


# ---------------------------------------------------------------------------
# Reference backend == numpy backend
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("stride,padding,groups", [(1, 1, 1), (2, 1, 2), (1, 0, 4)])
def test_conv2d_backends_agree(stride, padding, groups):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 4, 6, 6)).astype(np.float32)
    w = rng.standard_normal((4, 4 // groups, 3, 3)).astype(np.float32)
    plan = conv2d_plan(x.shape, w.shape, stride, padding, groups, x.dtype)
    out_np, ctx_np = get_kernel("conv2d", "numpy")(plan, x, w)
    out_ref, ctx_ref = get_kernel("conv2d", "reference")(plan, x, w)
    np.testing.assert_allclose(out_np, out_ref, atol=1e-5)

    grad = rng.standard_normal(out_np.shape).astype(np.float32)
    gx_np, gw_np = get_kernel("conv2d_backward", "numpy")(plan, ctx_np, grad)
    gx_ref, gw_ref = get_kernel("conv2d_backward", "reference")(plan, ctx_ref, grad)
    np.testing.assert_allclose(gx_np, gx_ref, atol=1e-4)
    np.testing.assert_allclose(gw_np, gw_ref, rtol=1e-3, atol=1e-4)


@pytest.mark.parametrize("kernel,stride,padding", [(2, 2, 0), (3, 2, 1), (3, 1, 0)])
def test_maxpool_backends_agree(kernel, stride, padding):
    rng = np.random.default_rng(1)
    x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
    plan = pool2d_plan("max", x.shape, kernel, stride, padding, x.dtype)
    out_np, ctx_np = get_kernel("maxpool2d", "numpy")(plan, x)
    out_ref, ctx_ref = get_kernel("maxpool2d", "reference")(plan, x)
    np.testing.assert_allclose(out_np, out_ref)
    grad = rng.standard_normal(out_np.shape).astype(np.float32)
    np.testing.assert_allclose(
        get_kernel("maxpool2d_backward", "numpy")(plan, ctx_np, grad),
        get_kernel("maxpool2d_backward", "reference")(plan, ctx_ref, grad),
    )


def test_avgpool_backends_agree():
    rng = np.random.default_rng(2)
    x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
    plan = pool2d_plan("avg", x.shape, 2, 2, 0, x.dtype)
    out_np, _ = get_kernel("avgpool2d", "numpy")(plan, x)
    out_ref, _ = get_kernel("avgpool2d", "reference")(plan, x)
    np.testing.assert_allclose(out_np, out_ref, atol=1e-6)
    grad = rng.standard_normal(out_np.shape).astype(np.float32)
    np.testing.assert_allclose(
        get_kernel("avgpool2d_backward", "numpy")(plan, {}, grad),
        get_kernel("avgpool2d_backward", "reference")(plan, {}, grad),
        atol=1e-6,
    )


@pytest.mark.parametrize("strategy", ["channel_stack", "conv_stack", "dsxplore"])
def test_scc_reference_backend_matches_numpy(strategy):
    cfg = SCCConfig(8, 12, 2, 0.5)
    rng = np.random.default_rng(4)
    x = rng.standard_normal((2, 8, 3, 3)).astype(np.float32)
    w = rng.standard_normal((12, 4)).astype(np.float32)
    fast = make_strategy(strategy, cfg, backend="numpy")
    slow = make_strategy(strategy, cfg, backend="reference")
    np.testing.assert_allclose(slow.forward(x, w), fast.forward(x, w), atol=1e-5)
    grad = rng.standard_normal((2, 12, 3, 3)).astype(np.float32)
    gx_f, gw_f = fast.backward(grad)
    gx_s, gw_s = slow.backward(grad)
    np.testing.assert_allclose(gx_s, gx_f, rtol=1e-3, atol=1e-4)
    np.testing.assert_allclose(gw_s, gw_f, rtol=1e-3, atol=1e-4)


# ---------------------------------------------------------------------------
# Backend threading through modules
# ---------------------------------------------------------------------------

def test_nn_conv_backend_threading_end_to_end():
    from repro import nn

    seed_all(5)
    fast = nn.Conv2d(4, 6, 3, padding=1, rng=np.random.default_rng(9))
    slow = nn.Conv2d(4, 6, 3, padding=1, backend="reference",
                     rng=np.random.default_rng(9))
    x = Tensor(np.random.default_rng(10).standard_normal((2, 4, 5, 5)).astype(np.float32),
               requires_grad=True)
    out_fast = fast(x)
    out_slow = slow(x)
    np.testing.assert_allclose(out_fast.data, out_slow.data, atol=1e-5)
    out_slow.sum().backward()
    assert x.grad is not None


def test_scc_module_backend_threading():
    from repro.core.scc import SlidingChannelConv2d

    layer = SlidingChannelConv2d(8, 16, cg=2, co=0.5, backend="reference",
                                 rng=np.random.default_rng(11))
    assert layer.strategy.backend == "reference"
    layer.set_impl("conv_stack")
    assert layer.strategy.backend == "reference"   # backend survives impl swap
    x = Tensor(np.random.default_rng(12).standard_normal((2, 8, 4, 4)).astype(np.float32))
    assert layer(x).shape == (2, 16, 4, 4)


def test_build_model_backend_threading():
    from repro.models import build_model

    model = build_model("mobilenet", scheme="scc", width_mult=0.25,
                        backend="reference", rng=np.random.default_rng(13))
    convs = [m for _, m in model.named_modules() if hasattr(m, "backend")]
    assert convs and all(m.backend == "reference" for m in convs)


def test_make_strategy_rejects_unknown_kwargs_naming_strategy():
    cfg = SCCConfig(8, 8, 2, 0.5)
    with pytest.raises(ValueError, match="'channel_stack'.*backward_design"):
        make_strategy("channel_stack", cfg, backward_design="input_centric")
    with pytest.raises(ValueError, match="'dsxplore'.*'warp_factor'"):
        make_strategy("dsxplore", cfg, warp_factor=9)
    # Valid kwargs still work.
    strat = make_strategy("dsxplore", cfg, backward_design="output_centric",
                          backend="numpy")
    assert strat.backward_design == "output_centric"
