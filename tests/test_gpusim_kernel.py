"""Single-kernel cost model and device spec."""
import pytest

from repro.gpusim import DeviceSpec, KernelLaunch, kernel_time, simulate_kernels, tesla_v100


@pytest.fixture
def dev():
    return tesla_v100()


def test_v100_headline_numbers(dev):
    assert dev.cuda_cores == 5120
    assert dev.peak_flops == 15.7e12
    assert dev.mem_capacity == 32 * 1024**3


def test_occupancy_knee(dev):
    full = dev.max_resident_threads
    assert dev.occupancy(full) == 1.0
    assert dev.occupancy(2 * full) == 1.0
    assert abs(dev.occupancy(full // 4) - 0.25) < 1e-12
    with pytest.raises(ValueError):
        dev.occupancy(0)


def test_compute_bound_kernel(dev):
    k = KernelLaunch("gemm", threads=dev.max_resident_threads,
                     flops=1e12, bytes_read=1e6, compute_efficiency=1.0)
    t = kernel_time(k, dev)
    assert t.compute > t.memory
    assert abs(t.compute - 1e12 / dev.peak_flops) < 1e-9


def test_memory_bound_kernel(dev):
    k = KernelLaunch("copy", threads=dev.max_resident_threads,
                     bytes_read=9e9, bytes_written=9e9)
    t = kernel_time(k, dev)
    assert t.memory == pytest.approx(18e9 / dev.mem_bandwidth)
    assert t.total >= t.memory


def test_bandwidth_efficiency_penalises_strided(dev):
    a = KernelLaunch("contig", threads=1000, bytes_read=1e9)
    b = KernelLaunch("strided", threads=1000, bytes_read=1e9, bandwidth_efficiency=0.5)
    assert kernel_time(b, dev).memory == pytest.approx(2 * kernel_time(a, dev).memory)


def test_occupancy_slows_small_launches(dev):
    big = KernelLaunch("big", threads=dev.max_resident_threads, flops=1e11)
    small = KernelLaunch("small", threads=dev.max_resident_threads // 8, flops=1e11)
    assert kernel_time(small, dev).compute == pytest.approx(8 * kernel_time(big, dev).compute)


def test_atomic_penalty_additive(dev):
    base = KernelLaunch("noatomic", threads=1000, flops=1e9)
    atom = KernelLaunch("atomic", threads=1000, flops=1e9,
                        atomic_ops=1e9, atomic_conflict_fraction=0.9)
    t_base, t_atom = kernel_time(base, dev), kernel_time(atom, dev)
    assert t_atom.atomic == pytest.approx(0.9e9 / dev.atomic_conflict_rate)
    assert t_atom.total > t_base.total


def test_framework_op_overhead(dev):
    raw = KernelLaunch("raw", threads=10)
    framework = KernelLaunch("torch_op", threads=10, framework_op=True)
    assert kernel_time(framework, dev).launch == pytest.approx(
        kernel_time(raw, dev).launch + dev.framework_op_overhead
    )


def test_kernel_validation():
    with pytest.raises(ValueError, match="threads"):
        KernelLaunch("bad", threads=0)
    with pytest.raises(ValueError, match="conflict"):
        KernelLaunch("bad", threads=1, atomic_conflict_fraction=1.5)
    with pytest.raises(ValueError, match="compute efficiency"):
        KernelLaunch("bad", threads=1, compute_efficiency=0.0)
    with pytest.raises(ValueError, match="bandwidth"):
        KernelLaunch("bad", threads=1, bandwidth_efficiency=2.0)


def test_simulation_aggregates(dev):
    ks = [KernelLaunch(f"k{i}", threads=100, bytes_read=1e6) for i in range(5)]
    res = simulate_kernels(ks, dev)
    assert res.num_launches == 5
    assert res.launch_time == pytest.approx(5 * dev.kernel_launch_overhead)
    assert res.total_time == pytest.approx(sum(k.total for k in res.kernels))
    assert set(res.breakdown()) == {f"k{i}" for i in range(5)}
