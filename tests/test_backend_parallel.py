"""The parallel worker pool, the ``threaded`` backend and backend selection.

The ``threaded`` backend's contract is *bitwise* equality with ``numpy`` —
its sharding only cuts along axes that preserve every reduction order — so
these tests assert ``array_equal``, not ``allclose``, across all three SCC
strategies, both conv paddings and both float dtypes, plus exact equality
of the merged :class:`KernelStats` totals (the gpusim crosscheck depends on
counters being backend-invariant).
"""
import importlib.util
import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.backend import (
    KernelStats,
    available_backends,
    conv2d_plan,
    env_backend_order,
    get_kernel,
    get_num_workers,
    num_workers,
    parallel_map,
    scc_plan,
    set_num_workers,
)
from repro.backend.parallel import makespan, shard_slices, trace_parallel
from repro.backend.workload import current_plan_owner, plan_owner
from repro.core.channel_map import SCCConfig
from repro.core.scc_kernels import make_strategy

REPO_ROOT = Path(__file__).resolve().parents[1]

NUMBA_INSTALLED = importlib.util.find_spec("numba") is not None


@pytest.fixture(autouse=True)
def _pool():
    """Run this module's pool work at 3 workers, restoring the ambient size."""
    with num_workers(3):
        yield


# ---------------------------------------------------------------------------
# Pool mechanics
# ---------------------------------------------------------------------------

def test_shard_slices_cover_and_balance():
    for total, parts in [(10, 3), (4, 8), (1, 1), (7, 7), (16, 4)]:
        slices = shard_slices(total, parts)
        assert len(slices) == min(total, parts)
        covered = [i for sl in slices for i in range(sl.start, sl.stop)]
        assert covered == list(range(total))
        sizes = [sl.stop - sl.start for sl in slices]
        assert max(sizes) - min(sizes) <= 1


def test_parallel_map_runs_on_pool_and_preserves_order():
    threads = parallel_map(lambda i: (i, threading.current_thread().name),
                           range(8), op="probe")
    assert [i for i, _ in threads] == list(range(8))
    assert any(name.startswith("repro-worker") for _, name in threads)


def test_parallel_map_propagates_plan_owner_into_tasks():
    with plan_owner("model-a"):
        owners = parallel_map(lambda _: current_plan_owner(), range(4), op="owner")
    assert owners == ["model-a"] * 4


def test_parallel_map_propagates_exceptions():
    def boom(i):
        if i == 2:
            raise RuntimeError("shard failed")
        return i

    with pytest.raises(RuntimeError, match="shard failed"):
        parallel_map(boom, range(4), op="boom")


def test_nested_parallel_map_runs_inline_without_deadlock():
    # More tasks than workers, each submitting a nested region: the nested
    # call must run inline on its worker (a re-submit could starve the pool).
    def outer(i):
        return sum(parallel_map(lambda j: i * 10 + j, range(4), op="inner"))

    with num_workers(2):
        assert parallel_map(outer, range(6), op="outer") == [
            sum(i * 10 + j for j in range(4)) for i in range(6)
        ]


def test_parallel_map_exactly_once_under_concurrent_resize():
    # set_num_workers shuts the stale pool down mid-flight; a region caught
    # submitting must resume its *remainder* on the fresh pool — every task
    # runs exactly once and results stay ordered.
    import collections
    import time as _time

    counts = collections.Counter()
    count_lock = threading.Lock()

    def work(i):
        _time.sleep(0.0005)
        with count_lock:
            counts[i] += 1
        return i

    stop = threading.Event()

    def resizer():
        n = 0
        while not stop.is_set():
            set_num_workers(2 + n % 3)
            n += 1
            _time.sleep(0.0003)

    thread = threading.Thread(target=resizer)
    thread.start()
    try:
        for _ in range(10):
            assert parallel_map(work, range(20), op="resize-race") == list(range(20))
    finally:
        stop.set()
        thread.join()
    assert all(counts[i] == 10 for i in range(20)), counts


def test_num_workers_context_restores():
    base = get_num_workers()
    with num_workers(1):
        assert get_num_workers() == 1
        # workers == 1 runs inline: no pool thread names involved.
        names = parallel_map(lambda _: threading.current_thread().name,
                             range(4), op="inline")
        assert all(n == threading.current_thread().name for n in names)
    assert get_num_workers() == base


def test_set_num_workers_rejects_nonpositive():
    with pytest.raises(ValueError, match="num_workers"):
        set_num_workers(0)


def test_trace_parallel_records_regions_serially():
    with trace_parallel() as regions:
        out = parallel_map(lambda i: i * i, range(5), op="traced")
    assert out == [0, 1, 4, 9, 16]
    assert len(regions) == 1
    assert regions[0].op == "traced" and regions[0].tasks == 5
    assert len(regions[0].task_seconds) == 5
    assert regions[0].total_seconds >= 0.0


def test_makespan_models_lpt_schedule():
    assert makespan([4.0, 3.0, 2.0, 1.0], 2) == pytest.approx(5.0)
    assert makespan([1.0] * 8, 4) == pytest.approx(2.0)
    assert makespan([5.0], 8) == pytest.approx(5.0)
    assert makespan([], 4) == 0.0
    with pytest.raises(ValueError):
        makespan([1.0], 0)


# ---------------------------------------------------------------------------
# Submission shutdown discipline: terminal failures raise, resizes retry
# ---------------------------------------------------------------------------

class _DeadExecutor:
    """Stands in for a pool whose ``submit`` can never succeed again."""

    def __init__(self, message: str):
        self.message = message
        self.submits = 0

    def submit(self, fn, /, *args):
        self.submits += 1
        raise RuntimeError(self.message)


def test_submit_pooled_raises_at_interpreter_shutdown(monkeypatch):
    # Regression: the resize-retry loop used to swallow *every* RuntimeError
    # and spin forever; at interpreter shutdown no rebuild can ever succeed,
    # so the error must propagate (and after exactly one attempt).
    from repro.backend import parallel as par

    dead = _DeadExecutor("cannot schedule new futures after interpreter shutdown")
    monkeypatch.setattr(par, "_executor", lambda: dead)
    with pytest.raises(RuntimeError, match="interpreter shutdown"):
        par.submit_pooled(lambda: 1)
    assert dead.submits == 1


def test_parallel_map_raises_at_interpreter_shutdown(monkeypatch):
    from repro.backend import parallel as par

    dead = _DeadExecutor("cannot schedule new futures after interpreter shutdown")
    monkeypatch.setattr(par, "_executor", lambda: dead)
    with pytest.raises(RuntimeError, match="interpreter shutdown"):
        par.parallel_map(lambda i: i, range(4), op="shutdown")
    assert dead.submits == 1


def test_dead_pool_nobody_rebuilt_is_terminal_not_a_spin(monkeypatch):
    # A pool that is shut down *without* a concurrent resize re-resolves to
    # the same object; retrying would re-raise identically forever.  The
    # identity check must classify that as terminal.
    from repro.backend import parallel as par

    dead = _DeadExecutor("cannot schedule new futures after shutdown")
    monkeypatch.setattr(par, "_executor", lambda: dead)
    with pytest.raises(RuntimeError, match="after shutdown"):
        par.submit_pooled(lambda: 1)
    assert dead.submits == 1


def test_resize_mid_submit_retries_on_the_fresh_pool(monkeypatch):
    # The retryable half of the discipline: the stale pool raises, but the
    # next _executor() resolves to a live pool — submission must resume
    # there, not propagate.
    from repro.backend import parallel as par

    real = par._executor()
    dead = _DeadExecutor("cannot schedule new futures after shutdown")
    calls = iter([dead, real])
    monkeypatch.setattr(par, "_executor", lambda: next(calls, real))
    assert par.parallel_map(lambda i: i * 2, range(5), op="resize") == [
        0, 2, 4, 6, 8
    ]
    assert dead.submits == 1


# ---------------------------------------------------------------------------
# Worker sizing honours the scheduler affinity mask (cgroup/taskset limits)
# ---------------------------------------------------------------------------

def test_default_num_workers_uses_affinity_mask(monkeypatch):
    from repro.backend.parallel import default_num_workers

    monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
    # A process pinned to 2 CPUs of a big host must get a 2-worker pool,
    # not a host-sized one.
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1},
                        raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 64)
    assert default_num_workers() == 2


def test_default_num_workers_falls_back_to_cpu_count(monkeypatch):
    from repro.backend.parallel import default_num_workers

    monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 5)
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    assert default_num_workers() == 5


def test_repro_num_workers_env_still_wins_over_affinity(monkeypatch):
    from repro.backend.parallel import default_num_workers

    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1},
                        raising=False)
    monkeypatch.setenv("REPRO_NUM_WORKERS", "7")
    assert default_num_workers() == 7


# ---------------------------------------------------------------------------
# KernelStats: exact totals under concurrent mutation
# ---------------------------------------------------------------------------

def test_kernel_stats_exact_totals_under_pool_hammer():
    stats = KernelStats()
    rounds = 400

    def hammer(i):
        stats.record(bytes_materialized=3, gemm_calls=2,
                     scatter_adds=1, conflicting_scatter_adds=1)
        if i % 10 == 0:
            stats.snapshot()  # concurrent reads must not tear

    with num_workers(4):
        parallel_map(hammer, range(rounds), op="stats-hammer")
    assert stats.bytes_materialized == 3 * rounds
    assert stats.gemm_calls == 2 * rounds
    assert stats.scatter_adds == rounds
    assert stats.conflicting_scatter_adds == rounds


def test_kernel_stats_merge_folds_deltas():
    total, delta = KernelStats(), KernelStats()
    delta.record(bytes_materialized=8, gemm_calls=1)
    total.merge(delta)
    total.merge(delta)
    assert total.bytes_materialized == 16 and total.gemm_calls == 2
    total.reset()
    assert total.snapshot() == KernelStats()


# ---------------------------------------------------------------------------
# Threaded backend: bitwise equality with numpy
# ---------------------------------------------------------------------------

CONV_CASES = [
    # (n, cin, hw, cout, kernel, stride, padding, groups)
    (4, 8, 10, 12, 3, 1, 1, 1),     # standard conv, padded
    (4, 8, 10, 12, 3, 1, 0, 1),     # standard conv, unpadded
    (4, 8, 10, 16, 3, 2, 1, 2),     # grouped, strided
    (3, 8, 9, 8, 3, 1, 1, 8),       # depthwise
]


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("case", CONV_CASES)
def test_conv2d_threaded_bitwise_equals_numpy(case, dtype):
    n, cin, hw, cout, kernel, stride, padding, groups = case
    rng = np.random.default_rng(5)
    x = rng.standard_normal((n, cin, hw, hw)).astype(dtype)
    w = rng.standard_normal((cout, cin // groups, kernel, kernel)).astype(dtype)
    plan = conv2d_plan(x.shape, w.shape, stride, padding, groups, x.dtype)
    out_np, ctx_np = get_kernel("conv2d", "numpy")(plan, x, w)
    out_th, ctx_th = get_kernel("conv2d", "threaded")(plan, x, w)
    assert np.array_equal(out_np, out_th)
    grad = rng.standard_normal(out_np.shape).astype(dtype)
    gx_np, gw_np = get_kernel("conv2d_backward", "numpy")(plan, ctx_np, grad)
    gx_th, gw_th = get_kernel("conv2d_backward", "threaded")(plan, ctx_th, grad)
    assert np.array_equal(gx_np, gx_th)
    assert np.array_equal(gw_np, gw_th)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("strategy,design", [
    ("channel_stack", None),
    ("conv_stack", None),
    ("dsxplore", "input_centric"),
    ("dsxplore", "output_centric"),
])
def test_scc_threaded_bitwise_equals_numpy_with_exact_stats(strategy, design, dtype):
    cfg = SCCConfig(16, 32, 4, 0.25)   # cyclic_dist > 1: real p-sharding
    plan = scc_plan(cfg)
    rng = np.random.default_rng(6)
    x = rng.standard_normal((5, cfg.in_channels, 6, 6)).astype(dtype)
    w = rng.standard_normal((cfg.out_channels, cfg.group_width)).astype(dtype)
    kwargs = {"backward_design": design} if design else {}

    stats_np, stats_th = KernelStats(), KernelStats()
    out_np, sv_np = get_kernel("scc_forward", "numpy")(
        plan, x, w, strategy=strategy, stats=stats_np)
    out_th, sv_th = get_kernel("scc_forward", "threaded")(
        plan, x, w, strategy=strategy, stats=stats_th)
    assert np.array_equal(out_np, out_th)

    grad = rng.standard_normal(out_np.shape).astype(dtype)
    gx_np, gw_np = get_kernel("scc_backward", "numpy")(
        plan, sv_np, grad, strategy=strategy, stats=stats_np, **kwargs)
    gx_th, gw_th = get_kernel("scc_backward", "threaded")(
        plan, sv_th, grad, strategy=strategy, stats=stats_th, **kwargs)
    assert np.array_equal(gx_np, gx_th)
    assert np.array_equal(gw_np, gw_th)
    # Counters are backend-invariant (the gpusim crosscheck relies on it).
    assert stats_np.snapshot() == stats_th.snapshot()


def test_strategy_instances_on_threaded_backend_match_numpy():
    cfg = SCCConfig(8, 16, 2, 0.5)
    rng = np.random.default_rng(7)
    x = rng.standard_normal((3, 8, 5, 5)).astype(np.float32)
    w = rng.standard_normal((16, cfg.group_width)).astype(np.float32)
    grad = rng.standard_normal((3, 16, 5, 5)).astype(np.float32)
    for name in ("channel_stack", "conv_stack", "dsxplore"):
        fast = make_strategy(name, cfg, backend="threaded")
        base = make_strategy(name, cfg, backend="numpy")
        assert np.array_equal(fast.forward(x, w), base.forward(x, w))
        gx_t, gw_t = fast.backward(grad)
        gx_n, gw_n = base.backward(grad)
        assert np.array_equal(gx_t, gx_n) and np.array_equal(gw_t, gw_n)
        assert fast.stats.snapshot() == base.stats.snapshot()


def test_threaded_registered_for_every_core_op():
    for op in ("conv2d", "conv2d_backward", "scc_forward", "scc_backward",
               "maxpool2d", "maxpool2d_backward", "avgpool2d",
               "avgpool2d_backward"):
        assert "threaded" in available_backends(op), op


def test_unknown_scc_strategy_rejected_on_threaded():
    cfg = SCCConfig(8, 16, 2, 0.5)
    plan = scc_plan(cfg)
    x = np.zeros((1, 8, 2, 2), np.float32)
    w = np.zeros((16, cfg.group_width), np.float32)
    with pytest.raises(ValueError, match="unknown SCC strategy"):
        get_kernel("scc_forward", "threaded")(plan, x, w, strategy="warp")
    with pytest.raises(ValueError, match="backward_design"):
        get_kernel("scc_backward", "threaded")(
            plan, {"x": x, "w": w}, x, strategy="dsxplore",
            backward_design="sideways")


# ---------------------------------------------------------------------------
# Backend selection: REPRO_BACKEND override and silent numba fallback
# ---------------------------------------------------------------------------

def test_env_backend_order_prepends_and_falls_through():
    assert env_backend_order(env="") == ("numpy", "reference")
    assert env_backend_order(env="default") == ("numpy", "reference")
    assert env_backend_order(env="threaded") == ("threaded", "numpy", "reference")
    assert env_backend_order(env="numba") == ("numba", "numpy", "reference")
    assert env_backend_order(env="numpy") == ("numpy", "reference")


def _resolve_in_subprocess(extra_env: dict) -> str:
    code = ("from repro.backend import REGISTRY; "
            "print(REGISTRY.resolve_name('conv2d', 'default'))")
    env = dict(os.environ)
    env.update(extra_env)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def test_repro_backend_env_selects_threaded():
    assert _resolve_in_subprocess({"REPRO_BACKEND": "threaded"}) == "threaded"


def test_repro_backend_numba_falls_back_silently_when_absent():
    expected = "numba" if NUMBA_INSTALLED else "numpy"
    assert _resolve_in_subprocess({"REPRO_BACKEND": "numba"}) == expected


@pytest.mark.skipif(not NUMBA_INSTALLED, reason="numba not installed")
def test_numba_backend_matches_numpy_to_tolerance():
    cfg = SCCConfig(8, 16, 2, 0.5)
    plan = scc_plan(cfg)
    rng = np.random.default_rng(8)
    x = rng.standard_normal((2, 8, 4, 4)).astype(np.float32)
    w = rng.standard_normal((16, cfg.group_width)).astype(np.float32)
    out_nb, _ = get_kernel("scc_forward", "numba")(plan, x, w)
    out_np, _ = get_kernel("scc_forward", "numpy")(plan, x, w)
    np.testing.assert_allclose(out_nb, out_np, rtol=1e-5, atol=1e-5)


# ---------------------------------------------------------------------------
# End-to-end: model forward/backward pinned to the threaded backend
# ---------------------------------------------------------------------------

def test_model_on_threaded_backend_bitwise_equals_numpy():
    from repro.models import build_model
    from repro.tensor import Tensor
    from repro.utils import seed_all

    outs, grads = [], []
    for backend in ("numpy", "threaded"):
        seed_all(11)
        model = build_model("mobilenet", scheme="scc", width_mult=0.25,
                            backend=backend, rng=np.random.default_rng(13))
        x = Tensor(np.random.default_rng(14).standard_normal(
            (4, 3, 16, 16)).astype(np.float32), requires_grad=True)
        out = model(x)
        out.sum().backward()
        outs.append(out.data)
        grads.append(x.grad)
    assert np.array_equal(outs[0], outs[1])
    assert np.array_equal(grads[0], grads[1])


# ---------------------------------------------------------------------------
# Router overlap + gpusim parallel-efficiency plumbing
# ---------------------------------------------------------------------------

def test_router_overlapped_flush_matches_serial_results():
    from repro.models import build_serving_model
    from repro.serve import Router, ServerConfig

    rng = np.random.default_rng(15)
    images = [rng.standard_normal((3, 12, 12)).astype(np.float32)
              for _ in range(12)]
    reference: dict[bool, list[np.ndarray]] = {}
    for overlap in (False, True):
        router = Router(server_config=ServerConfig(bucket_sizes=(1, 2, 4),
                                                   max_latency=60.0),
                        overlap=overlap)
        for name, seed in (("a", 21), ("b", 22)):
            router.register(name, build_serving_model(
                "mobilenet", width_mult=0.25, seed=seed),
                input_shapes=[(3, 12, 12)])
        handles = [router.submit(("a", "b")[i % 2], img)
                   for i, img in enumerate(images)]
        router.flush()
        outs = [router.result(h).output for h in handles]
        assert all(o is not None for o in outs)
        reference[overlap] = outs
    for serial_out, overlap_out in zip(reference[False], reference[True]):
        assert np.array_equal(serial_out, overlap_out)


def test_device_parallel_speedup_curve():
    from repro.gpusim import tesla_v100

    dev = tesla_v100()
    assert dev.parallel_speedup(1) == 1.0
    assert dev.parallel_efficiency(1) == 1.0
    curve = [dev.parallel_speedup(w) for w in (1, 2, 4, 8)]
    assert curve == sorted(curve)                 # monotone over the sweep
    assert all(s >= 1.0 for s in curve)
    assert dev.parallel_speedup(1024) >= 1.0      # never worse than inline
    effs = [dev.parallel_efficiency(w) for w in (1, 2, 4, 8)]
    assert effs == sorted(effs, reverse=True)     # efficiency decays
    with pytest.raises(ValueError):
        dev.parallel_speedup(0)


def test_timeline_host_workers_scales_kernel_time_not_plan_build():
    from repro.gpusim import extract_layer_shapes, tesla_v100, training_step_time
    from repro.models import build_model

    model = build_model("mobilenet", scheme="scc", width_mult=0.25)
    shapes = extract_layer_shapes(model, (3, 16, 16))
    dev = tesla_v100()
    one = training_step_time(shapes, 32, dev, cold_plans=True)
    four = training_step_time(shapes, 32, dev, cold_plans=True, host_workers=4)
    assert four.total < one.total
    assert four.plan_build == one.plan_build      # plan builds stay serial
    expected = (one.total - one.plan_build) / dev.parallel_speedup(4)
    assert four.total - four.plan_build == pytest.approx(expected)
