"""Property-based tests on cross-cutting algebraic invariants (hypothesis)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channel_map import SCCConfig
from repro.core.scc_kernels import Dsxplore
from repro.tensor import Tensor
from repro.tensor.function import unbroadcast
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(161)


small_arrays = st.integers(0, 10_000).map(
    lambda s: np.random.default_rng(s).standard_normal((3, 4)).astype(np.float64)
)


@settings(max_examples=30, deadline=None)
@given(small_arrays, small_arrays)
def test_addition_gradient_is_identity_on_both(a, b):
    x = Tensor(a, requires_grad=True)
    y = Tensor(b, requires_grad=True)
    (x + y).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(a))
    np.testing.assert_allclose(y.grad, np.ones_like(b))


@settings(max_examples=30, deadline=None)
@given(small_arrays)
def test_mul_by_self_grad_is_2x(a):
    x = Tensor(a, requires_grad=True)
    (x * x).sum().backward()
    np.testing.assert_allclose(x.grad, 2 * a.astype(np.float32), rtol=1e-4)


@settings(max_examples=30, deadline=None)
@given(small_arrays, st.floats(-3, 3).filter(lambda c: abs(c) > 1e-3))
def test_grad_is_linear_in_output_seed(a, c):
    # backward(c * g) == c * backward(g) — VJPs are linear maps.
    x1 = Tensor(a, requires_grad=True)
    (x1.exp()).backward(np.full_like(a, c, dtype=np.float32))
    x2 = Tensor(a, requires_grad=True)
    (x2.exp()).backward(np.ones_like(a, dtype=np.float32))
    np.testing.assert_allclose(x1.grad, c * x2.grad, rtol=1e-4, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from([(3, 4), (1, 4), (3, 1), (4,), (1,), (2, 3, 4)]),
    st.integers(0, 1000),
)
def test_unbroadcast_inverts_broadcast(shape, seed):
    rng = np.random.default_rng(seed)
    target = rng.standard_normal((2, 3, 4))
    small = rng.standard_normal(shape)
    broadcast_grad = np.ones_like(target + small)  # force broadcast shape
    reduced = unbroadcast(broadcast_grad, shape)
    assert reduced.shape == shape
    # Each cell accumulated exactly (broadcast multiplicity) ones.
    multiplicity = broadcast_grad.size / np.prod(shape)
    np.testing.assert_allclose(reduced, np.full(shape, multiplicity))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_scc_gradient_consistent_with_forward_jvp(seed):
    """<J v, g> == <v, J^T g> for the SCC linear operator (adjoint test)."""
    cfg = SCCConfig(8, 12, 2, 0.5)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((2, 8, 3, 3)).astype(np.float32)
    w = rng.standard_normal((12, 4)).astype(np.float32)
    v = rng.standard_normal(x.shape).astype(np.float32)
    g = rng.standard_normal((2, 12, 3, 3)).astype(np.float32)
    strat = Dsxplore(cfg)
    jv = strat.forward(v, w)            # J v (linear in x)
    strat.forward(x, w)
    jt_g, _ = strat.backward(g, need_weight_grad=False)
    lhs = float((jv * g).sum())
    rhs = float((v * jt_g).sum())
    assert abs(lhs - rhs) <= 1e-3 * max(abs(lhs), abs(rhs), 1.0)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_scc_weight_gradient_adjoint(seed):
    """Same adjoint identity in the weight argument."""
    cfg = SCCConfig(8, 12, 2, 0.5)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((2, 8, 3, 3)).astype(np.float32)
    w = rng.standard_normal((12, 4)).astype(np.float32)
    dw = rng.standard_normal(w.shape).astype(np.float32)
    g = rng.standard_normal((2, 12, 3, 3)).astype(np.float32)
    strat = Dsxplore(cfg)
    j_dw = strat.forward(x, dw)         # linear in w too
    strat.forward(x, w)
    _, jt_g = strat.backward(g, need_input_grad=False)
    lhs = float((j_dw * g).sum())
    rhs = float((dw * jt_g).sum())
    assert abs(lhs - rhs) <= 1e-3 * max(abs(lhs), abs(rhs), 1.0)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from([0.0, 0.25, 0.5, 0.75]))
def test_scc_output_permutes_under_cyclic_input_shift(seed, co):
    """Shifting input channels by the slide stride rotates which filters see
    them — outputs permute within a cycle rather than changing arbitrarily."""
    cfg = SCCConfig(8, 8, 2, co)
    stride = cfg.slide_stride
    if stride == 0 or 8 % stride:
        return
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, 8, 3, 3)).astype(np.float32)
    w = rng.standard_normal((8, cfg.group_width)).astype(np.float32)
    strat = Dsxplore(cfg)
    # With identical weights in every filter, filter o applied to the input
    # rolled back by one stride sees exactly what filter o+1 sees on the
    # original input: rolled[o] == base[o+1].
    w_const = np.tile(w[:1], (8, 1))
    base_c = strat.forward(x, w_const)
    rolled_c = strat.forward(np.roll(x, -stride, axis=1), w_const)
    for o in range(8 - 1):
        np.testing.assert_allclose(rolled_c[0, o], base_c[0, o + 1], atol=1e-4)
