"""DW+{PW,GPW,SCC} blocks and the drop-in model-conversion pass."""
import numpy as np
import pytest

from repro import nn
from repro.core.blocks import (
    DepthwiseSeparableBlock,
    convert_model,
    make_separable_block,
    set_scc_impl,
)
from repro.core.scc import SlidingChannelConv2d
from repro.tensor import Tensor
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(51)


@pytest.mark.parametrize("scheme", ["pw", "gpw", "scc"])
def test_block_output_shape(scheme):
    block = make_separable_block(8, 16, stride=2, scheme=scheme, cg=2, co=0.5)
    out = block(Tensor(np.zeros((2, 8, 8, 8), dtype=np.float32)))
    assert out.shape == (2, 16, 4, 4)


def test_block_pointwise_stage_types():
    assert isinstance(make_separable_block(8, 8, scheme="pw").pointwise, nn.PointwiseConv2d)
    gpw = make_separable_block(8, 8, scheme="gpw", cg=4).pointwise
    assert isinstance(gpw, nn.GroupPointwiseConv2d) and gpw.groups == 4
    scc = make_separable_block(8, 8, scheme="scc", cg=4, co=0.5).pointwise
    assert isinstance(scc, SlidingChannelConv2d)


def test_block_rejects_unknown_scheme():
    with pytest.raises(ValueError, match="unknown scheme"):
        make_separable_block(8, 8, scheme="swish")


def test_gpw_and_scc_blocks_have_equal_params():
    # Paper Table IV: DW+GPW-cgX and DW+SCC-cgX-* have identical costs.
    gpw = make_separable_block(16, 32, scheme="gpw", cg=4)
    scc = make_separable_block(16, 32, scheme="scc", cg=4, co=0.5)
    assert gpw.num_parameters() == scc.num_parameters()


def test_final_act_false_makes_output_linear_head():
    block = make_separable_block(8, 8, scheme="scc", final_act=False)
    assert isinstance(block.act2, nn.Identity)


def test_block_trains_gradients_flow():
    block = make_separable_block(4, 8, scheme="scc", cg=2, co=0.5)
    x = Tensor(np.random.default_rng(0).standard_normal((2, 4, 6, 6)).astype(np.float32))
    out = block(x)
    (out * out).sum().backward()
    for name, p in block.named_parameters():
        assert p.grad is not None, f"no grad for {name}"


def _vgg_ish():
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1),        # stem: kept (in_channels < 8)
        nn.Conv2d(16, 32, 3, padding=1),       # converted
        nn.MaxPool2d(2),
        nn.Conv2d(32, 32, 3, padding=1),       # converted
        nn.Conv2d(32, 8, 1),                   # 1x1: kept
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 4),
    )


def test_convert_model_counts_and_rules():
    model = _vgg_ish()
    model, replaced = convert_model(model, scheme="scc", cg=2, co=0.5)
    assert replaced == 2
    assert isinstance(model[0], nn.Conv2d)               # stem untouched
    assert isinstance(model[1], DepthwiseSeparableBlock)
    assert isinstance(model[3], DepthwiseSeparableBlock)
    assert isinstance(model[4], nn.Conv2d)               # 1x1 untouched
    out = model(Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32)))
    assert out.shape == (1, 4)


def test_convert_model_preserves_stride():
    model = nn.Sequential(nn.Conv2d(16, 32, 3, stride=2, padding=1))
    model, replaced = convert_model(model, scheme="scc")
    assert replaced == 1
    out = model(Tensor(np.zeros((1, 16, 8, 8), dtype=np.float32)))
    assert out.shape == (1, 32, 4, 4)


def test_convert_model_skips_indivisible_channels():
    model = nn.Sequential(nn.Conv2d(12, 12, 3, padding=1))
    model, replaced = convert_model(model, scheme="scc", cg=8)
    assert replaced == 0  # 12 % 8 != 0


def test_convert_model_reduces_params():
    model = _vgg_ish()
    before = model.num_parameters()
    model, _ = convert_model(model, scheme="scc", cg=2, co=0.5)
    assert model.num_parameters() < before


def test_convert_model_rejects_unknown_scheme():
    with pytest.raises(ValueError, match="unknown scheme"):
        convert_model(_vgg_ish(), scheme="wavelet")


def test_set_scc_impl_switches_all_layers():
    model = _vgg_ish()
    model, _ = convert_model(model, scheme="scc", cg=2, co=0.5)
    n = set_scc_impl(model, "conv_stack")
    assert n == 2
    for _, m in model.named_modules():
        if isinstance(m, SlidingChannelConv2d):
            assert m.impl == "conv_stack"
    # switching impl must not change the function computed
    x = Tensor(np.random.default_rng(1).standard_normal((1, 3, 8, 8)).astype(np.float32))
    out_cos = model(x).data.copy()
    set_scc_impl(model, "dsxplore", backward_design="output_centric")
    np.testing.assert_allclose(model(x).data, out_cos, atol=1e-5)
