"""Graph-mechanics tests: accumulation, reuse, no_grad, error paths."""
import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled, randn
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(7)


def test_grad_accumulates_across_backward_calls():
    x = Tensor([1.0, 2.0], requires_grad=True)
    (x * 2).sum().backward()
    (x * 3).sum().backward()
    np.testing.assert_allclose(x.grad, [5.0, 5.0])


def test_zero_grad_resets():
    x = Tensor([1.0], requires_grad=True)
    (x * 2).sum().backward()
    x.zero_grad()
    assert x.grad is None


def test_diamond_graph_accumulates_once_per_path():
    # y = x*x + x*x uses x through two paths; d/dx = 4x.
    x = Tensor([3.0], requires_grad=True)
    a = x * x
    (a + a).sum().backward()
    np.testing.assert_allclose(x.grad, [12.0])


def test_shared_subexpression():
    x = Tensor([2.0], requires_grad=True)
    y = x.exp()
    z = y * y  # d/dx e^{2x} = 2 e^{2x}
    z.sum().backward()
    np.testing.assert_allclose(x.grad, [2 * np.exp(4.0)], rtol=1e-5)


def test_backward_on_non_scalar_requires_grad_arg():
    x = Tensor([1.0, 2.0], requires_grad=True)
    with pytest.raises(RuntimeError, match="scalar"):
        (x * 2).backward()


def test_backward_with_explicit_gradient():
    x = Tensor([1.0, 2.0], requires_grad=True)
    (x * 3).backward(np.array([1.0, 10.0], dtype=np.float32))
    np.testing.assert_allclose(x.grad, [3.0, 30.0])


def test_backward_on_leaf_without_grad_raises():
    x = Tensor([1.0])
    with pytest.raises(RuntimeError, match="does not require grad"):
        x.backward()


def test_backward_on_leaf_with_grad_accumulates_seed():
    x = Tensor([1.0, 1.0], requires_grad=True)
    x.backward(np.array([2.0, 3.0], dtype=np.float32))
    np.testing.assert_allclose(x.grad, [2.0, 3.0])


def test_no_grad_blocks_graph():
    x = Tensor([1.0], requires_grad=True)
    with no_grad():
        y = x * 2
    assert not y.requires_grad
    assert y._ctx is None


def test_no_grad_restores_state_after_exception():
    assert is_grad_enabled()
    with pytest.raises(ValueError):
        with no_grad():
            assert not is_grad_enabled()
            raise ValueError("boom")
    assert is_grad_enabled()


def test_no_grad_is_thread_local():
    # Regression: grad mode used to be a process-global flag, so two
    # overlapping no_grad() blocks on different threads (e.g. two serving
    # workers behind the multi-model router) could interleave their
    # save/restore and leave recording disabled process-wide.
    import threading

    entered = threading.Barrier(3)  # two workers + the main thread
    release = threading.Event()
    seen = []

    def worker():
        with no_grad():
            entered.wait(5.0)   # both threads are inside no_grad now
            release.wait(5.0)
            seen.append(is_grad_enabled())

    threads = [threading.Thread(target=worker) for _ in range(2)]
    for t in threads:
        t.start()
    entered.wait(5.0)           # deliberately overlap with both workers
    assert is_grad_enabled()    # ...without affecting this thread
    release.set()
    for t in threads:
        t.join()
    assert seen == [False, False]
    assert is_grad_enabled()    # and no worker's exit leaked state here


def test_detach_cuts_graph():
    x = Tensor([2.0], requires_grad=True)
    y = (x * 3).detach()
    assert not y.requires_grad
    z = y * 5
    assert not z.requires_grad


def test_grad_not_tracked_through_detach():
    x = Tensor([2.0], requires_grad=True)
    y = x * 3
    z = y.detach() * x  # only the direct x path contributes
    z.sum().backward()
    np.testing.assert_allclose(x.grad, [6.0])


def test_requires_grad_propagation():
    a = Tensor([1.0], requires_grad=True)
    b = Tensor([1.0])
    assert (a + b).requires_grad
    assert not (b + b).requires_grad


def test_long_chain_gradient():
    x = Tensor([0.5], requires_grad=True)
    y = x
    for _ in range(50):
        y = y * 1.1
    y.sum().backward()
    np.testing.assert_allclose(x.grad, [1.1**50], rtol=1e-4)


def test_mixed_dtype_inputs_coerce_to_float32():
    x = Tensor(np.array([1, 2, 3], dtype=np.int64))
    assert x.dtype == np.float32
    y = Tensor(np.array([1.0], dtype=np.float64))
    assert y.dtype == np.float32


def test_grad_shape_mismatch_detected():
    from repro.tensor.function import Function

    class BadOp(Function):
        def forward(self, a):
            return a * 2

        def backward(self, grad):
            return (grad[:1],)  # wrong shape

    x = Tensor([1.0, 2.0], requires_grad=True)
    out = BadOp.apply(x)
    with pytest.raises(RuntimeError, match="shape"):
        out.sum().backward()


def test_topological_order_with_deep_fanout():
    # Build a graph where naive recursion order would double-count.
    x = Tensor(np.ones(4), requires_grad=True)
    layers = [x]
    for _ in range(5):
        layers.append(layers[-1] + layers[-1])
    layers[-1].sum().backward()
    np.testing.assert_allclose(x.grad, 32 * np.ones(4))


def test_randn_deterministic_under_seed():
    seed_all(99)
    a = randn(3, 3).data.copy()
    seed_all(99)
    b = randn(3, 3).data.copy()
    np.testing.assert_array_equal(a, b)
