"""Dtype preservation and KernelStats invariants across backends.

Two classes of guarantee:

- **dtype**: float32 inputs stay float32 through forward and both backward
  paths of every SCC strategy and of conv2d — no silent float64 promotion
  (the classic NumPy footgun that would double memory traffic and invalidate
  the byte accounting);
- **stats**: the instrumentation counters agree with both the strategy
  definitions (Dsxplore forward materialises 0 bytes, the input-centric
  backward issues 0 scatter updates) and the gpusim analytic kernel model
  (:mod:`repro.gpusim.crosscheck`).
"""
import numpy as np
import pytest

from repro.core.channel_map import SCCConfig, channel_windows
from repro.core.scc_kernels import make_strategy, scc_forward_reference
from repro.gpusim import crosscheck_all, crosscheck_scc_stats

CONFIGS = [
    SCCConfig(8, 16, 2, 0.5),
    SCCConfig(12, 10, 3, 0.25),   # Cout not a multiple of cyclic_dist
    SCCConfig(16, 16, 1, 0.0),    # PW corner
]

STRATEGY_COMBOS = [
    ("channel_stack", {}),
    ("conv_stack", {}),
    ("dsxplore", {"backward_design": "input_centric"}),
    ("dsxplore", {"backward_design": "output_centric"}),
]


def _rand32(cfg, n=2, hw=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, cfg.in_channels, hw, hw)).astype(np.float32)
    w = rng.standard_normal((cfg.out_channels, cfg.group_width)).astype(np.float32)
    return x, w


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.label())
@pytest.mark.parametrize("name,kwargs", STRATEGY_COMBOS,
                         ids=["chs", "cos", "dsx-pull", "dsx-push"])
def test_float32_preserved_and_matches_reference(cfg, name, kwargs):
    x, w = _rand32(cfg)
    strat = make_strategy(name, cfg, **kwargs)
    out = strat.forward(x, w)
    assert out.dtype == np.float32, f"{name} forward promoted to {out.dtype}"
    wins = channel_windows(cfg.in_channels, cfg.out_channels, cfg.cg, cfg.co)
    ref = scc_forward_reference(x, w, wins)
    assert ref.dtype == np.float32
    np.testing.assert_allclose(out, ref, atol=1e-5)

    grad = np.random.default_rng(1).standard_normal(out.shape).astype(np.float32)
    gx, gw = strat.backward(grad)
    assert gx.dtype == np.float32, f"{name} grad_x promoted to {gx.dtype}"
    assert gw.dtype == np.float32, f"{name} grad_w promoted to {gw.dtype}"


@pytest.mark.parametrize("backend", ["numpy", "reference"])
def test_conv2d_float32_preserved(backend):
    from repro.backend import conv2d_plan, get_kernel

    rng = np.random.default_rng(2)
    x = rng.standard_normal((2, 4, 6, 6)).astype(np.float32)
    w = rng.standard_normal((6, 2, 3, 3)).astype(np.float32)
    plan = conv2d_plan(x.shape, w.shape, 1, 1, 2, x.dtype)
    out, ctx = get_kernel("conv2d", backend)(plan, x, w)
    assert out.dtype == np.float32
    gx, gw = get_kernel("conv2d_backward", backend)(
        plan, ctx, out.astype(np.float32)
    )
    assert gx.dtype == np.float32 and gw.dtype == np.float32


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.label())
def test_dsxplore_forward_materializes_zero_bytes(cfg):
    x, w = _rand32(cfg)
    strat = make_strategy("dsxplore", cfg)
    strat.forward(x, w)
    assert strat.stats.bytes_materialized == 0
    assert strat.stats.scatter_adds == 0


def test_input_centric_no_scatter_output_centric_scatters():
    cfg = SCCConfig(8, 16, 2, 0.5)
    x, w = _rand32(cfg)
    pull = make_strategy("dsxplore", cfg, backward_design="input_centric")
    push = make_strategy("dsxplore", cfg, backward_design="output_centric")
    for strat in (pull, push):
        out = strat.forward(x, w)
        strat.backward(np.ones_like(out))
    assert pull.stats.scatter_adds == 0
    assert push.stats.scatter_adds > 0
    assert push.stats.conflicting_scatter_adds > 0


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.label())
def test_measured_stats_match_gpusim_analytic_model(cfg):
    """The registry-dispatched kernels and the simulator agree (crosscheck)."""
    for result in crosscheck_all(cfg, batch=2, hw=4):
        assert result.ok, (
            f"{result.strategy}/{result.backward_design}: {result.failures()}"
        )


def test_crosscheck_channel_stack_atomics_scale_with_batch():
    cfg = SCCConfig(8, 16, 2, 0.5)
    r2 = crosscheck_scc_stats(cfg, batch=2, strategy="channel_stack")
    r4 = crosscheck_scc_stats(cfg, batch=4, strategy="channel_stack")
    assert r2.ok and r4.ok
    assert r4.checks["atomic_ops"][0] == 2 * r2.checks["atomic_ops"][0]


def test_stats_reset_between_forward_calls():
    cfg = SCCConfig(8, 16, 2, 0.5)
    x, w = _rand32(cfg)
    strat = make_strategy("channel_stack", cfg)
    strat.forward(x, w)
    first = strat.stats.snapshot()
    strat.forward(x, w)
    assert strat.stats.bytes_materialized == first.bytes_materialized
    assert strat.stats.gemm_calls == first.gemm_calls
