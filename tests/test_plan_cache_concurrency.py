"""Single-flight plan cache under concurrency + Workload canonicalization.

The serving front-end hammers :data:`PLAN_CACHE` from many threads; the
cache must build each unique workload exactly once (others wait for the
in-flight build), keep ``misses`` equal to true builder invocations, and
never let a later build silently replace an earlier plan.
"""
import threading
import time
from collections import Counter

import numpy as np
import pytest

from repro.backend import (
    PLAN_CACHE,
    Workload,
    clear_plan_cache,
    conv2d_plan,
    plan_cache_stats,
)
from repro.backend.workload import PlanCache


# ---------------------------------------------------------------------------
# Thread hammer: unique builds == misses, no duplicate builder invocations
# ---------------------------------------------------------------------------

def _hammer(cache: PlanCache, workloads, threads_per_workload: int):
    """All threads race get_or_build; returns per-workload builder counts."""
    build_counts = Counter()
    count_lock = threading.Lock()
    start = threading.Barrier(len(workloads) * threads_per_workload)
    results = {}
    results_lock = threading.Lock()

    def worker(wl):
        def builder():
            with count_lock:
                build_counts[wl] += 1
            time.sleep(0.005)  # widen the miss window: all threads race the build
            return object()

        start.wait()
        plan = cache.get_or_build(wl, builder)
        with results_lock:
            results.setdefault(wl, set()).add(id(plan))

    threads = [
        threading.Thread(target=worker, args=(wl,))
        for wl in workloads
        for _ in range(threads_per_workload)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return build_counts, results


def test_thread_hammer_builds_each_workload_exactly_once():
    cache = PlanCache()
    workloads = [Workload.make("hammer", (i,)) for i in range(6)]
    build_counts, results = _hammer(cache, workloads, threads_per_workload=8)

    # Exactly one builder invocation per unique workload, no duplicates.
    assert build_counts == Counter({wl: 1 for wl in workloads}), build_counts
    # Every thread saw the same plan object: no silent overwrite by a
    # second build racing the first insert.
    assert all(len(ids) == 1 for ids in results.values()), results
    stats = cache.stats()
    assert stats["misses"] == len(workloads)          # true build count
    assert stats["builds"] == len(workloads)
    assert stats["hits"] == len(workloads) * 8 - len(workloads)
    assert stats["in_flight"] == 0


def test_thread_hammer_global_cache_through_conv2d_plan():
    clear_plan_cache()
    base = plan_cache_stats()
    shapes = [((2, 4, 8, 8), (6, 4, 3, 3)), ((2, 4, 6, 6), (8, 4, 3, 3))]
    plans = {i: set() for i in range(len(shapes))}
    lock = threading.Lock()
    start = threading.Barrier(16)

    def worker(i):
        x_shape, w_shape = shapes[i % len(shapes)]
        start.wait()
        plan = conv2d_plan(x_shape, w_shape, 1, 1, 1, "float32")
        with lock:
            plans[i % len(shapes)].add(id(plan))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert all(len(ids) == 1 for ids in plans.values())
    stats = plan_cache_stats()
    assert stats["misses"] - base["misses"] == len(shapes)
    assert stats["builds"] - base["builds"] == len(shapes)
    assert stats["hits"] - base["hits"] == 16 - len(shapes)


def test_failed_build_releases_waiters_and_is_not_cached():
    cache = PlanCache()
    wl = Workload.make("doomed")
    attempts = []
    start = threading.Barrier(4)
    errors = []

    def worker():
        def builder():
            attempts.append(threading.get_ident())
            time.sleep(0.002)
            raise ValueError("bad workload")

        start.wait()
        try:
            cache.get_or_build(wl, builder)
        except ValueError as exc:
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # Every thread fails identically (waiters retry the builder themselves
    # after the in-flight build collapses) and nothing is cached.
    assert len(errors) == 4
    assert len(attempts) == 4
    assert wl not in cache
    assert cache.stats()["in_flight"] == 0


def test_clear_during_inflight_build_keeps_cache_cold():
    # A clear() racing an in-flight build must not let the finished plan
    # sneak back into the "cold" cache (the cold-vs-warm ablation clears
    # while serving threads may be mid-build).
    cache = PlanCache()
    wl = Workload.make("slow")
    release = threading.Event()
    built = {}

    def runner():
        def builder():
            release.wait(2.0)
            return "plan"

        built["plan"] = cache.get_or_build(wl, builder)

    thread = threading.Thread(target=runner)
    thread.start()
    from tests.helpers import wait_for

    wait_for(lambda: cache.stats()["in_flight"])  # the build is in flight
    cache.clear()
    release.set()
    thread.join()
    assert built["plan"] == "plan"         # the caller still got its plan
    assert wl not in cache                 # ...but the cleared cache stayed cold
    assert cache.stats()["size"] == 0
    # The next lookup is a genuine cold build.
    assert cache.get_or_build(wl, lambda: "fresh") == "fresh"
    assert cache.stats()["misses"] == 1


# ---------------------------------------------------------------------------
# Workload param canonicalization (regression: unhashable list params)
# ---------------------------------------------------------------------------

def test_workload_list_params_are_canonicalized_to_tuples():
    # Regression: padding=[1, 1] used to raise TypeError at cache-lookup time.
    from_list = Workload.make("conv2d", (1, 2, 4, 4), (2, 2, 3, 3),
                              padding=[1, 1], stride=1)
    from_tuple = Workload.make("conv2d", (1, 2, 4, 4), (2, 2, 3, 3),
                               padding=(1, 1), stride=1)
    assert from_list == from_tuple and hash(from_list) == hash(from_tuple)
    assert from_list.param("padding") == (1, 1)


def test_workload_ndarray_and_numpy_scalar_params_are_canonicalized():
    a = Workload.make("op", stride=np.int64(2), pads=np.array([1, 2]))
    b = Workload.make("op", stride=2, pads=[1, 2])
    assert a == b and hash(a) == hash(b)
    assert a.param("stride") == 2 and a.param("pads") == (1, 2)


def test_workload_nested_list_shapes_are_canonicalized():
    # einsum workloads key on a tuple *of shapes*; inner lists must
    # canonicalize too.
    a = Workload.make("einsum", in_shape=([4, 5], [5, 6]), subscripts="ab,bc->ac")
    b = Workload.make("einsum", in_shape=((4, 5), (5, 6)), subscripts="ab,bc->ac")
    assert a == b and hash(a) == hash(b)


def test_list_param_workload_usable_in_cache():
    cache = PlanCache()
    wl = Workload.make("op", pads=[0, 1])
    assert cache.get_or_build(wl, lambda: "plan") == "plan"
    assert cache.get_or_build(Workload.make("op", pads=(0, 1)), lambda: "other") == "plan"
    assert cache.stats()["misses"] == 1


# ---------------------------------------------------------------------------
# Single-thread invariants preserved
# ---------------------------------------------------------------------------

def test_stats_expose_builds_equal_to_misses():
    cache = PlanCache()
    for i in range(5):
        cache.get_or_build(Workload.make("x", (i % 2,)), lambda: i)
    stats = cache.stats()
    assert stats["misses"] == stats["builds"] == 2
    assert stats["hits"] == 3


def test_eviction_still_bounded_under_single_flight():
    cache = PlanCache(maxsize=2)
    for i in range(6):
        cache.get_or_build(Workload.make("x", (i,)), lambda i=i: i)
    assert len(cache) == 2
    assert Workload.make("x", (5,)) in cache


def test_failed_build_raises_again_singlethreaded():
    cache = PlanCache()
    wl = Workload.make("bad")
    for _ in range(2):
        with pytest.raises(RuntimeError, match="boom"):
            cache.get_or_build(wl, lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    assert cache.stats()["misses"] == 2
    assert wl not in cache
