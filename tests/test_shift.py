"""Shift convolution (paper Section II-B extension kernel)."""
import numpy as np
import pytest

from repro.core.shift import ShiftConv2d, ShiftFunction, ShiftSCCBlock, shift_offsets
from repro.tensor import Tensor
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(141)


def test_offsets_cover_neighbourhood_round_robin():
    offs = shift_offsets(18, kernel_size=3)
    assert offs.shape == (18, 2)
    # 9 displacement vectors, each used exactly twice for 18 channels.
    unique, counts = np.unique(offs, axis=0, return_counts=True)
    assert len(unique) == 9
    assert all(counts == 2)
    assert offs.min() == -1 and offs.max() == 1


def test_offsets_validation():
    with pytest.raises(ValueError, match="odd"):
        shift_offsets(4, kernel_size=2)


def test_shift_moves_content():
    x = np.zeros((1, 9, 5, 5), dtype=np.float32)
    x[0, :, 2, 2] = 1.0
    fn = ShiftFunction()
    out = fn.forward(x, offsets=shift_offsets(9))
    for c in range(9):
        dy, dx = shift_offsets(9)[c]
        assert out[0, c, 2 + dy, 2 + dx] == 1.0
        assert out[0, c].sum() == 1.0


def test_shift_zero_fills_borders():
    x = np.ones((1, 9, 3, 3), dtype=np.float32)
    out = ShiftFunction().forward(x, offsets=shift_offsets(9))
    # Channel with offset (1, 1) loses a row and a column.
    offs = shift_offsets(9)
    c = int(np.where((offs == [1, 1]).all(axis=1))[0][0])
    assert out[0, c].sum() == 4.0


def test_shift_backward_is_inverse_shift():
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((2, 9, 6, 6)).astype(np.float32), requires_grad=True)
    layer = ShiftConv2d(9)
    out = layer(x)
    g = rng.standard_normal(out.shape).astype(np.float32)
    out.backward(g)
    # <shift(x), g> == <x, shift^T(g)>: check the adjoint identity.
    lhs = float((out.data * g).sum())
    rhs = float((x.data * x.grad).sum())
    assert abs(lhs - rhs) < 1e-3


def test_shift_zero_params_zero_flops():
    layer = ShiftConv2d(16)
    assert layer.num_parameters() == 0


def test_shift_channel_mismatch():
    layer = ShiftConv2d(4)
    with pytest.raises(ValueError, match="channels"):
        layer(Tensor(np.zeros((1, 5, 3, 3), dtype=np.float32)))


def test_shift_scc_block_trains():
    block = ShiftSCCBlock(8, 16, cg=2, co=0.5)
    x = Tensor(np.random.default_rng(1).standard_normal((2, 8, 6, 6)).astype(np.float32))
    out = block(x)
    assert out.shape == (2, 16, 6, 6)
    (out * out).sum().backward()
    assert all(p.grad is not None for p in block.parameters())
    # Spatial stage contributes zero parameters.
    assert block.shift.num_parameters() == 0


def test_shift_function_validates_offsets():
    with pytest.raises(ValueError, match="offsets"):
        ShiftFunction().forward(np.zeros((1, 3, 4, 4)), offsets=np.zeros((2, 2), dtype=np.int64))
