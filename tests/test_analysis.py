"""FLOPs/params accounting: closed forms, paper identities, profiler."""
import numpy as np
import pytest

from repro import nn
from repro.analysis import conv_macs, profile_model, separable_macs
from repro.core.blocks import make_separable_block
from repro.core.scc import SlidingChannelConv2d
from repro.models import build_model
from repro.utils import seed_all


@pytest.fixture(autouse=True)
def _seed():
    seed_all(71)


def test_conv_macs_formula():
    # Paper Section II: Fw*Fw*Cout*W*W*Cin.
    assert conv_macs(128, 64, 3, 56, 56) == 56 * 56 * 128 * 64 * 9
    assert conv_macs(128, 64, 3, 56, 56, groups=2) == 56 * 56 * 128 * 32 * 9


def test_dsc_reduction_identity():
    # Paper: DSC/standard cost ratio == 1/Cout + 1/W^2.
    cin, cout, k, fw = 64, 128, 3, 56
    std = conv_macs(cout, cin, k, fw, fw)
    dsc = separable_macs(cin, cout, k, fw, fw)
    assert abs(dsc / std - (1 / cout + 1 / k**2)) < 1e-12


def test_profile_simple_net_hand_count():
    model = nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, bias=False),   # 8*8 * 8 * 3 * 9
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 4),                              # 32
    )
    prof = profile_model(model, (3, 8, 8))
    expected = 8 * 8 * 8 * 3 * 9 + 8 * 4
    assert prof.total_macs == expected
    assert prof.total_params == model.num_parameters()


def test_profile_scc_layer():
    model = nn.Sequential(SlidingChannelConv2d(8, 16, cg=2, co=0.5, bias=False))
    prof = profile_model(model, (8, 4, 4))
    assert prof.total_macs == 4 * 4 * 16 * 4   # HW * Cout * group_width
    assert prof.total_params == 16 * 4


def test_scc_macs_independent_of_overlap():
    # Paper Fig. 12 premise: co does not change cost.
    for co in (0.25, 0.5, 0.75):
        model = nn.Sequential(SlidingChannelConv2d(8, 16, cg=2, co=co, bias=False))
        prof = profile_model(model, (8, 4, 4))
        assert prof.total_macs == 4 * 4 * 16 * 4


def test_gpw_vs_scc_cost_parity():
    # Paper Table IV: DW+GPW-cgX rows equal DW+SCC-cgX rows in cost.
    gpw = make_separable_block(16, 32, scheme="gpw", cg=4)
    scc = make_separable_block(16, 32, scheme="scc", cg=4, co=0.5)
    pg = profile_model(gpw, (16, 8, 8))
    ps = profile_model(scc, (16, 8, 8))
    assert pg.total_macs == ps.total_macs
    assert pg.total_params == ps.total_params


def test_layer_kinds_classified():
    block = make_separable_block(8, 16, scheme="scc", cg=2, co=0.5)
    prof = profile_model(block, (8, 8, 8))
    kinds = {l.kind for l in prof.layers}
    assert {"dw", "scc", "bn"} <= kinds


def test_vgg16_matches_paper_table2_flops():
    prof = profile_model(build_model("vgg16"), (3, 32, 32))
    # Paper reports 314.16 MFLOPs; our exact count is 313.2 (paper likely
    # includes biases/BN). Within 1%.
    assert abs(prof.mflops - 314.16) / 314.16 < 0.01
    assert abs(prof.params_m - 14.73) < 0.01


def test_resnet50_matches_paper_table2_flops():
    prof = profile_model(build_model("resnet50"), (3, 32, 32))
    assert abs(prof.mflops - 1297.80) / 1297.80 < 0.001


def test_dsxplore_vgg16_reduction_matches_paper():
    # Paper Table II: VGG16 origin 314.16 -> DSXplore 21.85 MFLOPs (93%
    # reduction) and 14.73M -> 0.87M params (94%).
    origin = profile_model(build_model("vgg16"), (3, 32, 32))
    dsx = profile_model(build_model("vgg16", scheme="scc", cg=2, co=0.5), (3, 32, 32))
    assert abs(dsx.mflops - 21.85) / 21.85 < 0.10
    assert abs(dsx.params_m - 0.87) < 0.10
    assert dsx.mflops / origin.mflops < 0.08


def test_dsxplore_resnet18_matches_paper_dsx_row():
    # Table II DSXplore row for ResNet18: 43.99 MFLOPs, 0.84M params.
    dsx = profile_model(build_model("resnet18", scheme="scc", cg=2, co=0.5), (3, 32, 32))
    assert abs(dsx.mflops - 43.99) / 43.99 < 0.10
    assert abs(dsx.params_m - 0.84) < 0.10


def test_by_kind_breakdown_sums_to_total():
    prof = profile_model(build_model("mobilenet", width_mult=0.25), (3, 16, 16))
    assert abs(sum(prof.by_kind().values()) - prof.total_macs) < 1e-6


def test_unknown_parametric_leaf_raises():
    from repro.analysis.count import _layer_cost
    from repro.nn.module import Module, Parameter

    class Weird(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(np.zeros(3))

    with pytest.raises(TypeError, match="no cost rule"):
        _layer_cost(Weird(), (1, 3), "weird")
