"""Convolution / pooling / batch-norm kernel tests against naive references."""
import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor.conv_ops import AvgPool2d, BatchNorm2d, Conv2d, MaxPool2d, conv_out_size
from repro.utils import seed_all

from tests.helpers import assert_grad_close, numerical_grad


@pytest.fixture(autouse=True)
def _seed():
    seed_all(11)


def naive_conv2d(x, w, stride=1, padding=0, groups=1):
    """O(everything) reference convolution."""
    n, cin, h, wid = x.shape
    cout, cin_g, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ho = (x.shape[2] - kh) // stride + 1
    wo = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, cout, ho, wo), dtype=np.float64)
    og = cout // groups
    for b in range(n):
        for o in range(cout):
            g = o // og
            for y in range(ho):
                for xx in range(wo):
                    patch = x[b, g * cin_g : (g + 1) * cin_g,
                              y * stride : y * stride + kh,
                              xx * stride : xx * stride + kw]
                    out[b, o, y, xx] = (patch * w[o]).sum()
    return out


@pytest.mark.parametrize(
    "cin,cout,k,stride,padding,groups",
    [
        (3, 5, 3, 1, 1, 1),
        (4, 6, 3, 2, 1, 2),
        (4, 4, 3, 1, 1, 4),   # depthwise
        (6, 8, 1, 1, 0, 1),   # pointwise
        (6, 8, 1, 1, 0, 2),   # grouped pointwise
        (2, 3, 5, 2, 2, 1),
    ],
)
def test_conv_forward_matches_naive(cin, cout, k, stride, padding, groups):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, cin, 7, 7)).astype(np.float64)
    w = rng.standard_normal((cout, cin // groups, k, k)).astype(np.float64)
    fn = Conv2d()
    out = fn.forward(x, w, stride=stride, padding=padding, groups=groups)
    np.testing.assert_allclose(out, naive_conv2d(x, w, stride, padding, groups), rtol=1e-8)


@pytest.mark.parametrize("stride,padding,groups", [(1, 1, 1), (2, 1, 2), (1, 0, 4)])
def test_conv_backward_numerical(stride, padding, groups):
    rng = np.random.default_rng(1)
    x = rng.standard_normal((2, 4, 5, 5))
    w = rng.standard_normal((4, 4 // groups, 3, 3))
    fn = Conv2d()
    out = fn.forward(x, w, stride=stride, padding=padding, groups=groups)
    fn.needs_input_grad = (True, True)
    gx, gw = fn.backward(2 * out)

    def loss():
        c = Conv2d()
        return float((c.forward(x, w, stride=stride, padding=padding, groups=groups) ** 2).sum())

    assert_grad_close(gx, numerical_grad(loss, x), name="conv/x")
    assert_grad_close(gw, numerical_grad(loss, w), name="conv/w")


def test_conv_shape_validation():
    fn = Conv2d()
    x = np.zeros((1, 4, 5, 5))
    with pytest.raises(ValueError, match="groups"):
        fn.forward(x, np.zeros((6, 2, 3, 3)), groups=3)
    with pytest.raises(ValueError, match="input channels per group"):
        fn.forward(x, np.zeros((4, 3, 3, 3)), groups=2)


def test_conv_out_size():
    assert conv_out_size(32, 3, 1, 1) == 32
    assert conv_out_size(32, 3, 2, 1) == 16
    assert conv_out_size(7, 7, 1, 0) == 1
    with pytest.raises(ValueError, match="empty output"):
        conv_out_size(2, 5, 1, 0)


def test_maxpool_matches_naive():
    rng = np.random.default_rng(2)
    x = rng.standard_normal((2, 3, 6, 6))
    fn = MaxPool2d()
    out = fn.forward(x, kernel=2, stride=2)
    expected = x.reshape(2, 3, 3, 2, 3, 2).max(axis=(3, 5))
    np.testing.assert_allclose(out, expected)


def test_maxpool_overlapping_with_padding_backward():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((2, 2, 7, 7))
    fn = MaxPool2d()
    out = fn.forward(x, kernel=3, stride=2, padding=1)
    assert out.shape == (2, 2, 4, 4)
    fn.needs_input_grad = (True,)
    (gx,) = fn.backward(np.ones_like(out))

    def loss():
        c = MaxPool2d()
        return float(c.forward(x, kernel=3, stride=2, padding=1).sum())

    assert_grad_close(gx, numerical_grad(loss, x, eps=1e-6), name="maxpool/x")


def test_avgpool_forward_backward():
    rng = np.random.default_rng(4)
    x = rng.standard_normal((2, 3, 4, 4))
    fn = AvgPool2d()
    out = fn.forward(x, kernel=2)
    np.testing.assert_allclose(out, x.reshape(2, 3, 2, 2, 2, 2).mean(axis=(3, 5)))
    fn.needs_input_grad = (True,)
    (gx,) = fn.backward(np.ones_like(out))
    np.testing.assert_allclose(gx, np.full_like(x, 0.25))


def test_avgpool_rejects_non_divisible():
    fn = AvgPool2d()
    with pytest.raises(ValueError, match="not divisible"):
        fn.forward(np.zeros((1, 1, 5, 5)), kernel=2)


def test_avgpool_rejects_overlapping_stride():
    fn = AvgPool2d()
    with pytest.raises(NotImplementedError):
        fn.forward(np.zeros((1, 1, 4, 4)), kernel=2, stride=1)


def test_batchnorm_normalises():
    rng = np.random.default_rng(5)
    x = rng.standard_normal((8, 3, 5, 5)) * 4 + 7
    fn = BatchNorm2d()
    out = fn.forward(x, np.ones(3), np.zeros(3))
    np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0, atol=1e-6)
    np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1, atol=1e-3)
    np.testing.assert_allclose(fn.batch_mean, x.mean(axis=(0, 2, 3)))


def test_batchnorm_backward_numerical():
    rng = np.random.default_rng(6)
    x = rng.standard_normal((4, 2, 3, 3))
    gamma = rng.standard_normal(2)
    beta = rng.standard_normal(2)
    fn = BatchNorm2d()
    out = fn.forward(x, gamma, beta)
    fn.needs_input_grad = (True, True, True)
    gx, ggamma, gbeta = fn.backward(2 * out)

    def loss():
        c = BatchNorm2d()
        return float((c.forward(x, gamma, beta) ** 2).sum())

    assert_grad_close(gx, numerical_grad(loss, x), name="bn/x")
    assert_grad_close(ggamma, numerical_grad(loss, gamma), name="bn/gamma")
    assert_grad_close(gbeta, numerical_grad(loss, beta), name="bn/beta")


def test_conv_autograd_integration():
    from repro.tensor import randn

    x = randn(2, 4, 6, 6, requires_grad=True)
    w = randn(8, 2, 3, 3, requires_grad=True)
    out = Conv2d.apply(x, w, stride=1, padding=1, groups=2)
    assert out.shape == (2, 8, 6, 6)
    (out * out).sum().backward()
    assert x.grad is not None and x.grad.shape == x.shape
    assert w.grad is not None and w.grad.shape == w.shape
