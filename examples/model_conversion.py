"""Drop-in conversion of an existing CNN (paper's VGG/ResNet workflow).

Takes an *origin* VGG16, applies ``convert_model`` to swap every standard
convolution for a DW+SCC block (stem and 1x1 convs preserved), shows the
cost cliff, then trains the converted network briefly to show it learns.

Run:  python examples/model_conversion.py
"""
from repro.analysis import profile_model
from repro.core.blocks import convert_model
from repro.data import DataLoader, make_dataset, train_test_split
from repro.models import build_model
from repro.train import Trainer, TrainConfig
from repro.utils import format_table, seed_all

seed_all(0)

# Full-size origin VGG16 (CIFAR geometry) for the honest cost numbers.
origin_full = build_model("vgg16")
origin_prof = profile_model(origin_full, (3, 32, 32))
converted_full, n_replaced = convert_model(build_model("vgg16"), scheme="scc",
                                           cg=2, co=0.5)
converted_prof = profile_model(converted_full, (3, 32, 32))

print(format_table(
    ["Network", "MFLOPs", "Params (M)"],
    [
        ["VGG16 origin", f"{origin_prof.mflops:.2f}", f"{origin_prof.params_m:.2f}"],
        [f"VGG16 DW+SCC ({n_replaced} convs converted)",
         f"{converted_prof.mflops:.2f}", f"{converted_prof.params_m:.2f}"],
    ],
    title="Drop-in conversion, full-size VGG16 @ 32x32 (paper Table II row)",
))
print(f"FLOPs saved: {1 - converted_prof.total_macs / origin_prof.total_macs:.1%}, "
      f"params saved: {1 - converted_prof.total_params / origin_prof.total_params:.1%}")

# Train a width-reduced converted model to show it actually learns.
seed_all(7)
model = build_model("vgg16", width_mult=0.125, num_classes=10)
model, _ = convert_model(model, scheme="scc", cg=2, co=0.5)
dataset = make_dataset(400, num_classes=10, image_size=32, noise=0.3, seed=8)
train_set, test_set = train_test_split(dataset, 0.2, seed=8)
trainer = Trainer(model, TrainConfig(epochs=3, lr=0.05, momentum=0.9, verbose=True))
history = trainer.fit(DataLoader(train_set, batch_size=32, seed=9),
                      DataLoader(test_set, batch_size=64, shuffle=False))
print(f"converted VGG16 (width 0.125) best test accuracy: {history.best_test_acc:.3f} "
      f"(chance = 0.10)")
