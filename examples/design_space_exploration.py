"""Design-space exploration — the "Xplore" in DSXplore.

SCC turns the fixed DW+PW block into a two-parameter family (cg, co).
This example sweeps the space on a small MobileNet, training each design
point on the synthetic task, then prints the accuracy-vs-cost landscape
and its Pareto front (paper Section III-A / Table IV, exploration view).

Run:  python examples/design_space_exploration.py          (~2-4 min CPU)
      FULL=1 python examples/design_space_exploration.py   (denser sweep)
"""
import os

from repro.analysis import profile_model
from repro.core.design_space import DesignPoint, pareto_front
from repro.data import DataLoader, make_dataset, train_test_split
from repro.models import build_mobilenet
from repro.train import Trainer, TrainConfig
from repro.utils import format_table, seed_all

FULL = os.environ.get("FULL", "0") == "1"

seed_all(0)
# Calibrated reduced protocol (EXPERIMENTS.md): 8-channel inputs, mini model.
dataset = make_dataset(1800 if FULL else 900, num_classes=10, image_size=12,
                       channels=8, latents=8, noise=0.3, seed=4)
train_set, test_set = train_test_split(dataset, 0.2, seed=4)
train_loader = DataLoader(train_set, batch_size=48, seed=5)
test_loader = DataLoader(test_set, batch_size=96, shuffle=False)

if FULL:
    GRID = [(cg, co) for cg in (2, 4, 8) for co in (0.0, 0.25, 1 / 3, 0.5, 0.75)]
else:
    GRID = [(2, 0.0), (2, 0.5), (4, 0.0), (4, 0.5), (8, 0.0), (8, 0.5)]
EPOCHS = 10 if FULL else 7

points: list[DesignPoint] = []
for cg, co in GRID:
    scheme = "gpw" if co == 0.0 else "scc"
    seed_all(42)   # identical init/order for a fair comparison
    model = build_mobilenet(scheme=scheme, cg=cg, co=co, width_mult=0.5,
                            num_blocks=4, num_classes=10, in_channels=8)
    prof = profile_model(model, (8, 12, 12))
    trainer = Trainer(model, TrainConfig(epochs=EPOCHS, lr=0.05, momentum=0.9,
                                         weight_decay=5e-4))
    hist = trainer.fit(train_loader, test_loader)
    point = DesignPoint(cg=cg, co=co, flops=prof.total_macs,
                        params=prof.total_params,
                        cyclic_dist=0, accuracy=hist.best_test_acc)
    points.append(point)
    print(f"trained {point.label():<18} acc={point.accuracy:.3f} "
          f"({prof.mflops:.2f} MFLOPs, {prof.total_params} params)")

front = pareto_front(points)
print()
print(format_table(
    ["Design", "MFLOPs", "Params", "Accuracy", "Pareto-optimal"],
    [[p.label(), f"{p.flops / 1e6:.2f}", p.params, f"{p.accuracy:.3f}",
      "yes" if p in front else ""] for p in sorted(points, key=lambda q: q.flops)],
    title="SCC design space on mini MobileNet (chance = 0.10)",
))
print("\nReading: at each cg level, the co>0 point (SCC) should match or beat the")
print("co=0 point (GPW) at identical cost — the paper's central claim (ties are")
print("within single-seed noise at this scale; see EXPERIMENTS.md).")
