"""MobileNet head-to-head: DW+PW vs DW+GPW vs DW+SCC (paper Table IV story).

Trains three pointwise-stage variants of the same MobileNet under identical
seeds and data, then prints the accuracy/cost triangle of paper Table I:
SCC should match GPW's cost while recovering (most of) PW's accuracy.

Run:  python examples/mobilenet_ablation.py   (~2-3 min CPU)
"""
from repro.analysis import profile_model
from repro.data import DataLoader, make_dataset, train_test_split
from repro.models import build_mobilenet
from repro.train import Trainer, TrainConfig
from repro.utils import format_table, seed_all

seed_all(0)
# The calibrated reduced-scale protocol (see EXPERIMENTS.md): 8-channel
# synthetic images whose label lives in cross-channel structure, and a
# depth-truncated MobileNet that trains to well above chance in ~20s.
dataset = make_dataset(900, num_classes=10, image_size=12, channels=8,
                       latents=8, noise=0.3, seed=10)
train_set, test_set = train_test_split(dataset, 0.2, seed=10)
train_loader = DataLoader(train_set, batch_size=48, seed=11)
test_loader = DataLoader(test_set, batch_size=96, shuffle=False)

VARIANTS = [
    ("Baseline (DW+PW)", "pw", 1, 0.0),
    ("DW+GPW-cg4", "gpw", 4, 0.0),
    ("DW+SCC-cg4-co50%", "scc", 4, 0.5),
]

SEEDS = (42, 43, 44)

rows = []
for label, scheme, cg, co in VARIANTS:
    accs = []
    prof = None
    for seed in SEEDS:
        seed_all(seed)
        model = build_mobilenet(scheme=scheme, cg=cg, co=co, width_mult=0.5,
                                num_blocks=4, num_classes=10, in_channels=8)
        prof = profile_model(model, (8, 12, 12))
        trainer = Trainer(model, TrainConfig(epochs=7, lr=0.1, momentum=0.9,
                                             weight_decay=5e-4))
        hist = trainer.fit(train_loader, test_loader)
        accs.append(hist.best_test_acc)
    mean = sum(accs) / len(accs)
    spread = max(accs) - min(accs)
    rows.append([label, f"{prof.mflops:.2f}", f"{prof.total_params:,}",
                 f"{mean:.3f} (+-{spread / 2:.3f})"])
    print(f"done: {label}: {['%.2f' % a for a in accs]}")

print()
print(format_table(
    ["Network", "MFLOPs", "Params", "Test acc (3-seed mean)"],
    rows,
    title="MobileNet pointwise-stage ablation (mini model, chance = 0.10)",
))
print("\nPaper Table IV shape: cost(SCC-cg4) == cost(GPW-cg4) < cost(PW), with SCC")
print("recovering accuracy via window overlap.  On this synthetic proxy the")
print("SCC-vs-GPW accuracy gap sits within seed noise (see EXPERIMENTS.md).")
