"""Explore the GPU execution model: why DSXplore's kernel design wins.

For one network this walks the full performance story of paper Section IV:
per-strategy training-step time with breakdowns (launch overhead, atomic
serialisation), the memory cliff of the channel-stack implementation, the
channel-cyclic optimisation's footprint saving, and multi-GPU scaling —
all on the simulated V100, with no GPU in sight.

Run:  python examples/gpu_performance_model.py
"""
from repro.gpusim import (
    MemoryModel,
    data_parallel_step_time,
    extract_layer_shapes,
    tesla_v100,
    training_step_time,
)
from repro.models import build_model
from repro.utils import format_table, seed_all

seed_all(0)
device = tesla_v100()
print(f"device: {device.name} ({device.cuda_cores} cores, "
      f"{device.peak_flops / 1e12:.1f} TFLOPs, "
      f"{device.mem_bandwidth / 1e9:.0f} GB/s)")

model = build_model("mobilenet", scheme="scc", cg=2, co=0.5)
shapes = extract_layer_shapes(model, (3, 32, 32))
print(f"model: MobileNet + SCC-cg2-co50% ({len(shapes)} layers)")

BATCH = 128
rows = []
for strategy, bwd in [("channel_stack", "input_centric"),
                      ("conv_stack", "input_centric"),
                      ("dsxplore", "output_centric"),
                      ("dsxplore", "input_centric")]:
    step = training_step_time(shapes, BATCH, device, scc_strategy=strategy,
                              scc_backward=bwd)
    label = {"channel_stack": "Pytorch-Base", "conv_stack": "Pytorch-Opt"}.get(
        strategy, "DSXplore-Var" if bwd == "output_centric" else "DSXplore")
    rows.append([label, f"{step.total * 1e3:.2f}", f"{step.launch * 1e3:.2f}",
                 f"{step.atomic * 1e3:.2f}", step.num_launches])
print(format_table(
    ["Implementation", "step (ms)", "launch+dispatch (ms)", "atomics (ms)", "kernels"],
    rows,
    title=f"Training-step breakdown, batch {BATCH} (simulated V100)",
))

mm = MemoryModel(device)
mem_rows = []
for strategy, cc in [("channel_stack", False), ("conv_stack", False),
                     ("conv_stack", True), ("dsxplore", True)]:
    rep = mm.report(shapes, BATCH, strategy, cc_enabled=cc)
    mem_rows.append([f"{strategy}{' + CC' if cc and strategy != 'dsxplore' else ''}",
                     f"{rep.total_mb:.0f}", f"{rep.temporaries / 2**20:.0f}"])
print(format_table(
    ["Implementation", "total (MB)", "stacked temporaries (MB)"],
    mem_rows,
    title="Peak memory footprint (paper Fig. 10 mechanism)",
))

grad_bytes = 4 * sum(p.size for p in model.parameters())
scale_rows = []
t1 = data_parallel_step_time(shapes, 512, 1, device, grad_bytes).total
for k in (1, 2, 3, 4):
    step = data_parallel_step_time(shapes, 512, k, device, grad_bytes)
    scale_rows.append([f"{k}-GPU", f"{step.total * 1e3:.2f}",
                       f"{step.communication * 1e3:.2f}", f"{t1 / step.total:.2f}x"])
print(format_table(
    ["Devices", "step (ms)", "exposed comm (ms)", "speedup"],
    scale_rows,
    title="Data-parallel scaling, batch 512 (paper Fig. 14 mechanism)",
))
