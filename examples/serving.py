"""Serving: model-level plans + the shape-bucketed inference front-end.

Covers the serving API end to end:

1. build a DSXplore-form model with a pre-built ``ModelPlan`` (every layer's
   execution plan cache-resident before the first request),
2. stand up a ``serve.Server`` with bucket/flush knobs and feed it a stream
   of single-image requests, synchronously,
3. read the serving metrics: throughput, p50/p95 latency, plan-cache hit
   rate, bucket fill,
4. run the same server in threaded mode with concurrent client threads
   (the workload the single-flight plan cache exists for).

Run:  python examples/serving.py
"""
import threading

import numpy as np

from repro.backend import plan_cache_stats
from repro.models import build_model
from repro.serve import Server, ServingPolicy
from repro.utils import seed_all

seed_all(0)
INPUT = (3, 16, 16)

# 1. A MobileNet in DSXplore form, with its inference plans pre-built for
#    batch 8.  The attached ModelPlan means the first request pays no
#    einsum-path searches or index-table builds.
model = build_model(
    "mobilenet", scheme="scc", cg=2, co=0.5, width_mult=0.5,
    plan_input_shape=INPUT, plan_batch_size=8, plan_backward=False,
)
print("model plan:", model.model_plan)
print("plan cache after pre-build:", plan_cache_stats())

# 2. A server with buckets of 1/2/4/8 requests and a 20 ms flush deadline.
#    Full buckets run immediately; stragglers flush when their deadline
#    expires (poll() drives the clock in synchronous mode).
server = Server(
    model,
    input_shapes=[INPUT],
    config=ServingPolicy(bucket_sizes=(1, 2, 4, 8), max_latency=0.02),
)
server.reset_metrics()

rng = np.random.default_rng(1)
request_ids = [
    server.submit(rng.standard_normal(INPUT).astype(np.float32))
    for _ in range(50)
]
server.flush()
first = server.result(request_ids[0])
print(f"\nrequest 0: rode a bucket of {first.bucket_size} "
      f"({first.batch_requests} real requests), "
      f"latency {first.latency * 1e3:.2f} ms")

# 3. Serving metrics: the plan-cache hit rate is the serving health signal —
#    1.0 means no request ever waited on a plan build.
metrics = server.metrics()
print("\nsynchronous window:")
for key, value in metrics.as_dict().items():
    print(f"  {key:>24}: {value:.4f}" if isinstance(value, float) else
          f"  {key:>24}: {value}")

# 4. Threaded mode: a background worker flushes due buckets while client
#    threads submit and block on their results.
server.reset_metrics()
server.start()

def client(seed: int) -> None:
    gen = np.random.default_rng(seed)
    for _ in range(10):
        rid = server.submit(gen.standard_normal(INPUT).astype(np.float32))
        server.wait_result(rid, timeout=30.0)

clients = [threading.Thread(target=client, args=(seed,)) for seed in range(4)]
for thread in clients:
    thread.start()
for thread in clients:
    thread.join()
server.stop()

metrics = server.metrics()
print(f"\nthreaded window: {metrics.completed} requests from 4 clients, "
      f"{metrics.throughput:.1f} req/s, "
      f"hit rate {metrics.plan_cache_hit_rate:.3f}, "
      f"plan builds {metrics.plan_builds}")
