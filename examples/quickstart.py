"""Quickstart: the sliding-channel convolution in five minutes.

Covers the public API end to end:

1. build a ``SlidingChannelConv2d`` and inspect its channel windows,
2. verify the three execution strategies compute the same function,
3. drop SCC into a small CNN and train it on the synthetic dataset,
4. count the FLOPs/params savings vs a pointwise baseline.

Run:  python examples/quickstart.py
"""
import numpy as np

from repro import nn
from repro.analysis import profile_model
from repro.core import SlidingChannelConv2d, channel_windows
from repro.core.blocks import make_separable_block, set_scc_impl
from repro.data import DataLoader, make_dataset, train_test_split
from repro.tensor import Tensor
from repro.train import Trainer, TrainConfig
from repro.utils import seed_all

seed_all(0)

# 1. One SCC layer: 8 input channels, 16 filters, 2 channel groups (each
#    filter reads 4 channels), 50% overlap between adjacent filters.
layer = SlidingChannelConv2d(8, 16, cg=2, co=0.5)
print("layer:", layer)
print("cyclic distance (Algorithm 1):", layer.cyclic_dist)
print("first 6 filter windows:\n", channel_windows(8, 16, 2, 0.5)[:6])

# 2. Same math under all three execution strategies of the paper.
x = Tensor(np.random.default_rng(1).standard_normal((2, 8, 6, 6)).astype(np.float32))
reference = layer(x).data.copy()
for impl in ("channel_stack", "conv_stack"):
    layer.set_impl(impl)
    assert np.allclose(layer(x).data, reference, atol=1e-5)
    print(f"{impl:>14}: matches fused DSXplore kernel")
layer.set_impl("dsxplore")

# 3. Train a small DW+SCC network end to end.
dataset = make_dataset(800, num_classes=10, image_size=12, noise=0.3, seed=2)
train_set, test_set = train_test_split(dataset, 0.2, seed=2)
model = nn.Sequential(
    nn.Conv2d(3, 16, 3, padding=1, bias=False),
    nn.BatchNorm2d(16),
    nn.ReLU(),
    make_separable_block(16, 32, stride=2, scheme="scc", cg=2, co=0.5),
    make_separable_block(32, 64, stride=2, scheme="scc", cg=2, co=0.5),
    nn.GlobalAvgPool2d(),
    nn.Linear(64, 10),
)
trainer = Trainer(model, TrainConfig(epochs=5, lr=0.1, momentum=0.9, verbose=True))
history = trainer.fit(
    DataLoader(train_set, batch_size=48, seed=3),
    DataLoader(test_set, batch_size=96, shuffle=False),
)
print(f"best test accuracy: {history.best_test_acc:.3f}")

# You can switch every SCC layer's execution strategy in place at any time:
set_scc_impl(model, "conv_stack")
print("switched all SCC layers to the Pytorch-Opt strategy; accuracy unchanged:",
      f"{trainer.evaluate(DataLoader(test_set, batch_size=96, shuffle=False)):.3f}")

# 4. What did SCC buy us vs a PW (MobileNet-style) pointwise stage?
set_scc_impl(model, "dsxplore")
scc_prof = profile_model(model, (3, 12, 12))
baseline = nn.Sequential(
    nn.Conv2d(3, 16, 3, padding=1, bias=False),
    nn.BatchNorm2d(16),
    nn.ReLU(),
    make_separable_block(16, 32, stride=2, scheme="pw"),
    make_separable_block(32, 64, stride=2, scheme="pw"),
    nn.GlobalAvgPool2d(),
    nn.Linear(64, 10),
)
pw_prof = profile_model(baseline, (3, 12, 12))
print(
    f"FLOPs: {scc_prof.mflops:.2f} vs {pw_prof.mflops:.2f} MFLOPs "
    f"({1 - scc_prof.total_macs / pw_prof.total_macs:.0%} saved); "
    f"params: {scc_prof.total_params} vs {pw_prof.total_params} "
    f"({1 - scc_prof.total_params / pw_prof.total_params:.0%} saved)"
)
