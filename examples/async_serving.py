"""Async serving gateway: awaitable inference with latency budgets.

Covers the asyncio transport over the PR-7 scheduling core end to end:

1. register two models on an ``AsyncGateway`` (same registry-name path as
   the sync ``Router``; each model gets a ``ModelExecutor`` whose batches
   run on the shared worker pool),
2. await concurrent submissions and read the queue-wait vs execution
   latency split from ``ServingMetrics``,
3. per-request latency budgets: a blown budget resolves the awaiting
   coroutine with ``DeadlineExceeded`` instead of executing stale work,
4. adaptive bucketing: the EWMA arrival-rate tracker moves the target
   bucket with offered load,
5. deficit-round-robin fairness: a light model's latency survives a heavy
   model's backlog on the same execution lane,
6. clean shutdown: ``stop(drain=True)`` completes everything pending,
   ``drain=False`` sheds it loudly (``RequestShed``).

Run:  python examples/async_serving.py
"""
import asyncio

import numpy as np

from repro.serve import AsyncGateway, DeadlineExceeded, ServingPolicy
from repro.utils import seed_all

seed_all(0)
INPUT = (3, 16, 16)
rng = np.random.default_rng(7)


def image():
    return rng.standard_normal(INPUT).astype(np.float32)


async def main():
    # 1. Two models behind one gateway.  The heavy model's batches cost
    #    ~4x the light one's, priced into the DRR fairness accounting.
    gw = AsyncGateway(ServingPolicy(bucket_sizes=(1, 2, 4, 8),
                                    max_latency=0.02,
                                    adaptive_buckets=True,
                                    shed_policy="deadline"))
    gw.register("light", "mobilenet", input_shapes=[INPUT],
                scheme="scc", width_mult=0.25, seed=1, request_cost=1.0)
    gw.register("heavy", "resnet18", input_shapes=[INPUT],
                scheme="scc", width_mult=0.5, seed=2, request_cost=4.0)
    print("registered:", gw.core.models())

    # 2. Concurrent awaitable submissions; the scheduler coalesces them
    #    into padded buckets (outputs are bit-identical to riding alone).
    results = await asyncio.gather(
        *[gw.submit("light", image(), budget=30.0) for _ in range(8)]
    )
    print(f"\n8 concurrent submits: buckets {[r.bucket_size for r in results]}")
    metrics = gw.metrics()["light"]
    print(f"latency p95 {metrics.latency_p95 * 1e3:.2f} ms "
          f"= queue-wait {metrics.queue_wait_mean * 1e3:.2f} "
          f"+ exec {metrics.exec_mean * 1e3:.2f} ms (means)")

    # 3. A latency budget the queue cannot honour: the request is shed
    #    (never executed) and the awaiter sees DeadlineExceeded.
    try:
        await gw.submit("light", image(), budget=-1.0)
    except DeadlineExceeded as exc:
        print(f"\nblown budget shed at the scheduler: {exc}")
    print("shed_deadline:", gw.metrics()["light"].shed_deadline)

    # 4. Adaptive bucketing follows the offered load.
    for batch in (2, 16):
        await asyncio.gather(
            *[gw.submit("light", image(), budget=30.0) for _ in range(batch)]
        )
        print(f"after a burst of {batch:2d}: target bucket "
              f"{gw.core.bucket_target('light')}")

    # 5. Fairness: a heavy backlog and a light request on the same lane.
    #    DRR interleaves the light batch instead of draining heavy first.
    heavy = [asyncio.ensure_future(gw.submit("heavy", image(), budget=30.0))
             for _ in range(12)]
    light = await gw.submit("light", image(), budget=30.0)
    await asyncio.gather(*heavy)
    print(f"\nlight p95 under heavy backlog: "
          f"{gw.metrics()['light'].latency_p95 * 1e3:.2f} ms "
          f"(heavy completed: {gw.metrics()['heavy'].completed})")
    assert light.output.shape == (10,)

    # 6. Drain on shutdown (the async-with form drains automatically).
    await gw.stop(drain=True)
    total = sum(m.completed for m in gw.metrics().values())
    print(f"\nstopped; {total} requests completed, "
          f"{sum(m.shed_deadline for m in gw.metrics().values())} shed")


if __name__ == "__main__":
    asyncio.run(main())
