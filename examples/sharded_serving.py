"""Sharded serving: consistent-hashed models across worker processes.

Covers the multi-process serving API end to end:

1. register models on a ``serve.ShardedRouter`` — registration is by
   *registry name only*, so each shard process rebuilds its models
   deterministically from ``(name, seed)`` and no weight array ever
   crosses a pipe,
2. watch the CRC-32 ``HashRing`` place models on shards (and how little
   moves when the shard count grows — the point of consistent hashing),
3. drive traffic through the same ``submit``/``flush``/``result`` surface
   as the in-process ``Router`` and assert the outputs are **bitwise
   identical** to it,
4. read the sharded metrics: per-shard served counts plus each shard's
   full ``RouterMetrics``.

The pure-python ``reference`` backend makes each model's drain GIL-bound —
the workload class where shard processes win and the in-process thread
pool cannot (``benchmarks/bench_sharded_router.py`` gates the modelled
>=1.8x throughput at 4 worker processes; this walkthrough is about the
API and the equality contract, not wall clock).

Run:  python examples/sharded_serving.py
"""
import numpy as np

from repro.serve import HashRing, Router, ServingPolicy, ShardedRouter
from repro.utils import seed_all

seed_all(0)
INPUT = (3, 16, 16)
MODELS = tuple((f"model-{i}", 21 + i) for i in range(4))
POLICY = ServingPolicy(bucket_sizes=(1, 2, 4, 8), max_latency=5.0)


def register_all(front) -> None:
    for name, seed in MODELS:
        front.register(name, "mobilenet", input_shapes=[INPUT],
                       scheme="scc", width_mult=0.25, impl="dsxplore",
                       backend="reference", seed=seed)


# 2. Consistent hashing, standalone: growing 4 -> 5 shards remaps only a
#    minority of keys (a modulo assignment would move ~4/5 of them).
keys = [f"model-{i}" for i in range(256)]
before, after = HashRing(4), HashRing(5)
moved = sum(before.owner(k) != after.owner(k) for k in keys)
print(f"ring growth 4 -> 5 shards: {moved}/{len(keys)} keys remapped")

# 1. + 3. The in-process reference run, then the same traffic sharded.
rng = np.random.default_rng(3)
images = {name: [rng.standard_normal(INPUT).astype(np.float32)
                 for _ in range(4)]
          for name, _ in MODELS}

reference = Router(server_config=POLICY)
register_all(reference)
expect = {}
for name, _ in MODELS:
    handles = [reference.submit(name, img) for img in images[name]]
    reference.flush()
    expect[name] = [reference.result(h).output for h in handles]

with ShardedRouter(shards=2, server_config=POLICY) as sharded:
    register_all(sharded)
    for name, _ in MODELS:
        print(f"  {name} -> shard {sharded.shard_of(name)}")

    handles = {name: [sharded.submit(name, img) for img in images[name]]
               for name, _ in MODELS}
    sharded.flush()          # one broadcast; shard drains overlap
    checked = 0
    for name, _ in MODELS:
        for handle, ref in zip(handles[name], expect[name]):
            np.testing.assert_array_equal(ref, sharded.result(handle).output)
            checked += 1
    print(f"bitwise: {checked}/{checked} shard-served outputs identical "
          f"to the in-process router")

    # 4. Metrics: the sharded view plus each shard's own RouterMetrics.
    metrics = sharded.metrics()
    print(f"\n{metrics['shards']} shards, {metrics['completed']} completed")
    for shard, per in enumerate(metrics["per_shard"]):
        owned = [m for m, s in metrics["model_shards"].items() if s == shard]
        print(f"  shard {shard}: {per['completed']:2d} served, "
              f"plan-cache hit rate {per['aggregate_hit_rate']:.3f}, "
              f"models {owned}")
