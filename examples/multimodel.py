"""Multi-model serving: one router, many models, one shared plan cache.

Covers the multi-model API end to end:

1. register three differently-sized models on a ``serve.Router`` (each gets
   its own shape-bucketed server; all share the process-wide plan cache,
   with per-model owner tags for exact cache accounting),
2. drive skewed synchronous traffic and read ``RouterMetrics``: per-model
   p50/p95/throughput plus exact per-model plan-cache hit rates,
3. constrain the shared cache below the combined working set and watch
   traffic-weighted eviction keep the hot model warm,
4. admission control: a bounded per-model queue sheds with ``QueueFull``
   instead of growing without bound,
5. threaded mode with concurrent multi-model clients.

Run:  python examples/multimodel.py
"""
import threading

import numpy as np

from repro.backend import PLAN_CACHE, clear_plan_cache, plan_cache_stats
from repro.serve import QueueFull, Router, ServingPolicy
from repro.utils import seed_all

seed_all(0)
INPUT = (3, 16, 16)

# 1. Three models behind one router.  Registering by registry name routes
#    through models.build_serving_model (seeded weights, eval mode); the
#    per-bucket plan pre-builds are attributed to each model's owner tag.
router = Router(server_config=ServingPolicy(bucket_sizes=(1, 2, 4, 8),
                                            max_latency=0.05))
router.register("hot", "mobilenet", input_shapes=[INPUT],
                scheme="scc", width_mult=0.25, seed=1)
router.register("warm", "mobilenet", input_shapes=[INPUT],
                scheme="pw", width_mult=0.5, seed=2)
router.register("cold", "resnet18", input_shapes=[INPUT],
                scheme="scc", width_mult=0.25, seed=3)
print("registered:", router.models())
print("plan cache after pre-build:", plan_cache_stats())

# 2. Skewed synchronous traffic: 70/20/10.
rng = np.random.default_rng(4)
names = ["hot"] * 7 + ["warm"] * 2 + ["cold"]
router.reset_metrics()
handles = [
    router.submit(names[rng.integers(len(names))],
                  rng.standard_normal(INPUT).astype(np.float32))
    for _ in range(120)
]
router.flush()
metrics = router.metrics()
print(f"\nsync window: {metrics.completed} requests, "
      f"aggregate hit rate {metrics.aggregate_hit_rate:.3f}")
for name, served in metrics.per_model.items():
    cache = metrics.per_model_cache[name]
    print(f"  {name:>5}: {served.completed:3d} served, "
          f"p50 {served.latency_p50 * 1e3:6.2f} ms, "
          f"p95 {served.latency_p95 * 1e3:6.2f} ms, "
          f"hit rate {cache['hit_rate']:.3f}, "
          f"{cache['size']} resident plans")

# 3. Shrink the shared cache below the combined working set: eviction goes
#    live, but the traffic weighting keeps the hot model's plans resident.
working_set = plan_cache_stats()["size"]
PLAN_CACHE.resize(int(working_set * 0.5))
router.reset_metrics()
for _ in range(120):
    router.submit(names[rng.integers(len(names))],
                  rng.standard_normal(INPUT).astype(np.float32))
router.flush()
metrics = router.metrics()
print(f"\nconstrained cache ({PLAN_CACHE.maxsize}/{working_set} plans): "
      f"aggregate hit rate {metrics.aggregate_hit_rate:.3f}, "
      f"{metrics.cache_evictions} evictions")
for name, cache in metrics.per_model_cache.items():
    print(f"  {name:>5}: hit rate {cache['hit_rate']:.3f}, "
          f"evictions {cache['evictions']}")
PLAN_CACHE.resize(1024)

# 4. Admission control: a model with a bounded queue sheds on overload.
router.register("bounded", "mobilenet", input_shapes=[INPUT],
                scheme="scc", width_mult=0.25, seed=5,
                config=ServingPolicy(bucket_sizes=(8,), max_latency=60.0,
                                     max_pending=4))
rejected = 0
for _ in range(10):
    try:
        router.submit("bounded", rng.standard_normal(INPUT).astype(np.float32))
    except QueueFull:
        rejected += 1
router.flush()
print(f"\nadmission control: 10 submitted, {rejected} shed with QueueFull, "
      f"{router.metrics().per_model['bounded'].completed} completed")

# 5. Threaded mode: per-model client threads against the same router.
router.reset_metrics()
router.start()

def client(name: str, seed: int) -> None:
    gen = np.random.default_rng(seed)
    for _ in range(8):
        handle = router.submit(name, gen.standard_normal(INPUT).astype(np.float32))
        router.wait_result(handle, timeout=30.0)

clients = [threading.Thread(target=client, args=(name, 10 + i))
           for i, name in enumerate(("hot", "hot", "warm", "cold"))]
for thread in clients:
    thread.start()
for thread in clients:
    thread.join()
router.stop()

metrics = router.metrics()
print(f"\nthreaded window: {metrics.completed} requests from 4 clients "
      f"across 3 models, {metrics.throughput:.1f} req/s, "
      f"aggregate hit rate {metrics.aggregate_hit_rate:.3f}")
clear_plan_cache()
