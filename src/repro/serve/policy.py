"""The shared serving policy: one dataclass of front-end knobs.

Historically the sync :class:`~repro.serve.server.Server` and the asyncio
:class:`~repro.serve.gateway.AsyncGateway` each grew their own config
dataclass, and the two drifted into near-duplicates: admission
(``max_pending``), bucketing (``bucket_sizes`` / ``max_latency`` /
``adaptive_buckets``), shedding (``shed_policy``) and the whole fault plane
(``retry`` / ``isolate_failures`` / ``breaker_*`` / ``degrade_after``) were
declared — and validated — twice.  :class:`ServingPolicy` is the single
source of truth for those knobs now; both transports accept one directly::

    policy = ServingPolicy(max_latency=0.005, breaker_window=16)
    server = Server(model, config=policy)          # sync transport
    gateway = AsyncGateway(policy)                 # asyncio transport
    router = Router(server_config=policy)          # multi-model front-end

The old per-transport classes survive as **deprecated shims**
(:class:`ServerConfig`, :class:`GatewayConfig`): they subclass
:class:`ServingPolicy`, add only their transport-specific extras
(worker-thread poll interval and retention bounds on the server side; DRR
fairness and batch-concurrency knobs on the gateway side) and keep their
historical defaults — but direct construction emits a
:class:`DeprecationWarning` and they will be folded away one release after
this one.  Transports normalise whatever they are given through
:meth:`ServingPolicy.coerce`, so every combination (nothing, a bare
policy, a legacy config) behaves bit-for-bit like the legacy default.
"""
from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Iterator

from repro.serve.sched import CircuitBreaker, RetryPolicy, ShedPolicy

__all__ = ["GatewayConfig", "ServerConfig", "ServingPolicy"]


@dataclass
class ServingPolicy:
    """Transport-agnostic serving knobs (admission, bucketing, fault plane).

    Consumed directly by :class:`~repro.serve.server.Server`,
    :class:`~repro.serve.router.Router`,
    :class:`~repro.serve.sharded.ShardedRouter` and
    :class:`~repro.serve.gateway.AsyncGateway`.  Defaults reproduce the
    sync server's historical behaviour (fixed max-size buckets, no
    shedding); the asyncio gateway's historical defaults
    (``adaptive_buckets=True``, ``shed_policy="deadline"``) live on its
    :class:`GatewayConfig` shim — a bare policy means what it says on
    every transport.
    """

    bucket_sizes: tuple[int, ...] = (1, 2, 4, 8)
    max_latency: float = 0.01    # seconds a request may wait for batch-mates
    # Admission control: total queued-but-unexecuted requests accepted
    # before submit() sheds with QueueFull.  None = unbounded.
    max_pending: int | None = None
    # Adaptive bucketing: target the smallest bucket the observed arrival
    # rate can fill within max_latency (sched.BucketPolicy) instead of
    # always waiting for the max bucket.
    adaptive_buckets: bool = False
    # Load shedding: "deadline" drops queued requests whose deadline already
    # passed; "newest" / None keeps the at-the-door-only admission shed.
    shed_policy: str | None = None
    # Fault tolerance.  retry: backoff policy for transient batch faults
    # (None = fail on first error).  isolate_failures: bisect a raising
    # batch so only the poisoned request(s) fail.  breaker_window enables a
    # per-model circuit breaker over the last N request outcomes (None =
    # disabled); the remaining breaker_* knobs mirror sched.CircuitBreaker.
    # degrade_after demotes a (shape, bucket) workload one step down the
    # backend chain after that many consecutive kernel faults (None = off).
    retry: RetryPolicy | None = None
    isolate_failures: bool = True
    breaker_window: int | None = None
    breaker_threshold: float = 0.5
    breaker_min_samples: int = 8
    breaker_cooldown: float = 1.0
    degrade_after: int | None = None

    def __post_init__(self) -> None:
        if not self.bucket_sizes or any(b < 1 for b in self.bucket_sizes):
            raise ValueError(f"bucket_sizes must be positive, got {self.bucket_sizes}")
        self.bucket_sizes = tuple(sorted(set(self.bucket_sizes)))
        if self.max_latency <= 0:
            raise ValueError(f"max_latency must be positive, got {self.max_latency}")
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 or None, got {self.max_pending}")
        if self.shed_policy not in (None, *ShedPolicy.POLICIES):
            raise ValueError(
                f"shed_policy must be one of {(None, *ShedPolicy.POLICIES)}, "
                f"got {self.shed_policy!r}"
            )
        if self.breaker_window is not None and self.breaker_window < 1:
            raise ValueError(
                f"breaker_window must be >= 1 or None, got {self.breaker_window}"
            )
        if self.degrade_after is not None and self.degrade_after < 1:
            raise ValueError(
                f"degrade_after must be >= 1 or None, got {self.degrade_after}"
            )

    # -- derived accessors the transports share --------------------------------

    def make_breaker(self) -> CircuitBreaker | None:
        """A fresh :class:`CircuitBreaker` per these knobs (None = disabled)."""
        if self.breaker_window is None:
            return None
        return CircuitBreaker(
            window=self.breaker_window,
            threshold=self.breaker_threshold,
            min_samples=self.breaker_min_samples,
            cooldown=self.breaker_cooldown,
        )

    @property
    def max_bucket(self) -> int:
        return self.bucket_sizes[-1]

    def bucket_for(self, n: int) -> int:
        """Smallest configured bucket that fits ``n`` requests."""
        for size in self.bucket_sizes:
            if n <= size:
                return size
        return self.max_bucket

    # -- shim plumbing ---------------------------------------------------------

    @classmethod
    def from_policy(cls, policy: "ServingPolicy", **extras) -> "ServingPolicy":
        """Build this config class from a policy's shared fields.

        Transport-specific extras keep their defaults unless passed
        explicitly.  Never warns — this is the sanctioned path from the new
        surface into a shim, used by the transports to normalise a bare
        :class:`ServingPolicy`.
        """
        shared = {f.name: getattr(policy, f.name) for f in fields(ServingPolicy)}
        shared.update(extras)
        with _shim_sanctioned():
            return cls(**shared)

    @classmethod
    def coerce(cls, config: "ServingPolicy | None") -> "ServingPolicy":
        """Normalise a transport's ``config`` argument to this class.

        ``None`` builds the transport's historical defaults; an instance of
        this class passes through untouched; any other
        :class:`ServingPolicy` is lifted via :meth:`from_policy`.  Internal
        construction never emits the shim deprecation warning.
        """
        if isinstance(config, cls):
            return config
        if config is None:
            with _shim_sanctioned():
                return cls()
        if not isinstance(config, ServingPolicy):
            raise TypeError(
                f"config must be a ServingPolicy (or {cls.__name__}), "
                f"got {type(config).__name__}"
            )
        return cls.from_policy(config)


# Direct shim construction warns; the transports' internal normalisation
# (coerce/from_policy) is sanctioned and stays silent.  Thread-local so a
# sanctioned construction on one thread never masks user code on another.
_SANCTIONED = threading.local()


@contextmanager
def _shim_sanctioned() -> Iterator[None]:
    previous = getattr(_SANCTIONED, "active", False)
    _SANCTIONED.active = True
    try:
        yield
    finally:
        _SANCTIONED.active = previous


def _warn_shim(name: str) -> None:
    if getattr(_SANCTIONED, "active", False):
        return
    warnings.warn(
        f"{name} is deprecated and will be removed one release after the "
        f"ServingPolicy consolidation: construct a repro.serve.ServingPolicy "
        f"and pass it as the transport's config instead (transport-specific "
        f"extras keep their defaults, or use {name}.from_policy).",
        DeprecationWarning,
        stacklevel=4,
    )


@dataclass
class ServerConfig(ServingPolicy):
    """Deprecated sync-server shim over :class:`ServingPolicy`.

    Adds the sync transport's extras: the background worker's poll interval
    and the retention bounds that keep a long-running server's memory flat
    (unread results evicted FIFO past ``result_capacity``; latency
    percentiles over the most recent ``metrics_window`` completions).
    """

    worker_poll_interval: float | None = None  # thread mode; default latency/4
    result_capacity: int = 65536
    metrics_window: int = 65536

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.result_capacity < 1 or self.metrics_window < 1:
            raise ValueError("result_capacity and metrics_window must be >= 1")
        _warn_shim("ServerConfig")


@dataclass
class GatewayConfig(ServingPolicy):
    """Deprecated asyncio-gateway shim over :class:`ServingPolicy`.

    Keeps the gateway's historical defaults (adaptive buckets, deadline
    shedding) and adds its extras: DRR fairness between models and the
    bound on batches in flight on the worker pool at once.
    """

    adaptive_buckets: bool = True
    shed_policy: str = "deadline"
    fairness: str = "drr"          # "drr" | "fifo"
    quantum: float | None = None   # DRR quantum (cost units); default max bucket
    # Batches in flight on the worker pool at once, across models.  None
    # sizes it to the pool: more would only queue inside the executor.
    max_concurrent_batches: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        _warn_shim("GatewayConfig")
