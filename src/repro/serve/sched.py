"""Transport-agnostic scheduling core of the serving tier.

Pure policy objects: no threads, no locks, no wall clock.  Every method
takes ``now`` explicitly (or consumes clock *readings* recorded by the
caller), so a policy's full decision sequence is replayable from a request
trace — unit tests and the ``bench_async_gateway`` simulations drive these
classes with a virtual clock and get bit-identical schedules on any
machine.  The transports (:class:`repro.serve.server.Server`, the asyncio
:class:`repro.serve.gateway.AsyncGateway`) own the locks/event loops and
consult the core for every decision:

- :class:`AdmissionPolicy` — bounded pending queue + backpressure: reject
  (shed at the door) instead of letting an overloaded queue grow without
  bound;
- :class:`BucketPolicy` — batch-size selection; in ``adaptive`` mode the
  target bucket follows an EWMA of the observed arrival rate (the expected
  number of batch-mates one flush window supplies): small buckets under
  light load for latency, large under heavy load for throughput — the
  MLPerf single-stream vs server scenario trade expressed as one knob;
- :class:`ShedPolicy` — deadline-aware load shedding: drop requests whose
  latency budget is already blown (``deadline < now + exec_estimate``)
  rather than the newest arrival, which still has its whole budget ahead
  of it;
- :class:`FairnessPolicy` — deficit round robin between models, so a heavy
  model's long batches cannot monopolise the execution lane and ruin a
  light model's p95 (``fifo`` mode is the ablation baseline: strict
  arrival order, no isolation);
- :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter (hash-seeded, not ``random``), so transient
  kernel/pool faults are absorbed without thundering-herd retries and
  without a single nondeterministic sleep in tests;
- :class:`CircuitBreaker` — per-model fail-fast: a windowed error rate
  past the threshold opens the breaker, submits shed immediately with
  :class:`~repro.serve.server.ModelUnavailable` instead of wasting pool
  capacity on a broken model, and after a cooldown a half-open probe
  decides between closing and re-opening;
- :class:`SchedCore` — the composite the transports drive: per-model
  shape-keyed queues, admission with deadline-aware displacement,
  fairness-ordered batch formation, and the next-timer computation an
  event loop needs.
"""
from __future__ import annotations

import itertools
import zlib
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "AdmissionPolicy",
    "Batch",
    "BucketPolicy",
    "CircuitBreaker",
    "FairnessPolicy",
    "RetryPolicy",
    "SchedCore",
    "SchedRequest",
    "ShedPolicy",
    "SubmitOutcome",
]


@dataclass
class SchedRequest:
    """One queued request as the scheduling core sees it.

    ``payload`` is opaque to the core (the transports stash the image
    there); ``deadline`` is an *absolute* clock reading in the same time
    base as every ``now`` handed to the core.
    """

    id: int
    model: str
    shape: tuple
    arrived_at: float
    deadline: float | None = None
    payload: object = None


@dataclass
class Batch:
    """One schedulable unit: requests of one (model, shape) padded to
    ``bucket`` slots, costed for the fairness accounting."""

    model: str
    shape: tuple
    requests: list[SchedRequest]
    bucket: int
    cost: float


@dataclass
class SubmitOutcome:
    """What admission decided: ``accepted`` (with the enqueued request) or
    not, plus any blown-budget victims displaced to make room."""

    accepted: bool
    request: SchedRequest | None
    displaced: list[SchedRequest] = field(default_factory=list)


class AdmissionPolicy:
    """Bounded-queue backpressure: at most ``max_pending`` queued requests.

    The policy itself is just the bound and the rejection counter; *what*
    to do at capacity (reject the newcomer, or displace a blown-budget
    victim first) is composed in :meth:`SchedCore.submit` from the
    :class:`ShedPolicy`.
    """

    def __init__(self, max_pending: int | None = None) -> None:
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 or None, got {max_pending}")
        self.max_pending = max_pending
        self.rejected = 0

    def at_capacity(self, pending: int) -> bool:
        return self.max_pending is not None and pending >= self.max_pending

    def reject(self) -> None:
        self.rejected += 1

    def admit(self, pending: int) -> bool:
        """Convenience for transports without displacement: accept, or
        count one rejection and return ``False``."""
        if self.at_capacity(pending):
            self.reject()
            return False
        return True


class BucketPolicy:
    """Batch-size selection, optionally adapted to the arrival rate.

    Fixed mode (``adaptive=False``) always targets the largest configured
    bucket — the original :class:`~repro.serve.server.Server` behaviour,
    preserved bit-for-bit.  Adaptive mode tracks an EWMA of the
    inter-arrival gap and targets the smallest configured bucket that the
    expected arrivals of one flush window (``rate * max_latency``) can
    fill: under light load a request stops waiting for batch-mates that
    are not coming (latency), under heavy load batches grow to amortise
    per-batch overhead (throughput).  The analytic cross-check lives in
    :func:`repro.gpusim.timeline.optimal_bucket`.
    """

    def __init__(
        self,
        bucket_sizes: tuple[int, ...] = (1, 2, 4, 8),
        max_latency: float = 0.01,
        adaptive: bool = False,
        alpha: float = 0.25,
    ) -> None:
        if not bucket_sizes or any(b < 1 for b in bucket_sizes):
            raise ValueError(f"bucket_sizes must be positive, got {bucket_sizes}")
        if max_latency <= 0:
            raise ValueError(f"max_latency must be positive, got {max_latency}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.bucket_sizes = tuple(sorted(set(bucket_sizes)))
        self.max_latency = max_latency
        self.adaptive = adaptive
        self.alpha = alpha
        self._gap_ewma: float | None = None
        self._last_arrival: float | None = None

    @property
    def max_bucket(self) -> int:
        return self.bucket_sizes[-1]

    def fit_bucket(self, n: int) -> int:
        """Smallest configured bucket that fits ``n`` requests."""
        for size in self.bucket_sizes:
            if n <= size:
                return size
        return self.max_bucket

    def observe_arrival(self, now: float) -> None:
        """Fold one arrival into the inter-arrival EWMA."""
        if self._last_arrival is not None:
            gap = max(now - self._last_arrival, 1e-9)
            if self._gap_ewma is None:
                self._gap_ewma = gap
            else:
                self._gap_ewma += self.alpha * (gap - self._gap_ewma)
        self._last_arrival = now

    def arrival_rate(self) -> float:
        """Smoothed arrivals/second (0.0 until two arrivals were seen)."""
        if self._gap_ewma is None:
            return 0.0
        return 1.0 / self._gap_ewma

    def target_bucket(self) -> int:
        """The bucket size batches should currently aim for."""
        if not self.adaptive:
            return self.max_bucket
        expected = self.arrival_rate() * self.max_latency
        for size in self.bucket_sizes:
            # Relative tolerance so a rate that is *exactly* size/window
            # (up to float rounding of the gap EWMA) picks that bucket
            # rather than jumping a tier.
            if size >= expected * (1.0 - 1e-9):
                return size
        return self.max_bucket


class ShedPolicy:
    """Which queued request to drop when load must be shed.

    ``deadline`` (the policy this tier exists for): a request is *blown*
    once ``deadline < now + exec_estimate`` — even starting it right now
    could not meet its SLO, so executing (or keeping) it wastes capacity
    that viable requests need.  ``newest`` is the naive baseline: the
    arriving request is refused, although it is precisely the one with its
    whole budget left.  A request *exactly at* its deadline
    (``deadline == now`` with a zero estimate) is still viable — blown-ness
    is strict.
    """

    POLICIES = ("deadline", "newest")

    def __init__(self, policy: str = "deadline", exec_estimate: float = 0.0) -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}, got {policy!r}")
        if exec_estimate < 0:
            raise ValueError(f"exec_estimate must be >= 0, got {exec_estimate}")
        self.policy = policy
        self.exec_estimate = exec_estimate

    def blown(self, request: SchedRequest, now: float,
              exec_estimate: float | None = None) -> bool:
        if request.deadline is None:
            return False
        estimate = self.exec_estimate if exec_estimate is None else exec_estimate
        return request.deadline < now + estimate

    def split_blown(
        self, requests, now: float, exec_estimate: float | None = None
    ) -> tuple[list[SchedRequest], list[SchedRequest]]:
        """Partition ``requests`` into (viable, blown)."""
        viable, blown = [], []
        for request in requests:
            (blown if self.blown(request, now, exec_estimate) else viable).append(
                request
            )
        return viable, blown


class FairnessPolicy:
    """Deficit round robin between models (``fifo`` is the ablation).

    Each call to :meth:`select` picks one batch to run next.  DRR keeps a
    per-model deficit counter in *cost* units (the caller prices batches,
    e.g. padded bucket size x per-request cost): a model is visited in
    round-robin order, earns ``quantum`` per visit, and runs when its
    deficit covers its next batch — so over any window each active model
    receives service proportional to its quantum regardless of how
    expensive the other models' batches are.  A model whose queue empties
    leaves the round and forfeits its deficit (standard DRR, which is what
    keeps an idle model from hoarding credit and bursting later).  ``fifo``
    serves whichever model's head request arrived first — no isolation,
    the baseline the fairness ablation in ``bench_async_gateway`` measures
    against.
    """

    MODES = ("drr", "fifo")

    def __init__(self, mode: str = "drr", quantum: float = 1.0) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.mode = mode
        self.quantum = quantum
        self._order: list[str] = []
        self._deficit: dict[str, float] = {}
        self._ptr = 0
        self._turn: str | None = None

    def deficit(self, model: str) -> float:
        return self._deficit.get(model, 0.0)

    def select(self, candidates: dict[str, tuple[float, float]]) -> str | None:
        """Choose (and charge) the model whose batch runs next.

        ``candidates`` maps each model with a runnable batch to
        ``(cost, head_arrived_at)``.  Returns ``None`` only when empty.
        """
        if not candidates:
            return None
        if self.mode == "fifo":
            return min(candidates, key=lambda m: (candidates[m][1], m))
        # Sync the active set: departures leave the round (deficit forfeited,
        # pointer adjusted so the rotation order is undisturbed), arrivals
        # join at the tail with zero credit.
        for model in [m for m in self._order if m not in candidates]:
            index = self._order.index(model)
            del self._order[index]
            del self._deficit[model]
            if index < self._ptr:
                self._ptr -= 1
            if self._turn == model:
                self._turn = None
        for model in sorted(candidates):
            if model not in self._deficit:
                self._order.append(model)
                self._deficit[model] = 0.0
        count = len(self._order)
        self._ptr %= count
        # An open turn keeps running while its banked deficit covers the
        # next batch — without earning new quantum for staying.
        if self._turn is not None:
            cost = candidates[self._turn][0]
            if self._deficit[self._turn] >= cost:
                self._deficit[self._turn] -= cost
                return self._turn
            self._ptr = (self._order.index(self._turn) + 1) % count
            self._turn = None
        max_cost = max(cost for cost, _ in candidates.values())
        rounds = count * (int(max_cost / self.quantum) + 2)
        for _ in range(rounds):
            model = self._order[self._ptr]
            self._deficit[model] += self.quantum
            cost = candidates[model][0]
            if self._deficit[model] >= cost:
                self._deficit[model] -= cost
                self._turn = model
                return model
            self._ptr = (self._ptr + 1) % count
        raise RuntimeError("DRR failed to converge")  # pragma: no cover

    def charge(self, model: str, cost: float) -> None:
        """Charge out-of-band work (a transport that executed without
        :meth:`select`, e.g. an inline full-bucket flush)."""
        if model in self._deficit:
            self._deficit[model] -= cost


class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    A policy instance answers two questions, both pure: may attempt ``n``
    be retried (:meth:`should_retry`), and how long to back off before the
    retry (:meth:`delay`).  The jitter that de-synchronises concurrent
    retriers is *hashed* from ``(seed, token, attempt)`` rather than drawn
    from ``random`` — the same request retries on the same schedule in
    every run, which is what lets the fault-injection suite assert exact
    virtual-clock timelines.  The caller supplies ``token`` (a request or
    batch id) so different requests still spread out.

    ``max_attempts`` counts total tries: 1 means fail on first error
    (retries disabled), 3 means up to two retries.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.002,
        multiplier: float = 2.0,
        max_delay: float = 0.25,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("base_delay and max_delay must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed

    def should_retry(self, attempt: int) -> bool:
        """Whether attempt ``attempt`` (0-based) may be followed by another."""
        return attempt + 1 < self.max_attempts

    def delay(self, attempt: int, token: int = 0) -> float:
        """Backoff before the retry that follows attempt ``attempt``."""
        base = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter == 0.0 or base == 0.0:
            return base
        crc = zlib.crc32(f"{self.seed}:{token}:{attempt}".encode())
        return base * (1.0 + self.jitter * (crc / 4294967296.0))


class CircuitBreaker:
    """Windowed error-rate circuit breaker (pure, clock-injected).

    States: ``closed`` (all traffic admitted, outcomes recorded in a
    sliding window), ``open`` (everything rejected until ``cooldown``
    elapses — the fail-fast that keeps a broken model from dragging the
    shared pool down), ``half_open`` (up to ``probe_quota`` probe requests
    admitted; one success closes, one failure re-opens).  Every transition
    is timestamped in :attr:`transitions`, which is what the chaos soak's
    "breaker transitions are visible" acceptance gate reads.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        window: int = 32,
        threshold: float = 0.5,
        min_samples: int = 8,
        cooldown: float = 1.0,
        probe_quota: int = 1,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if probe_quota < 1:
            raise ValueError(f"probe_quota must be >= 1, got {probe_quota}")
        self.window = window
        self.threshold = threshold
        self.min_samples = min_samples
        self.cooldown = cooldown
        self.probe_quota = probe_quota
        self.state = self.CLOSED
        self.opens = 0
        self.closes = 0
        self.rejected = 0
        self.transitions: list[tuple[float, str, str]] = []
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._opened_at: float | None = None
        self._probes_issued = 0

    def _transition(self, now: float, state: str) -> None:
        self.transitions.append((now, self.state, state))
        self.state = state
        if state == self.OPEN:
            self.opens += 1
            self._opened_at = now
        elif state == self.CLOSED:
            self.closes += 1
            self._outcomes.clear()
        elif state == self.HALF_OPEN:
            self._probes_issued = 0

    def error_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def allow(self, now: float) -> bool:
        """May a request be admitted right now?  (Counts rejections.)"""
        if self.state == self.OPEN:
            if self._opened_at is not None \
                    and now >= self._opened_at + self.cooldown:
                self._transition(now, self.HALF_OPEN)
            else:
                self.rejected += 1
                return False
        if self.state == self.HALF_OPEN:
            if self._probes_issued >= self.probe_quota:
                self.rejected += 1
                return False
            self._probes_issued += 1
        return True

    def record(self, success: bool, now: float) -> None:
        """Fold one request outcome in; may transition the state."""
        if self.state == self.HALF_OPEN:
            # A probe decided: one success is evidence of recovery, one
            # failure means the cooldown restarts from now.
            self._transition(now, self.CLOSED if success else self.OPEN)
            return
        self._outcomes.append(success)
        if (
            self.state == self.CLOSED
            and len(self._outcomes) >= self.min_samples
            and self.error_rate() >= self.threshold
        ):
            self._transition(now, self.OPEN)

    def snapshot(self) -> dict:
        """JSON-friendly state for metrics surfaces."""
        return {
            "state": self.state,
            "opens": self.opens,
            "closes": self.closes,
            "rejected": self.rejected,
            "error_rate": self.error_rate(),
            "transitions": [list(t) for t in self.transitions],
        }


@dataclass
class _ModelState:
    """Per-model queues, policies and shed/reject accounting."""

    name: str
    admission: AdmissionPolicy
    buckets: BucketPolicy
    request_cost: float
    exec_estimate: float
    # Auto-calibration (exec_estimate=None at registration): the estimate
    # follows an EWMA of measured batch execution spans fed in through
    # SchedCore.observe_exec.  exec_seen gates the first observation (it
    # seeds the EWMA rather than averaging against the 0.0 placeholder).
    exec_auto: bool = False
    exec_seen: bool = False
    queues: dict[tuple, deque] = field(default_factory=dict)
    pending: int = 0
    shed_deadline: int = 0


class SchedCore:
    """The composite scheduling brain the transports drive.

    Holds per-model shape-keyed queues and the four policies; every method
    is synchronous, lock-free and takes ``now`` — the asyncio gateway calls
    it from its (single-threaded) event loop, the deterministic benchmarks
    call it from a virtual-clock simulation, and both observe the identical
    schedule.
    """

    def __init__(
        self,
        bucket_sizes: tuple[int, ...] = (1, 2, 4, 8),
        max_latency: float = 0.01,
        max_pending: int | None = None,
        adaptive_buckets: bool = True,
        shed_policy: str = "deadline",
        fairness: str = "drr",
        quantum: float | None = None,
        alpha: float = 0.25,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._defaults = dict(
            bucket_sizes=tuple(bucket_sizes),
            max_latency=max_latency,
            max_pending=max_pending,
            adaptive=adaptive_buckets,
            alpha=alpha,
        )
        # The transports' backoff policy for transient batch faults; held
        # here beside the other policies so one SchedCore fully describes a
        # deployment's scheduling *and* resilience behaviour.
        self.retry = retry
        self.shed = ShedPolicy(policy=shed_policy)
        self.fairness = FairnessPolicy(
            mode=fairness,
            quantum=float(max(bucket_sizes)) if quantum is None else quantum,
        )
        self._models: dict[str, _ModelState] = {}
        self._ids = itertools.count()

    # -- registration ----------------------------------------------------------

    def add_model(
        self,
        name: str,
        bucket_sizes: tuple[int, ...] | None = None,
        max_latency: float | None = None,
        max_pending: int | None = None,
        request_cost: float = 1.0,
        exec_estimate: float | None = 0.0,
    ) -> None:
        """Register a model's queues and per-model policy knobs.

        ``request_cost`` prices one padded batch slot for the DRR
        accounting (relative units — a model whose batches take ~20x
        longer should cost ~20x).  ``exec_estimate`` is the expected batch
        execution time the deadline shed uses to call a budget blown
        *before* wasting the execution; ``None`` auto-calibrates it — the
        estimate starts at 0.0 and follows an EWMA of the measured batch
        execution spans the transport reports via :meth:`observe_exec`.
        """
        if name in self._models:
            raise ValueError(f"model {name!r} already registered")
        if request_cost <= 0:
            raise ValueError(f"request_cost must be positive, got {request_cost}")
        if exec_estimate is not None and exec_estimate < 0:
            raise ValueError(
                f"exec_estimate must be >= 0 or None, got {exec_estimate}"
            )
        defaults = self._defaults
        self._models[name] = _ModelState(
            name=name,
            admission=AdmissionPolicy(
                defaults["max_pending"] if max_pending is None else max_pending
            ),
            buckets=BucketPolicy(
                bucket_sizes or defaults["bucket_sizes"],
                max_latency if max_latency is not None else defaults["max_latency"],
                adaptive=defaults["adaptive"],
                alpha=defaults["alpha"],
            ),
            request_cost=request_cost,
            exec_estimate=0.0 if exec_estimate is None else exec_estimate,
            exec_auto=exec_estimate is None,
        )

    def observe_exec(self, model: str, seconds: float,
                     alpha: float = 0.25) -> float:
        """Fold one measured batch execution span into the model's estimate.

        Only auto-calibrating models (registered with ``exec_estimate=None``)
        update — a statically configured estimate is an operator's pin and
        stays put.  The first observation seeds the EWMA; later ones fold in
        with ``alpha`` (matching :class:`BucketPolicy`'s arrival smoothing).
        Returns the current estimate either way, so transports can log it.
        """
        state = self._require(model)
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if not state.exec_auto:
            return state.exec_estimate
        if state.exec_seen:
            state.exec_estimate += alpha * (seconds - state.exec_estimate)
        else:
            state.exec_estimate = seconds
            state.exec_seen = True
        return state.exec_estimate

    def models(self) -> tuple[str, ...]:
        return tuple(self._models)

    def _require(self, name: str) -> _ModelState:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(
                f"no model {name!r} registered; have {sorted(self._models)}"
            ) from None

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        model: str,
        shape: tuple,
        now: float,
        deadline: float | None = None,
        payload: object = None,
    ) -> SubmitOutcome:
        """Admit one request, or say why not.

        At capacity, the ``deadline`` shed policy first displaces queued
        requests whose budget is already blown (they could not be served in
        time anyway) and admits the newcomer into the freed slot; only a
        queue full of *viable* work rejects it (backpressure).  The
        ``newest`` policy rejects the newcomer outright — the classic
        tail-drop whose cost the shed ablation measures.
        """
        state = self._require(model)
        state.buckets.observe_arrival(now)
        displaced: list[SchedRequest] = []
        if state.admission.at_capacity(state.pending):
            if self.shed.policy == "deadline":
                displaced = self._shed_blown(state, now)
            if state.admission.at_capacity(state.pending):
                state.admission.reject()
                return SubmitOutcome(False, None, displaced)
        request = SchedRequest(
            id=next(self._ids), model=model, shape=tuple(shape),
            arrived_at=now, deadline=deadline, payload=payload,
        )
        state.queues.setdefault(request.shape, deque()).append(request)
        state.pending += 1
        return SubmitOutcome(True, request, displaced)

    # -- shedding --------------------------------------------------------------

    def _shed_blown(self, state: _ModelState, now: float) -> list[SchedRequest]:
        victims: list[SchedRequest] = []
        for shape, queue in state.queues.items():
            viable, blown = self.shed.split_blown(queue, now, state.exec_estimate)
            if blown:
                queue.clear()
                queue.extend(viable)
                victims.extend(blown)
        state.pending -= len(victims)
        state.shed_deadline += len(victims)
        return victims

    def shed_blown(self, now: float) -> list[SchedRequest]:
        """Drop every queued request whose latency budget is already blown
        (``deadline`` policy only; no-op under ``newest``).  Returns the
        victims so the transport can fail their waiters."""
        if self.shed.policy != "deadline":
            return []
        victims: list[SchedRequest] = []
        for state in self._models.values():
            victims.extend(self._shed_blown(state, now))
        return victims

    def shed_all(self) -> list[SchedRequest]:
        """Drain every queue unexecuted (shutdown without drain)."""
        victims: list[SchedRequest] = []
        for state in self._models.values():
            for queue in state.queues.values():
                victims.extend(queue)
                queue.clear()
            state.pending = 0
        return victims

    # -- batch formation -------------------------------------------------------

    def _ready_shape(
        self, state: _ModelState, now: float, force: bool
    ) -> tuple | None:
        """The model's due shape with the oldest head request, if any."""
        best_shape, best_age = None, None
        target = state.buckets.target_bucket()
        for shape, queue in state.queues.items():
            if not queue:
                continue
            head_age = now - queue[0].arrived_at
            due = force or len(queue) >= target \
                or head_age >= state.buckets.max_latency
            if due and (best_age is None or head_age > best_age):
                best_shape, best_age = shape, head_age
        return best_shape

    def next_batch(self, now: float, force: bool = False) -> Batch | None:
        """Form the one batch that should execute next, in fairness order.

        A (model, shape) queue is *due* when it can fill the model's
        current target bucket, its head request has waited ``max_latency``,
        or ``force`` (drain) is set.  Overdue/drained queues batch up to
        the model's max bucket (the remainder must not wait another
        window); full-trigger queues batch exactly the target.  Returns
        ``None`` when nothing is due — call again after
        :meth:`next_event`.
        """
        candidates: dict[str, tuple[float, float]] = {}
        picks: dict[str, tuple[tuple, int, int]] = {}
        for name, state in self._models.items():
            shape = self._ready_shape(state, now, force)
            if shape is None:
                continue
            queue = state.queues[shape]
            target = state.buckets.target_bucket()
            overdue = force or now - queue[0].arrived_at >= state.buckets.max_latency
            take = min(len(queue), state.buckets.max_bucket if overdue else target)
            bucket = state.buckets.fit_bucket(take)
            candidates[name] = (
                state.request_cost * bucket, queue[0].arrived_at,
            )
            picks[name] = (shape, take, bucket)
        winner = self.fairness.select(candidates)
        if winner is None:
            return None
        state = self._models[winner]
        shape, take, bucket = picks[winner]
        queue = state.queues[shape]
        requests = [queue.popleft() for _ in range(take)]
        state.pending -= take
        return Batch(
            model=winner, shape=shape, requests=requests, bucket=bucket,
            cost=candidates[winner][0],
        )

    # -- introspection ---------------------------------------------------------

    def next_event(self, now: float) -> float | None:
        """Earliest clock reading at which a new decision becomes possible:
        a head request's flush deadline, or (under the ``deadline`` shed
        policy) the earliest request deadline.  ``None`` when idle."""
        events: list[float] = []
        for state in self._models.values():
            for queue in state.queues.values():
                if not queue:
                    continue
                events.append(queue[0].arrived_at + state.buckets.max_latency)
                if self.shed.policy == "deadline":
                    deadlines = [
                        r.deadline for r in queue if r.deadline is not None
                    ]
                    if deadlines:
                        events.append(min(deadlines) - state.exec_estimate)
        return min(events, default=None)

    def pending_count(self, model: str | None = None) -> int:
        if model is not None:
            return self._require(model).pending
        return sum(state.pending for state in self._models.values())

    def bucket_target(self, model: str) -> int:
        return self._require(model).buckets.target_bucket()

    def arrival_rate(self, model: str) -> float:
        return self._require(model).buckets.arrival_rate()

    def stats(self, model: str) -> dict:
        state = self._require(model)
        return {
            "pending": state.pending,
            "rejected": state.admission.rejected,
            "shed_deadline": state.shed_deadline,
            "bucket_target": state.buckets.target_bucket(),
            "arrival_rate": state.buckets.arrival_rate(),
            "exec_estimate": state.exec_estimate,
            "exec_auto": state.exec_auto,
        }
