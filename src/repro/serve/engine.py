"""The batch execution engine shared by the serving transports.

:class:`ModelExecutor` owns exactly the model-facing half of what
:class:`~repro.serve.server.Server` used to do inline: the pre-built
per-(shape, bucket) :class:`~repro.backend.ModelPlan` table, the cold-path
plan build for unseen shapes, and the staged, owner-tagged batch forward
under the execution lock.  The sync :class:`Server` and the asyncio
:class:`~repro.serve.gateway.AsyncGateway` both drive it, which is what
makes the gateway's outputs bitwise-identical to the sync server's: the
same plan, the same staging, the same summation order, regardless of which
transport formed the batch.
"""
from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from repro.backend import ModelPlan, plan_owner
from repro.tensor import Tensor, no_grad

__all__ = ["BatchTiming", "ModelExecutor"]


class BatchTiming:
    """Clock readings of one executed batch.

    ``started``/``finished`` are readings of the *injected* clock (the
    transport's time base — comparable to request ``arrived_at`` and
    deadlines); ``exec_seconds`` is the stage+forward wall time on the real
    clock regardless of any test clock (the router's overlap model and the
    gpusim calibration consume it).
    """

    __slots__ = ("started", "finished", "exec_seconds")

    def __init__(self, started: float, finished: float, exec_seconds: float):
        self.started = started
        self.finished = finished
        self.exec_seconds = exec_seconds


class ModelExecutor:
    """Plan-warm batch execution for one model.

    Parameters mirror the old ``Server`` constructor: plans for every
    ``input_shapes`` x ``bucket_sizes`` pair are pre-built here (attributed
    to ``name`` in the shared plan cache), so steady-state batches run
    entirely on cache hits.  Unseen shapes build lazily under the execution
    lock (the build probes the shared model, so it must not overlap an
    in-flight batch).

    The executor serialises its own batches on ``exec_lock`` — the staged
    plan buffers are shared per (shape, bucket) — while different
    executors' batches may overlap freely (the router/gateway rely on
    that).
    """

    def __init__(
        self,
        model,
        input_shapes: tuple | list = ((3, 32, 32),),
        bucket_sizes: tuple[int, ...] = (1, 2, 4, 8),
        name: str | None = None,
    ) -> None:
        self.model = model.eval()
        self.name = name
        self.bucket_sizes = tuple(sorted(set(bucket_sizes)))
        # Layers dispatching through fused conv->bias/BN->activation
        # epilogues (repro.nn.fuse_inference); surfaced in serving metrics.
        self.fused_layers = sum(
            1
            for _, m in self.model.named_modules()
            if getattr(m, "_fused_epilogue", None) is not None
        )
        self.exec_lock = threading.Lock()
        self._plans_lock = threading.Lock()
        self._plans: dict[tuple, ModelPlan] = {}
        with plan_owner(self.name):
            for shape in input_shapes:
                for bucket in self.bucket_sizes:
                    self._plans[(tuple(shape), bucket)] = ModelPlan(
                        self.model, tuple(shape), batch_size=bucket,
                        include_backward=False,
                    )

    def plan_for(self, shape: tuple, bucket: int) -> ModelPlan:
        """The (shape, bucket) plan, building it on first sight.

        Cold path: visible in metrics via the plan-cache build counter.
        The build runs probe forwards (and registers hooks) on the shared
        model, so it takes the execution lock to stay clear of in-flight
        batches.
        """
        key = (tuple(shape), bucket)
        with self._plans_lock:
            plan = self._plans.get(key)
        if plan is None:
            with self.exec_lock:
                with self._plans_lock:
                    plan = self._plans.get(key)
                if plan is None:
                    with plan_owner(self.name):
                        plan = ModelPlan(self.model, tuple(shape),
                                         batch_size=bucket,
                                         include_backward=False)
                    with self._plans_lock:
                        self._plans.setdefault(key, plan)
                        plan = self._plans[key]
        return plan

    def run(
        self,
        images: list[np.ndarray],
        bucket: int,
        clock: Callable[[], float] = time.perf_counter,
    ) -> tuple[np.ndarray, BatchTiming]:
        """Execute one batch of same-shape images padded to ``bucket``.

        Returns the ``(n, num_classes)`` output rows for the *real* images
        (padding rows are never returned) and the batch's
        :class:`BatchTiming`.  Bitwise guarantee: the plan pads to the
        bucket size, so BLAS blocking and summation order depend only on
        (shape, bucket) — never on how many real requests rode along.
        """
        shape = tuple(images[0].shape)
        plan = self.plan_for(shape, bucket)
        with self.exec_lock:
            started = clock()
            exec_start = time.perf_counter()
            batch = plan.stage_batch(np.stack(images))
            with no_grad(), plan_owner(self.name):
                out = self.model(Tensor(batch)).data
            exec_seconds = time.perf_counter() - exec_start
            finished = clock()
        return out[: len(images)], BatchTiming(started, finished, exec_seconds)
