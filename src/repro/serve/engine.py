"""The batch execution engine shared by the serving transports.

:class:`ModelExecutor` owns exactly the model-facing half of what
:class:`~repro.serve.server.Server` used to do inline: the pre-built
per-(shape, bucket) :class:`~repro.backend.ModelPlan` table, the cold-path
plan build for unseen shapes, and the staged, owner-tagged batch forward
under the execution lock.  The sync :class:`Server` and the asyncio
:class:`~repro.serve.gateway.AsyncGateway` both drive it, which is what
makes the gateway's outputs bitwise-identical to the sync server's: the
same plan, the same staging, the same summation order, regardless of which
transport formed the batch.
"""
from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.backend import ModelPlan, plan_owner
from repro.backend.registry import REGISTRY, backend_override
from repro.faults import PoisonedRequest, active_faults
from repro.tensor import Tensor, no_grad

__all__ = [
    "BatchTiming",
    "ExecStats",
    "ModelExecutor",
    "RequestFailed",
]


class RequestFailed(RuntimeError):
    """One request's execution failed after isolation and retries.

    This is the per-request terminal failure of the taxonomy (see README
    "Failure semantics"): the batch machinery has already bisected the
    failing batch down and exhausted the retry budget, so exactly the
    requests that cannot succeed carry this — their co-batched neighbours
    complete normally.  ``__cause__`` holds the last underlying error.
    """

    def __init__(self, request_id: int, message: str,
                 cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.request_id = request_id
        if cause is not None:
            self.__cause__ = cause


@dataclass
class ExecStats:
    """Resilience accounting for one :meth:`ModelExecutor.run_resilient`."""

    attempts: int = 0   #: total batch forwards tried (including retries)
    retries: int = 0    #: forwards that were retries of a failed attempt
    splits: int = 0     #: bisections performed to isolate failures
    faults: int = 0     #: raising forwards observed (pre-isolation)


class BatchTiming:
    """Clock readings of one executed batch.

    ``started``/``finished`` are readings of the *injected* clock (the
    transport's time base — comparable to request ``arrived_at`` and
    deadlines); ``exec_seconds`` is the stage+forward wall time on the real
    clock regardless of any test clock (the router's overlap model and the
    gpusim calibration consume it).
    """

    __slots__ = ("started", "finished", "exec_seconds")

    def __init__(self, started: float, finished: float, exec_seconds: float):
        self.started = started
        self.finished = finished
        self.exec_seconds = exec_seconds


class ModelExecutor:
    """Plan-warm batch execution for one model.

    Parameters mirror the old ``Server`` constructor: plans for every
    ``input_shapes`` x ``bucket_sizes`` pair are pre-built here (attributed
    to ``name`` in the shared plan cache), so steady-state batches run
    entirely on cache hits.  Unseen shapes build lazily under the execution
    lock (the build probes the shared model, so it must not overlap an
    in-flight batch).

    The executor serialises its own batches on ``exec_lock`` — the staged
    plan buffers are shared per (shape, bucket) — while different
    executors' batches may overlap freely (the router/gateway rely on
    that).
    """

    def __init__(
        self,
        model,
        input_shapes: tuple | list = ((3, 32, 32),),
        bucket_sizes: tuple[int, ...] = (1, 2, 4, 8),
        name: str | None = None,
        degrade_after: int | None = None,
        degrade_chain: tuple[str, ...] = ("numba", "threaded", "numpy"),
    ) -> None:
        self.model = model.eval()
        self.name = name
        self.bucket_sizes = tuple(sorted(set(bucket_sizes)))
        # Layers dispatching through fused conv->bias/BN->activation
        # epilogues (repro.nn.fuse_inference); surfaced in serving metrics.
        self.fused_layers = sum(
            1
            for _, m in self.model.named_modules()
            if getattr(m, "_fused_epilogue", None) is not None
        )
        self.exec_lock = threading.Lock()
        # Graceful degradation ladder: after `degrade_after` consecutive
        # non-poison kernel faults on one (shape, bucket) workload, demote
        # just that workload one step down `degrade_chain` (starting from
        # the resolved default backend).  Level 0 = no override, i.e. the
        # bitwise-pinned default path.
        self.degrade_after = degrade_after
        self.degrade_chain = tuple(degrade_chain)
        self._ladder_lock = threading.Lock()
        self._ladder: dict[tuple, int] = {}
        self._fail_streak: dict[tuple, int] = {}
        self._degraded_events: list[dict] = []
        self._chain_cache: tuple[str, ...] | None = None
        self._plans_lock = threading.Lock()
        self._plans: dict[tuple, ModelPlan] = {}
        with plan_owner(self.name):
            for shape in input_shapes:
                for bucket in self.bucket_sizes:
                    self._plans[(tuple(shape), bucket)] = ModelPlan(
                        self.model, tuple(shape), batch_size=bucket,
                        include_backward=False,
                    )

    def plan_for(self, shape: tuple, bucket: int) -> ModelPlan:
        """The (shape, bucket) plan, building it on first sight.

        Cold path: visible in metrics via the plan-cache build counter.
        The build runs probe forwards (and registers hooks) on the shared
        model, so it takes the execution lock to stay clear of in-flight
        batches.
        """
        key = (tuple(shape), bucket)
        with self._plans_lock:
            plan = self._plans.get(key)
        if plan is None:
            with self.exec_lock:
                with self._plans_lock:
                    plan = self._plans.get(key)
                if plan is None:
                    with plan_owner(self.name):
                        plan = ModelPlan(self.model, tuple(shape),
                                         batch_size=bucket,
                                         include_backward=False)
                    with self._plans_lock:
                        self._plans.setdefault(key, plan)
                        plan = self._plans[key]
        return plan

    # -- graceful degradation ladder -------------------------------------------

    def _active_chain(self) -> tuple[str, ...]:
        """The degradation chain from the resolved default backend down."""
        if self._chain_cache is None:
            try:
                resolved = REGISTRY.resolve_name("conv2d", "default")
            except ValueError:
                resolved = None
            chain = self.degrade_chain
            if resolved in chain:
                chain = chain[chain.index(resolved):]
            self._chain_cache = chain
        return self._chain_cache

    def _ladder_backend(self, key: tuple) -> str | None:
        """The demoted backend for this workload, or ``None`` (default path)."""
        with self._ladder_lock:
            level = self._ladder.get(key, 0)
        if level == 0:
            return None
        chain = self._active_chain()
        return chain[min(level, len(chain) - 1)]

    def _record_outcome(self, key: tuple, failed: bool) -> None:
        """Fold one non-poison batch outcome into the demotion streaks."""
        if self.degrade_after is None:
            return
        with self._ladder_lock:
            if not failed:
                self._fail_streak[key] = 0
                return
            streak = self._fail_streak.get(key, 0) + 1
            self._fail_streak[key] = streak
            level = self._ladder.get(key, 0)
            chain = self._active_chain()
            if streak >= self.degrade_after and level + 1 < len(chain):
                self._ladder[key] = level + 1
                self._fail_streak[key] = 0
                self._degraded_events.append({
                    "shape": list(key[0]),
                    "bucket": key[1],
                    "level": level + 1,
                    "backend": chain[level + 1],
                })

    def degraded(self) -> list[dict]:
        """Demotion events so far (shape, bucket, level, backend) — oldest first."""
        with self._ladder_lock:
            return [dict(e) for e in self._degraded_events]

    # -- execution -------------------------------------------------------------

    def run(
        self,
        images: list[np.ndarray],
        bucket: int,
        clock: Callable[[], float] = time.perf_counter,
        request_ids: Sequence[int] | None = None,
        attempt: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> tuple[np.ndarray, BatchTiming]:
        """Execute one batch of same-shape images padded to ``bucket``.

        Returns the ``(n, num_classes)`` output rows for the *real* images
        (padding rows are never returned) and the batch's
        :class:`BatchTiming`.  Bitwise guarantee: the plan pads to the
        bucket size, so BLAS blocking and summation order depend only on
        (shape, bucket) — never on how many real requests rode along.

        ``request_ids``/``attempt``/``sleep`` exist for the fault plane and
        resilience machinery: they feed the injector's deterministic fire
        decisions and route injected ``slow_batch`` delays through the
        transport's (possibly virtual) sleep.
        """
        shape = tuple(images[0].shape)
        key = (shape, bucket)
        inj = active_faults()
        if inj is not None:
            inj.check("plan_build", key=key, attempt=attempt, model=self.name)
        plan = self.plan_for(shape, bucket)
        override = self._ladder_backend(key)
        with self.exec_lock:
            started = clock()
            if inj is not None:
                delay = inj.batch_delay(key=key, attempt=attempt,
                                        model=self.name, backend=override)
                if delay > 0.0:
                    sleep(delay)
            exec_start = time.perf_counter()
            try:
                if inj is not None:
                    if override is not None:
                        backend = override
                    else:
                        try:
                            backend = REGISTRY.resolve_name("conv2d", "default")
                        except ValueError:
                            backend = None
                    ids = tuple(request_ids) if request_ids is not None else ()
                    inj.kernel_fault(ids, key=key, attempt=attempt,
                                     model=self.name, backend=backend)
                batch = plan.stage_batch(np.stack(images))
                with no_grad(), plan_owner(self.name), backend_override(override):
                    out = self.model(Tensor(batch)).data
            except PoisonedRequest:
                # Request-level, not backend-level: leave the streak alone.
                raise
            except Exception:
                self._record_outcome(key, failed=True)
                raise
            self._record_outcome(key, failed=False)
            exec_seconds = time.perf_counter() - exec_start
            finished = clock()
        return out[: len(images)], BatchTiming(started, finished, exec_seconds)

    def run_resilient(
        self,
        images: list[np.ndarray],
        bucket: int,
        clock: Callable[[], float] = time.perf_counter,
        request_ids: Sequence[int] | None = None,
        retry: object | None = None,
        sleep: Callable[[float], None] = time.sleep,
        isolate: bool = True,
    ) -> tuple[list, dict[int, RequestFailed], ExecStats, BatchTiming]:
        """Execute a batch, surviving per-request failures.

        The fault-tolerant front door the transports use: first the whole
        batch is tried (with ``retry``'s backoff budget for transient
        faults); if it still raises and ``isolate`` is set, the batch is
        bisected and the halves retried recursively, so the poisoned
        request(s) converge to singleton spans and only they fail.  Because
        every sub-batch re-pads to the *same* bucket, survivors' rows are
        bitwise-identical to a clean run — isolation never perturbs the
        numerics, only the grouping.

        Returns ``(rows, errors, stats, timing)``: ``rows[i]`` is the output
        row for ``images[i]`` or ``None`` when it failed, ``errors`` maps
        failed input indices to :class:`RequestFailed`, ``stats`` is the
        :class:`ExecStats` of the whole episode, and ``timing`` spans the
        earliest start to the latest finish with summed exec seconds.
        """
        ids = (list(request_ids) if request_ids is not None
               else list(range(len(images))))
        rows: list = [None] * len(images)
        errors: dict[int, RequestFailed] = {}
        stats = ExecStats()
        timings: list[BatchTiming] = []

        def attempt_span(idxs: list[int]) -> None:
            attempt = 0
            last: BaseException | None = None
            while True:
                stats.attempts += 1
                try:
                    out, timing = self.run(
                        [images[i] for i in idxs], bucket, clock,
                        request_ids=[ids[i] for i in idxs],
                        attempt=attempt, sleep=sleep,
                    )
                    timings.append(timing)
                    for row, i in zip(out, idxs):
                        rows[i] = row
                    return
                except PoisonedRequest as exc:
                    # Deterministic by construction: no retry can succeed,
                    # go straight to isolation.
                    stats.faults += 1
                    last = exc
                    break
                except Exception as exc:
                    stats.faults += 1
                    last = exc
                    if retry is not None and retry.should_retry(attempt):
                        stats.retries += 1
                        delay = retry.delay(attempt, token=ids[idxs[0]])
                        if delay > 0.0:
                            sleep(delay)
                        attempt += 1
                        continue
                    break
            if isolate and len(idxs) > 1:
                stats.splits += 1
                mid = len(idxs) // 2
                attempt_span(idxs[:mid])
                attempt_span(idxs[mid:])
                return
            for i in idxs:
                errors[i] = RequestFailed(
                    ids[i],
                    f"request {ids[i]} failed after {attempt + 1} attempt(s): "
                    f"{last}",
                    cause=last,
                )

        attempt_span(list(range(len(images))))
        if timings:
            timing = BatchTiming(
                min(t.started for t in timings),
                max(t.finished for t in timings),
                sum(t.exec_seconds for t in timings),
            )
        else:
            now = clock()
            timing = BatchTiming(now, now, 0.0)
        return rows, errors, stats, timing
