"""Sharded multi-process serving: consistent-hash models across N routers.

The single-process :class:`~repro.serve.router.Router` tops out where numpy
stops releasing the GIL — pure-python models, scheduling overhead and
plan-cache bookkeeping all serialise on one interpreter.
:class:`ShardedRouter` is the tier above it: **N worker processes, each
hosting a full in-process Router** (its own plan cache, its own fault
plane, its own worker pool), with models assigned to shards by a
consistent-hash ring and requests proxied over pipes.

Design points:

- **consistent hashing** (:class:`HashRing`) — model names map to shards
  through CRC-32 virtual-node points, so growing the ring from N to N+1
  shards remaps only ~1/(N+1) of the models (the classic property), and
  the assignment is a pure function of (name, shard count, replicas):
  every front-end computes the same ring with no coordination.
- **determinism** — models are registered by *registry name* + build
  kwargs (e.g. ``seed``), so every shard builds bit-identical weights from
  the model registry rather than pickling arrays across the boundary; a
  request's output is therefore bitwise-identical to the same model served
  by an in-process Router (the tier-1 suite asserts exactly this).
- **per-process fault planes** — a fault injector installed in the parent
  is inherited by fork and re-derived per shard
  (:meth:`repro.faults.FaultInjector.for_worker`), so chaos stays
  seed-deterministic per process instead of replaying one sequence
  everywhere.
- **drive model** — synchronous only (``submit`` / ``flush`` / ``poll`` /
  ``result``), mirroring the Router surface; ``flush`` and ``poll``
  broadcast to every shard *before* collecting any reply, so shard drains
  genuinely overlap across processes — this is the GIL escape the
  ``bench_sharded_router`` gate measures.

Worker processes pin their in-process parallelism to one worker and the
``thread`` executor tier: the process boundary *is* the fan-out, and a
shard nesting another pool (or another process tier) would oversubscribe
the host quadratically.
"""
from __future__ import annotations

import bisect
import multiprocessing
import threading
import zlib
from typing import Any, Callable, Sequence

import numpy as np

from repro.serve.router import Router, RouterHandle
from repro.serve.policy import ServingPolicy

__all__ = ["HashRing", "ShardedRouter"]


class HashRing:
    """Deterministic consistent-hash ring over ``shards`` buckets.

    ``replicas`` virtual nodes per shard smooth the assignment (CRC-32 of
    ``"shard:<i>#<r>"`` places the points); :meth:`owner` walks clockwise
    from the key's hash to the first point.  Pure and stateless after
    construction — no coordination needed between processes that build the
    same ring.
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shards = shards
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                point = zlib.crc32(f"shard:{shard}#{replica}".encode())
                points.append((point, shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def owner(self, key: str) -> int:
        """The shard owning ``key`` (clockwise-next virtual node)."""
        point = zlib.crc32(str(key).encode())
        index = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[index]


# ---------------------------------------------------------------------------
# Shard worker process
# ---------------------------------------------------------------------------

def _shard_main(conn, shard_index: int, overlap: bool) -> None:
    """One shard process: a full Router driven by a pipe command loop."""
    # The fork inherited the parent's pool/executor globals; their worker
    # threads do not exist in this process, so reset to a serial in-process
    # configuration — cross-shard processes are the parallelism here.
    from repro.backend.parallel import set_executor, set_num_workers
    from repro.faults import active_faults, install_faults

    set_executor("thread")
    set_num_workers(1)
    inherited = active_faults()
    if inherited is not None:
        install_faults(inherited.for_worker(shard_index))

    router = Router(overlap=overlap)
    running = True
    while running:
        try:
            message = conn.recv()
        except EOFError:
            break
        cmd, args = message[0], message[1:]
        try:
            if cmd == "register":
                name, model, input_shapes, config, build_kwargs = args
                router.register(name, model, input_shapes=input_shapes,
                                config=config, **build_kwargs)
                reply: tuple[str, Any] = ("ok", None)
            elif cmd == "submit":
                name, image, deadline = args
                handle = router.submit(name, image, deadline)
                reply = ("ok", handle.request_id)
            elif cmd == "flush":
                reply = ("ok", router.flush())
            elif cmd == "poll":
                reply = ("ok", router.poll(args[0]))
            elif cmd == "result":
                name, request_id = args
                reply = ("ok", router.result(RouterHandle(name, request_id)))
            elif cmd == "wait_result":
                name, request_id, timeout = args
                reply = ("ok", router.wait_result(
                    RouterHandle(name, request_id), timeout))
            elif cmd == "status":
                name, request_id = args
                reply = ("ok", router.status(RouterHandle(name, request_id)))
            elif cmd == "was_shed":
                name, request_id = args
                reply = ("ok", router.was_shed(RouterHandle(name, request_id)))
            elif cmd == "metrics":
                reply = ("ok", router.metrics())
            elif cmd == "reset_metrics":
                router.reset_metrics()
                reply = ("ok", None)
            elif cmd == "stop":
                running = False
                reply = ("ok", None)
            else:  # pragma: no cover - protocol mismatch guard
                raise ValueError(f"unknown shard command {cmd!r}")
        except BaseException as exc:  # noqa: BLE001 - proxied to the parent
            reply = ("err", exc)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break
    conn.close()


class ShardedRouter:
    """Consistent-hash models across N single-router worker processes.

    Mirrors the synchronous :class:`~repro.serve.router.Router` surface
    (``register`` / ``submit`` / ``flush`` / ``poll`` / ``result`` /
    ``wait_result`` / ``metrics`` / ``stop``) while fanning models out
    across real processes.  Models must be *registry names* (resolved via
    :func:`repro.models.build_serving_model` inside the owning shard) so
    weights are rebuilt deterministically per process instead of shipping
    arrays; pass ``seed=...`` in ``build_kwargs`` to pin them.

    Per-model configuration rides along as a pickled
    :class:`~repro.serve.policy.ServingPolicy` (legacy ``ServerConfig``
    shims work too — see ``config=``), and a
    fault injector installed before construction is inherited and
    re-seeded per shard.  Use as a context manager to guarantee worker
    teardown.
    """

    def __init__(
        self,
        shards: int = 2,
        server_config: ServingPolicy | None = None,
        replicas: int = 64,
        overlap: bool = False,
    ) -> None:
        self.ring = HashRing(shards, replicas)
        self.shards = shards
        self._default_config = server_config
        self._models: dict[str, int] = {}
        self._lock = threading.Lock()
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix platforms
            ctx = multiprocessing.get_context()
        self._conns = []
        self._procs = []
        for index in range(shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_main,
                args=(child_conn, index, overlap),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._stopped = False

    # -- RPC plumbing ----------------------------------------------------------

    def _call(self, shard: int, cmd: str, *args: Any) -> Any:
        with self._lock:
            conn = self._conns[shard]
            conn.send((cmd, *args))
            status, value = conn.recv()
        if status == "err":
            raise value
        return value

    def _broadcast(self, cmd: str, *args: Any) -> list[Any]:
        """Send to every shard, then collect — shard work overlaps for real."""
        with self._lock:
            for conn in self._conns:
                conn.send((cmd, *args))
            replies = [conn.recv() for conn in self._conns]
        results = []
        for status, value in replies:
            if status == "err":
                raise value
            results.append(value)
        return results

    # -- registration ----------------------------------------------------------

    def register(
        self,
        name: str,
        model: str,
        input_shapes: tuple | list = ((3, 32, 32),),
        config: ServingPolicy | None = None,
        **build_kwargs: Any,
    ) -> int:
        """Register registry model ``model`` under ``name``; returns its shard."""
        if not isinstance(model, str):
            raise TypeError(
                "ShardedRouter registers models by registry name (weights "
                "are rebuilt deterministically inside the owning shard); "
                f"got a built {type(model).__name__} — pass the registry "
                "name plus seed/build kwargs instead"
            )
        if name in self._models:
            raise ValueError(f"model {name!r} already registered")
        shard = self.ring.owner(name)
        self._call(shard, "register", name, model, tuple(input_shapes),
                   config or self._default_config, dict(build_kwargs))
        self._models[name] = shard
        return shard

    def models(self) -> tuple[str, ...]:
        return tuple(self._models)

    def shard_of(self, name: str) -> int:
        """The shard serving ``name`` (raises for unregistered models)."""
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(
                f"no model {name!r} registered; have {sorted(self._models)}"
            ) from None

    # -- request lifecycle -----------------------------------------------------

    def submit(
        self, model: str, image: np.ndarray, deadline: float | None = None
    ) -> RouterHandle:
        request_id = self._call(self.shard_of(model), "submit",
                                model, np.asarray(image), deadline)
        return RouterHandle(model, request_id)

    def flush(self) -> int:
        """Drain every shard's pending requests (overlapped across processes)."""
        return sum(self._broadcast("flush"))

    def poll(self, now: float | None = None) -> int:
        return sum(self._broadcast("poll", now))

    def result(self, handle: RouterHandle):
        return self._call(self.shard_of(handle.model), "result",
                          handle.model, handle.request_id)

    def wait_result(self, handle: RouterHandle, timeout: float = 10.0):
        return self._call(self.shard_of(handle.model), "wait_result",
                          handle.model, handle.request_id, timeout)

    def status(self, handle: RouterHandle):
        return self._call(self.shard_of(handle.model), "status",
                          handle.model, handle.request_id)

    def was_shed(self, handle: RouterHandle) -> bool:
        return self._call(self.shard_of(handle.model), "was_shed",
                          handle.model, handle.request_id)

    # -- observability ---------------------------------------------------------

    def reset_metrics(self) -> None:
        self._broadcast("reset_metrics")

    def metrics(self) -> dict:
        """Aggregate + per-shard metrics (each shard's RouterMetrics rides along).

        Counters sum across shards; ``throughput`` sums shard rates (each
        shard's wall window is its own — the processes genuinely overlap);
        ``aggregate_hit_rate`` re-weights by each shard's cache traffic.
        """
        shard_metrics = self._broadcast("metrics")
        completed = sum(m.completed for m in shard_metrics)
        per_model: dict[str, dict] = {}
        for m in shard_metrics:
            for model_name, served in m.per_model.items():
                per_model[model_name] = served.as_dict()
        weighted = [
            (m.aggregate_hit_rate, sum(
                c["hits"] + c["misses"] for c in m.per_model_cache.values()
            ))
            for m in shard_metrics
        ]
        traffic = sum(w for _, w in weighted)
        aggregate_hit_rate = (
            sum(r * w for r, w in weighted) / traffic if traffic else 1.0
        )
        return {
            "shards": self.shards,
            "completed": completed,
            "rejected": sum(m.rejected for m in shard_metrics),
            "shed": sum(m.shed for m in shard_metrics),
            "failed": sum(m.failed for m in shard_metrics),
            "throughput": sum(m.throughput for m in shard_metrics),
            "aggregate_hit_rate": aggregate_hit_rate,
            "plan_builds": sum(m.plan_builds for m in shard_metrics),
            "per_model": per_model,
            "model_shards": dict(self._models),
            "per_shard": [m.as_dict() for m in shard_metrics],
        }

    # -- lifecycle -------------------------------------------------------------

    def stop(self) -> None:
        """Stop every shard process (idempotent); joins with a grace period."""
        if self._stopped:
            return
        self._stopped = True
        with self._lock:
            for conn in self._conns:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for conn in self._conns:
                try:
                    if conn.poll(5.0):
                        conn.recv()
                except (EOFError, OSError):
                    pass
                conn.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - teardown backstop
                proc.terminate()
                proc.join(timeout=1.0)

    def __enter__(self) -> "ShardedRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
