"""The asyncio serving transport over the scheduling core.

:class:`AsyncGateway` is the third layer of the serving tier refactor: an
``await``-able front-end where :meth:`~AsyncGateway.submit` resolves with
the request's :class:`~repro.serve.server.RequestResult` (or raises
:class:`~repro.serve.server.QueueFull` /
:class:`~repro.serve.server.DeadlineExceeded` when the request is shed), a
per-request latency *budget* turns into an absolute deadline the
:class:`~repro.serve.sched.ShedPolicy` enforces, bucket sizes adapt to the
observed arrival rate, and deficit-round-robin fairness keeps one heavy
model from ruining a light model's p95.

Concurrency discipline: all scheduling state lives in one
:class:`~repro.serve.sched.SchedCore` touched **only from the event loop**
— no locks anywhere in the policy path.  Batch execution is the only
blocking work, and it runs on the process-wide worker pool
(:func:`repro.backend.parallel.submit_pooled`) with the event loop awaiting
the wrapped future, so different models' batches overlap on the pool
exactly like the sync router's ``flush``; each model still serialises its
own batches (shared staged plan buffers) on an asyncio lock here and the
executor's thread lock below.

Bitwise guarantee: batches execute on the same
:class:`~repro.serve.engine.ModelExecutor` as the sync server, so at a
fixed bucket size the gateway's outputs are bit-identical to the sync
server's and to per-request inference (asserted in ``tests/test_gateway``).
"""
from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.backend import plan_owner, submit_pooled
from repro.serve.engine import ModelExecutor, RequestFailed
from repro.serve.policy import GatewayConfig, ServingPolicy
from repro.serve.sched import Batch, CircuitBreaker, SchedCore, SchedRequest
from repro.serve.server import (
    DeadlineExceeded,
    ModelUnavailable,
    QueueFull,
    RequestResult,
    ServingMetrics,
    _percentile,
)

__all__ = ["AsyncGateway", "GatewayConfig"]

# GatewayConfig moved to repro.serve.policy: the shared knobs now live on
# ServingPolicy and GatewayConfig is a deprecated shim re-exported here
# (with the gateway's historical adaptive/deadline defaults) for the
# one-release compatibility window.


@dataclass
class _ModelRuntime:
    """Event-loop-side state of one registered model."""

    executor: ModelExecutor
    exec_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    completed: int = 0
    deadline_misses: int = 0
    deadline_total: int = 0
    latencies: list[float] = field(default_factory=list)
    queue_waits: list[float] = field(default_factory=list)
    batch_records: list[tuple[int, int]] = field(default_factory=list)
    exec_seconds: list[float] = field(default_factory=list)
    breaker: CircuitBreaker | None = None
    failed: int = 0        # RequestFailed terminal failures
    retries: int = 0       # transient-fault batch retries (engine + pool)
    isolations: int = 0    # batches bisected to isolate a failure
    unavailable: int = 0   # submits shed while the breaker was open


class AsyncGateway:
    """Asyncio multi-model serving gateway on the scheduling core.

    Usage::

        async with AsyncGateway(GatewayConfig(max_latency=0.005)) as gw:
            gw.register("small", "mobilenet", input_shapes=[(3, 16, 16)],
                        width_mult=0.25)
            result = await gw.submit("small", image, budget=0.05)

    ``submit`` resolves once the request's batch completed; it raises
    :class:`QueueFull` when admission rejects (after the deadline policy
    displaced any blown-budget victims) and :class:`DeadlineExceeded` when
    the request itself is shed with its budget blown.  Every await-er of a
    shed request gets the exception — nothing is silently dropped.

    Must be constructed (and driven) inside a running event loop.
    """

    def __init__(
        self,
        config: ServingPolicy | None = None,
        clock: Callable[[], float] = time.perf_counter,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = GatewayConfig.coerce(config)
        self.clock = clock
        self.sleep = sleep  # backoff sleeps inside pooled batch execution
        self.core = SchedCore(
            bucket_sizes=self.config.bucket_sizes,
            max_latency=self.config.max_latency,
            max_pending=self.config.max_pending,
            adaptive_buckets=self.config.adaptive_buckets,
            shed_policy=self.config.shed_policy or "newest",
            fairness=self.config.fairness,
            quantum=self.config.quantum,
        )
        self._models: dict[str, _ModelRuntime] = {}
        self._futures: dict[int, asyncio.Future] = {}
        self._wake = asyncio.Event()
        self._batch_tasks: set[asyncio.Task] = set()
        limit = self.config.max_concurrent_batches
        if limit is None:
            from repro.backend import get_num_workers

            limit = max(1, get_num_workers())
        self._batch_slots = asyncio.Semaphore(limit)
        self._loop_task: asyncio.Task | None = None
        self._stopping = False

    # -- registration ---------------------------------------------------------

    def register(
        self,
        name: str,
        model,
        input_shapes: tuple | list = ((3, 32, 32),),
        request_cost: float = 1.0,
        exec_estimate: float | None = None,
        **build_kwargs,
    ) -> None:
        """Add a model under ``name`` (module or registry name, like
        :meth:`repro.serve.router.Router.register`).

        ``request_cost`` prices one padded batch slot for the DRR fairness
        accounting (a model whose batches run ~20x longer should cost
        ~20x); ``exec_estimate`` sharpens deadline shedding by the expected
        batch execution time.  The default (``None``) auto-calibrates: the
        estimate follows an EWMA of this model's measured batch execution
        spans (``SchedCore.observe_exec``), so operators no longer have to
        guess the knob — pass an explicit value only to pin it.
        """
        if name in self._models:
            raise ValueError(f"model {name!r} already registered")
        if isinstance(model, str):
            from repro.models import build_serving_model

            with plan_owner(name):
                model = build_serving_model(model, **build_kwargs)
        elif build_kwargs:
            raise ValueError(
                "build_kwargs only apply when model is a registry name, "
                f"got kwargs {sorted(build_kwargs)} with a built model"
            )
        executor = ModelExecutor(
            model, input_shapes=input_shapes,
            bucket_sizes=self.config.bucket_sizes, name=name,
            degrade_after=self.config.degrade_after,
        )
        self._models[name] = _ModelRuntime(
            executor=executor, breaker=self.config.make_breaker()
        )
        self.core.add_model(
            name, request_cost=request_cost, exec_estimate=exec_estimate
        )

    def models(self) -> tuple[str, ...]:
        return tuple(self._models)

    # -- request lifecycle ----------------------------------------------------

    async def submit(
        self, model: str, image: np.ndarray, budget: float | None = None
    ) -> RequestResult:
        """Route one ``(C, H, W)`` image to ``model``; await its result.

        ``budget`` is the request's latency SLO in seconds — converted to
        an absolute deadline on the gateway clock at submission.  Under the
        ``deadline`` shed policy a request whose budget expires while
        queued resolves with :class:`DeadlineExceeded` instead of a result.
        """
        if model not in self._models:
            raise KeyError(
                f"no model {model!r} registered; have {sorted(self._models)}"
            )
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 3:
            raise ValueError(f"expected one (C, H, W) image, got shape {image.shape}")
        self._ensure_loop()
        now = self.clock()
        runtime = self._models[model]
        if runtime.breaker is not None and not runtime.breaker.allow(now):
            runtime.unavailable += 1
            raise ModelUnavailable(
                f"model {model!r} is unavailable: circuit breaker open "
                f"(error rate {runtime.breaker.error_rate():.0%} over "
                f"recent requests)"
            )
        deadline = None if budget is None else now + budget
        outcome = self.core.submit(
            model, image.shape, now, deadline=deadline, payload=image
        )
        self._fail_shed(outcome.displaced)
        if not outcome.accepted:
            raise QueueFull(
                f"gateway queue for {model!r} at capacity "
                f"(max_pending={self.config.max_pending}); request shed"
            )
        future = asyncio.get_running_loop().create_future()
        self._futures[outcome.request.id] = future
        self._wake.set()
        return await future

    def _fail_shed(self, victims: list[SchedRequest]) -> None:
        """Resolve shed requests' futures with DeadlineExceeded."""
        for victim in victims:
            future = self._futures.pop(victim.id, None)
            if future is not None and not future.done():
                future.set_exception(DeadlineExceeded(
                    f"request {victim.id} for {victim.model!r} was shed: its "
                    f"latency budget expired while it was still queued"
                ))

    def kick(self) -> None:
        """Wake the scheduler loop immediately (deterministic tests with an
        injected clock advance the clock, then kick)."""
        self._wake.set()

    # -- scheduler loop -------------------------------------------------------

    def _ensure_loop(self) -> None:
        if self._loop_task is None or self._loop_task.done():
            self._stopping = False
            self._loop_task = asyncio.get_running_loop().create_task(
                self._scheduler_loop()
            )

    async def _scheduler_loop(self) -> None:
        """Shed blown budgets, dispatch due batches, sleep to the next event.

        Single consumer of the core: submissions only enqueue and set the
        wake event, so every policy decision happens here, on the loop, in
        a deterministic order.
        """
        while not self._stopping:
            now = self.clock()
            self._fail_shed(self.core.shed_blown(now))
            while True:
                batch = self.core.next_batch(now)
                if batch is None:
                    break
                self._spawn_batch(batch)
            next_event = self.core.next_event(now)
            self._wake.clear()
            try:
                # Floor the sleep: an event landing exactly "now" (a deadline
                # on the blown/viable boundary) must not busy-spin a frozen
                # injected clock.
                timeout = None if next_event is None \
                    else max(next_event - now, 1e-4)
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass

    def _spawn_batch(self, batch: Batch) -> None:
        task = asyncio.get_running_loop().create_task(self._execute(batch))
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _execute(self, batch: Batch) -> None:
        runtime = self._models[batch.model]
        images = [r.payload for r in batch.requests]
        ids = [r.id for r in batch.requests]
        retry = self.config.retry
        async with self._batch_slots, runtime.exec_lock:
            # The engine's run_resilient handles kernel-level retries and
            # bisect isolation inside the pool; this loop only covers
            # failures *reaching* the pool (submit errors and the like),
            # backing off on the event loop, never blocking it.
            attempt = 0
            while True:
                try:
                    pooled = submit_pooled(
                        runtime.executor.run_resilient, images, batch.bucket,
                        self.clock, ids, retry, self.sleep,
                        self.config.isolate_failures,
                    )
                    rows, errors, stats, timing = await asyncio.wrap_future(pooled)
                    break
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:
                    if retry is not None and retry.should_retry(attempt):
                        runtime.retries += 1
                        await asyncio.sleep(retry.delay(attempt, token=ids[0]))
                        attempt += 1
                        continue
                    done = self.clock()
                    for request in batch.requests:
                        future = self._futures.pop(request.id, None)
                        if future is not None and not future.done():
                            future.set_exception(RequestFailed(
                                request.id,
                                f"request {request.id} failed: batch could "
                                f"not be executed ({exc})",
                                cause=exc,
                            ))
                        runtime.failed += 1
                        if runtime.breaker is not None:
                            runtime.breaker.record(False, done)
                    return
        done = timing.finished
        n = len(batch.requests)
        runtime.batch_records.append((n, batch.bucket))
        runtime.exec_seconds.append(timing.exec_seconds)
        # Auto-calibrate the deadline shed's exec_estimate from the span
        # the batch actually took on the gateway clock — same time base as
        # the deadlines it will be compared against.
        self.core.observe_exec(
            batch.model, max(0.0, timing.finished - timing.started)
        )
        runtime.retries += stats.retries
        if stats.splits:
            runtime.isolations += 1
        completed = 0
        for i, request in enumerate(batch.requests):
            future = self._futures.pop(request.id, None)
            if i in errors:
                runtime.failed += 1
                if runtime.breaker is not None:
                    runtime.breaker.record(False, done)
                if future is not None and not future.done():
                    future.set_exception(errors[i])
                continue
            completed += 1
            result = RequestResult(
                id=request.id,
                output=rows[i].copy(),
                latency=done - request.arrived_at,
                batch_requests=n,
                bucket_size=batch.bucket,
                queue_wait=timing.started - request.arrived_at,
            )
            runtime.latencies.append(result.latency)
            runtime.queue_waits.append(result.queue_wait)
            if runtime.breaker is not None:
                runtime.breaker.record(True, done)
            if request.deadline is not None:
                runtime.deadline_total += 1
                if done > request.deadline:
                    runtime.deadline_misses += 1
            if future is not None and not future.done():
                future.set_result(result)
        runtime.completed += completed

    # -- shutdown -------------------------------------------------------------

    async def drain(self) -> None:
        """Force-dispatch everything queued and await all in-flight batches."""
        while True:
            now = self.clock()
            batch = self.core.next_batch(now, force=True)
            if batch is None:
                break
            self._spawn_batch(batch)
        while self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks),
                                 return_exceptions=True)

    async def stop(self, drain: bool = True) -> None:
        """Stop the scheduler loop; drain or shed what is still queued.

        ``drain=False`` sheds: every still-queued request's await-er gets
        :class:`~repro.serve.server.RequestShed` — nothing submitted is
        silently dropped, matching the sync server's shutdown contract.
        """
        self._stopping = True
        self._wake.set()
        if self._loop_task is not None:
            await self._loop_task
            self._loop_task = None
        if drain:
            await self.drain()
        else:
            from repro.serve.server import RequestShed

            for victim in self.core.shed_all():
                future = self._futures.pop(victim.id, None)
                if future is not None and not future.done():
                    future.set_exception(RequestShed(
                        f"request {victim.id} was shed on shutdown "
                        f"before executing"
                    ))
            while self._batch_tasks:
                await asyncio.gather(*list(self._batch_tasks),
                                     return_exceptions=True)

    async def __aenter__(self) -> "AsyncGateway":
        self._ensure_loop()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop(drain=exc_type is None)

    # -- metrics --------------------------------------------------------------

    def metrics(self) -> dict[str, ServingMetrics]:
        """Per-model :class:`ServingMetrics` over the gateway's lifetime.

        Wall-clock throughput is not computed here (the injected clock may
        be virtual); the latency split (``queue_wait_mean`` vs
        ``exec_mean``), deadline-miss rate, shed counts and the live
        adaptive ``bucket_target`` are the gateway-native observables.
        """
        out: dict[str, ServingMetrics] = {}
        for name, runtime in self._models.items():
            stats = self.core.stats(name)
            lat = sorted(runtime.latencies)
            waits = sorted(runtime.queue_waits)
            real = sum(n for n, _ in runtime.batch_records)
            padded = sum(b for _, b in runtime.batch_records)
            out[name] = ServingMetrics(
                completed=runtime.completed,
                batches=len(runtime.batch_records),
                throughput=0.0,
                latency_p50=_percentile(lat, 0.50),
                latency_p95=_percentile(lat, 0.95),
                latency_mean=sum(lat) / len(lat) if lat else 0.0,
                plan_cache_hit_rate=1.0,
                plan_builds=0,
                mean_batch_occupancy=real / len(runtime.batch_records)
                if runtime.batch_records else 0.0,
                mean_bucket_fill=real / padded if padded else 0.0,
                rejected=stats["rejected"],
                shed=stats["shed_deadline"],
                exec_seconds_total=sum(runtime.exec_seconds),
                fused_layers=runtime.executor.fused_layers,
                shed_deadline=stats["shed_deadline"],
                deadline_misses=runtime.deadline_misses,
                deadline_miss_rate=runtime.deadline_misses / runtime.deadline_total
                if runtime.deadline_total else 0.0,
                queue_wait_mean=sum(waits) / len(waits) if waits else 0.0,
                queue_wait_p95=_percentile(waits, 0.95),
                exec_mean=sum(runtime.exec_seconds) / len(runtime.exec_seconds)
                if runtime.exec_seconds else 0.0,
                bucket_target=stats["bucket_target"],
                failed=runtime.failed,
                retries=runtime.retries,
                isolated_batches=runtime.isolations,
                unavailable=runtime.unavailable,
                degraded_plans=len(runtime.executor.degraded()),
                breaker_state=runtime.breaker.state
                if runtime.breaker else "disabled",
                breaker_opens=runtime.breaker.opens if runtime.breaker else 0,
            )
        return out

    def breaker_snapshots(self) -> dict[str, dict]:
        """Per-model circuit-breaker snapshots (only breaker-enabled models)."""
        return {
            name: runtime.breaker.snapshot()
            for name, runtime in self._models.items()
            if runtime.breaker is not None
        }
