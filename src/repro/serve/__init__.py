"""Inference serving front-end: shape-bucketed request batching + routing.

The ROADMAP's heavy-traffic north star meets the plan cache here: incoming
single-image requests are coalesced into shape-bucketed batches so every
bucket executes on a warm :class:`repro.backend.ModelPlan` entry, and the
plan-cache hit rate becomes a first-class serving metric next to p50/p95
latency and throughput.

- :class:`Server` — submit/flush front-end for one model with configurable
  bucket sizes, a max-latency flush deadline, per-model admission control
  (``max_pending`` + :class:`QueueFull` shedding) and an optional
  background worker thread (the concurrent path the single-flight plan
  cache exists for);
- :class:`Router` — multi-model front-end: one server per registered
  model, requests routed by model name, all servers sharing the
  process-wide plan cache with per-model (owner-tagged) accounting and
  traffic-weighted eviction; :class:`RouterMetrics` aggregates per-model
  p50/p95/throughput/hit-rate;
- :class:`ServerConfig` — bucket/flush/admission knobs;
- :class:`RequestResult` / :class:`ServingMetrics` — per-request outputs and
  aggregate serving statistics;
- :class:`QueueFull` / :class:`RequestShed` — the two ways a request is
  shed (admission control, shutdown without drain) rather than silently
  dropped.
"""
from repro.serve.router import Router, RouterHandle, RouterMetrics
from repro.serve.server import (
    QueueFull,
    Request,
    RequestResult,
    RequestShed,
    Server,
    ServerConfig,
    ServingMetrics,
)

__all__ = [
    "QueueFull",
    "Request",
    "RequestResult",
    "RequestShed",
    "Router",
    "RouterHandle",
    "RouterMetrics",
    "Server",
    "ServerConfig",
    "ServingMetrics",
]
