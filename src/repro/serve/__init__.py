"""Inference serving front-end: shape-bucketed request batching.

The ROADMAP's heavy-traffic north star meets the plan cache here: incoming
single-image requests are coalesced into shape-bucketed batches so every
bucket executes on a warm :class:`repro.backend.ModelPlan` entry, and the
plan-cache hit rate becomes a first-class serving metric next to p50/p95
latency and throughput.

- :class:`Server` — submit/flush front-end with configurable bucket sizes
  and a max-latency flush deadline, plus an optional background worker
  thread (the concurrent path the single-flight plan cache exists for);
- :class:`ServerConfig` — bucket/flush knobs;
- :class:`RequestResult` / :class:`ServingMetrics` — per-request outputs and
  aggregate serving statistics.
"""
from repro.serve.server import (
    Request,
    RequestResult,
    Server,
    ServerConfig,
    ServingMetrics,
)

__all__ = [
    "Request",
    "RequestResult",
    "Server",
    "ServerConfig",
    "ServingMetrics",
]
