"""Inference serving front-end: scheduling core, transports, routing.

The ROADMAP's heavy-traffic north star meets the plan cache here: incoming
single-image requests are coalesced into shape-bucketed batches so every
bucket executes on a warm :class:`repro.backend.ModelPlan` entry, and the
plan-cache hit rate becomes a first-class serving metric next to p50/p95
latency and throughput.  The tier is three layers:

- **scheduling core** (:mod:`repro.serve.sched`) — pure, clock-injected
  policy objects: bounded admission with backpressure
  (:class:`AdmissionPolicy`), arrival-rate-adaptive bucket sizing
  (:class:`BucketPolicy`), deadline-aware load shedding
  (:class:`ShedPolicy`), deficit-round-robin cross-model fairness
  (:class:`FairnessPolicy`), composed by :class:`SchedCore`;
- **transports** — the synchronous :class:`Server` (thread-worker adapter;
  bitwise-pinned legacy behaviour at the default config) and
  :class:`Router` (multi-model, shared plan cache with owner-tagged
  accounting and traffic-weighted eviction), plus the asyncio
  :class:`AsyncGateway` (``await``-able submit, per-request latency
  budgets, shed surfaced as exceptions, batch execution on the shared
  worker pool), all driving the same :class:`ModelExecutor` batch engine
  (:mod:`repro.serve.engine`) — which is what makes their outputs
  bitwise-identical at a fixed bucket size;
- **observability** — :class:`ServingMetrics` / :class:`RouterMetrics`
  with the queue-wait vs exec-time latency split, deadline-miss rate,
  shed-by-deadline counts and the live adaptive bucket target;
  :meth:`Server.status` / :meth:`Router.status` answer a request's
  lifecycle (``PENDING | DONE | SHED | EVICTED``).

Failure paths are never silent (see the README's "Failure semantics"):
:class:`QueueFull` (admission), :class:`RequestShed` (shutdown without
drain), :class:`DeadlineExceeded` (latency budget blown while queued),
:class:`RequestFailed` (execution failed after bisect isolation and the
:class:`RetryPolicy` backoff budget), :class:`ModelUnavailable` (the
per-model :class:`CircuitBreaker` is open), :class:`ResultTimeout` (a
``wait_result`` that gave up, carrying the request's status).
"""
from repro.serve.engine import BatchTiming, ExecStats, ModelExecutor, RequestFailed
from repro.serve.gateway import AsyncGateway, GatewayConfig
from repro.serve.policy import ServingPolicy
from repro.serve.router import Router, RouterHandle, RouterMetrics
from repro.serve.sched import (
    AdmissionPolicy,
    Batch,
    BucketPolicy,
    CircuitBreaker,
    FairnessPolicy,
    RetryPolicy,
    SchedCore,
    SchedRequest,
    ShedPolicy,
)
from repro.serve.server import (
    DeadlineExceeded,
    ModelUnavailable,
    QueueFull,
    Request,
    RequestResult,
    RequestShed,
    RequestStatus,
    ResultTimeout,
    Server,
    ServerConfig,
    ServingMetrics,
)
from repro.serve.sharded import HashRing, ShardedRouter

__all__ = [
    "AdmissionPolicy",
    "AsyncGateway",
    "Batch",
    "BatchTiming",
    "BucketPolicy",
    "CircuitBreaker",
    "DeadlineExceeded",
    "ExecStats",
    "FairnessPolicy",
    "GatewayConfig",
    "HashRing",
    "ModelExecutor",
    "ModelUnavailable",
    "QueueFull",
    "Request",
    "RequestFailed",
    "RequestResult",
    "RequestShed",
    "RequestStatus",
    "ResultTimeout",
    "RetryPolicy",
    "Router",
    "RouterHandle",
    "RouterMetrics",
    "SchedCore",
    "SchedRequest",
    "Server",
    "ServerConfig",
    "ServingMetrics",
    "ServingPolicy",
    "ShardedRouter",
]
