"""Multi-model serving router over the shared execution-plan cache.

One process, many models: the :class:`Router` owns one
:class:`~repro.serve.server.Server` per registered model, routes each
request to its model's server by name, and lets every server share the
process-wide :data:`~repro.backend.workload.PLAN_CACHE`.  Each server is
registered under its model name as the cache *owner* tag
(:func:`repro.backend.plan_owner`), which buys the two things single-model
serving never exercised:

- **per-model cache accounting** — hit/miss/build/eviction counts per
  model, reconcilable against the global counters
  (:func:`repro.backend.plan_cache_owner_stats`), so a model's hit rate is
  exact even while other models, a trainer, or cache clears share the
  process;
- **traffic-weighted eviction** — the cache's LRU victim selection weights
  candidates by their owning model's observed traffic, so a hot model's
  plans are not thrashed out by a cold model churning through the LRU tail.

Admission control is per model: give a registered model a
``ServerConfig.max_pending`` bound and its ``submit`` sheds with
:class:`~repro.serve.server.QueueFull` (counted in ``rejected``) instead of
letting an overloaded queue grow without bound.

Driving mirrors :class:`Server`: synchronous (``submit``/``poll``/
``flush``) or threaded (``start``/``wait_result``/``stop``), and
:meth:`Router.metrics` aggregates per-model p50/p95/throughput/hit-rate
plus the shared cache's state into one :class:`RouterMetrics`.

**Cross-model batch overlap.**  Synchronous ``flush``/``poll`` dispatch
each model's drain onto the shared worker pool
(:mod:`repro.backend.parallel`), so different models' batches execute
concurrently instead of queueing behind one caller thread — each server
still serialises its *own* batches on its ``_exec_lock`` (shared staging
buffers), which is exactly the per-model chain the overlap model in
``bench_multimodel_serving`` assumes.  Pass ``overlap=False`` (or size the
pool to one worker) to restore the strictly serial drain: overlap
interleaves the models' plan-cache access order, which is the right
trade for throughput but not for experiments asserting deterministic
eviction counts on a capacity-bound cache.
"""
from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, NamedTuple

import numpy as np

from repro.backend import PLAN_CACHE, parallel_map, plan_cache_stats, plan_owner
from repro.serve.policy import ServingPolicy
from repro.serve.server import (
    RequestResult,
    RequestStatus,
    Server,
    ServingMetrics,
)


# Cache counters that only ever grow; "size" is a gauge and must never be
# window-snapshotted or used for clear detection (evictions shrink it).
_MONOTONIC_CACHE_KEYS = ("hits", "misses", "builds", "evictions")


class RouterHandle(NamedTuple):
    """Opaque ticket for one routed request: which model, which request id."""

    model: str
    request_id: int


@dataclass
class RouterMetrics:
    """One window's aggregate view across every registered model.

    ``per_model`` holds each server's :class:`ServingMetrics`;
    ``per_model_cache`` holds each model's plan-cache counter deltas over
    the same window (hits/misses/builds/evictions and the derived
    ``hit_rate``).  ``aggregate_hit_rate`` weights every model's cache
    traffic together — the number the multi-model benchmark gates on.
    """

    completed: int
    rejected: int                 # admission-control sheds across all models
    shed: int                     # shutdown sheds across all models
    throughput: float             # completed / wall-clock span of the window
    aggregate_hit_rate: float
    plan_builds: int
    cache_size: int
    cache_evictions: int          # global evictions over the window
    per_model: dict[str, ServingMetrics]
    per_model_cache: dict[str, dict]
    fused_layers: int = 0         # summed fused-epilogue layers across models
    shed_deadline: int = 0        # deadline-policy sheds across all models
    deadline_misses: int = 0      # completions past their deadline, all models
    failed: int = 0               # RequestFailed terminal failures, all models
    retries: int = 0              # transient-fault batch retries, all models
    unavailable: int = 0          # breaker-open sheds (ModelUnavailable)
    breaker_opens: int = 0        # breaker trips across all models
    # Per-model circuit-breaker snapshots (state, opens/closes, rejected,
    # error_rate, and the full timestamped transition list) for every model
    # whose breaker is enabled — the chaos soak's visibility surface.
    breakers: dict | None = None

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["per_model"] = {name: m.as_dict() for name, m in self.per_model.items()}
        return out


class Router:
    """Route single-image requests to named models over one shared plan cache.

    Parameters
    ----------
    server_config:
        default :class:`~repro.serve.policy.ServingPolicy` (or legacy
        :class:`~repro.serve.policy.ServerConfig`) for models registered
        without one.
    clock:
        time source handed to every server (injectable for tests).
    overlap:
        when ``True`` (default), synchronous ``flush``/``poll`` run each
        model's drain on the shared worker pool so different models'
        batches overlap; ``False`` drains strictly serially in
        registration order (deterministic shared-cache access order).
    cache_owner_floor:
        when set, configures the shared plan cache's per-owner quota
        (``PlanCache.owner_floor``): every registered model keeps at least
        this many resident plans no matter how hard the other models churn
        the cache.  Applied process-wide (the cache is shared); ``None``
        leaves the cache's current setting untouched.
    """

    def __init__(
        self,
        server_config: ServingPolicy | None = None,
        clock: Callable[[], float] = time.perf_counter,
        overlap: bool = True,
        cache_owner_floor: int | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if cache_owner_floor is not None:
            if cache_owner_floor < 0:
                raise ValueError(
                    f"cache_owner_floor must be >= 0, got {cache_owner_floor}"
                )
            PLAN_CACHE.owner_floor = cache_owner_floor
        self._default_config = server_config
        self._clock = clock
        self._sleep = sleep
        self.overlap = overlap
        self._servers: dict[str, Server] = {}
        self._started = False
        self.reset_metrics()

    # -- registration ----------------------------------------------------------

    def register(
        self,
        name: str,
        model,
        input_shapes: tuple | list = ((3, 32, 32),),
        config: ServingPolicy | None = None,
        **build_kwargs,
    ) -> Server:
        """Add a model under ``name``; returns its dedicated server.

        ``model`` is either a built ``repro.nn`` module or a registry model
        name (``"mobilenet"``, ``"resnet18"``, ...) resolved through
        :func:`repro.models.build_serving_model` with ``build_kwargs``.
        Plan pre-building for the configured buckets runs here, attributed
        to ``name`` in the shared cache.  Registering on a started router
        starts the new server's worker immediately.
        """
        if name in self._servers:
            raise ValueError(f"model {name!r} already registered")
        if isinstance(model, str):
            from repro.models import build_serving_model

            with plan_owner(name):
                model = build_serving_model(model, **build_kwargs)
        elif build_kwargs:
            raise ValueError(
                "build_kwargs only apply when model is a registry name, "
                f"got kwargs {sorted(build_kwargs)} with a built model"
            )
        server = Server(
            model,
            input_shapes=input_shapes,
            config=config or self._default_config,
            clock=self._clock,
            name=name,
            sleep=self._sleep,
        )
        self._servers[name] = server
        # Open the new model's metrics window *after* its registration
        # pre-builds, so a model registered mid-window reports only served
        # traffic — consistent with models registered before reset_metrics.
        self._owner_base[name] = self._owner_snapshot(name)
        if self._started:
            server.start()
        return server

    def models(self) -> tuple[str, ...]:
        return tuple(self._servers)

    def server(self, name: str) -> Server:
        return self._servers[name]

    def _require(self, name: str) -> Server:
        try:
            return self._servers[name]
        except KeyError:
            raise KeyError(
                f"no model {name!r} registered; have {sorted(self._servers)}"
            ) from None

    # -- request lifecycle -----------------------------------------------------

    def submit(
        self, model: str, image: np.ndarray, deadline: float | None = None
    ) -> RouterHandle:
        """Route one ``(C, H, W)`` image to ``model``'s server.

        Raises :class:`~repro.serve.server.QueueFull` when that model's
        admission bound is reached (the request is shed, never enqueued).
        ``deadline`` is an absolute clock reading forwarded to the server
        (see :meth:`Server.submit`).
        """
        return RouterHandle(model, self._require(model).submit(image, deadline))

    def result(self, handle: RouterHandle) -> RequestResult | None:
        return self._require(handle.model).result(handle.request_id)

    def status(self, handle: RouterHandle) -> RequestStatus:
        """Lifecycle state of a routed request (see :meth:`Server.status`)."""
        return self._require(handle.model).status(handle.request_id)

    def wait_result(self, handle: RouterHandle, timeout: float = 10.0) -> RequestResult:
        return self._require(handle.model).wait_result(handle.request_id, timeout)

    def was_shed(self, handle: RouterHandle) -> bool:
        return self._require(handle.model).was_shed(handle.request_id)

    def poll(self, now: float | None = None) -> int:
        """Flush every model's due buckets; returns batches executed.

        With ``overlap`` enabled the per-model drains run on the shared
        worker pool, so one slow model's batches no longer delay the rest.
        """
        return self._drain(lambda server: server.poll(now))

    def flush(self) -> int:
        """Run every pending request of every model (overlapped when enabled)."""
        return self._drain(lambda server: server.flush())

    def _drain(self, drain_one: Callable[[Server], int]) -> int:
        servers = list(self._servers.values())
        if self.overlap:
            return sum(parallel_map(drain_one, servers, op="router.drain"))
        return sum(drain_one(server) for server in servers)

    # -- threaded mode ---------------------------------------------------------

    def start(self) -> "Router":
        """Start every registered server's background worker."""
        if self._started:
            raise RuntimeError("router already started")
        self._started = True
        for server in self._servers.values():
            server.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop every server (see :meth:`Server.stop` for drain semantics)."""
        self._started = False
        for server in self._servers.values():
            server.stop(drain=drain)

    # -- metrics ---------------------------------------------------------------

    def _owner_snapshot(self, name: str) -> dict[str, int]:
        acc = PLAN_CACHE.owner_stats().get(name, {})
        return {key: acc.get(key, 0) for key in _MONOTONIC_CACHE_KEYS}

    def reset_metrics(self) -> None:
        """Fresh measurement window across all models and the shared cache."""
        for server in self._servers.values():
            server.reset_metrics()
        base = plan_cache_stats()
        self._cache_base = {key: base[key] for key in _MONOTONIC_CACHE_KEYS}
        self._owner_base = {
            name: self._owner_snapshot(name) for name in self._servers
        }

    def metrics(self) -> RouterMetrics:
        """Aggregate + per-model statistics since :meth:`reset_metrics`.

        Per-model hit rates come from the cache's per-owner counters (exact
        attribution); the aggregate rate and eviction count are global
        deltas, so they also absorb untagged traffic (e.g. a co-resident
        trainer) — matching what the shared cache actually experienced.
        A ``clear_plan_cache()`` in the window zeroes the cache's counters;
        attribution then restarts from the clear (never negative deltas).
        """
        per_model = {name: srv.metrics() for name, srv in self._servers.items()}
        cache = plan_cache_stats()
        if any(cache[key] < base for key, base in self._cache_base.items()):
            self._cache_base = {key: 0 for key in self._cache_base}
        hits = cache["hits"] - self._cache_base["hits"]
        misses = cache["misses"] - self._cache_base["misses"]

        owners = PLAN_CACHE.owner_stats()
        per_model_cache: dict[str, dict] = {}
        for name in self._servers:
            now = owners.get(name, {})
            base = self._owner_base.get(name, {})
            if any(now.get(key, 0) < base.get(key, 0)
                   for key in _MONOTONIC_CACHE_KEYS):
                base = self._owner_base[name] = {}
            delta = {
                key: now.get(key, 0) - base.get(key, 0)
                for key in _MONOTONIC_CACHE_KEYS
            }
            delta["size"] = now.get("size", 0)
            accesses = delta["hits"] + delta["misses"]
            delta["hit_rate"] = delta["hits"] / accesses if accesses else 1.0
            per_model_cache[name] = delta

        # Window span: earliest submit to latest completion across models.
        spans = [srv.window_span() for srv in self._servers.values()]
        begun = [s for s, _ in spans if s is not None]
        done = [f for _, f in spans if f is not None]
        elapsed = (max(done) - min(begun)) if begun and done else 0.0
        completed = sum(m.completed for m in per_model.values())
        return RouterMetrics(
            completed=completed,
            rejected=sum(m.rejected for m in per_model.values()),
            shed=sum(m.shed for m in per_model.values()),
            throughput=completed / elapsed if elapsed > 0 else 0.0,
            aggregate_hit_rate=hits / (hits + misses) if hits + misses else 1.0,
            plan_builds=cache["builds"] - self._cache_base["builds"],
            cache_size=cache["size"],
            cache_evictions=cache["evictions"] - self._cache_base["evictions"],
            per_model=per_model,
            per_model_cache=per_model_cache,
            fused_layers=sum(m.fused_layers for m in per_model.values()),
            shed_deadline=sum(m.shed_deadline for m in per_model.values()),
            deadline_misses=sum(m.deadline_misses for m in per_model.values()),
            failed=sum(m.failed for m in per_model.values()),
            retries=sum(m.retries for m in per_model.values()),
            unavailable=sum(m.unavailable for m in per_model.values()),
            breaker_opens=sum(m.breaker_opens for m in per_model.values()),
            breakers={
                name: snap
                for name, srv in self._servers.items()
                if (snap := srv.breaker_snapshot()) is not None
            },
        )
