"""The synchronous shape-bucketed batching server.

Requests are single images.  The server groups pending requests by their
``(C, H, W)`` shape, and when a shape's queue reaches the current target
bucket size — or its oldest request has waited ``max_latency`` — it runs the
whole group as one batch, padded up to the smallest configured bucket size
that fits.  Because every (shape, bucket) pair owns a pre-built inference
:class:`~repro.backend.ModelPlan`, steady-state serving never builds a plan:
each batch runs entirely on plan-cache hits, which is exactly what the
single-flight cache guarantees to stay true under the optional background
worker thread.

Since the scheduling-core extraction this class is a *transport adapter*:
the thread/lock/condition plumbing lives here, but every policy decision is
delegated — admission to :class:`~repro.serve.sched.AdmissionPolicy`,
bucket triggering to :class:`~repro.serve.sched.BucketPolicy` (fixed at the
max bucket by default, arrival-rate adaptive with
``ServerConfig(adaptive_buckets=True)``), deadline shedding to
:class:`~repro.serve.sched.ShedPolicy` (``shed_policy="deadline"``), and
batch execution to the shared :class:`~repro.serve.engine.ModelExecutor`.
Default configuration reproduces the pre-refactor behaviour bit for bit.

Two driving modes:

- **synchronous** — call :meth:`Server.submit` and :meth:`Server.poll` /
  :meth:`Server.flush` yourself (what the benchmarks and tests do; fully
  deterministic with an injected clock);
- **threaded** — :meth:`Server.start` spawns a worker that flushes due
  buckets in the background while any number of client threads submit;
  :meth:`Server.wait_result` blocks until a request completes.

The asyncio transport over the same policies and engine is
:class:`~repro.serve.gateway.AsyncGateway`.
"""
from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

from repro.backend import plan_cache_owner_stats, plan_cache_stats
from repro.serve.engine import ModelExecutor, RequestFailed
from repro.serve.policy import ServerConfig, ServingPolicy
from repro.serve.sched import AdmissionPolicy, BucketPolicy, ShedPolicy


class QueueFull(RuntimeError):
    """Admission control rejected a submit: the pending queue is at capacity.

    Raised by :meth:`Server.submit` when ``ServerConfig.max_pending`` is set
    and already reached — the shed-on-overload alternative to letting an
    overloaded server's queue (and every request's latency) grow without
    bound.  Rejected requests are counted in ``ServingMetrics.rejected``.
    """


class RequestShed(RuntimeError):
    """The request was dropped by an explicit shed (``stop(drain=False)``).

    A shed request never executed; it is reported — via this exception from
    :meth:`Server.wait_result` or via :meth:`Server.was_shed` — rather than
    silently discarded, so no submitted request simply vanishes on shutdown.
    """


class DeadlineExceeded(RequestShed):
    """The request was shed because its latency budget was already blown.

    Raised (from :meth:`Server.wait_result`, or the gateway's ``submit``)
    for requests dropped by the ``deadline`` shed policy: their deadline
    passed while they were still queued, so executing them could only waste
    capacity that viable requests need.  Subclasses :class:`RequestShed` —
    existing "was it shed?" handling keeps working unchanged.
    """


class ModelUnavailable(RequestShed):
    """The model's circuit breaker is open: the request was shed at the door.

    Raised by :meth:`Server.submit` (and the gateway's ``submit``) while the
    per-model breaker is open — recent batches failed at a rate past the
    configured threshold, so new work is rejected *fast* instead of queuing
    behind a broken model and starving the shared pool.  The breaker
    half-opens after its cooldown and probes; a successful probe closes it
    and submits flow again.  Counted in ``ServingMetrics.unavailable``.
    """


class ResultTimeout(TimeoutError):
    """:meth:`Server.wait_result` gave up waiting.

    Carries the ``request_id``, the ``timeout`` waited, and the request's
    :class:`RequestStatus` at the moment of the timeout — so the caller can
    tell "still queued behind a slow batch" from "evicted unread" without a
    second round-trip.  The request itself stays accounted (it is not
    leaked from ``pending_count``; it may still complete later).
    """

    def __init__(self, request_id: int, timeout: float,
                 status: "RequestStatus") -> None:
        super().__init__(
            f"request {request_id} not completed in {timeout}s "
            f"(status: {status.value})"
        )
        self.request_id = request_id
        self.timeout = timeout
        self.status = status


class RequestStatus(str, Enum):
    """Lifecycle answer of :meth:`Server.status` — disambiguates the
    ``result() is None`` cases (still pending vs evicted unread)."""

    PENDING = "PENDING"    # queued or executing right now
    DONE = "DONE"          # completed, result retrievable
    SHED = "SHED"          # dropped unexecuted (shutdown or deadline shed)
    EVICTED = "EVICTED"    # completed but its unread result aged out
    FAILED = "FAILED"      # executed and failed (RequestFailed retrievable)


@dataclass
class Request:
    """One in-flight single-image inference request."""

    id: int
    image: np.ndarray            # (C, H, W)
    submitted_at: float
    deadline: float | None = None  # absolute clock reading; None = no SLO


@dataclass
class RequestResult:
    """Completed request: model output row + serving bookkeeping."""

    id: int
    output: np.ndarray           # (num_classes,)
    latency: float               # submit -> batch completion, seconds
    batch_requests: int          # real requests in the batch it rode in
    bucket_size: int             # planned (padded) batch size
    queue_wait: float = 0.0      # submit -> batch execution start, seconds


@dataclass
class ServingMetrics:
    """Aggregate serving statistics over the measurement window."""

    completed: int
    batches: int
    throughput: float            # completed requests / s of serving time
    latency_p50: float
    latency_p95: float
    latency_mean: float
    plan_cache_hit_rate: float   # hits / (hits + misses) during serving
    plan_builds: int             # plan-cache builds during serving (0 = warm)
    mean_batch_occupancy: float  # real requests per executed batch
    mean_bucket_fill: float      # real requests / padded bucket slots
    rejected: int = 0            # submits refused by admission control
    shed: int = 0                # pending requests dropped by stop(drain=False)
    exec_seconds_total: float = 0.0  # summed batch execution time (busy time)
    fused_layers: int = 0        # layers serving through fused epilogue plans
    shed_deadline: int = 0       # requests dropped with their budget blown
    deadline_misses: int = 0     # completed past their deadline
    deadline_miss_rate: float = 0.0  # misses / completions that had deadlines
    queue_wait_mean: float = 0.0  # submit -> execution start (the queue half
    queue_wait_p95: float = 0.0   # of latency; exec_mean is the other half)
    exec_mean: float = 0.0       # mean per-batch execution wall time
    bucket_target: int = 0       # current adaptive bucket target
    failed: int = 0              # requests failed with RequestFailed
    retries: int = 0             # batch forwards retried after transient faults
    isolated_batches: int = 0    # batches bisected to isolate a failure
    unavailable: int = 0         # submits shed with ModelUnavailable (breaker)
    degraded_plans: int = 0      # workloads demoted down the backend chain
    breaker_state: str = "disabled"  # closed / open / half_open / disabled
    breaker_opens: int = 0       # times the breaker tripped open

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


# ServerConfig moved to repro.serve.policy: the shared knobs now live on
# ServingPolicy and ServerConfig is a deprecated shim re-exported here for
# the one-release compatibility window.


class Server:
    """Shape-bucketed batching inference server over one model.

    Parameters
    ----------
    model:
        the (eval-mode) model every request runs through.
    input_shapes:
        per-sample ``(C, H, W)`` shapes to pre-build plans for.  Requests of
        other shapes still work — their plans are built on first sight and
        show up in the metrics as ``plan_builds`` (the cold path the
        pre-building exists to avoid).
    config:
        bucket sizes, flush deadline, admission bound and shed policy — a
        shared :class:`~repro.serve.policy.ServingPolicy` (the legacy
        :class:`~repro.serve.policy.ServerConfig` still works for one more
        release).
    clock:
        time source (injectable for deterministic tests).
    name:
        owner tag for shared-plan-cache accounting.  When set (the
        multi-model :class:`~repro.serve.router.Router` always sets it),
        every plan build and batch execution runs under
        :func:`repro.backend.plan_owner`, so the cache attributes this
        server's hits/misses/evictions to it and the metrics hit rate is
        computed from the per-owner counters instead of the global deltas.
    """

    def __init__(
        self,
        model,
        input_shapes: tuple | list = ((3, 32, 32),),
        config: ServingPolicy | None = None,
        clock: Callable[[], float] = time.perf_counter,
        name: str | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = ServerConfig.coerce(config)
        self.clock = clock
        self.sleep = sleep
        self.name = name
        self._engine = ModelExecutor(
            model, input_shapes=input_shapes,
            bucket_sizes=self.config.bucket_sizes, name=name,
            degrade_after=self.config.degrade_after,
        )
        self.model = self._engine.model
        self.fused_layers = self._engine.fused_layers
        self._plans = self._engine._plans           # legacy alias
        self._exec_lock = self._engine.exec_lock    # legacy alias
        # Policy objects from the scheduling core (transport-agnostic).
        self._admission = AdmissionPolicy(self.config.max_pending)
        self._buckets = BucketPolicy(
            self.config.bucket_sizes, self.config.max_latency,
            adaptive=self.config.adaptive_buckets,
        )
        self._shed_policy = ShedPolicy(self.config.shed_policy or "newest")
        self._ids = itertools.count()
        self._last_id = -1
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: dict[tuple, list[Request]] = {}
        self._pending_total = 0
        self._inflight: set[int] = set()  # popped from queue, batch executing
        self._results: OrderedDict[int, RequestResult] = OrderedDict()
        self._waiting: set[int] = set()  # ids with a blocked wait_result()
        self._shed_ids: set[int] = set()
        self._deadline_shed_ids: set[int] = set()  # subset of _shed_ids
        self._evicted_ids: set[int] = set()
        # Per-request terminal failures (RequestFailed), retained/trimmed
        # like results so wait_result can re-raise them.
        self._failed: OrderedDict[int, RequestFailed] = OrderedDict()
        self._breaker = self.config.make_breaker()
        self._worker: threading.Thread | None = None
        self._stopping = False
        self.reset_metrics()

    # -- metrics --------------------------------------------------------------

    def _cache_counters(self) -> tuple[int, int, int]:
        """(hits, misses, builds) attributed to this server.

        Named servers read the shared cache's per-owner counters — exact
        under any mix of cache clients (other servers, a trainer).
        Unnamed servers fall back to the process-global counters, which
        are only correct while this server is the dominant client.
        """
        if self.name is not None:
            acc = plan_cache_owner_stats().get(self.name)
            if acc is None:
                return (0, 0, 0)
            return (acc["hits"], acc["misses"], acc["builds"])
        base = plan_cache_stats()
        return (base["hits"], base["misses"], base["builds"])

    def reset_metrics(self) -> None:
        """Start a fresh measurement window (e.g. after warmup traffic)."""
        with self._lock:
            self._completed = 0
            self._rejected = 0
            self._shed = 0
            self._failed_count = 0
            self._retry_count = 0
            self._isolations = 0
            self._unavailable = 0
            self._shed_deadline = 0
            self._deadline_misses = 0
            self._deadline_total = 0  # completions that carried a deadline
            self._latencies: deque[float] = deque(maxlen=self.config.metrics_window)
            self._queue_waits: deque[float] = deque(
                maxlen=self.config.metrics_window
            )
            self._batch_records: deque[tuple[int, int]] = deque(  # (requests, bucket)
                maxlen=self.config.metrics_window
            )
            # Per-batch wall execution times (stage + forward), measured on
            # the real clock regardless of an injected test clock: the
            # router's cross-model overlap model consumes these.
            self._exec_seconds: deque[float] = deque(
                maxlen=self.config.metrics_window
            )
            self._window_started: float | None = None
            self._window_finished: float | None = None
            self._cache_base = self._cache_counters()

    def metrics(self) -> ServingMetrics:
        """Aggregate statistics since the last :meth:`reset_metrics`.

        ``completed``/``throughput`` count the whole window; latency
        percentiles and batch occupancy are over the most recent
        ``metrics_window`` completions.  For a *named* server,
        ``plan_cache_hit_rate`` and ``plan_builds`` come from the plan
        cache's per-owner counters and are exact under any mix of cache
        clients; for an unnamed server they are process-global deltas and
        attribute correctly only while this server is the cache's dominant
        client.  A ``clear_plan_cache()`` landing in the window zeroes the
        cache's counters, losing the pre-clear portion: attribution
        restarts from the clear (never negative deltas).
        """
        with self._lock:
            lat = sorted(self._latencies)
            waits = sorted(self._queue_waits)
            completed = self._completed
            cache = self._cache_counters()
            if any(now < base for now, base in zip(cache, self._cache_base)):
                # The cache was cleared mid-window: its counters restarted
                # from zero, so "since the clear" is all that is knowable.
                self._cache_base = (0, 0, 0)
            hits = cache[0] - self._cache_base[0]
            misses = cache[1] - self._cache_base[1]
            builds = cache[2] - self._cache_base[2]
            elapsed = 0.0
            if self._window_started is not None and self._window_finished is not None:
                elapsed = self._window_finished - self._window_started
            real = sum(n for n, _ in self._batch_records)
            padded = sum(b for _, b in self._batch_records)
            return ServingMetrics(
                completed=completed,
                batches=len(self._batch_records),
                throughput=completed / elapsed if elapsed > 0 else 0.0,
                latency_p50=_percentile(lat, 0.50),
                latency_p95=_percentile(lat, 0.95),
                latency_mean=sum(lat) / len(lat) if lat else 0.0,
                plan_cache_hit_rate=hits / (hits + misses) if hits + misses else 1.0,
                plan_builds=builds,
                mean_batch_occupancy=real / len(self._batch_records)
                if self._batch_records else 0.0,
                mean_bucket_fill=real / padded if padded else 0.0,
                rejected=self._rejected,
                shed=self._shed,
                exec_seconds_total=sum(self._exec_seconds),
                fused_layers=self.fused_layers,
                shed_deadline=self._shed_deadline,
                deadline_misses=self._deadline_misses,
                deadline_miss_rate=self._deadline_misses / self._deadline_total
                if self._deadline_total else 0.0,
                queue_wait_mean=sum(waits) / len(waits) if waits else 0.0,
                queue_wait_p95=_percentile(waits, 0.95),
                exec_mean=sum(self._exec_seconds) / len(self._exec_seconds)
                if self._exec_seconds else 0.0,
                bucket_target=self._buckets.target_bucket(),
                failed=self._failed_count,
                retries=self._retry_count,
                isolated_batches=self._isolations,
                unavailable=self._unavailable,
                degraded_plans=len(self._engine.degraded()),
                breaker_state=self._breaker.state if self._breaker else "disabled",
                breaker_opens=self._breaker.opens if self._breaker else 0,
            )

    def breaker_snapshot(self) -> dict | None:
        """The circuit breaker's state/transition snapshot (None = disabled)."""
        with self._lock:
            return self._breaker.snapshot() if self._breaker else None

    # -- request lifecycle ----------------------------------------------------

    def submit(self, image: np.ndarray, deadline: float | None = None) -> int:
        """Enqueue one ``(C, H, W)`` image; returns the request id.

        ``deadline`` is an absolute reading of this server's clock by which
        the request should complete; under ``shed_policy="deadline"`` a
        request still queued past it is shed (:class:`DeadlineExceeded`
        from :meth:`wait_result`), and completions past it count in
        ``ServingMetrics.deadline_misses`` either way.

        A bucket that reaches the current target size is flushed
        immediately (inline in synchronous mode, by the worker in threaded
        mode).  When ``max_pending`` is configured and the queue is at
        capacity the request is shed instead: :class:`QueueFull` is raised
        and the ``rejected`` counter increments (admission control).  Under
        the ``deadline`` shed policy, blown-budget victims are displaced
        first and the newcomer admitted into the freed slot.
        """
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 3:
            raise ValueError(f"expected one (C, H, W) image, got shape {image.shape}")
        shape = image.shape
        now = self.clock()
        run_shape = None
        with self._cond:
            if self._breaker is not None and not self._breaker.allow(now):
                self._unavailable += 1
                raise ModelUnavailable(
                    f"model {self.name or '<unnamed>'} is unavailable: circuit "
                    f"breaker open (error rate "
                    f"{self._breaker.error_rate():.0%} over recent batches)"
                )
            if self._admission.at_capacity(self._pending_total):
                if self._shed_policy.policy == "deadline":
                    self._shed_blown_locked(now)
                if self._admission.at_capacity(self._pending_total):
                    self._rejected += 1
                    raise QueueFull(
                        f"server queue at capacity ({self._pending_total} pending, "
                        f"max_pending={self.config.max_pending}); request shed"
                    )
            self._buckets.observe_arrival(now)
            # The id is allocated only after admission: every id this server
            # ever handed out names an accepted request, so status() is
            # well-defined over the whole id space.
            request = Request(id=next(self._ids), image=image,
                              submitted_at=now, deadline=deadline)
            self._last_id = request.id
            if self._window_started is None:
                self._window_started = now
            queue = self._pending.setdefault(shape, [])
            queue.append(request)
            self._pending_total += 1
            if len(queue) >= self._buckets.target_bucket():
                if self._worker is None:
                    run_shape = shape
                else:
                    self._cond.notify_all()
        if run_shape is not None:
            self._flush_shape(run_shape)
        return request.id

    def pending_count(self) -> int:
        """Requests submitted but not yet executed (the admission quantity)."""
        with self._lock:
            return self._pending_total

    def window_span(self) -> tuple[float | None, float | None]:
        """(first submit, last completion) clock readings of this window."""
        with self._lock:
            return self._window_started, self._window_finished

    def exec_seconds(self) -> list[float]:
        """Per-batch execution wall times of this window (most recent
        ``metrics_window``); the router's overlap model consumes these."""
        with self._lock:
            return list(self._exec_seconds)

    def poll(self, now: float | None = None) -> int:
        """Flush every bucket whose oldest request has exceeded the deadline
        (and any full bucket); returns the number of batches executed.

        Under ``shed_policy="deadline"``, queued requests whose own deadline
        already passed are shed here first — they could not complete in
        time, so they must not consume a batch slot."""
        now = self.clock() if now is None else now
        due = []
        with self._cond:
            if self._shed_policy.policy == "deadline":
                self._shed_blown_locked(now)
            target = self._buckets.target_bucket()
            for shape, queue in self._pending.items():
                if not queue:
                    continue
                if (
                    len(queue) >= target
                    or now - queue[0].submitted_at >= self.config.max_latency
                ):
                    due.append(shape)
        # Drain: a due queue's overdue head batches with whatever is behind
        # it anyway, so the sub-bucket remainder must not wait another cycle.
        return sum(self._flush_shape(shape, drain=True) for shape in due)

    def flush(self) -> int:
        """Run every pending request regardless of deadlines."""
        with self._lock:
            due = [shape for shape, queue in self._pending.items() if queue]
        return sum(self._flush_shape(shape, drain=True) for shape in due)

    def result(self, request_id: int) -> RequestResult | None:
        """The completed result for a request id, or ``None`` if it is still
        pending (or was evicted unread past ``result_capacity``) — use
        :meth:`status` to tell those apart."""
        with self._lock:
            return self._results.get(request_id)

    def status(self, request_id: int) -> RequestStatus:
        """Lifecycle state of a request id this server handed out.

        ``DONE`` — completed, :meth:`result` returns it; ``FAILED`` —
        executed and failed (:meth:`wait_result` raises its
        :class:`~repro.serve.engine.RequestFailed`); ``PENDING`` — queued
        or executing right now; ``SHED`` — dropped unexecuted (shutdown
        shed or deadline shed); ``EVICTED`` — completed but its unread
        result aged out past ``result_capacity`` (or its shed record was
        trimmed).  Raises :class:`KeyError` for an id this server never
        issued.
        """
        with self._lock:
            return self._status_locked(request_id)

    def _status_locked(self, request_id: int) -> RequestStatus:
        if request_id in self._results:
            return RequestStatus.DONE
        if request_id in self._failed:
            return RequestStatus.FAILED
        if request_id in self._shed_ids:
            return RequestStatus.SHED
        if request_id in self._inflight:
            return RequestStatus.PENDING
        for queue in self._pending.values():
            for request in queue:
                if request.id == request_id:
                    return RequestStatus.PENDING
        if request_id in self._evicted_ids or 0 <= request_id <= self._last_id:
            # Every issued id was accepted (allocation happens after
            # admission), so an issued-but-untracked id can only have
            # aged out of the results/shed retention bounds.
            return RequestStatus.EVICTED
        raise KeyError(f"request id {request_id} was never issued by this server")

    def failure(self, request_id: int) -> RequestFailed | None:
        """The request's :class:`RequestFailed`, or ``None`` if it did not fail."""
        with self._lock:
            return self._failed.get(request_id)

    def wait_result(self, request_id: int, timeout: float = 10.0) -> RequestResult:
        """Block until a request completes (threaded mode).

        Results with an active waiter are exempt from ``result_capacity``
        eviction.  Register the wait before or soon after submitting: a
        result that went unread past ``result_capacity`` completions
        *before* the waiter arrived has been evicted and times out here.
        Raises :class:`DeadlineExceeded` for deadline-shed requests,
        :class:`RequestShed` for shutdown-shed ones,
        :class:`~repro.serve.engine.RequestFailed` for requests whose
        execution failed, and :class:`ResultTimeout` (a ``TimeoutError``
        carrying the request's :meth:`status`) when the wait gives up.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            self._waiting.add(request_id)
            try:
                while request_id not in self._results:
                    if request_id in self._failed:
                        raise self._failed[request_id]
                    if request_id in self._shed_ids:
                        if request_id in self._deadline_shed_ids:
                            raise DeadlineExceeded(
                                f"request {request_id} was shed: its deadline "
                                f"passed while it was still queued"
                            )
                        raise RequestShed(
                            f"request {request_id} was shed on shutdown before executing"
                        )
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ResultTimeout(
                            request_id, timeout, self._status_locked(request_id)
                        )
                    self._cond.wait(remaining)
                return self._results[request_id]
            finally:
                self._waiting.discard(request_id)

    def was_shed(self, request_id: int) -> bool:
        """Whether a request was dropped unexecuted (shutdown or deadline shed)."""
        with self._lock:
            return request_id in self._shed_ids

    # -- batch execution ------------------------------------------------------

    def _plan_for(self, shape: tuple, bucket: int):
        return self._engine.plan_for(shape, bucket)

    def _flush_shape(self, shape: tuple, drain: bool = False) -> int:
        """Run one shape's queue as batches; returns batches run.

        ``drain=False`` (the full-bucket fast path off ``submit``) stops
        once the queue cannot fill the current target bucket — sub-target
        remainders wait for their deadline.  ``drain=True``
        (``poll``/``flush``) empties the queue in max-bucket batches,
        remainder included.
        """
        batches = 0
        while True:
            with self._lock:
                queue = self._pending.get(shape)
                target = self._buckets.target_bucket()
                if not queue or (not drain and len(queue) < target):
                    return batches
                take = min(len(queue), self.config.max_bucket if drain else target)
                requests = queue[:take]
                del queue[:take]
                self._pending_total -= take
                self._inflight.update(r.id for r in requests)
            self._run_batch(shape, requests)
            batches += 1

    def _run_batch(self, shape: tuple, requests: list[Request]) -> None:
        n = len(requests)
        bucket = self.config.bucket_for(n)
        rows, errors, stats, timing = self._engine.run_resilient(
            [r.image for r in requests], bucket, clock=self.clock,
            request_ids=[r.id for r in requests],
            retry=self.config.retry, sleep=self.sleep,
            isolate=self.config.isolate_failures,
        )
        done = timing.finished
        completed = 0
        with self._cond:
            for i, request in enumerate(requests):
                self._inflight.discard(request.id)
                if i in errors:
                    # Terminal per-request failure: accounted (never silent),
                    # retrievable, and re-raised by wait_result.
                    self._failed[request.id] = errors[i]
                    self._failed_count += 1
                    if self._breaker is not None:
                        self._breaker.record(False, done)
                    continue
                completed += 1
                self._results[request.id] = RequestResult(
                    id=request.id,
                    output=rows[i].copy(),
                    latency=done - request.submitted_at,
                    batch_requests=n,
                    bucket_size=bucket,
                    queue_wait=timing.started - request.submitted_at,
                )
                self._latencies.append(done - request.submitted_at)
                self._queue_waits.append(timing.started - request.submitted_at)
                if self._breaker is not None:
                    self._breaker.record(True, done)
                if request.deadline is not None:
                    self._deadline_total += 1
                    # Finishing exactly at the deadline meets the SLO;
                    # only strictly-later completions are misses.
                    if done > request.deadline:
                        self._deadline_misses += 1
            self._retry_count += stats.retries
            if stats.splits:
                self._isolations += 1
            if len(self._failed) > self.config.result_capacity:
                # Same retention bound as unread results.
                while len(self._failed) > self.config.result_capacity:
                    rid, _ = self._failed.popitem(last=False)
                    self._evicted_ids.add(rid)
            self._completed += completed
            # Bound unread-result retention: a long-running server must not
            # accumulate output rows forever if clients never fetch them.
            # Results someone is blocked in wait_result() on are kept.
            if len(self._results) > self.config.result_capacity:
                for rid in list(self._results):
                    if len(self._results) <= self.config.result_capacity:
                        break
                    if rid not in self._waiting:
                        del self._results[rid]
                        self._evicted_ids.add(rid)
                if len(self._evicted_ids) > self.config.result_capacity:
                    self._evicted_ids = set(
                        sorted(self._evicted_ids)[-self.config.result_capacity:]
                    )
            self._batch_records.append((n, bucket))
            self._exec_seconds.append(timing.exec_seconds)
            self._window_finished = done
            self._cond.notify_all()

    # -- shedding -------------------------------------------------------------

    def _shed_blown_locked(self, now: float) -> int:
        """Drop queued requests whose deadline already passed (lock held).

        The shed is reported, never silent: victims land in ``_shed_ids``
        (so :meth:`was_shed`/:meth:`status` see them) and in the deadline
        subset (so :meth:`wait_result` raises :class:`DeadlineExceeded`),
        and blocked waiters are woken.
        """
        victims: list[Request] = []
        for queue in self._pending.values():
            keep = [r for r in queue if not self._shed_policy.blown(r, now)]
            if len(keep) != len(queue):
                victims.extend(r for r in queue if self._shed_policy.blown(r, now))
                queue[:] = keep
        if not victims:
            return 0
        for request in victims:
            self._shed_ids.add(request.id)
            self._deadline_shed_ids.add(request.id)
        self._shed_deadline += len(victims)
        self._pending_total -= len(victims)
        self._trim_shed_ids_locked()
        self._cond.notify_all()  # wake waiters so they see DeadlineExceeded
        return len(victims)

    def _trim_shed_ids_locked(self) -> None:
        # Same retention bound as unread results: repeated shed cycles on a
        # long-lived server must not grow the sets forever.  Request ids are
        # monotonic, so "oldest" is "smallest".
        if len(self._shed_ids) > self.config.result_capacity:
            self._shed_ids = set(
                sorted(self._shed_ids)[-self.config.result_capacity:]
            )
            self._deadline_shed_ids &= self._shed_ids

    # -- threaded mode --------------------------------------------------------

    def start(self) -> "Server":
        """Spawn the background worker that flushes due buckets."""
        if self._worker is not None:
            raise RuntimeError("server already started")
        self._stopping = False
        self._worker = threading.Thread(target=self._worker_loop, daemon=True)
        self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down, guaranteeing no submitted request is silently dropped.

        ``drain=True`` joins the worker and then flushes: every request
        pending at (or racing) shutdown completes and is retrievable via
        :meth:`result`.  ``drain=False`` sheds instead of executing: pending
        requests are removed, counted in ``ServingMetrics.shed``, and
        reported — :meth:`was_shed` returns ``True`` and any
        :meth:`wait_result` on them raises :class:`RequestShed` immediately.

        The worker handle is claimed under the lock *before* the final
        drain/shed, so a concurrent ``submit`` either sees no worker (and
        applies synchronous-mode semantics itself) or enqueued early enough
        for the drain/shed pass here to account for it.  Safe to call twice
        and without :meth:`start` (synchronous mode): it just drains/sheds.
        """
        with self._cond:
            worker, self._worker = self._worker, None
            self._stopping = True
            self._cond.notify_all()
        if worker is not None:
            worker.join()
        if drain:
            self.flush()
        else:
            self._shed_pending()

    def _shed_pending(self) -> None:
        """Drop every queued request, reporting each as shed."""
        with self._cond:
            for queue in self._pending.values():
                for request in queue:
                    self._shed_ids.add(request.id)
                    self._shed += 1
                queue.clear()
            self._pending_total = 0
            self._trim_shed_ids_locked()
            self._cond.notify_all()  # wake waiters so they see RequestShed

    def _worker_loop(self) -> None:
        interval = self.config.worker_poll_interval or self.config.max_latency / 4
        while True:
            with self._cond:
                if self._stopping:
                    return
                self._cond.wait(interval)
            self.poll()
