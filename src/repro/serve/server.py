"""The shape-bucketed batching server.

Requests are single images.  The server groups pending requests by their
``(C, H, W)`` shape, and when a shape's queue reaches the largest configured
bucket size — or its oldest request has waited ``max_latency`` — it runs the
whole group as one batch, padded up to the smallest configured bucket size
that fits.  Because every (shape, bucket) pair owns a pre-built inference
:class:`~repro.backend.ModelPlan`, steady-state serving never builds a plan:
each batch runs entirely on plan-cache hits, which is exactly what the
single-flight cache guarantees to stay true under the optional background
worker thread.

Two driving modes:

- **synchronous** — call :meth:`Server.submit` and :meth:`Server.poll` /
  :meth:`Server.flush` yourself (what the benchmarks and tests do; fully
  deterministic with an injected clock);
- **threaded** — :meth:`Server.start` spawns a worker that flushes due
  buckets in the background while any number of client threads submit;
  :meth:`Server.wait_result` blocks until a request completes.
"""
from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.backend import ModelPlan, plan_cache_stats
from repro.tensor import Tensor, no_grad


@dataclass
class Request:
    """One in-flight single-image inference request."""

    id: int
    image: np.ndarray            # (C, H, W)
    submitted_at: float


@dataclass
class RequestResult:
    """Completed request: model output row + serving bookkeeping."""

    id: int
    output: np.ndarray           # (num_classes,)
    latency: float               # submit -> batch completion, seconds
    batch_requests: int          # real requests in the batch it rode in
    bucket_size: int             # planned (padded) batch size


@dataclass
class ServingMetrics:
    """Aggregate serving statistics over the measurement window."""

    completed: int
    batches: int
    throughput: float            # completed requests / s of serving time
    latency_p50: float
    latency_p95: float
    latency_mean: float
    plan_cache_hit_rate: float   # hits / (hits + misses) during serving
    plan_builds: int             # plan-cache builds during serving (0 = warm)
    mean_batch_occupancy: float  # real requests per executed batch
    mean_bucket_fill: float      # real requests / padded bucket slots

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


@dataclass
class ServerConfig:
    """Bucket/flush knobs of the serving front-end."""

    bucket_sizes: tuple[int, ...] = (1, 2, 4, 8)
    max_latency: float = 0.01    # seconds a request may wait for batch-mates
    worker_poll_interval: float | None = None  # thread mode; default latency/4
    # Retention bounds so a long-running server's memory stays flat: unread
    # results are evicted FIFO past result_capacity, and latency percentiles
    # are computed over the most recent metrics_window completions.
    result_capacity: int = 65536
    metrics_window: int = 65536

    def __post_init__(self) -> None:
        if not self.bucket_sizes or any(b < 1 for b in self.bucket_sizes):
            raise ValueError(f"bucket_sizes must be positive, got {self.bucket_sizes}")
        self.bucket_sizes = tuple(sorted(set(self.bucket_sizes)))
        if self.max_latency <= 0:
            raise ValueError(f"max_latency must be positive, got {self.max_latency}")
        if self.result_capacity < 1 or self.metrics_window < 1:
            raise ValueError("result_capacity and metrics_window must be >= 1")

    @property
    def max_bucket(self) -> int:
        return self.bucket_sizes[-1]

    def bucket_for(self, n: int) -> int:
        """Smallest configured bucket that fits ``n`` requests."""
        for size in self.bucket_sizes:
            if n <= size:
                return size
        return self.max_bucket


class Server:
    """Shape-bucketed batching inference server over one model.

    Parameters
    ----------
    model:
        the (eval-mode) model every request runs through.
    input_shapes:
        per-sample ``(C, H, W)`` shapes to pre-build plans for.  Requests of
        other shapes still work — their plans are built on first sight and
        show up in the metrics as ``plan_builds`` (the cold path the
        pre-building exists to avoid).
    config:
        bucket sizes and flush deadline.
    clock:
        time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        model,
        input_shapes: tuple | list = ((3, 32, 32),),
        config: ServerConfig | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.model = model.eval()
        self.config = config or ServerConfig()
        self.clock = clock
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._exec_lock = threading.Lock()
        self._pending: dict[tuple, list[Request]] = {}
        self._results: OrderedDict[int, RequestResult] = OrderedDict()
        self._waiting: set[int] = set()  # ids with a blocked wait_result()
        self._plans: dict[tuple, ModelPlan] = {}
        self._worker: threading.Thread | None = None
        self._stopping = False

        for shape in input_shapes:
            for bucket in self.config.bucket_sizes:
                self._plans[(tuple(shape), bucket)] = ModelPlan(
                    self.model, tuple(shape), batch_size=bucket,
                    include_backward=False,
                )
        self.reset_metrics()

    # -- metrics --------------------------------------------------------------

    def reset_metrics(self) -> None:
        """Start a fresh measurement window (e.g. after warmup traffic)."""
        with self._lock:
            self._completed = 0
            self._latencies: deque[float] = deque(maxlen=self.config.metrics_window)
            self._batch_records: deque[tuple[int, int]] = deque(  # (requests, bucket)
                maxlen=self.config.metrics_window
            )
            self._window_started: float | None = None
            self._window_finished: float | None = None
            base = plan_cache_stats()
            self._cache_base = (base["hits"], base["misses"], base["builds"])

    def metrics(self) -> ServingMetrics:
        """Aggregate statistics since the last :meth:`reset_metrics`.

        ``completed``/``throughput`` count the whole window; latency
        percentiles and batch occupancy are over the most recent
        ``metrics_window`` completions.  ``plan_cache_hit_rate`` and
        ``plan_builds`` are deltas of the *process-global* plan cache, so
        they attribute cache traffic correctly only while this server is
        the cache's dominant client (a concurrent trainer, second server,
        or ``clear_plan_cache()`` call lands in the same window).
        """
        with self._lock:
            lat = sorted(self._latencies)
            completed = self._completed
            cache = plan_cache_stats()
            hits = cache["hits"] - self._cache_base[0]
            misses = cache["misses"] - self._cache_base[1]
            builds = cache["builds"] - self._cache_base[2]
            elapsed = 0.0
            if self._window_started is not None and self._window_finished is not None:
                elapsed = self._window_finished - self._window_started
            real = sum(n for n, _ in self._batch_records)
            padded = sum(b for _, b in self._batch_records)
            return ServingMetrics(
                completed=completed,
                batches=len(self._batch_records),
                throughput=completed / elapsed if elapsed > 0 else 0.0,
                latency_p50=_percentile(lat, 0.50),
                latency_p95=_percentile(lat, 0.95),
                latency_mean=sum(lat) / len(lat) if lat else 0.0,
                plan_cache_hit_rate=hits / (hits + misses) if hits + misses else 1.0,
                plan_builds=builds,
                mean_batch_occupancy=real / len(self._batch_records)
                if self._batch_records else 0.0,
                mean_bucket_fill=real / padded if padded else 0.0,
            )

    # -- request lifecycle ----------------------------------------------------

    def submit(self, image: np.ndarray) -> int:
        """Enqueue one ``(C, H, W)`` image; returns the request id.

        A bucket that reaches the largest configured size is flushed
        immediately (inline in synchronous mode, by the worker in threaded
        mode).
        """
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 3:
            raise ValueError(f"expected one (C, H, W) image, got shape {image.shape}")
        shape = image.shape
        now = self.clock()
        request = Request(id=next(self._ids), image=image, submitted_at=now)
        run_shape = None
        with self._cond:
            if self._window_started is None:
                self._window_started = now
            queue = self._pending.setdefault(shape, [])
            queue.append(request)
            if len(queue) >= self.config.max_bucket:
                if self._worker is None:
                    run_shape = shape
                else:
                    self._cond.notify_all()
        if run_shape is not None:
            self._flush_shape(run_shape)
        return request.id

    def poll(self, now: float | None = None) -> int:
        """Flush every bucket whose oldest request has exceeded the deadline
        (and any full bucket); returns the number of batches executed."""
        now = self.clock() if now is None else now
        due = []
        with self._lock:
            for shape, queue in self._pending.items():
                if not queue:
                    continue
                if (
                    len(queue) >= self.config.max_bucket
                    or now - queue[0].submitted_at >= self.config.max_latency
                ):
                    due.append(shape)
        # Drain: a due queue's overdue head batches with whatever is behind
        # it anyway, so the sub-bucket remainder must not wait another cycle.
        return sum(self._flush_shape(shape, drain=True) for shape in due)

    def flush(self) -> int:
        """Run every pending request regardless of deadlines."""
        with self._lock:
            due = [shape for shape, queue in self._pending.items() if queue]
        return sum(self._flush_shape(shape, drain=True) for shape in due)

    def result(self, request_id: int) -> RequestResult | None:
        """The completed result for a request id, or ``None`` if it is still
        pending (or was evicted unread past ``result_capacity``)."""
        with self._lock:
            return self._results.get(request_id)

    def wait_result(self, request_id: int, timeout: float = 10.0) -> RequestResult:
        """Block until a request completes (threaded mode).

        Results with an active waiter are exempt from ``result_capacity``
        eviction.  Register the wait before or soon after submitting: a
        result that went unread past ``result_capacity`` completions
        *before* the waiter arrived has been evicted and times out here.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            self._waiting.add(request_id)
            try:
                while request_id not in self._results:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"request {request_id} not completed in {timeout}s"
                        )
                    self._cond.wait(remaining)
                return self._results[request_id]
            finally:
                self._waiting.discard(request_id)

    # -- batch execution ------------------------------------------------------

    def _plan_for(self, shape: tuple, bucket: int) -> ModelPlan:
        key = (tuple(shape), bucket)
        plan = self._plans.get(key)
        if plan is None:
            # Cold path: unseen shape/bucket.  Visible in metrics via the
            # plan-cache build counter.  The build runs probe forwards (and
            # registers hooks) on the shared model, so it must not overlap
            # an in-flight batch: take the execution lock.
            with self._exec_lock:
                with self._lock:
                    plan = self._plans.get(key)
                if plan is None:
                    plan = ModelPlan(self.model, tuple(shape), batch_size=bucket,
                                     include_backward=False)
                    with self._lock:
                        self._plans.setdefault(key, plan)
                        plan = self._plans[key]
        return plan

    def _flush_shape(self, shape: tuple, drain: bool = False) -> int:
        """Run one shape's queue as max-size batches; returns batches run.

        ``drain=False`` (the full-bucket fast path off ``submit``) stops once
        no full bucket remains — sub-bucket remainders wait for their
        deadline.  ``drain=True`` (``poll``/``flush``) empties the queue,
        remainder included.
        """
        batches = 0
        while True:
            with self._lock:
                queue = self._pending.get(shape)
                if not queue or (not drain and len(queue) < self.config.max_bucket):
                    return batches
                take = min(len(queue), self.config.max_bucket)
                requests = queue[:take]
                del queue[:take]
            self._run_batch(shape, requests)
            batches += 1

    def _run_batch(self, shape: tuple, requests: list[Request]) -> None:
        n = len(requests)
        bucket = self.config.bucket_for(n)
        plan = self._plan_for(shape, bucket)
        with self._exec_lock:
            batch = plan.stage_batch(np.stack([r.image for r in requests]))
            with no_grad():
                out = self.model(Tensor(batch)).data
            done = self.clock()
        with self._cond:
            for i, request in enumerate(requests):
                self._results[request.id] = RequestResult(
                    id=request.id,
                    output=out[i].copy(),
                    latency=done - request.submitted_at,
                    batch_requests=n,
                    bucket_size=bucket,
                )
                self._latencies.append(done - request.submitted_at)
            self._completed += n
            # Bound unread-result retention: a long-running server must not
            # accumulate output rows forever if clients never fetch them.
            # Results someone is blocked in wait_result() on are kept.
            if len(self._results) > self.config.result_capacity:
                for rid in list(self._results):
                    if len(self._results) <= self.config.result_capacity:
                        break
                    if rid not in self._waiting:
                        del self._results[rid]
            self._batch_records.append((n, bucket))
            self._window_finished = done
            self._cond.notify_all()

    # -- threaded mode --------------------------------------------------------

    def start(self) -> "Server":
        """Spawn the background worker that flushes due buckets."""
        if self._worker is not None:
            raise RuntimeError("server already started")
        self._stopping = False
        self._worker = threading.Thread(target=self._worker_loop, daemon=True)
        self._worker.start()
        return self

    def stop(self) -> None:
        """Drain all pending requests and join the worker."""
        if self._worker is None:
            return
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        self._worker.join()
        self._worker = None
        self.flush()

    def _worker_loop(self) -> None:
        interval = self.config.worker_poll_interval or self.config.max_latency / 4
        while True:
            with self._cond:
                if self._stopping:
                    return
                self._cond.wait(interval)
            self.poll()
