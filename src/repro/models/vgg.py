"""VGG16 / VGG19 (CIFAR-style, batch-norm variant).

Origin form stacks standard 3x3 convolutions; factorized (DSXplore) form
replaces every standard conv except the RGB stem with a DW+{PW,GPW,SCC}
block — the paper's conversion rule for linearly-stacked CNNs.
"""
from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.blocks import make_separable_block
from repro.tensor import Tensor

# Channel plans; "M" is a 2x2 max-pool.
VGG_PLANS: dict[str, list] = {
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
              512, 512, 512, "M", 512, 512, 512, "M"],
    "vgg19": [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
              512, 512, 512, 512, "M", 512, 512, 512, 512, "M"],
}


def scale_width(channels: int, width_mult: float, divisor: int = 8) -> int:
    """Scale a channel count, keeping it a positive multiple of ``divisor``
    so every cg in {1,2,4,8} stays valid on reduced models."""
    if width_mult == 1.0:
        return channels
    return max(divisor, int(round(channels * width_mult / divisor)) * divisor)


class VGG(nn.Module):
    """VGG backbone + global-average-pool classifier head."""

    def __init__(
        self,
        plan: list,
        num_classes: int = 10,
        in_channels: int = 3,
        scheme: str | None = None,
        cg: int = 2,
        co: float = 0.5,
        width_mult: float = 1.0,
        impl: str = "dsxplore",
        backend: str = "default",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        layers: list[nn.Module] = []
        c_in = in_channels
        first_conv = True
        for item in plan:
            if item == "M":
                layers.append(nn.MaxPool2d(2, backend=backend))
                continue
            c_out = scale_width(int(item), width_mult)
            if scheme is None or first_conv:
                layers.append(nn.Conv2d(c_in, c_out, 3, padding=1, bias=False,
                                        backend=backend, rng=rng))
                layers.append(nn.BatchNorm2d(c_out))
                layers.append(nn.ReLU())
            else:
                layers.append(
                    make_separable_block(
                        c_in, c_out, scheme=scheme, cg=cg, co=co, impl=impl,
                        backend=backend, rng=rng
                    )
                )
            first_conv = False
            c_in = c_out
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(c_in, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.pool(self.features(x)))


def build_vgg(
    depth: str = "vgg16",
    num_classes: int = 10,
    in_channels: int = 3,
    scheme: str | None = None,
    cg: int = 2,
    co: float = 0.5,
    width_mult: float = 1.0,
    impl: str = "dsxplore",
    backend: str = "default",
    rng: np.random.Generator | None = None,
) -> VGG:
    if depth not in VGG_PLANS:
        raise ValueError(f"unknown VGG depth {depth!r}; available: {sorted(VGG_PLANS)}")
    return VGG(
        VGG_PLANS[depth],
        num_classes=num_classes,
        in_channels=in_channels,
        scheme=scheme,
        cg=cg,
        co=co,
        width_mult=width_mult,
        impl=impl,
        backend=backend,
        rng=rng,
    )
