"""ResNet18 (BasicBlock) / ResNet50 (Bottleneck), CIFAR- and ImageNet-style.

Factorized (DSXplore) form follows the paper's rule for residual CNNs: only
the standard 3x3 convolutions inside blocks are replaced with DW+{PW,GPW,SCC}
blocks; the already-lightweight 1x1 bottleneck and downsample convolutions
are kept (Section V-C: "these blocks include additional convolutions that
are already lightweight ... and no need to be replaced").
"""
from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.blocks import make_separable_block
from repro.models.vgg import scale_width
from repro.tensor import Tensor


def _conv3x3(
    c_in: int,
    c_out: int,
    stride: int,
    scheme: str | None,
    cg: int,
    co: float,
    impl: str,
    final_act: bool,
    backend: str,
    rng: np.random.Generator | None,
) -> nn.Module:
    """Standard conv3x3+BN (+ReLU) or its DW+X factorized replacement."""
    if scheme is None:
        mods: list[nn.Module] = [
            nn.Conv2d(c_in, c_out, 3, stride=stride, padding=1, bias=False,
                      backend=backend, rng=rng),
            nn.BatchNorm2d(c_out),
        ]
        if final_act:
            mods.append(nn.ReLU())
        return nn.Sequential(*mods)
    return make_separable_block(
        c_in, c_out, stride=stride, scheme=scheme, cg=cg, co=co,
        impl=impl, final_act=final_act, backend=backend, rng=rng,
    )


class BasicBlock(nn.Module):
    """Two 3x3 convs + identity/1x1-projection shortcut (ResNet18/34)."""

    expansion = 1

    def __init__(
        self,
        c_in: int,
        c_out: int,
        stride: int = 1,
        scheme: str | None = None,
        cg: int = 2,
        co: float = 0.5,
        impl: str = "dsxplore",
        backend: str = "default",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.conv1 = _conv3x3(c_in, c_out, stride, scheme, cg, co, impl, True, backend, rng)
        self.conv2 = _conv3x3(c_out, c_out, 1, scheme, cg, co, impl, False, backend, rng)
        if stride != 1 or c_in != c_out:
            self.shortcut = nn.Sequential(
                nn.Conv2d(c_in, c_out, 1, stride=stride, bias=False,
                          backend=backend, rng=rng),
                nn.BatchNorm2d(c_out),
            )
        else:
            self.shortcut = nn.Identity()
        self.act = nn.ReLU()

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.conv2(self.conv1(x)) + self.shortcut(x))


class Bottleneck(nn.Module):
    """1x1 reduce + 3x3 + 1x1 expand (ResNet50+).  Only the middle 3x3 is
    factorized; the dual PW convolutions stay (paper Section V-C)."""

    expansion = 4

    def __init__(
        self,
        c_in: int,
        width: int,
        stride: int = 1,
        scheme: str | None = None,
        cg: int = 2,
        co: float = 0.5,
        impl: str = "dsxplore",
        backend: str = "default",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        c_out = width * self.expansion
        self.reduce = nn.Sequential(
            nn.Conv2d(c_in, width, 1, bias=False, backend=backend, rng=rng),
            nn.BatchNorm2d(width),
            nn.ReLU(),
        )
        self.conv3x3 = _conv3x3(width, width, stride, scheme, cg, co, impl, True, backend, rng)
        self.expand = nn.Sequential(
            nn.Conv2d(width, c_out, 1, bias=False, backend=backend, rng=rng),
            nn.BatchNorm2d(c_out),
        )
        if stride != 1 or c_in != c_out:
            self.shortcut = nn.Sequential(
                nn.Conv2d(c_in, c_out, 1, stride=stride, bias=False,
                          backend=backend, rng=rng),
                nn.BatchNorm2d(c_out),
            )
        else:
            self.shortcut = nn.Identity()
        self.act = nn.ReLU()

    def forward(self, x: Tensor) -> Tensor:
        out = self.expand(self.conv3x3(self.reduce(x)))
        return self.act(out + self.shortcut(x))


RESNET_PLANS = {
    "resnet18": (BasicBlock, [2, 2, 2, 2]),
    "resnet50": (Bottleneck, [3, 4, 6, 3]),
}


class ResNet(nn.Module):
    def __init__(
        self,
        block: type,
        layers: list[int],
        num_classes: int = 10,
        in_channels: int = 3,
        scheme: str | None = None,
        cg: int = 2,
        co: float = 0.5,
        width_mult: float = 1.0,
        imagenet_stem: bool = False,
        impl: str = "dsxplore",
        stage_blocks: list[int] | None = None,
        backend: str = "default",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if stage_blocks is not None:
            # Depth-reduced variant for CPU-scale experiments.
            if len(stage_blocks) > len(layers) or any(b < 1 for b in stage_blocks):
                raise ValueError(
                    f"stage_blocks must be <= {len(layers)} positive stage sizes, "
                    f"got {stage_blocks}"
                )
            layers = list(stage_blocks)
        base = scale_width(64, width_mult)
        if imagenet_stem:
            self.stem = nn.Sequential(
                nn.Conv2d(in_channels, base, 7, stride=2, padding=3, bias=False,
                          backend=backend, rng=rng),
                nn.BatchNorm2d(base),
                nn.ReLU(),
                nn.MaxPool2d(3, stride=2, padding=1, backend=backend),
            )
        else:
            self.stem = nn.Sequential(
                nn.Conv2d(in_channels, base, 3, padding=1, bias=False,
                          backend=backend, rng=rng),
                nn.BatchNorm2d(base),
                nn.ReLU(),
            )
        kwargs = dict(scheme=scheme, cg=cg, co=co, impl=impl, backend=backend, rng=rng)
        stages = []
        c_in = base
        for i, n_blocks in enumerate(layers):
            width = scale_width(64 * (2**i), width_mult)
            stride = 1 if i == 0 else 2
            blocks = []
            for b in range(n_blocks):
                blocks.append(block(c_in, width, stride=stride if b == 0 else 1, **kwargs))
                c_in = width * block.expansion
            stages.append(nn.Sequential(*blocks))
        self.stages = nn.Sequential(*stages)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(c_in, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.pool(self.stages(self.stem(x))))


def build_resnet(
    depth: str = "resnet18",
    num_classes: int = 10,
    in_channels: int = 3,
    scheme: str | None = None,
    cg: int = 2,
    co: float = 0.5,
    width_mult: float = 1.0,
    imagenet_stem: bool = False,
    impl: str = "dsxplore",
    stage_blocks: list[int] | None = None,
    backend: str = "default",
    rng: np.random.Generator | None = None,
) -> ResNet:
    if depth not in RESNET_PLANS:
        raise ValueError(f"unknown ResNet depth {depth!r}; available: {sorted(RESNET_PLANS)}")
    block, layers = RESNET_PLANS[depth]
    return ResNet(
        block,
        layers,
        num_classes=num_classes,
        in_channels=in_channels,
        scheme=scheme,
        cg=cg,
        co=co,
        width_mult=width_mult,
        imagenet_stem=imagenet_stem,
        impl=impl,
        stage_blocks=stage_blocks,
        backend=backend,
        rng=rng,
    )
