"""CNN model zoo: the five architectures of the paper's evaluation
(VGG16/19, MobileNet, ResNet18/50), each buildable in *origin* form
(standard convolutions) or *DSXplore* form (DW + {PW, GPW, SCC} blocks).

``width_mult`` produces reduced-width variants of the same architecture for
CPU-scale training runs; ``width_mult=1.0`` gives the paper's full-size
models for exact FLOPs/params accounting (see DESIGN.md section 2).
"""
from repro.models.registry import (
    MODEL_BUILDERS,
    available_models,
    build_model,
    build_serving_model,
)
from repro.models.vgg import VGG, build_vgg
from repro.models.resnet import ResNet, build_resnet
from repro.models.mobilenet import MobileNet, build_mobilenet

__all__ = [
    "build_model",
    "build_serving_model",
    "available_models",
    "MODEL_BUILDERS",
    "VGG",
    "build_vgg",
    "ResNet",
    "build_resnet",
    "MobileNet",
    "build_mobilenet",
]
