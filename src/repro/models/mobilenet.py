"""MobileNet-V1: the canonical DW+PW network (paper's detailed-study model).

The pointwise stage of every separable block is selectable:
``scheme="pw"`` (origin baseline), ``"gpw"`` (DW+GPW-cgX rows of Table IV),
``"scc"`` (DW+SCC-cgX-coY% rows).
"""
from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.blocks import DepthwiseSeparableBlock
from repro.models.vgg import scale_width
from repro.tensor import Tensor

# (out_channels, stride) per separable block — standard MobileNet-V1 plan.
MOBILENET_PLAN: list[tuple[int, int]] = [
    (64, 1),
    (128, 2), (128, 1),
    (256, 2), (256, 1),
    (512, 2), (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
    (1024, 2), (1024, 1),
]


class MobileNet(nn.Module):
    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        scheme: str = "pw",
        cg: int = 2,
        co: float = 0.5,
        width_mult: float = 1.0,
        imagenet_stem: bool = False,
        impl: str = "dsxplore",
        num_blocks: int | None = None,
        backend: str = "default",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        stem_width = scale_width(32, width_mult)
        self.stem = nn.Sequential(
            nn.Conv2d(
                in_channels, stem_width, 3,
                stride=2 if imagenet_stem else 1, padding=1, bias=False,
                backend=backend, rng=rng,
            ),
            nn.BatchNorm2d(stem_width),
            nn.ReLU(),
        )
        blocks = []
        c_in = stem_width
        # num_blocks truncates the plan: depth-reduced variants for
        # CPU-scale experiments (width_mult reduces width the same way).
        plan = MOBILENET_PLAN if num_blocks is None else MOBILENET_PLAN[:num_blocks]
        for c_out, stride in plan:
            c_out = scale_width(c_out, width_mult)
            blocks.append(
                DepthwiseSeparableBlock(
                    c_in, c_out, stride=stride, scheme=scheme, cg=cg, co=co,
                    impl=impl, backend=backend, rng=rng,
                )
            )
            c_in = c_out
        self.blocks = nn.Sequential(*blocks)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(c_in, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.pool(self.blocks(self.stem(x))))


def build_mobilenet(
    num_classes: int = 10,
    in_channels: int = 3,
    scheme: str | None = "pw",
    cg: int = 2,
    co: float = 0.5,
    width_mult: float = 1.0,
    imagenet_stem: bool = False,
    impl: str = "dsxplore",
    num_blocks: int | None = None,
    backend: str = "default",
    rng: np.random.Generator | None = None,
) -> MobileNet:
    # "origin" MobileNet *is* DW+PW, so scheme=None maps to "pw".
    return MobileNet(
        num_classes=num_classes,
        in_channels=in_channels,
        scheme=scheme or "pw",
        cg=cg,
        co=co,
        width_mult=width_mult,
        imagenet_stem=imagenet_stem,
        impl=impl,
        num_blocks=num_blocks,
        backend=backend,
        rng=rng,
    )
