"""Model registry: paper-name -> builder, with the paper's configurations.

``build_model("vgg16")`` gives the origin network;
``build_model("vgg16", scheme="scc", cg=2, co=0.5)`` gives its DSXplore form.
"""
from __future__ import annotations

from functools import partial
from typing import Callable

import numpy as np

from repro import nn
from repro.models.mobilenet import build_mobilenet
from repro.models.resnet import build_resnet
from repro.models.vgg import build_vgg

MODEL_BUILDERS: dict[str, Callable[..., nn.Module]] = {
    "vgg16": partial(build_vgg, "vgg16"),
    "vgg19": partial(build_vgg, "vgg19"),
    "mobilenet": build_mobilenet,
    "resnet18": partial(build_resnet, "resnet18"),
    "resnet50": partial(build_resnet, "resnet50"),
}

# The five networks of the paper's evaluation, in its presentation order.
PAPER_MODELS = ("vgg16", "vgg19", "mobilenet", "resnet18", "resnet50")


def available_models() -> tuple[str, ...]:
    return tuple(sorted(MODEL_BUILDERS))


def build_model(
    name: str,
    num_classes: int = 10,
    in_channels: int = 3,
    scheme: str | None = None,
    cg: int = 2,
    co: float = 0.5,
    width_mult: float = 1.0,
    imagenet_stem: bool = False,
    impl: str = "dsxplore",
    backend: str = "default",
    rng: np.random.Generator | None = None,
    plan_input_shape: tuple[int, int, int] | None = None,
    plan_batch_size: int = 1,
    plan_backward: bool = True,
) -> nn.Module:
    """Build a model by paper name.

    ``scheme=None`` is the origin network; ``scheme in {"pw","gpw","scc"}``
    is the factorized (DSXplore-converted) network.  VGG has no ImageNet-stem
    variant here (the paper evaluates it on CIFAR), so ``imagenet_stem`` is
    ignored for VGG.

    ``plan_input_shape`` turns on plan pre-building: the returned model
    carries a :class:`repro.backend.ModelPlan` (as ``model.model_plan``)
    built for ``plan_batch_size`` samples of that ``(C, H, W)`` geometry,
    so every layer's execution plan is cache-resident before the first
    training step (``plan_backward=True``) or inference request
    (``plan_backward=False``).
    """
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    kwargs = dict(
        num_classes=num_classes,
        in_channels=in_channels,
        scheme=scheme,
        cg=cg,
        co=co,
        width_mult=width_mult,
        impl=impl,
        backend=backend,
        rng=rng,
    )
    if name.startswith(("resnet", "mobilenet")):
        kwargs["imagenet_stem"] = imagenet_stem
    model = builder(**kwargs)
    if plan_input_shape is not None:
        from repro.backend import ModelPlan

        model.model_plan = ModelPlan(
            model,
            plan_input_shape,
            batch_size=plan_batch_size,
            include_backward=plan_backward,
        )
    return model


def build_serving_model(
    name: str, seed: int = 0, fuse: bool = True, **kwargs
) -> nn.Module:
    """Deterministic eval-mode model for the multi-model serving router.

    A thin :func:`build_model` wrapper with serving defaults: weights drawn
    from a seeded generator (two routers registering the same
    ``(name, seed, config)`` serve bit-identical outputs) and the module
    switched to eval mode, which serving assumes (BN running stats frozen).
    ``kwargs`` pass through to :func:`build_model`; ``plan_backward``
    defaults to ``False`` because serving never runs a backward pass.

    ``fuse=True`` (the default) runs :func:`repro.nn.fuse_inference` on the
    eval-mode model, absorbing bias/BN/activation stages into staged kernel
    epilogues — bitwise-identical outputs, fewer materialized
    intermediates.  Fusion happens *before* any ``plan_input_shape``
    pre-building so the :class:`~repro.backend.ModelPlan` warmup makes the
    fused plans cache-resident.  The count lands on ``model.fused_layers``.

    :meth:`repro.serve.Router.register` calls this when handed a registry
    name instead of a built module.
    """
    kwargs.setdefault("rng", np.random.default_rng(seed))
    kwargs.setdefault("plan_backward", False)
    plan_input_shape = kwargs.pop("plan_input_shape", None)
    plan_batch_size = kwargs.pop("plan_batch_size", 1)
    plan_backward = kwargs.pop("plan_backward")
    model = build_model(name, **kwargs).eval()
    model.fused_layers = nn.fuse_inference(model) if fuse else 0
    if plan_input_shape is not None:
        from repro.backend import ModelPlan

        model.model_plan = ModelPlan(
            model,
            plan_input_shape,
            batch_size=plan_batch_size,
            include_backward=plan_backward,
        )
    return model
