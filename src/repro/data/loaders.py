"""Batching, shuffling, splitting and light augmentation."""
from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.utils.rng import get_rng


def train_test_split(
    dataset: SyntheticImageDataset, test_fraction: float = 0.2, seed: int = 0
) -> tuple[SyntheticImageDataset, SyntheticImageDataset]:
    """Deterministic shuffled split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n = len(dataset)
    order = get_rng(seed).permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return (
        SyntheticImageDataset(
            dataset.images[train_idx], dataset.labels[train_idx], dataset.num_classes
        ),
        SyntheticImageDataset(
            dataset.images[test_idx], dataset.labels[test_idx], dataset.num_classes
        ),
    )


def _augment(batch: np.ndarray, rng: np.random.Generator, pad: int = 2) -> np.ndarray:
    """Random horizontal flip + pad-and-crop jitter (CIFAR-style)."""
    n, _, h, w = batch.shape
    out = batch.copy()
    flip = rng.random(n) < 0.5
    out[flip] = out[flip, :, :, ::-1]
    padded = np.pad(out, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    dy = rng.integers(0, 2 * pad + 1, size=n)
    dx = rng.integers(0, 2 * pad + 1, size=n)
    for i in range(n):
        out[i] = padded[i, :, dy[i] : dy[i] + h, dx[i] : dx[i] + w]
    return out


class DataLoader:
    """Mini-batch iterator over an in-memory dataset.

    Deterministic per epoch given the seed; reshuffles each epoch the way
    ``torch.utils.data.DataLoader(shuffle=True)`` does.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        augment: bool = False,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.augment = augment
        self.drop_last = drop_last
        self._rng = get_rng(seed)
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        return n // self.batch_size if self.drop_last else (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        self._epoch += 1
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and idx.shape[0] < self.batch_size:
                return
            images = self.dataset.images[idx]
            if self.augment:
                images = _augment(images, self._rng)
            yield images, self.dataset.labels[idx]
