"""Class-conditional image generator with cross-channel discriminative signal.

Each sample is ``x = M_k @ z + noise`` where ``z`` is a stack of ``L`` smooth
random spatial latent fields (shared across channels within a sample) and
``M_k`` is the class-specific channel-mixing matrix.  Rows of every ``M_k``
are normalised to equal energy, so *per-channel* statistics carry almost no
label information — the label lives in which channels co-vary, i.e. in
cross-channel correlations.  A pointwise stage that only sees a fixed channel
group (GPW) observes a masked sub-block of ``M_k``; sliding overlapped
windows (SCC) stitch the blocks together, which is precisely the mechanism
the paper credits for SCC's accuracy recovery (Section III-A).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import get_rng


def _smooth_field(rng: np.random.Generator, n: int, size: int, smoothness: int) -> np.ndarray:
    """Batch of n smooth random fields via low-res upsampling."""
    low = max(2, size // max(1, smoothness))
    coarse = rng.standard_normal((n, low, low)).astype(np.float32)
    # Bilinear-ish upsample: repeat then box-blur once for continuity.
    reps = int(np.ceil(size / low))
    up = np.repeat(np.repeat(coarse, reps, axis=1), reps, axis=2)[:, :size, :size]
    blurred = (
        up
        + np.roll(up, 1, axis=1)
        + np.roll(up, -1, axis=1)
        + np.roll(up, 1, axis=2)
        + np.roll(up, -1, axis=2)
    ) / 5.0
    return blurred


@dataclass
class SyntheticImageDataset:
    """In-memory labelled image set, NCHW float32 + int64 labels."""

    images: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {self.images.shape}")
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"{self.images.shape[0]} images but {self.labels.shape[0]} labels"
            )

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return self.images.shape[1:]


def make_dataset(
    num_samples: int,
    num_classes: int = 10,
    image_size: int = 16,
    channels: int = 3,
    latents: int = 6,
    noise: float = 0.35,
    smoothness: int = 4,
    seed: int = 0,
) -> SyntheticImageDataset:
    """Generate a dataset; deterministic in ``seed``.

    ``noise`` controls task difficulty (std of additive white noise relative
    to unit-energy signal rows).
    """
    if num_samples < num_classes:
        raise ValueError(
            f"need at least one sample per class ({num_classes}), got {num_samples}"
        )
    rng = get_rng(seed)
    # Class mixing matrices with equal-energy rows.
    mixers = rng.standard_normal((num_classes, channels, latents)).astype(np.float32)
    mixers /= np.linalg.norm(mixers, axis=2, keepdims=True)

    labels = rng.integers(0, num_classes, size=num_samples).astype(np.int64)
    z = _smooth_field(rng, num_samples * latents, image_size, smoothness)
    z = z.reshape(num_samples, latents, image_size, image_size)
    # x[n, c] = sum_l M[label_n, c, l] * z[n, l]
    images = np.einsum("ncl,nlhw->nchw", mixers[labels], z, optimize=True)
    images += noise * rng.standard_normal(images.shape).astype(np.float32)
    # Global standardisation (dataset-level, label-free).
    images = (images - images.mean()) / (images.std() + 1e-8)
    return SyntheticImageDataset(images.astype(np.float32), labels, num_classes)
