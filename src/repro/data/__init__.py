"""Synthetic datasets standing in for CIFAR-10 / ImageNet (offline substitution).

The accuracy claims the paper makes are *relative*: SCC's channel overlap
recovers cross-channel information that GPW's hard grouping discards, so
SCC-cgX-coY beats GPW-cgX at identical FLOPs/params.  The generator in
:mod:`repro.data.synthetic` manufactures exactly that situation: class
identity is encoded in *cross-channel mixing structure* (which channel
combinations co-activate), with per-channel marginal statistics matched
across classes, so a model that cannot fuse information across channel-group
boundaries is measurably handicapped.  See DESIGN.md section 2.
"""
from repro.data.synthetic import SyntheticImageDataset, make_dataset
from repro.data.cifar_like import cifar10_like
from repro.data.imagenet_like import imagenet_like
from repro.data.loaders import DataLoader, train_test_split

__all__ = [
    "SyntheticImageDataset",
    "make_dataset",
    "cifar10_like",
    "imagenet_like",
    "DataLoader",
    "train_test_split",
]
