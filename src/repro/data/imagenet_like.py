"""ImageNet stand-in: more classes, larger images, richer latent structure.

The real ImageNet (14M images, 1000 classes) is unavailable offline; this
keeps the properties the paper's ImageNet experiments exercise — a harder,
larger-image task where capacity reductions actually cost accuracy — at a
scale a CPU can train.  Defaults: 100 classes, 3x32x32 (pass
``image_size=64`` for a closer geometry when time allows).
"""
from __future__ import annotations

from repro.data.synthetic import SyntheticImageDataset, make_dataset


def imagenet_like(
    num_samples: int = 4000,
    num_classes: int = 100,
    image_size: int = 32,
    channels: int = 3,
    noise: float = 0.3,
    seed: int = 1,
) -> SyntheticImageDataset:
    return make_dataset(
        num_samples,
        num_classes=num_classes,
        image_size=image_size,
        channels=channels,
        latents=10,
        noise=noise,
        seed=seed,
    )
