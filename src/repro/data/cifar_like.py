"""CIFAR-10 stand-in: 10 classes, 3x32x32 (paper Section V-A, substituted).

``image_size`` defaults to 16 for CPU-scale training loops; pass 32 for the
full CIFAR geometry (used by the analytic benchmarks, where only shapes
matter).
"""
from __future__ import annotations

from repro.data.synthetic import SyntheticImageDataset, make_dataset


def cifar10_like(
    num_samples: int = 2000,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.35,
    seed: int = 0,
) -> SyntheticImageDataset:
    return make_dataset(
        num_samples,
        num_classes=10,
        image_size=image_size,
        channels=channels,
        latents=6,
        noise=noise,
        seed=seed,
    )
