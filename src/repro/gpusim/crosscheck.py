"""Cross-check: analytic kernel lists vs measured backend KernelStats.

The simulator's credibility rests on its kernel descriptions matching what
the real ndarray kernels actually do.  :func:`crosscheck_scc_stats` runs one
SCC layer forward+backward through the :mod:`repro.backend` registry (the
same dispatch path every model uses), collects the measured
:class:`~repro.backend.stats.KernelStats`, rebuilds the analytic
:class:`~repro.gpusim.kernel.KernelLaunch` sequence from the layer's
geometry, and compares the quantities both sides define:

- **atomic traffic** — measured push-scatter updates must equal the summed
  ``atomic_ops`` of the analytic kernels (channel-stack backward and the
  DSXplore-Var push are atomic; the input-centric pull must measure zero);
- **forward materialisation** — measured temporary bytes must equal the
  bytes written by the analytic gather/concat kernels (the stacked tensor
  for channel-stack, ``cyclic_dist`` windows for conv-stack, zero for the
  fused DSXplore forward);
- **forward contraction launches** — measured GEMM calls must match the
  analytic count for the strategies the simulator models launch-for-launch
  (1 grouped conv for channel-stack, ``cyclic_dist`` GEMMs for conv-stack).
  The fused DSXplore forward is one *GPU* kernel but several NumPy segment
  contractions, so no launch-count equality is asserted there.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import KernelStats
from repro.core.channel_map import SCCConfig, cyclic_distance
from repro.core.scc_kernels import make_strategy
from repro.gpusim.workloads import DTYPE_BYTES, LayerShape, SCCGeometry, scc_layer_kernels


@dataclass
class StatsCrossCheck:
    """Outcome of one measured-vs-analytic comparison."""

    strategy: str
    backward_design: str
    measured_forward: KernelStats
    measured_total: KernelStats
    checks: dict[str, tuple[float, float]] = field(default_factory=dict)
    #   name -> (measured, analytic); equality required for ok

    @property
    def ok(self) -> bool:
        return all(m == a for m, a in self.checks.values())

    def failures(self) -> dict[str, tuple[float, float]]:
        return {k: v for k, v in self.checks.items() if v[0] != v[1]}


def _layer_shape(cfg: SCCConfig, hw: int) -> LayerShape:
    return LayerShape(
        name="crosscheck",
        kind="scc",
        cin=cfg.in_channels,
        cout=cfg.out_channels,
        hin=hw, win=hw, hout=hw, wout=hw,
        scc=SCCGeometry(
            cg=cfg.cg,
            co=cfg.co,
            group_width=cfg.group_width,
            cyclic_dist=cyclic_distance(
                cfg.in_channels, cfg.cg, cfg.co, cfg.out_channels
            ),
        ),
    )


def crosscheck_scc_stats(
    cfg: SCCConfig,
    batch: int = 2,
    hw: int = 4,
    strategy: str = "dsxplore",
    backward_design: str = "input_centric",
    backend: str = "default",
) -> StatsCrossCheck:
    """Run real kernels through the registry and compare to the simulator."""
    kwargs = {"backward_design": backward_design} if strategy == "dsxplore" else {}
    strat = make_strategy(strategy, cfg, backend=backend, **kwargs)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(
        (batch, cfg.in_channels, hw, hw)
    ).astype(np.float32)
    w = rng.standard_normal(
        (cfg.out_channels, cfg.group_width)
    ).astype(np.float32)
    out = strat.forward(x, w)
    fwd_stats = strat.stats.snapshot()
    strat.backward(np.ones_like(out))

    kernels = scc_layer_kernels(_layer_shape(cfg, hw), batch, strategy, backward_design)
    fwd_kernels = scc_layer_kernels(
        _layer_shape(cfg, hw), batch, strategy, backward_design, include_backward=False
    )

    result = StatsCrossCheck(
        strategy=strategy,
        backward_design=backward_design,
        measured_forward=fwd_stats,
        measured_total=strat.stats.snapshot(),
    )
    checks = result.checks
    if strategy != "conv_stack":
        checks["atomic_ops"] = (
            float(strat.stats.scatter_adds),
            float(sum(k.atomic_ops for k in kernels)),
        )
    if strategy == "conv_stack":
        # conv-stack accumulates the input gradient with framework-serialised
        # strided += kernels, not atomics: the analytic model carries zero
        # atomic_ops while the measuring kernel counts its scatter updates,
        # so no atomic comparison is meaningful — the equalities that are
        # meaningful here are the gather/GEMM ones below.
        cd = strat.cyclic_dist
        win_bytes = batch * cfg.group_width * hw * hw * DTYPE_BYTES
        checks["forward_gather_bytes"] = (
            float(fwd_stats.bytes_materialized), float(cd * win_bytes)
        )
        checks["forward_gemm_launches"] = (
            float(fwd_stats.gemm_calls),
            float(sum(1 for k in fwd_kernels if k.name == "cos.gemm")),
        )
    elif strategy == "channel_stack":
        stacked_bytes = (
            batch * cfg.out_channels * cfg.group_width * hw * hw * DTYPE_BYTES
        )
        checks["forward_stacked_bytes"] = (
            float(fwd_stats.bytes_materialized), float(stacked_bytes)
        )
        checks["forward_gemm_launches"] = (
            float(fwd_stats.gemm_calls),
            float(sum(1 for k in fwd_kernels if k.name == "chs.groupconv")),
        )
    else:  # dsxplore
        checks["forward_materialized_bytes"] = (
            float(fwd_stats.bytes_materialized), 0.0
        )
        checks["forward_gather_launches"] = (
            0.0,
            float(sum(1 for k in fwd_kernels if "gather" in k.name or "slice" in k.name)),
        )
    return result


def crosscheck_all(
    cfg: SCCConfig, batch: int = 2, hw: int = 4, backend: str = "default"
) -> list[StatsCrossCheck]:
    """Cross-check every strategy/backward-design combination the paper runs."""
    combos = [
        ("channel_stack", "input_centric"),
        ("conv_stack", "input_centric"),
        ("dsxplore", "input_centric"),
        ("dsxplore", "output_centric"),
    ]
    return [
        crosscheck_scc_stats(cfg, batch, hw, s, d, backend) for s, d in combos
    ]
