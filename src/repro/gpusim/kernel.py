"""Single-kernel cost model: roofline + occupancy + atomic serialisation.

``time(kernel) = launch_overhead
               + max(flops / (peak * occupancy * efficiency),
                     bytes / bandwidth)
               + conflicting_atomics / atomic_rate``

This is deliberately simple — it captures the effects the paper's
comparisons hinge on (see package docstring) and is easy to audit.  The
``efficiency`` knob expresses how far a kernel's inner loop sits from peak
(GEMM-like kernels run near peak; gather/scatter memcpy kernels are
bandwidth-bound anyway so their efficiency barely matters).
"""
from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.device import DeviceSpec


@dataclass
class KernelLaunch:
    """One GPU kernel launch described by its aggregate resource demands."""

    name: str
    threads: int
    flops: float = 0.0                  # total floating-point ops
    bytes_read: float = 0.0             # DRAM traffic in
    bytes_written: float = 0.0          # DRAM traffic out
    atomic_ops: float = 0.0             # total atomic updates issued
    atomic_conflict_fraction: float = 0.0  # fraction serialised by conflicts
    compute_efficiency: float = 0.7     # fraction of peak at full occupancy
    bandwidth_efficiency: float = 1.0   # achieved/peak DRAM bw (strided access < 1)
    framework_op: bool = False          # launched via framework op dispatch
    #   (tensor slicing/concat/conv composed in PyTorch pay per-op dispatch
    #   overhead on top of the raw launch; hand-fused kernels do not — this
    #   is the paper's "excessive inefficient Pytorch operations" effect)

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ValueError(f"kernel {self.name!r}: threads must be positive")
        if not 0.0 <= self.atomic_conflict_fraction <= 1.0:
            raise ValueError(
                f"kernel {self.name!r}: conflict fraction must be in [0,1], "
                f"got {self.atomic_conflict_fraction}"
            )
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError(
                f"kernel {self.name!r}: compute efficiency must be in (0,1], "
                f"got {self.compute_efficiency}"
            )
        if not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise ValueError(
                f"kernel {self.name!r}: bandwidth efficiency must be in (0,1], "
                f"got {self.bandwidth_efficiency}"
            )

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written


@dataclass
class KernelTime:
    """Per-kernel timing breakdown (seconds)."""

    name: str
    launch: float
    compute: float
    memory: float
    atomic: float

    @property
    def total(self) -> float:
        return self.launch + max(self.compute, self.memory) + self.atomic


def kernel_time(kernel: KernelLaunch, device: DeviceSpec) -> KernelTime:
    occ = device.occupancy(kernel.threads)
    effective_flops = device.peak_flops * occ * kernel.compute_efficiency
    compute = kernel.flops / effective_flops if kernel.flops else 0.0
    memory = kernel.total_bytes / (device.mem_bandwidth * kernel.bandwidth_efficiency)
    atomic = (
        kernel.atomic_ops * kernel.atomic_conflict_fraction / device.atomic_conflict_rate
    )
    launch = device.kernel_launch_overhead
    if kernel.framework_op:
        launch += device.framework_op_overhead
    return KernelTime(
        name=kernel.name,
        launch=launch,
        compute=compute,
        memory=memory,
        atomic=atomic,
    )


@dataclass
class SimulationResult:
    """Aggregate over a kernel sequence."""

    kernels: list[KernelTime] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(k.total for k in self.kernels)

    @property
    def launch_time(self) -> float:
        return sum(k.launch for k in self.kernels)

    @property
    def atomic_time(self) -> float:
        return sum(k.atomic for k in self.kernels)

    @property
    def num_launches(self) -> int:
        return len(self.kernels)

    def breakdown(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for k in self.kernels:
            out[k.name] = out.get(k.name, 0.0) + k.total
        return out


def simulate_kernels(kernels: list[KernelLaunch], device: DeviceSpec) -> SimulationResult:
    """Serially execute a kernel sequence (one CUDA stream)."""
    return SimulationResult([kernel_time(k, device) for k in kernels])
