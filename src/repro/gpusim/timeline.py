"""Training-step and inference timing for whole networks.

``cold_plans=True`` models the first step of a run: every unique layer
workload additionally pays the host-side plan build
(``DeviceSpec.plan_build_overhead``, calibrated against the measured
cold-vs-warm deltas of ``bench_ablation_plan_cache``).  Steady-state steps
(the default) run entirely on a warm plan cache, mirroring what
:class:`repro.backend.ModelPlan` guarantees for the real kernels.

``host_workers > 1`` models the ``threaded`` kernel backend: kernel time
divides by :meth:`DeviceSpec.parallel_speedup` (Amdahl + coordination,
calibrated on ``bench_backend_scaling``) while the plan-build charge stays
serial — plan construction is single-flight in the real cache — so
simulated cold/warm and 1-vs-N-worker deltas stay comparable with the
measured ones.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.backend.model_plan import layer_workload
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import SimulationResult, simulate_kernels
from repro.gpusim.workloads import LayerShape, model_step_kernels


@dataclass
class StepTime:
    """One simulated training step."""

    total: float
    launch: float
    atomic: float
    num_launches: int
    result: SimulationResult
    plan_build: float = 0.0      # host-side plan construction (cold step only)

    @classmethod
    def from_result(
        cls,
        result: SimulationResult,
        plan_build: float = 0.0,
        host_speedup: float = 1.0,
    ) -> "StepTime":
        """Kernel time divides by ``host_speedup``; the plan build (host-side,
        single-flight, serial) does not."""
        return cls(
            total=result.total_time / host_speedup + plan_build,
            launch=result.launch_time / host_speedup,
            atomic=result.atomic_time / host_speedup,
            num_launches=result.num_launches,
            result=result,
            plan_build=plan_build,
        )


def plan_build_time(shapes: list[LayerShape], batch: int, device: DeviceSpec) -> float:
    """Host time a cold first step spends building execution plans.

    One charge per *unique* conv/SCC layer workload, not per layer
    occurrence: repeated shape-classes (every block of a stage, all
    strategy instances of one SCC config) share a single build, exactly
    like the real cache.  Pooling-geometry and standalone einsum-path
    builds are not modelled separately — conv plans embed their three
    contraction-path searches (the expensive part of a build, which the
    ``plan_build_overhead`` calibration reflects), while pool plans are
    plain shape algebra.
    """
    unique = {layer_workload(shape, batch) for shape in shapes}
    unique.discard(None)
    return len(unique) * device.plan_build_overhead


def training_step_time(
    shapes: list[LayerShape],
    batch: int,
    device: DeviceSpec,
    scc_strategy: str = "dsxplore",
    scc_backward: str = "input_centric",
    cold_plans: bool = False,
    host_workers: int = 1,
) -> StepTime:
    """Simulated fwd+bwd+update time for one mini-batch."""
    kernels = model_step_kernels(
        shapes, batch, scc_strategy=scc_strategy, scc_backward=scc_backward,
        include_backward=True,
    )
    build = plan_build_time(shapes, batch, device) if cold_plans else 0.0
    return StepTime.from_result(
        simulate_kernels(kernels, device), plan_build=build,
        host_speedup=device.parallel_speedup(host_workers),
    )


def inference_time(
    shapes: list[LayerShape],
    batch: int,
    device: DeviceSpec,
    scc_strategy: str = "dsxplore",
    cold_plans: bool = False,
    host_workers: int = 1,
) -> StepTime:
    """Simulated forward-only latency for one batch."""
    kernels = model_step_kernels(
        shapes, batch, scc_strategy=scc_strategy, include_backward=False
    )
    build = plan_build_time(shapes, batch, device) if cold_plans else 0.0
    return StepTime.from_result(
        simulate_kernels(kernels, device), plan_build=build,
        host_speedup=device.parallel_speedup(host_workers),
    )


@dataclass
class ServingEstimate:
    """Analytic serving-latency decomposition at one bucket size.

    ``stable`` is the queueing-stability criterion: the bucket drains
    arrivals at ``bucket / exec`` requests/s, which must cover the arrival
    rate or the queue grows without bound (latency is then meaningless —
    the admission/shed policies are what actually bound it).
    """

    bucket: int
    queue_wait: float            # mean batch-fill wait (bucketing delay)
    exec: float                  # simulated batch execution time
    latency: float               # queue_wait + exec
    stable: bool                 # bucket/exec >= arrival_rate

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def serving_latency(
    shapes: list[LayerShape],
    bucket: int,
    device: DeviceSpec,
    arrival_rate: float,
    max_wait: float,
    scc_strategy: str = "dsxplore",
    host_workers: int = 1,
) -> ServingEstimate:
    """Modelled mean request latency of bucket-``bucket`` serving.

    Two terms, mirroring the real tier's ``queue_wait``/``exec_mean``
    metrics split: the batch-fill wait
    (:meth:`DeviceSpec.batching_queue_wait` — grows with the bucket,
    shrinks with load) and the simulated batch execution time (grows with
    the bucket, amortised per request over more riders).  The adaptive
    :class:`repro.serve.sched.BucketPolicy` navigates exactly this
    trade-off from observed arrivals; :func:`optimal_bucket` is the
    analytic answer it is cross-checked against.
    """
    wait = device.batching_queue_wait(arrival_rate, bucket, max_wait)
    exec_time = inference_time(
        shapes, bucket, device, scc_strategy=scc_strategy,
        host_workers=host_workers,
    ).total
    return ServingEstimate(
        bucket=bucket,
        queue_wait=wait,
        exec=exec_time,
        latency=wait + exec_time,
        stable=bucket / exec_time >= arrival_rate if exec_time > 0 else True,
    )


def min_stable_bucket(
    shapes: list[LayerShape],
    bucket_sizes: tuple[int, ...],
    device: DeviceSpec,
    arrival_rate: float,
    max_wait: float,
    **kwargs,
) -> int:
    """Smallest configured bucket whose service rate covers the arrivals
    (the largest configured bucket when none does — best effort)."""
    sizes = sorted(set(bucket_sizes))
    for bucket in sizes:
        if serving_latency(shapes, bucket, device, arrival_rate, max_wait,
                           **kwargs).stable:
            return bucket
    return sizes[-1]


def optimal_bucket(
    shapes: list[LayerShape],
    bucket_sizes: tuple[int, ...],
    device: DeviceSpec,
    arrival_rate: float,
    max_wait: float,
    **kwargs,
) -> int:
    """The configured bucket minimising modelled latency among stable ones.

    Ties break toward the smaller bucket; when no bucket is stable the
    largest wins (maximum service rate is the only defensible overload
    answer).  This is the analytic cross-check for the EWMA-driven
    :meth:`repro.serve.sched.BucketPolicy.target_bucket`.
    """
    sizes = sorted(set(bucket_sizes))
    estimates = [
        serving_latency(shapes, bucket, device, arrival_rate, max_wait, **kwargs)
        for bucket in sizes
    ]
    stable = [e for e in estimates if e.stable]
    if not stable:
        return sizes[-1]
    best = min(stable, key=lambda e: e.latency)
    return best.bucket


def backward_only_time(
    shapes: list[LayerShape],
    batch: int,
    device: DeviceSpec,
    scc_strategy: str = "dsxplore",
    scc_backward: str = "input_centric",
) -> float:
    """Backward-pass-only time (paper Fig. 9 protocol)."""
    full = training_step_time(shapes, batch, device, scc_strategy, scc_backward).total
    fwd = inference_time(shapes, batch, device, scc_strategy).total
    return max(full - fwd, 0.0)
