"""Training-step and inference timing for whole networks."""
from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import SimulationResult, simulate_kernels
from repro.gpusim.workloads import LayerShape, model_step_kernels


@dataclass
class StepTime:
    """One simulated training step."""

    total: float
    launch: float
    atomic: float
    num_launches: int
    result: SimulationResult

    @classmethod
    def from_result(cls, result: SimulationResult) -> "StepTime":
        return cls(
            total=result.total_time,
            launch=result.launch_time,
            atomic=result.atomic_time,
            num_launches=result.num_launches,
            result=result,
        )


def training_step_time(
    shapes: list[LayerShape],
    batch: int,
    device: DeviceSpec,
    scc_strategy: str = "dsxplore",
    scc_backward: str = "input_centric",
) -> StepTime:
    """Simulated fwd+bwd+update time for one mini-batch."""
    kernels = model_step_kernels(
        shapes, batch, scc_strategy=scc_strategy, scc_backward=scc_backward,
        include_backward=True,
    )
    return StepTime.from_result(simulate_kernels(kernels, device))


def inference_time(
    shapes: list[LayerShape],
    batch: int,
    device: DeviceSpec,
    scc_strategy: str = "dsxplore",
) -> StepTime:
    """Simulated forward-only latency for one batch."""
    kernels = model_step_kernels(
        shapes, batch, scc_strategy=scc_strategy, include_backward=False
    )
    return StepTime.from_result(simulate_kernels(kernels, device))


def backward_only_time(
    shapes: list[LayerShape],
    batch: int,
    device: DeviceSpec,
    scc_strategy: str = "dsxplore",
    scc_backward: str = "input_centric",
) -> float:
    """Backward-pass-only time (paper Fig. 9 protocol)."""
    full = training_step_time(shapes, batch, device, scc_strategy, scc_backward).total
    fwd = inference_time(shapes, batch, device, scc_strategy).total
    return max(full - fwd, 0.0)
