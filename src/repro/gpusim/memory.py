"""Peak-memory model: weights + activations + gradients + strategy temporaries.

Reproduces paper Figure 10 (channel-cyclic optimisation cuts the stacked
buffers from one-per-filter to one-per-cycle) and the Figure 8 observation
that Pytorch-Base "cannot even run" on ImageNet shapes.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.device import DeviceSpec
from repro.gpusim.workloads import DTYPE_BYTES, LayerShape


class OutOfMemoryError(RuntimeError):
    """Raised when a workload's footprint exceeds device capacity."""


@dataclass
class MemoryReport:
    """Byte-level footprint breakdown for one training configuration."""

    weights: int = 0
    activations: int = 0          # saved for backward
    gradients: int = 0            # parameter + activation grads (worst layer)
    temporaries: int = 0          # strategy-specific stacked/gathered buffers
    by_layer: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.weights + self.activations + self.gradients + self.temporaries

    @property
    def total_mb(self) -> float:
        return self.total / (1024**2)


def _layer_param_bytes(shape: LayerShape) -> int:
    if shape.kind in ("conv", "dw", "pw", "gpw", "gc"):
        return shape.cout * (shape.cin // shape.groups) * shape.kernel**2 * DTYPE_BYTES
    if shape.kind == "linear":
        return shape.features_in * shape.features_out * DTYPE_BYTES
    if shape.kind == "scc":
        return shape.cout * shape.scc.group_width * DTYPE_BYTES
    if shape.kind == "bn":
        return 2 * shape.cin * DTYPE_BYTES
    return 0


def _scc_temporary_bytes(shape: LayerShape, batch: int, strategy: str, cc_enabled: bool) -> int:
    """Stacked/gathered buffer bytes an SCC strategy keeps live.

    Without the channel-cyclic (CC) optimisation, both composed-operator
    strategies must materialise one window *per filter* (``Cout`` windows);
    with CC only the ``cyclic_dist`` distinct windows of the first cycle are
    kept (paper Fig. 6).  The fused DSXplore kernel materialises nothing.
    """
    geo = shape.scc
    hw = shape.hout * shape.wout
    window_bytes = batch * geo.group_width * hw * DTYPE_BYTES
    if strategy == "dsxplore":
        return 0
    n_windows = geo.cyclic_dist if cc_enabled else shape.cout
    if strategy == "channel_stack":
        # The concatenated tensor additionally exists as one contiguous
        # buffer alongside the slices while concat runs.
        return 2 * n_windows * window_bytes
    if strategy == "conv_stack":
        return n_windows * window_bytes
    raise ValueError(f"unknown SCC strategy {strategy!r}")


class MemoryModel:
    """Footprint accounting for one model + batch + strategy combination."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    def report(
        self,
        shapes: list[LayerShape],
        batch: int,
        scc_strategy: str = "dsxplore",
        cc_enabled: bool = True,
        training: bool = True,
    ) -> MemoryReport:
        rep = MemoryReport()
        for shape in shapes:
            pbytes = _layer_param_bytes(shape)
            rep.weights += pbytes
            act = shape.out_elements(batch) * DTYPE_BYTES if shape.cout else 0
            layer_bytes = pbytes + (act if training else 0)
            if training:
                rep.activations += act
                rep.gradients += pbytes  # parameter grads persist across step
            if shape.kind == "scc":
                tmp = _scc_temporary_bytes(shape, batch, scc_strategy, cc_enabled)
                rep.temporaries += tmp
                layer_bytes += tmp
            rep.by_layer[shape.name] = rep.by_layer.get(shape.name, 0) + layer_bytes
        if training:
            # Largest transient activation gradient (freed layer to layer).
            rep.gradients += max(
                (s.out_elements(batch) * DTYPE_BYTES for s in shapes if s.cout),
                default=0,
            )
        return rep

    def check(self, report: MemoryReport, context: str = "") -> None:
        """Raise :class:`OutOfMemoryError` if the footprint doesn't fit."""
        if report.total > self.device.mem_capacity:
            raise OutOfMemoryError(
                f"{context or 'workload'} needs {report.total_mb:.0f} MB but "
                f"{self.device.name} has "
                f"{self.device.mem_capacity / 1024**2:.0f} MB"
            )
