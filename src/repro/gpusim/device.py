"""Device specifications for the execution model."""
from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """The handful of hardware parameters the execution model consumes.

    Defaults (see :func:`tesla_v100`) follow the paper's platform section:
    Tesla V100, 5120 CUDA cores, 15.7 TFLOPs peak FP32, 32 GB HBM2.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    peak_flops: float                  # FP32 FLOP/s
    mem_bandwidth: float               # bytes/s
    mem_capacity: int                  # bytes
    max_threads_per_sm: int = 2048
    kernel_launch_overhead: float = 5e-6   # seconds per raw CUDA launch
    framework_op_overhead: float = 2e-5    # extra secs per *framework-composed* op
    # Host-side cost of building one execution plan (index tables +
    # einsum_path search) on a cache miss.  Calibrated against the measured
    # cold-vs-warm deltas of bench_ablation_plan_cache (~0.1-0.6 ms per
    # plan); charged once per unique workload on a cold first step, zero in
    # steady state.
    plan_build_overhead: float = 2e-4
    atomic_conflict_rate: float = 2.0e11   # serialised conflicting atomics/s
    interconnect_bandwidth: float = 2.5e10  # bytes/s per link (PCIe3 x16-ish)
    interconnect_latency: float = 1e-5     # seconds per transfer hop
    # Host-pool scaling of the `threaded` kernel backend (Amdahl + per-worker
    # coordination): serial_fraction is the unshardable share of a step
    # (single-contraction kernels, pad/stage glue), coordination_cost the
    # relative overhead each extra worker adds (task submit/join, shard
    # imbalance).  Calibrated against the modelled worker sweep of
    # bench_backend_scaling; the post-tiling refresh (grouped conv + SCC
    # plus the tiled dense-conv / pull-GEMM workloads: ~3.1-3.4x untiled,
    # ~2.5x tiled at 4 workers) re-fits to the same serial fraction ~= 0.04
    # and coordination ~= 0.015.
    host_serial_fraction: float = 0.04
    host_coordination_cost: float = 0.015
    # Tiled-contraction terms (repro.backend.schedule): combining T per-tile
    # partials through the canonical fixed-order pairwise tree costs
    # ceil(log2 T) elementwise passes over the output, charged as a relative
    # overhead per combine level (fit to the bench_tiled_gemm tile sweep:
    # the 4-tile schedule-table workloads model ~1.7x @ 2 and ~2.4-2.9x @
    # 4 workers).
    # fusion_stage_discount is the relative time a staged epilogue
    # (bias/BN/activation applied while the output tile is cache-hot) saves
    # per absorbed stage versus materialising each elementwise op as its
    # own framework pass.
    tile_combine_overhead: float = 0.025
    fusion_stage_discount: float = 0.05
    # Process-tier (multi-process sharded execution) terms: worker processes
    # escape the GIL entirely, so python-bound work scales by lane count
    # rather than by numpy's GIL-release windows — but every request/result
    # crosses a pipe.  host_ipc_bandwidth/latency are the measured pickle
    # throughput and RPC round-trip of the shard pipes (calibrated by
    # bench_sharded_router against live ShardedRouter round trips);
    # host_process_serial_fraction is the front-end share that stays on the
    # driving process (hashing, dispatch, result bookkeeping).
    host_ipc_bandwidth: float = 1.5e9      # bytes/s through one shard pipe
    host_ipc_latency: float = 2e-4         # seconds per RPC round trip
    host_process_serial_fraction: float = 0.02

    @property
    def cuda_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def max_resident_threads(self) -> int:
        return self.num_sms * self.max_threads_per_sm

    def parallel_speedup(self, workers: int) -> float:
        """Modelled speedup of the ``threaded`` host backend at ``workers``.

        Amdahl's law with a linear coordination term:
        ``1 / (s + (1 - s)/w + c * (w - 1))`` — monotone up to the point
        where coordination overtakes the shrinking parallel share, exactly
        the roll-off the measured scaling sweep shows.  Never below 1.0:
        the backend falls back to inline execution rather than losing to
        single-threaded numpy.
        """
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        s, c = self.host_serial_fraction, self.host_coordination_cost
        return max(1.0, 1.0 / (s + (1.0 - s) / workers + c * (workers - 1)))

    def parallel_efficiency(self, workers: int) -> float:
        """``parallel_speedup(workers) / workers``: 1.0 at one worker,
        decaying as the serial fraction and coordination cost bite."""
        return self.parallel_speedup(workers) / workers

    def tiled_speedup(self, workers: int, tiles: int) -> float:
        """Modelled speedup of a tiled contraction at ``workers`` workers.

        The :func:`parallel_speedup` Amdahl form with two tiling-specific
        corrections: the parallel share can use at most ``min(workers,
        tiles)`` lanes (a contraction cut into 2 tiles cannot feed 4
        workers), and the canonical fixed-order combine tree adds
        ``tile_combine_overhead * ceil(log2 tiles)`` relative serial work.
        ``tiles <= 1`` degrades to the untiled single-contraction kernel:
        speedup 1.0 at any worker count.
        """
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if tiles < 0:
            raise ValueError(f"tiles must be non-negative, got {tiles}")
        if tiles <= 1:
            return 1.0
        s, c = self.host_serial_fraction, self.host_coordination_cost
        lanes = min(workers, tiles)
        combine = self.tile_combine_overhead * math.ceil(math.log2(tiles))
        return max(
            1.0, 1.0 / (s + (1.0 - s) / lanes + c * (workers - 1) + combine)
        )

    def process_speedup(self, processes: int) -> float:
        """Modelled speedup of the ``process`` execution tier at ``processes``.

        The Amdahl form of :meth:`parallel_speedup` with the tier's two
        differences: the parallel share covers *GIL-bound* python work too
        (work that gains nothing from threads scales across processes all
        the same), and the serial residue is the driving process's dispatch
        share (``host_process_serial_fraction``) rather than unshardable
        kernel glue.  IPC transfer costs are charged separately (they scale
        with payload bytes, not with worker count — see
        :func:`repro.gpusim.multigpu.host_process_step_time`).
        """
        if processes < 1:
            raise ValueError(f"processes must be positive, got {processes}")
        s = self.host_process_serial_fraction
        return max(1.0, 1.0 / (s + (1.0 - s) / processes))

    def fused_epilogue_speedup(self, stages: int) -> float:
        """Relative speedup of folding ``stages`` elementwise epilogue ops
        (bias add, BN affine, activation) into the producing kernel versus
        running each as its own framework-composed pass."""
        if stages < 0:
            raise ValueError(f"stages must be non-negative, got {stages}")
        return 1.0 + self.fusion_stage_discount * stages

    def batching_queue_wait(
        self, arrival_rate: float, bucket: int, max_wait: float
    ) -> float:
        """Modelled mean batch-fill wait of the serving tier's bucketing.

        A request entering a bucket of ``bucket`` slots waits for up to
        ``bucket - 1`` later arrivals; with Poisson arrivals at
        ``arrival_rate``/s the expected fill time is ``(bucket - 1) /
        rate`` and a request's mean share of it is half.  The serving
        deadline caps the wait at ``max_wait`` (the ``max_latency`` flush).
        This is the queueing-delay term the adaptive
        :class:`repro.serve.sched.BucketPolicy` trades against batch
        throughput; :func:`repro.gpusim.timeline.serving_latency` combines
        it with the simulated execution time, and the scheduling-core tests
        cross-check the policy's bucket choice against the analytic
        optimum.
        """
        if bucket < 1:
            raise ValueError(f"bucket must be >= 1, got {bucket}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if bucket == 1 or arrival_rate <= 0:
            return 0.0
        return 0.5 * min((bucket - 1) / arrival_rate, max_wait)

    def occupancy(self, threads: int) -> float:
        """Fraction of peak throughput a launch of ``threads`` can reach.

        Below full residency the device is latency-bound and throughput
        scales ~linearly with thread count (this produces the batch-size
        knee of paper Fig. 13); above it, full throughput.
        """
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        return min(1.0, threads / self.max_resident_threads)


def tesla_v100() -> DeviceSpec:
    """The paper's evaluation GPU (Section V-A)."""
    return DeviceSpec(
        name="Tesla V100",
        num_sms=80,
        cores_per_sm=64,
        clock_ghz=1.53,
        peak_flops=15.7e12,
        mem_bandwidth=900e9,
        mem_capacity=32 * 1024**3,
    )


def nvidia_a100() -> DeviceSpec:
    """A newer device for what-if studies (not in the paper): the relative
    strategy orderings should be device-robust, which the test suite checks."""
    return DeviceSpec(
        name="NVIDIA A100",
        num_sms=108,
        cores_per_sm=64,
        clock_ghz=1.41,
        peak_flops=19.5e12,
        mem_bandwidth=1555e9,
        mem_capacity=40 * 1024**3,
        interconnect_bandwidth=6e10,   # NVLink 3-ish per direction share
    )
