"""Multi-GPU data-parallel timing model (paper Figure 14) + host analogue.

Synchronous data parallelism on K devices: each device computes a 1/K batch
shard, then gradients are ring-all-reduced.  Ring all-reduce moves
``2*(K-1)/K * bytes`` per device over the interconnect, plus per-hop
latency.  Small K shows sub-linear scaling (communication not yet amortised,
matching the paper's observation); larger K approaches linear as the compute
share per device shrinks faster than the (nearly K-independent) all-reduce
volume grows.

The same machinery now models the **host process tier**
(:class:`repro.serve.sharded.ShardedRouter` /
``REPRO_EXECUTOR=process``): worker processes are the "devices", the pipe
fabric is the "interconnect".  :func:`host_fabric_device` rebinds a
:class:`DeviceSpec`'s interconnect terms to the measured pipe bandwidth and
RPC latency, so :func:`ring_allreduce_time` and
:func:`data_parallel_step_time` price host IPC with the identical formulas
the GPU model uses — which is exactly how ``bench_sharded_router``
calibrates the two against each other (drift-gated, like the pool-aware
calibration before it).
"""
from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.gpusim.device import DeviceSpec
from repro.gpusim.timeline import training_step_time
from repro.gpusim.workloads import LayerShape


def ring_allreduce_time(bytes_per_device: float, num_devices: int, device: DeviceSpec) -> float:
    """Classic 2(K-1)/K ring all-reduce cost."""
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if num_devices == 1:
        return 0.0
    k = num_devices
    volume = 2.0 * (k - 1) / k * bytes_per_device
    hops = 2 * (k - 1)
    return volume / device.interconnect_bandwidth + hops * device.interconnect_latency


@dataclass
class ParallelStepTime:
    compute: float
    communication: float
    num_devices: int

    @property
    def total(self) -> float:
        return self.compute + self.communication


def data_parallel_step_time(
    shapes: list[LayerShape],
    batch: int,
    num_devices: int,
    device: DeviceSpec,
    gradient_bytes: float,
    scc_strategy: str = "dsxplore",
    overlap_fraction: float = 0.5,
) -> ParallelStepTime:
    """Per-step time on K devices.

    ``overlap_fraction`` models communication/computation overlap (NCCL
    overlaps all-reduce of early layers with backward of later ones).
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError(f"overlap_fraction must be in [0,1], got {overlap_fraction}")
    shard = max(1, batch // num_devices)
    compute = training_step_time(shapes, shard, device, scc_strategy=scc_strategy).total
    comm = ring_allreduce_time(gradient_bytes, num_devices, device)
    exposed = comm * (1.0 - overlap_fraction) if num_devices > 1 else 0.0
    return ParallelStepTime(compute=compute, communication=exposed, num_devices=num_devices)


# ---------------------------------------------------------------------------
# Host process tier: worker processes as devices, pipes as the interconnect
# ---------------------------------------------------------------------------

def host_fabric_device(device: DeviceSpec) -> DeviceSpec:
    """``device`` with its interconnect rebound to the host's pipe fabric.

    After this substitution, :func:`ring_allreduce_time` prices a
    cross-process gradient exchange and :func:`data_parallel_step_time`
    prices a data-parallel host step with the *same formulas* the GPU
    model uses — the calibration contract ``bench_sharded_router`` gates:
    measured shard-pipe throughput/latency feed
    ``host_ipc_bandwidth``/``host_ipc_latency``, and the modelled scaling
    must track the measured one within the standard drift bounds.
    """
    return replace(
        device,
        interconnect_bandwidth=device.host_ipc_bandwidth,
        interconnect_latency=device.host_ipc_latency,
    )


def host_process_step_time(
    task_seconds: Sequence[float],
    processes: int,
    device: DeviceSpec,
    ipc_bytes: float = 0.0,
    round_trips: int | None = None,
) -> ParallelStepTime:
    """Modelled drain time of ``task_seconds`` sharded over ``processes``.

    ``task_seconds`` are clean serial per-task costs (one per model drain /
    shipped batch, measured under
    :func:`repro.backend.parallel.trace_parallel`); compute is their LPT
    makespan over ``processes`` lanes
    (:func:`repro.backend.parallel.makespan`) plus the driving process's
    Amdahl residue, matching how :meth:`DeviceSpec.parallel_speedup` treats
    the thread pool.  Communication charges every RPC round trip at the
    pipe fabric's latency and the total shipped payload at its bandwidth —
    the pipes are driven from one front-end thread, so IPC is serial and
    never overlaps itself (``overlap_fraction`` has no analogue here).
    """
    from repro.backend.parallel import makespan

    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if ipc_bytes < 0:
        raise ValueError(f"ipc_bytes must be >= 0, got {ipc_bytes}")
    tasks = list(task_seconds)
    total = sum(tasks)
    serial = device.host_process_serial_fraction * total
    compute = serial + makespan(tasks, processes)
    trips = len(tasks) if round_trips is None else round_trips
    if trips < 0:
        raise ValueError(f"round_trips must be >= 0, got {trips}")
    comm = 0.0
    if processes > 1:
        fabric = host_fabric_device(device)
        comm = (
            trips * fabric.interconnect_latency
            + ipc_bytes / fabric.interconnect_bandwidth
        )
    return ParallelStepTime(
        compute=compute, communication=comm, num_devices=processes
    )
