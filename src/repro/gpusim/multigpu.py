"""Multi-GPU data-parallel timing model (paper Figure 14).

Synchronous data parallelism on K devices: each device computes a 1/K batch
shard, then gradients are ring-all-reduced.  Ring all-reduce moves
``2*(K-1)/K * bytes`` per device over the interconnect, plus per-hop
latency.  Small K shows sub-linear scaling (communication not yet amortised,
matching the paper's observation); larger K approaches linear as the compute
share per device shrinks faster than the (nearly K-independent) all-reduce
volume grows.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.gpusim.timeline import training_step_time
from repro.gpusim.workloads import LayerShape


def ring_allreduce_time(bytes_per_device: float, num_devices: int, device: DeviceSpec) -> float:
    """Classic 2(K-1)/K ring all-reduce cost."""
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if num_devices == 1:
        return 0.0
    k = num_devices
    volume = 2.0 * (k - 1) / k * bytes_per_device
    hops = 2 * (k - 1)
    return volume / device.interconnect_bandwidth + hops * device.interconnect_latency


@dataclass
class ParallelStepTime:
    compute: float
    communication: float
    num_devices: int

    @property
    def total(self) -> float:
        return self.compute + self.communication


def data_parallel_step_time(
    shapes: list[LayerShape],
    batch: int,
    num_devices: int,
    device: DeviceSpec,
    gradient_bytes: float,
    scc_strategy: str = "dsxplore",
    overlap_fraction: float = 0.5,
) -> ParallelStepTime:
    """Per-step time on K devices.

    ``overlap_fraction`` models communication/computation overlap (NCCL
    overlaps all-reduce of early layers with backward of later ones).
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError(f"overlap_fraction must be in [0,1], got {overlap_fraction}")
    shard = max(1, batch // num_devices)
    compute = training_step_time(shapes, shard, device, scc_strategy=scc_strategy).total
    comm = ring_allreduce_time(gradient_bytes, num_devices, device)
    exposed = comm * (1.0 - overlap_fraction) if num_devices > 1 else 0.0
    return ParallelStepTime(compute=compute, communication=exposed, num_devices=num_devices)
