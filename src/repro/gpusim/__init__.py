"""GPU execution-model simulator (replaces the paper's Tesla V100 testbed).

The paper's runtime results (Figures 7-14, Table V) compare *implementation
strategies of the same math*; their relative performance is governed by
first-order, countable quantities:

- floating-point work and DRAM traffic (roofline),
- SM occupancy (undersaturated launches don't get peak throughput),
- per-kernel launch overhead (composed-operator implementations launch many
  small kernels; the fused DSXplore kernel launches one),
- serialisation of conflicting atomic updates (the output-centric backward),
- data-duplication footprint (the channel-stack OOM at ImageNet scale),
- inter-GPU all-reduce bandwidth (multi-GPU scaling).

:mod:`repro.gpusim` models exactly these effects and nothing more.  Inputs
are per-strategy workload descriptions built from real model shapes
(:mod:`repro.gpusim.workloads`), cross-checked against the instrumentation
counters the real kernels collect while running through the
:mod:`repro.backend` registry (:mod:`repro.gpusim.crosscheck`).
"""
from repro.gpusim.crosscheck import StatsCrossCheck, crosscheck_all, crosscheck_scc_stats
from repro.gpusim.device import DeviceSpec, tesla_v100
from repro.gpusim.kernel import KernelLaunch, kernel_time, simulate_kernels
from repro.gpusim.memory import MemoryModel, MemoryReport, OutOfMemoryError
from repro.gpusim.workloads import (
    LayerShape,
    extract_layer_shapes,
    scc_layer_kernels,
    conv_layer_kernels,
    model_step_kernels,
)
from repro.gpusim.timeline import (
    StepTime,
    inference_time,
    plan_build_time,
    training_step_time,
)
from repro.gpusim.multigpu import (
    data_parallel_step_time,
    host_fabric_device,
    host_process_step_time,
    ring_allreduce_time,
)

__all__ = [
    "StatsCrossCheck",
    "crosscheck_all",
    "crosscheck_scc_stats",
    "DeviceSpec",
    "tesla_v100",
    "KernelLaunch",
    "kernel_time",
    "simulate_kernels",
    "MemoryModel",
    "MemoryReport",
    "OutOfMemoryError",
    "LayerShape",
    "extract_layer_shapes",
    "scc_layer_kernels",
    "conv_layer_kernels",
    "model_step_kernels",
    "StepTime",
    "training_step_time",
    "inference_time",
    "plan_build_time",
    "ring_allreduce_time",
    "data_parallel_step_time",
    "host_fabric_device",
    "host_process_step_time",
]
