"""Workload builders: real model shapes -> per-strategy kernel sequences.

:func:`extract_layer_shapes` runs one hooked batch-1 forward pass over an
actual :mod:`repro` model to harvest every layer's geometry (this follows
residual topologies exactly).  :func:`scc_layer_kernels` then expands an SCC
layer into the kernel sequence each of the paper's three implementations
would launch, and :func:`model_step_kernels` assembles a full training-step
(forward + backward + update) kernel list for a network.

The kernel counts per strategy mirror paper Section IV:

- *Pytorch-Base* (channel-stack): ``Cout`` slice launches + concat + one
  grouped conv on the duplicated tensor; backward re-launches the slices in
  reverse plus an atomic scatter.
- *Pytorch-Opt* (conv-stack + CC): ``cyclic_dist`` gather+GEMM pairs;
  backward three launches per cycle position.  (CC optimisation is what
  caps the count at ``cyclic_dist`` instead of ``Cout``.)
- *DSXplore*: one fused forward kernel; backward is one fused grad-weight
  kernel plus either one pull kernel (input-centric, no atomics) or one
  push kernel with conflict-serialised atomics (output-centric DSXplore-Var).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.backend import scc_conflict_fraction
from repro.backend.model_plan import DTYPE_BYTES
from repro.core.channel_map import cyclic_distance
from repro.core.scc import SlidingChannelConv2d
from repro.gpusim.kernel import KernelLaunch
from repro.tensor import Tensor, no_grad

# Calibrated efficiency knobs: cuBLAS/cuDNN GEMMs run close to peak; the
# hand-written fused SCC kernel is good but not a tensor-core GEMM; pure
# data-movement kernels are bandwidth-bound (efficiency irrelevant).
EFF_GEMM = 0.75
EFF_FUSED = 0.50
EFF_ELEMENTWISE = 0.9


@dataclass
class SCCGeometry:
    cg: int
    co: float
    group_width: int
    cyclic_dist: int


@dataclass
class LayerShape:
    """Geometry of one layer occurrence inside a network."""

    name: str
    kind: str              # conv | dw | pw | gpw | gc | scc | linear | bn | elementwise
    cin: int = 0
    cout: int = 0
    kernel: int = 1
    groups: int = 1
    stride: int = 1
    padding: int = 0
    hin: int = 1
    win: int = 1
    hout: int = 1
    wout: int = 1
    features_in: int = 0   # linear layers
    features_out: int = 0
    scc: SCCGeometry | None = None

    def out_elements(self, batch: int) -> int:
        return batch * self.cout * self.hout * self.wout

    def in_elements(self, batch: int) -> int:
        return batch * self.cin * self.hin * self.win


def _classify(module: nn.Module, in_shape: tuple, out_shape: tuple, name: str) -> LayerShape | None:
    if isinstance(module, SlidingChannelConv2d):
        cfg = module.config
        return LayerShape(
            name=name,
            kind="scc",
            cin=cfg.in_channels,
            cout=cfg.out_channels,
            hin=in_shape[2],
            win=in_shape[3],
            hout=out_shape[2],
            wout=out_shape[3],
            scc=SCCGeometry(
                cg=cfg.cg,
                co=cfg.co,
                group_width=cfg.group_width,
                cyclic_dist=cyclic_distance(
                    cfg.in_channels, cfg.cg, cfg.co, cfg.out_channels
                ),
            ),
        )
    if isinstance(module, nn.Conv2d):
        kind = "conv"
        if module.groups == module.in_channels == module.out_channels:
            kind = "dw"
        elif module.kernel_size == 1:
            kind = "pw" if module.groups == 1 else "gpw"
        elif module.groups > 1:
            kind = "gc"
        return LayerShape(
            name=name,
            kind=kind,
            cin=module.in_channels,
            cout=module.out_channels,
            kernel=module.kernel_size,
            groups=module.groups,
            stride=module.stride,
            padding=module.padding,
            hin=in_shape[2],
            win=in_shape[3],
            hout=out_shape[2],
            wout=out_shape[3],
        )
    if isinstance(module, nn.Linear):
        return LayerShape(
            name=name,
            kind="linear",
            features_in=module.in_features,
            features_out=module.out_features,
            cin=module.in_features,
            cout=module.out_features,
        )
    if isinstance(module, nn.BatchNorm2d):
        return LayerShape(
            name=name, kind="bn",
            cin=in_shape[1], cout=in_shape[1],
            hin=in_shape[2], win=in_shape[3],
            hout=in_shape[2], wout=in_shape[3],
        )
    if isinstance(module, (nn.ReLU, nn.ReLU6, nn.MaxPool2d, nn.AvgPool2d, nn.GlobalAvgPool2d)):
        hout = out_shape[2] if len(out_shape) == 4 else 1
        wout = out_shape[3] if len(out_shape) == 4 else 1
        return LayerShape(
            name=name, kind="elementwise",
            cin=in_shape[1], cout=out_shape[1],
            hin=in_shape[2], win=in_shape[3],
            hout=hout, wout=wout,
        )
    return None


def extract_layer_shapes(
    model: nn.Module,
    input_shape: tuple[int, int, int],
    batch_size: int = 1,
) -> list[LayerShape]:
    """Harvest layer geometries via one hooked forward pass.

    ``batch_size`` sets the dummy batch the probe forward runs at, so the
    harvested geometries (and any :class:`~repro.backend.Workload` built from
    them) match the training/serving batch shapes rather than a hardcoded
    batch-1 pass.  Per-layer channel/spatial geometry is batch-invariant;
    the batch matters to whoever turns these shapes into concrete workloads
    (:class:`repro.backend.ModelPlan`) or kernel launches.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    shapes: list[LayerShape] = []
    handles = []
    for name, module in model.named_modules():
        if module._modules:
            # Only leaves; SCC and Conv2d are leaves by construction.
            if not isinstance(module, (nn.Conv2d, SlidingChannelConv2d, nn.Linear)):
                continue

        def hook(mod, inputs, output, name=name):
            shape = _classify(mod, inputs[0].shape, output.shape, name)
            if shape is not None:
                shapes.append(shape)

        handles.append(module.register_forward_hook(hook))
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model(Tensor(np.zeros((batch_size, *input_shape), dtype=np.float32)))
    finally:
        for h in handles:
            h.remove()
        model.train(was_training)
    return shapes


# ---------------------------------------------------------------------------
# SCC strategy kernels
# ---------------------------------------------------------------------------

def _scc_conflict_fraction(shape: LayerShape) -> float:
    """Fraction of scatter updates hitting an already-written input cell.

    Shared with the measuring kernels (:mod:`repro.backend.stats`) so the
    analytic model and the instrumentation counters agree by construction.
    """
    return scc_conflict_fraction(shape.cin, shape.cout, shape.scc.group_width)


def scc_layer_kernels(
    shape: LayerShape,
    batch: int,
    strategy: str,
    backward_design: str = "input_centric",
    include_backward: bool = True,
) -> list[KernelLaunch]:
    """Kernel sequence one SCC layer launches under a given strategy."""
    if shape.kind != "scc" or shape.scc is None:
        raise ValueError(f"scc_layer_kernels needs an SCC layer, got kind={shape.kind!r}")
    geo = shape.scc
    gw, cd = geo.group_width, geo.cyclic_dist
    n, cout, cin = batch, shape.cout, shape.cin
    hw = shape.hout * shape.wout
    out_elems = n * cout * hw
    in_elems = n * cin * hw
    win_elems = n * gw * hw                # one gathered window
    stacked_elems = n * cout * gw * hw     # full channel-stack tensor
    macs = n * cout * gw * hw              # true multiply-accumulates
    kernels: list[KernelLaunch] = []

    if strategy == "channel_stack":
        # Cout slice/extract launches + one concat + one grouped conv.
        for _ in range(cout):
            kernels.append(
                KernelLaunch(
                    "chs.slice", threads=win_elems,
                    bytes_read=win_elems * DTYPE_BYTES,
                    bytes_written=win_elems * DTYPE_BYTES,
                    compute_efficiency=EFF_ELEMENTWISE,
                    bandwidth_efficiency=0.5, framework_op=True,
                )
            )
        kernels.append(
            KernelLaunch(
                "chs.concat", threads=stacked_elems,
                bytes_read=stacked_elems * DTYPE_BYTES,
                bytes_written=stacked_elems * DTYPE_BYTES,
                compute_efficiency=EFF_ELEMENTWISE,
                framework_op=True,
            )
        )
        kernels.append(
            KernelLaunch(
                "chs.groupconv", threads=out_elems,
                flops=2 * macs,
                bytes_read=stacked_elems * DTYPE_BYTES + cout * gw * DTYPE_BYTES,
                bytes_written=out_elems * DTYPE_BYTES,
                compute_efficiency=EFF_GEMM,
                framework_op=True,
            )
        )
        if include_backward:
            kernels.append(
                KernelLaunch(
                    "chs.grad_w", threads=cout * gw,
                    flops=2 * macs,
                    bytes_read=(out_elems + stacked_elems) * DTYPE_BYTES,
                    bytes_written=cout * gw * DTYPE_BYTES,
                    compute_efficiency=EFF_GEMM,
                    framework_op=True,
                )
            )
            kernels.append(
                KernelLaunch(
                    "chs.grad_stacked", threads=stacked_elems,
                    flops=2 * macs,
                    bytes_read=out_elems * DTYPE_BYTES,
                    bytes_written=stacked_elems * DTYPE_BYTES,
                    compute_efficiency=EFF_GEMM,
                    framework_op=True,
                )
            )
            kernels.append(
                KernelLaunch(
                    "chs.scatter_grad_x", threads=stacked_elems,
                    bytes_read=stacked_elems * DTYPE_BYTES,
                    bytes_written=in_elems * DTYPE_BYTES,
                    atomic_ops=stacked_elems,
                    atomic_conflict_fraction=_scc_conflict_fraction(shape),
                    compute_efficiency=EFF_ELEMENTWISE,
                    bandwidth_efficiency=0.5, framework_op=True,
                )
            )
        return kernels

    if strategy == "conv_stack":
        filters_per_cycle = max(1, cout // cd)
        cycle_macs = n * filters_per_cycle * gw * hw
        for _ in range(cd):
            kernels.append(
                KernelLaunch(
                    "cos.gather", threads=win_elems,
                    bytes_read=win_elems * DTYPE_BYTES,
                    bytes_written=win_elems * DTYPE_BYTES,
                    compute_efficiency=EFF_ELEMENTWISE,
                    bandwidth_efficiency=0.5, framework_op=True,
                )
            )
            kernels.append(
                KernelLaunch(
                    "cos.gemm", threads=n * filters_per_cycle * hw,
                    flops=2 * cycle_macs,
                    bytes_read=(win_elems + filters_per_cycle * gw) * DTYPE_BYTES,
                    bytes_written=n * filters_per_cycle * hw * DTYPE_BYTES,
                    compute_efficiency=EFF_GEMM,
                    framework_op=True,
                )
            )
        if include_backward:
            for _ in range(cd):
                kernels.append(
                    KernelLaunch(
                        "cos.grad_w", threads=filters_per_cycle * gw,
                        flops=2 * cycle_macs,
                        bytes_read=(n * filters_per_cycle * hw + win_elems) * DTYPE_BYTES,
                        bytes_written=filters_per_cycle * gw * DTYPE_BYTES,
                        compute_efficiency=EFF_GEMM,
                        framework_op=True,
                    )
                )
                kernels.append(
                    KernelLaunch(
                        "cos.grad_win", threads=win_elems,
                        flops=2 * cycle_macs,
                        bytes_read=n * filters_per_cycle * hw * DTYPE_BYTES,
                        bytes_written=win_elems * DTYPE_BYTES,
                        compute_efficiency=EFF_GEMM,
                        framework_op=True,
                    )
                )
                kernels.append(
                    KernelLaunch(
                        "cos.accum_grad_x", threads=win_elems,
                        bytes_read=2 * win_elems * DTYPE_BYTES,  # read-modify-write
                        bytes_written=win_elems * DTYPE_BYTES,
                        compute_efficiency=EFF_ELEMENTWISE,
                        bandwidth_efficiency=0.5, framework_op=True,
                    )
                )
        return kernels

    if strategy == "dsxplore":
        kernels.append(
            KernelLaunch(
                "dsx.forward", threads=out_elems,
                flops=2 * macs,
                # Zero-copy views: each input element is fetched from DRAM
                # once and reused from cache by the overlapping filters.
                bytes_read=in_elems * DTYPE_BYTES + cout * gw * DTYPE_BYTES,
                bytes_written=out_elems * DTYPE_BYTES,
                compute_efficiency=EFF_FUSED,
            )
        )
        if include_backward:
            kernels.append(
                KernelLaunch(
                    "dsx.grad_w", threads=cout * gw,
                    flops=2 * macs,
                    bytes_read=(out_elems + in_elems) * DTYPE_BYTES,
                    bytes_written=cout * gw * DTYPE_BYTES,
                    compute_efficiency=EFF_FUSED,
                )
            )
            if backward_design == "input_centric":
                kernels.append(
                    KernelLaunch(
                        "dsx.grad_x_pull", threads=in_elems,
                        flops=2 * macs,
                        bytes_read=out_elems * DTYPE_BYTES + cout * gw * DTYPE_BYTES,
                        bytes_written=in_elems * DTYPE_BYTES,
                        compute_efficiency=EFF_FUSED,
                    )
                )
            elif backward_design == "output_centric":
                stacked = n * cout * gw * hw
                kernels.append(
                    KernelLaunch(
                        "dsx.grad_x_push", threads=out_elems,
                        flops=2 * macs,
                        bytes_read=out_elems * DTYPE_BYTES + cout * gw * DTYPE_BYTES,
                        bytes_written=in_elems * DTYPE_BYTES,
                        atomic_ops=stacked,
                        atomic_conflict_fraction=_scc_conflict_fraction(shape),
                        compute_efficiency=EFF_FUSED,
                    )
                )
            else:
                raise ValueError(f"unknown backward design {backward_design!r}")
        return kernels

    raise ValueError(
        f"unknown SCC strategy {strategy!r}; expected channel_stack/conv_stack/dsxplore"
    )


# ---------------------------------------------------------------------------
# Standard layer kernels (identical across strategies)
# ---------------------------------------------------------------------------

def conv_layer_kernels(
    shape: LayerShape, batch: int, include_backward: bool = True
) -> list[KernelLaunch]:
    """Kernels for non-SCC layers (cuDNN-style single launches)."""
    n = batch
    kernels: list[KernelLaunch] = []
    if shape.kind in ("conv", "dw", "pw", "gpw", "gc"):
        macs = (
            n * shape.cout * (shape.cin // shape.groups)
            * shape.kernel * shape.kernel * shape.hout * shape.wout
        )
        out_elems = shape.out_elements(n)
        in_elems = shape.in_elements(n)
        wparams = shape.cout * (shape.cin // shape.groups) * shape.kernel**2
        eff = EFF_GEMM if shape.kind != "dw" else EFF_FUSED  # DW is bandwidth-ish
        kernels.append(
            KernelLaunch(
                f"{shape.kind}.fwd", threads=out_elems, flops=2 * macs,
                bytes_read=(in_elems + wparams) * DTYPE_BYTES,
                bytes_written=out_elems * DTYPE_BYTES,
                compute_efficiency=eff,
            )
        )
        if include_backward:
            kernels.append(
                KernelLaunch(
                    f"{shape.kind}.grad_w", threads=max(wparams, 1), flops=2 * macs,
                    bytes_read=(in_elems + out_elems) * DTYPE_BYTES,
                    bytes_written=wparams * DTYPE_BYTES,
                    compute_efficiency=eff,
                )
            )
            kernels.append(
                KernelLaunch(
                    f"{shape.kind}.grad_x", threads=in_elems, flops=2 * macs,
                    bytes_read=(out_elems + wparams) * DTYPE_BYTES,
                    bytes_written=in_elems * DTYPE_BYTES,
                    compute_efficiency=eff,
                )
            )
        return kernels
    if shape.kind == "linear":
        macs = n * shape.features_in * shape.features_out
        wparams = shape.features_in * shape.features_out
        kernels.append(
            KernelLaunch(
                "linear.fwd", threads=n * shape.features_out, flops=2 * macs,
                bytes_read=(n * shape.features_in + wparams) * DTYPE_BYTES,
                bytes_written=n * shape.features_out * DTYPE_BYTES,
                compute_efficiency=EFF_GEMM,
            )
        )
        if include_backward:
            kernels.append(
                KernelLaunch(
                    "linear.bwd", threads=max(wparams, n * shape.features_in),
                    flops=4 * macs,
                    bytes_read=(n * (shape.features_in + shape.features_out) + wparams)
                    * DTYPE_BYTES,
                    bytes_written=(wparams + n * shape.features_in) * DTYPE_BYTES,
                    compute_efficiency=EFF_GEMM,
                )
            )
        return kernels
    if shape.kind == "bn":
        elems = shape.in_elements(n)
        kernels.append(
            KernelLaunch(
                "bn.fwd", threads=elems,
                bytes_read=2 * elems * DTYPE_BYTES,  # stats pass + normalise pass
                bytes_written=elems * DTYPE_BYTES,
                compute_efficiency=EFF_ELEMENTWISE,
            )
        )
        if include_backward:
            kernels.append(
                KernelLaunch(
                    "bn.bwd", threads=elems,
                    bytes_read=3 * elems * DTYPE_BYTES,
                    bytes_written=elems * DTYPE_BYTES,
                    compute_efficiency=EFF_ELEMENTWISE,
                )
            )
        return kernels
    if shape.kind == "elementwise":
        in_elems = shape.in_elements(n)
        out_elems = n * shape.cout * shape.hout * shape.wout
        kernels.append(
            KernelLaunch(
                "elementwise.fwd", threads=max(in_elems, 1),
                bytes_read=in_elems * DTYPE_BYTES,
                bytes_written=out_elems * DTYPE_BYTES,
                compute_efficiency=EFF_ELEMENTWISE,
            )
        )
        if include_backward:
            kernels.append(
                KernelLaunch(
                    "elementwise.bwd", threads=max(in_elems, 1),
                    bytes_read=out_elems * DTYPE_BYTES,
                    bytes_written=in_elems * DTYPE_BYTES,
                    compute_efficiency=EFF_ELEMENTWISE,
                )
            )
        return kernels
    raise ValueError(f"no kernel rule for layer kind {shape.kind!r}")


def model_step_kernels(
    shapes: list[LayerShape],
    batch: int,
    scc_strategy: str = "dsxplore",
    scc_backward: str = "input_centric",
    include_backward: bool = True,
) -> list[KernelLaunch]:
    """Full training-step (or inference, with ``include_backward=False``)
    kernel sequence for a network's layer list."""
    kernels: list[KernelLaunch] = []
    for shape in shapes:
        if shape.kind == "scc":
            kernels.extend(
                scc_layer_kernels(
                    shape, batch, scc_strategy, scc_backward, include_backward
                )
            )
        else:
            kernels.extend(conv_layer_kernels(shape, batch, include_backward))
    if include_backward:
        # Optimizer update: one fused elementwise kernel over all parameters.
        total_params = sum(
            s.cout * (s.cin // max(s.groups, 1)) * s.kernel**2
            for s in shapes
            if s.kind in ("conv", "dw", "pw", "gpw", "gc")
        )
        total_params += sum(
            s.features_in * s.features_out for s in shapes if s.kind == "linear"
        )
        total_params += sum(
            s.cout * (s.scc.group_width if s.scc else 1) for s in shapes if s.kind == "scc"
        )
        kernels.append(
            KernelLaunch(
                "sgd.update", threads=max(total_params, 1),
                bytes_read=3 * total_params * DTYPE_BYTES,
                bytes_written=2 * total_params * DTYPE_BYTES,
                compute_efficiency=EFF_ELEMENTWISE,
            )
        )
    return kernels
