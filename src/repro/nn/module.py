"""Module / Parameter containers with PyTorch-compatible traversal."""
from __future__ import annotations

from typing import Any, Iterable, Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A Tensor that is a trainable leaf of a Module."""

    def __init__(self, data: Any) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class: children auto-registered via attribute assignment."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_forward_hooks", [])
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ----------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- mode / grads --------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state dict (ndarray snapshots) ---------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, module in self.named_modules():
            for bname, buf in getattr(module, "_buffers", {}).items():
                key = f"{name}.{bname}" if name else bname
                state[key] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        buffers: dict[str, tuple[Module, str]] = {}
        for name, module in self.named_modules():
            for bname in getattr(module, "_buffers", {}):
                key = f"{name}.{bname}" if name else bname
                buffers[key] = (module, bname)
        for key, value in state.items():
            if key in own:
                if own[key].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: model {own[key].data.shape} vs state {value.shape}"
                    )
                own[key].data = value.astype(own[key].data.dtype).copy()
            elif key in buffers:
                module, bname = buffers[key]
                module._buffers[bname] = value.copy()
                object.__setattr__(module, bname, module._buffers[bname])
            else:
                raise KeyError(f"unexpected key in state dict: {key}")

    # -- call protocol --------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        out = self.forward(*args, **kwargs)
        for hook in self._forward_hooks:
            hook(self, args, out)
        return out

    def register_forward_hook(self, hook) -> "HookHandle":
        """Register ``hook(module, inputs, output)`` to run after forward."""
        self._forward_hooks.append(hook)
        return HookHandle(self._forward_hooks, hook)

    def __repr__(self) -> str:
        lines = [type(self).__name__ + "("]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines) if self._modules else type(self).__name__ + "()"


class HookHandle:
    """Removable registration returned by ``register_forward_hook``."""

    def __init__(self, hook_list: list, hook) -> None:
        self._hook_list = hook_list
        self._hook = hook

    def remove(self) -> None:
        if self._hook in self._hook_list:
            self._hook_list.remove(self._hook)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, m in enumerate(modules):
            setattr(self, str(i), m)

    def forward(self, x: Tensor) -> Tensor:
        for child in self._modules.values():
            x = child(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]


class ModuleList(Module):
    """List container whose elements are registered children."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._count = 0
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(self._count), module)
        object.__setattr__(self, "_count", self._count + 1)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, idx: int) -> Module:
        return self._modules[str(idx % self._count if idx < 0 else idx)]
