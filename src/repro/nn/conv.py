"""Convolution modules: the existing factorized-kernel taxonomy (paper Fig. 1).

- :class:`Conv2d` — standard / grouped convolution (Fig. 1a, 1c),
- :class:`PointwiseConv2d` — PW, 1x1 standard conv (Fig. 1b),
- :class:`DepthwiseConv2d` — DW, groups == channels (Fig. 1d),
- :class:`GroupPointwiseConv2d` — GPW, grouped 1x1 (Fig. 1e).

The paper's new kernel, SCC, lives in :mod:`repro.core.scc` and is a drop-in
peer of these modules.  Every module takes a ``backend=`` argument selecting
the :mod:`repro.backend` kernel implementation it dispatches through.
"""
from __future__ import annotations

import numpy as np

from repro.backend import get_kernel
from repro.backend.plan import conv2d_fused_plan
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor import conv_ops
from repro.tensor.tensor import is_grad_enabled


class Conv2d(Module):
    """Standard / grouped 2D convolution module (NCHW)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        backend: str = "default",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"groups={groups} must divide in_channels={in_channels} "
                f"and out_channels={out_channels}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.backend = backend
        wshape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(wshape, rng=rng))
        if bias:
            fan_in = (in_channels // groups) * kernel_size * kernel_size
            self.bias = Parameter(init.uniform_bias((out_channels,), fan_in, rng=rng))
        else:
            self.bias = None
        # Set by repro.nn.fuse.fuse_inference: absorbed bias/BN/activation
        # stages applied as a staged kernel epilogue on the inference path.
        self._fused_epilogue = None

    def forward(self, x: Tensor) -> Tensor:
        ep = self._fused_epilogue
        if ep is not None:
            return self._forward_fused(x, ep)
        out = conv_ops.Conv2d.apply(
            x, self.weight, stride=self.stride, padding=self.padding,
            groups=self.groups, backend=self.backend,
        )
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return out

    def _forward_fused(self, x: Tensor, ep) -> Tensor:
        if not self.training and not is_grad_enabled():
            try:
                kernel = get_kernel("conv2d_fused", self.backend)
            except ValueError:
                kernel = None  # backend without a fused kernel: compose below
            if kernel is not None:
                fplan = conv2d_fused_plan(
                    x.shape, self.weight.shape, self.stride, self.padding,
                    self.groups, x.data.dtype, ep.spec(),
                )
                return Tensor(kernel(fplan, x.data, self.weight.data, ep.kernel_args()))
        out = conv_ops.Conv2d.apply(
            x, self.weight, stride=self.stride, padding=self.padding,
            groups=self.groups, backend=self.backend,
        )
        return ep.apply_composed(out)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding}, g={self.groups}, "
            f"bias={self.bias is not None})"
        )


class PointwiseConv2d(Conv2d):
    """PW convolution: 1x1 standard conv fusing all input channels."""

    def __init__(self, in_channels: int, out_channels: int, bias: bool = True,
                 backend: str = "default",
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(in_channels, out_channels, kernel_size=1, bias=bias,
                         backend=backend, rng=rng)


class DepthwiseConv2d(Conv2d):
    """DW convolution: per-channel spatial conv (GC with groups == Cin)."""

    def __init__(
        self,
        channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        bias: bool = False,
        backend: str = "default",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            channels,
            channels,
            kernel_size=kernel_size,
            stride=stride,
            padding=padding,
            groups=channels,
            bias=bias,
            backend=backend,
            rng=rng,
        )


class GroupPointwiseConv2d(Conv2d):
    """GPW convolution: grouped 1x1 conv (ShuffleNet-style, paper Fig. 1e)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        groups: int,
        bias: bool = True,
        backend: str = "default",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            in_channels, out_channels, kernel_size=1, groups=groups, bias=bias,
            backend=backend, rng=rng,
        )
