"""Weight initializers (kaiming / xavier), matching PyTorch defaults.

All draw from :func:`repro.utils.rng.get_rng` so a single ``seed_all`` call
makes model construction deterministic.
"""
from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import get_rng


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        raise ValueError(f"fan in/out undefined for shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """He initialization for ReLU networks (std = sqrt(2 / fan_in))."""
    gen = rng if rng is not None else get_rng()
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return (gen.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """PyTorch's default conv/linear init (a=sqrt(5) leaky-relu gain)."""
    gen = rng if rng is not None else get_rng()
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + 5.0))
    bound = gain * math.sqrt(3.0 / fan_in)
    return gen.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    gen = rng if rng is not None else get_rng()
    fan_in, fan_out = _fan_in_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return (gen.standard_normal(shape) * std).astype(np.float32)


def uniform_bias(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """PyTorch bias default: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    gen = rng if rng is not None else get_rng()
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return gen.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
