"""Stateless NN math helpers (softmax family, one-hot, accuracy)."""
from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


def relu(x: Tensor) -> Tensor:
    return x.relu()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax built from autograd primitives."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError(
            f"labels out of range [0, {num_classes}): min={labels.min()}, max={labels.max()}"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def accuracy(logits: Tensor | np.ndarray, labels: np.ndarray) -> float:
    arr = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = arr.argmax(axis=-1)
    return float((pred == np.asarray(labels)).mean())
