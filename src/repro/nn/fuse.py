"""Inference-graph fusion: absorb bias / BN / activation into conv epilogues.

:func:`fuse_inference` rewrites an ``eval()``-mode model in place so each
``Conv2d`` (or SCC layer) followed by its ``BatchNorm2d`` / activation
applies those stages as a **staged epilogue** inside the fused kernel
(``conv2d_fused`` / the SCC forward's ``epilogue=``), per output slab while
it is cache-hot — the intermediate bias/BN/activation tensors are never
materialized.  The epilogue replays the exact elementwise op sequence the
unfused module stack composes (see
:class:`~repro.backend.plan.EpilogueArgs`), so fused output == unfused
output **bitwise**.

Scope: fusion only rewrites module sequences whose forward order provably
equals their registration order — ``nn.Sequential`` containers and the
``DepthwiseSeparableBlock`` (whose fixed attribute layout matches its
forward).  Arbitrary modules (e.g. residual blocks applying children out of
order around a skip add) are left alone; their ``Sequential`` sub-stacks
are still fused.

Fused models are **inference-only**: the absorbed BN keeps its frozen
running statistics (it is removed from the module tree, so ``train()``
no longer reaches it), and the fused kernel path engages only under
``no_grad`` eval execution — a fused layer that is run with autograd
enabled falls back to composing the same epilogue with Tensor ops.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.plan import EpilogueArgs, EpilogueSpec
from repro.nn.conv import Conv2d
from repro.nn.layers import BatchNorm2d, Identity, ReLU, ReLU6
from repro.nn.module import Module, Sequential
from repro.tensor import Tensor

__all__ = ["FusedEpilogue", "fuse_inference", "count_fused"]


@dataclass
class FusedEpilogue:
    """The absorbed post-conv stages of one fused layer.

    Holds live references (the conv's bias Parameter, the absorbed
    BatchNorm2d module), so weight updates through ``load_state_dict``
    flow into the fused execution without re-fusing.
    """

    bias: object | None = None       # the conv's bias Parameter (or None)
    bn: BatchNorm2d | None = None    # absorbed BN, pinned to eval mode
    activation: str | None = None    # None | "relu" | "relu6"

    def spec(self) -> EpilogueSpec:
        return EpilogueSpec(
            bias=self.bias is not None,
            affine=self.bn is not None,
            activation=self.activation,
        )

    def kernel_args(self) -> EpilogueArgs:
        """Fresh per-call kernel operands, broadcast-shaped ``(1, C, 1, 1)``.

        The BN affine is derived exactly as the eval-mode module computes
        it — ``scale = gamma / sqrt(running_var + eps)`` applied in the
        ``(x - mean) * scale + beta`` order — so the fused result stays
        bitwise-equal to the composed stack.
        """
        bias = mean = scale = beta = None
        if self.bias is not None:
            bias = self.bias.data.reshape(1, -1, 1, 1)
        if self.bn is not None:
            bn = self.bn
            mean = bn._buffers["running_mean"].reshape(1, -1, 1, 1)
            var = bn._buffers["running_var"].reshape(1, -1, 1, 1)
            scale = bn.weight.data.reshape(1, -1, 1, 1) / np.sqrt(var + bn.eps)
            beta = bn.bias.data.reshape(1, -1, 1, 1)
        return EpilogueArgs(
            bias=bias, mean=mean, scale=scale, beta=beta,
            activation=self.activation,
        )

    def apply_composed(self, out: Tensor) -> Tensor:
        """Composed fallback: the same stages as graph-level Tensor ops
        (used when a fused layer runs under autograd or on a backend with
        no ``conv2d_fused`` kernel)."""
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        if self.bn is not None:
            out = self.bn(out)
        if self.activation == "relu":
            out = out.relu()
        elif self.activation == "relu6":
            out = 6.0 - (6.0 - out.relu()).relu()
        return out


def _activation_name(module: Module) -> str | None:
    if type(module) is ReLU:
        return "relu"
    if type(module) is ReLU6:
        return "relu6"
    return None


def _is_fusable_conv(module: Module) -> bool:
    from repro.core.scc import SlidingChannelConv2d

    return isinstance(module, (Conv2d, SlidingChannelConv2d))


def _attach(conv: Module, bn: BatchNorm2d | None, activation: str | None) -> None:
    if bn is not None:
        bn.eval()
    conv._fused_epilogue = FusedEpilogue(
        bias=conv.bias, bn=bn, activation=activation
    )


def _fuse_sequential(seq: Sequential) -> int:
    fused = 0
    items = list(seq._modules.items())
    i = 0
    while i < len(items):
        _, mod = items[i]
        if not _is_fusable_conv(mod) or getattr(mod, "_fused_epilogue", None):
            i += 1
            continue
        bn: BatchNorm2d | None = None
        activation: str | None = None
        absorbed: list[str] = []
        j = i + 1
        if (
            j < len(items)
            and isinstance(items[j][1], BatchNorm2d)
            and items[j][1].num_features == mod.out_channels
        ):
            bn = items[j][1]
            absorbed.append(items[j][0])
            j += 1
        if j < len(items):
            activation = _activation_name(items[j][1])
            if activation is not None:
                absorbed.append(items[j][0])
                j += 1
        if bn is None and activation is None and mod.bias is None:
            i += 1
            continue  # nothing to absorb: keep the plain conv dispatch
        _attach(mod, bn, activation)
        for name in absorbed:
            setattr(seq, name, Identity())
        fused += 1
        i = j
    return fused


def _fuse_separable(block) -> int:
    fused = 0
    for conv_name, bn_name, act_name in (
        ("depthwise", "bn1", "act1"),
        ("pointwise", "bn2", "act2"),
    ):
        conv = getattr(block, conv_name)
        if not _is_fusable_conv(conv) or getattr(conv, "_fused_epilogue", None):
            continue
        bn = getattr(block, bn_name)
        if not (isinstance(bn, BatchNorm2d) and bn.num_features == conv.out_channels):
            bn = None
        activation = _activation_name(getattr(block, act_name))
        if bn is None and activation is None and conv.bias is None:
            continue
        _attach(conv, bn, activation)
        if bn is not None:
            setattr(block, bn_name, Identity())
        if activation is not None:
            setattr(block, act_name, Identity())
        fused += 1
    return fused


def fuse_inference(model: Module) -> int:
    """Fuse every eligible conv→[BN]→[activation] run in ``model`` in place.

    Returns the number of layers that gained a fused epilogue.  See the
    module docstring for scope and the inference-only caveat.
    """
    from repro.core.blocks import DepthwiseSeparableBlock

    fused = 0
    for _, module in list(model.named_modules()):
        if isinstance(module, Sequential):
            fused += _fuse_sequential(module)
        elif isinstance(module, DepthwiseSeparableBlock):
            fused += _fuse_separable(module)
    return fused


def count_fused(model: Module) -> int:
    """How many layers of ``model`` carry a fused epilogue."""
    return sum(
        1
        for _, m in model.named_modules()
        if getattr(m, "_fused_epilogue", None) is not None
    )
