"""Non-convolution layers: Linear, BatchNorm2d (running stats), activations,
pooling, Flatten, Dropout."""
from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor import conv_ops
from repro.utils.rng import get_rng


class Linear(Module):
    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), rng=rng))
        self.bias = Parameter(init.uniform_bias((out_features,), in_features, rng=rng)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class BatchNorm2d(Module):
    """Batch normalisation with running statistics for eval mode."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        object.__setattr__(self, "_buffers", {
            "running_mean": np.zeros(num_features, dtype=np.float32),
            "running_var": np.ones(num_features, dtype=np.float32),
        })
        object.__setattr__(self, "running_mean", self._buffers["running_mean"])
        object.__setattr__(self, "running_var", self._buffers["running_var"])

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d({self.num_features}) got input with {x.shape[1]} channels"
            )
        if self.training:
            fn = conv_ops.BatchNorm2d()
            out = _apply_with_ctx(fn, x, self.weight, self.bias, eps=self.eps)
            m = self.momentum
            self._buffers["running_mean"] = (
                (1 - m) * self._buffers["running_mean"] + m * fn.batch_mean
            ).astype(np.float32)
            self._buffers["running_var"] = (
                (1 - m) * self._buffers["running_var"] + m * fn.batch_var
            ).astype(np.float32)
            object.__setattr__(self, "running_mean", self._buffers["running_mean"])
            object.__setattr__(self, "running_var", self._buffers["running_var"])
            return out
        mean = self._buffers["running_mean"].reshape(1, -1, 1, 1)
        var = self._buffers["running_var"].reshape(1, -1, 1, 1)
        scale = self.weight.reshape(1, -1, 1, 1) / Tensor(np.sqrt(var + self.eps))
        return (x - Tensor(mean)) * scale + self.bias.reshape(1, -1, 1, 1)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


def _apply_with_ctx(fn, *args, **kwargs) -> Tensor:
    """Like Function.apply but on a pre-built instance (to read side outputs)."""
    from repro.tensor.tensor import Tensor as T, is_grad_enabled

    tensor_inputs = [a for a in args if isinstance(a, T)]
    raw = [a.data if isinstance(a, T) else a for a in args]
    out_data = fn.forward(*raw, **kwargs)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensor_inputs)
    out = T(out_data, requires_grad=requires)
    if requires:
        fn.inputs = tuple(tensor_inputs)
        fn.needs_input_grad = tuple(t.requires_grad for t in tensor_inputs)
        out._ctx = fn
    return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class ReLU6(Module):
    """min(max(x, 0), 6) — MobileNet's activation."""

    def forward(self, x: Tensor) -> Tensor:
        return 6.0 - (6.0 - x.relu()).relu()

    def __repr__(self) -> str:
        return "ReLU6()"


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0,
                 backend: str = "default") -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride
        self.padding = padding
        self.backend = backend

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.MaxPool2d.apply(
            x, kernel=self.kernel_size, stride=self.stride, padding=self.padding,
            backend=self.backend,
        )

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride}, p={self.padding})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, backend: str = "default") -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.backend = backend

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.AvgPool2d.apply(x, kernel=self.kernel_size, backend=self.backend)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size})"


class GlobalAvgPool2d(Module):
    """Mean over the spatial dims, keeping (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def __repr__(self) -> str:
        return "Flatten()"


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (get_rng().random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"
