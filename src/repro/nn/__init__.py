"""Neural-network layer library over :mod:`repro.tensor` (replaces torch.nn).

Layout convention is NCHW throughout.  Layers hold :class:`Parameter` leaves;
:class:`Module` provides the traversal (``parameters``, ``named_modules``,
``train``/``eval``) that the trainer, the FLOPs counter
(:mod:`repro.analysis`), and the model-conversion pass
(:func:`repro.core.blocks.convert_model`) all walk.
"""
from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.conv import Conv2d, PointwiseConv2d, DepthwiseConv2d, GroupPointwiseConv2d
from repro.nn.layers import (
    Linear,
    BatchNorm2d,
    ReLU,
    ReLU6,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    Flatten,
    Dropout,
    Identity,
)
from repro.nn.fuse import FusedEpilogue, count_fused, fuse_inference
from repro.nn import functional, init

__all__ = [
    "FusedEpilogue",
    "count_fused",
    "fuse_inference",
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Conv2d",
    "PointwiseConv2d",
    "DepthwiseConv2d",
    "GroupPointwiseConv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "functional",
    "init",
]
