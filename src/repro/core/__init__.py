"""The paper's primary contribution: Sliding-Channel Convolution (SCC).

Layout:

- :mod:`repro.core.channel_map` — window algebra and the channel-cycle
  discovery of paper Algorithm 1 (plus the Algorithm-2 index-reuse helper),
- :mod:`repro.core.scc_kernels` — the three execution strategies the paper
  evaluates (channel-stack / convolution-stack+CC / fused DSXplore kernel)
  as pure-ndarray kernels, with both backward designs (output-centric
  "push with atomics" and input-centric "pull"),
- :mod:`repro.core.scc` — autograd Function + the
  :class:`~repro.core.scc.SlidingChannelConv2d` module,
- :mod:`repro.core.blocks` — DW+{PW,GPW,SCC} depthwise-separable blocks and
  the drop-in model-conversion pass,
- :mod:`repro.core.design_space` — (cg, co) design-space enumeration, the
  "Xplore" part.
"""
from repro.core.channel_map import (
    SCCConfig,
    compute_channel_cycle,
    channel_windows,
    window_segments,
    cyclic_distance,
)
from repro.core.scc import SlidingChannelConv2d, SCCFunction
from repro.core.blocks import (
    DepthwiseSeparableBlock,
    make_separable_block,
    convert_model,
)
from repro.core.design_space import enumerate_configs, pareto_front, DesignPoint
from repro.core.shift import ShiftConv2d, ShiftSCCBlock, shift_offsets
from repro.core.pruning import SCCPruner, PruningReport

__all__ = [
    "ShiftConv2d",
    "ShiftSCCBlock",
    "shift_offsets",
    "SCCPruner",
    "PruningReport",
    "SCCConfig",
    "compute_channel_cycle",
    "channel_windows",
    "window_segments",
    "cyclic_distance",
    "SlidingChannelConv2d",
    "SCCFunction",
    "DepthwiseSeparableBlock",
    "make_separable_block",
    "convert_model",
    "enumerate_configs",
    "pareto_front",
    "DesignPoint",
]
