"""Sliding-channel window algebra (paper Section III + Algorithm 1).

An SCC layer with ``Cin`` input channels, ``cg`` channel groups and overlap
ratio ``co`` gives every output filter a *window* of
``group_width = Cin // cg`` input channels.  Adjacent filters' windows are
shifted by ``stride = group_width - int(co * group_width)`` channels, and
the channel axis is cyclic: the last input channel is logically adjacent to
the first (paper Figure 5).

Because the window start advances by a fixed stride modulo ``Cin``, the
window sequence is purely periodic; :func:`compute_channel_cycle` is the
paper's Algorithm 1 (verbatim control flow) and discovers the period
``cyclic_dist``.  Filter ``oid`` then reuses
``windows[oid % cyclic_dist]`` — the Algorithm-2 index-reuse trick.
"""
from __future__ import annotations

from dataclasses import dataclass
from math import gcd

import numpy as np


@dataclass(frozen=True)
class SCCConfig:
    """Validated hyper-parameters of one SCC layer.

    ``co`` is the *input-channel overlap ratio* between adjacent filters; the
    paper writes configurations as ``SCC-cgX-coY%``.  The degenerate corners
    (paper Table I footnotes): ``cg=1, co→100%`` is PW; ``co=0%`` is GPW.
    """

    in_channels: int
    out_channels: int
    cg: int
    co: float

    def __post_init__(self) -> None:
        if self.in_channels <= 0 or self.out_channels <= 0:
            raise ValueError(
                f"channels must be positive, got Cin={self.in_channels}, "
                f"Cout={self.out_channels}"
            )
        if self.cg < 1:
            raise ValueError(f"cg must be >= 1, got {self.cg}")
        if self.in_channels % self.cg:
            raise ValueError(
                f"cg={self.cg} must divide the number of input channels "
                f"({self.in_channels})"
            )
        if not 0.0 <= self.co < 1.0:
            # co == 1.0 would give a zero slide: every filter reads the same
            # window, which silently degenerates the layer.  The PW corner is
            # expressed as cg=1 (full-width windows) instead.
            raise ValueError(f"co must be in [0, 1), got {self.co}")

    @property
    def group_width(self) -> int:
        """Input channels consumed by each filter (Cin / cg)."""
        return self.in_channels // self.cg

    @property
    def overlap_channels(self) -> int:
        """Number of input channels shared by adjacent filters."""
        return int(self.co * self.group_width)

    @property
    def slide_stride(self) -> int:
        """Channel shift between adjacent filters' windows."""
        return self.group_width - self.overlap_channels

    @property
    def cyclic_dist(self) -> int:
        return cyclic_distance(self.in_channels, self.cg, self.co, self.out_channels)

    def label(self) -> str:
        """Paper-style name, e.g. ``SCC-cg2-co50%``."""
        return f"SCC-cg{self.cg}-co{round(self.co * 100)}%"


def compute_channel_cycle(
    in_channels: int, cg: int, co: float, out_channels: int
) -> list[tuple[int, int]]:
    """Paper Algorithm 1: window (start, end) pairs of the first cycle.

    ``end`` is reported modulo ``Cin`` so a wrapped (or full-width) window
    has ``end <= start``.  The cycle ends at the first repeated window or
    after ``out_channels`` filters, whichever is first.

    One correction to the paper's pseudo-code: Algorithm 1 stores the very
    first window as ``(0, group_width)`` *before* any modulo, while every
    later window stores ``end % Cin``.  For ``cg == 1`` (full-width windows,
    the PW corner) the first entry would be ``(0, Cin)`` and the identical
    second window ``(0, 0)`` would not be recognised as a repeat, reporting
    ``cyclic_dist = 2`` instead of 1.  We canonicalise ``end`` modulo ``Cin``
    from the start; the window *index sets* are unchanged.
    """
    cfg = SCCConfig(in_channels, out_channels, cg, co)
    group_width = cfg.group_width
    channel_map: dict[tuple[int, int], int] = {}
    start, end = 0, group_width % in_channels
    start_v, end_v = 0, group_width
    for _oid in range(out_channels):
        item = (start, end)
        if item in channel_map:
            break
        channel_map[item] = len(channel_map)
        start_v = end_v - cfg.overlap_channels
        end_v = start_v + group_width
        start = start_v % in_channels
        end = end_v % in_channels
    return list(channel_map.keys())


def cyclic_distance(in_channels: int, cg: int, co: float, out_channels: int) -> int:
    """Length of the window cycle (``cyclic_dist`` of Algorithm 1).

    Closed form: with slide stride ``s``, window starts are ``k*s mod Cin``,
    so the period is ``Cin / gcd(Cin, s)`` (1 when ``s == 0``), capped by the
    number of filters.  Checked against the iterative Algorithm 1 in the test
    suite.
    """
    cfg = SCCConfig(in_channels, out_channels, cg, co)
    s = cfg.slide_stride
    period = 1 if s == 0 else in_channels // gcd(in_channels, s)
    return min(period, out_channels)


def channel_windows(in_channels: int, out_channels: int, cg: int, co: float) -> np.ndarray:
    """Per-filter input-channel index matrix of shape (Cout, group_width).

    Row ``oid`` lists, in order, the input channels filter ``oid`` reads.
    Built through the Algorithm-2 reuse: only the first cycle is computed,
    later filters index into it modulo ``cyclic_dist``.
    """
    cfg = SCCConfig(in_channels, out_channels, cg, co)
    cycle = compute_channel_cycle(in_channels, cg, co, out_channels)
    gw = cfg.group_width
    starts = np.array([s for s, _ in cycle], dtype=np.int64)
    base = (starts[:, None] + np.arange(gw)[None, :]) % in_channels
    oid = np.arange(out_channels)
    return base[oid % len(cycle)]


def window_segments(start: int, width: int, in_channels: int) -> list[tuple[slice, slice]]:
    """Split one (possibly wrapped) window into contiguous channel slices.

    Returns ``[(input_channel_slice, weight_column_slice), ...]`` — one
    segment when the window does not wrap past ``Cin``, two when it does.
    The fused DSXplore kernel uses these to read input channels through
    zero-copy views instead of gather copies.
    """
    if width > in_channels:
        raise ValueError(f"window width {width} exceeds Cin={in_channels}")
    start %= in_channels
    end = start + width
    if end <= in_channels:
        return [(slice(start, end), slice(0, width))]
    first = in_channels - start
    return [
        (slice(start, in_channels), slice(0, first)),
        (slice(0, end - in_channels), slice(first, width)),
    ]


def reverse_window_map(windows: np.ndarray, in_channels: int) -> list[np.ndarray]:
    """Input-centric view of the window matrix.

    For each input channel ``c``, return an integer array of ``(oid, col)``
    pairs (shape ``(k, 2)``) listing every filter that reads ``c`` and at
    which weight column — the "pull" index set of the input-centric backward
    pass (paper Figure 4b).
    """
    cout, gw = windows.shape
    flat = windows.reshape(-1)
    order = np.argsort(flat, kind="stable")
    oid = order // gw
    col = order % gw
    sorted_channels = flat[order]
    boundaries = np.searchsorted(sorted_channels, np.arange(in_channels + 1))
    result = []
    for c in range(in_channels):
        lo, hi = boundaries[c], boundaries[c + 1]
        result.append(np.stack([oid[lo:hi], col[lo:hi]], axis=1))
    return result
