"""(cg, co) design-space enumeration — the "Xplore" in DSXplore.

The paper frames SCC as a *space* of factorized kernels indexed by the
channel-group count ``cg`` and the overlap ratio ``co``, with PW and GPW as
its corners (Table I).  This module enumerates valid design points for a
layer shape, attaches their analytic FLOPs/params, and extracts Pareto
fronts for accuracy-vs-cost exploration.
"""
from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.channel_map import SCCConfig, cyclic_distance


@dataclass(frozen=True)
class DesignPoint:
    """One SCC configuration with its analytic costs for a given layer."""

    cg: int
    co: float
    flops: float           # MACs for one spatial position x Fw*Fw, see below
    params: int
    cyclic_dist: int
    accuracy: float | None = None   # filled in by exploration runs

    def label(self) -> str:
        return f"SCC-cg{self.cg}-co{round(self.co * 100)}%"

    def with_accuracy(self, acc: float) -> "DesignPoint":
        return replace(self, accuracy=acc)


def layer_costs(in_channels: int, out_channels: int, cg: int, spatial: int = 1) -> tuple[float, int]:
    """(FLOPs, params) of one SCC/GPW layer at a ``spatial x spatial`` map.

    Each of the ``Cout`` filters does ``Cin/cg`` multiply-accumulates per
    pixel.  Note the cost depends on ``cg`` only — ``co`` is free (paper
    Table IV: co changes accuracy, not cost; Fig. 12: nor runtime).
    """
    gw = in_channels // cg
    flops = 2.0 * out_channels * gw * spatial * spatial
    params = out_channels * gw
    return flops, params


def enumerate_configs(
    in_channels: int,
    out_channels: int,
    cgs: tuple[int, ...] = (1, 2, 4, 8),
    cos: tuple[float, ...] = (0.0, 0.25, 1.0 / 3.0, 0.5, 0.75),
    spatial: int = 1,
) -> list[DesignPoint]:
    """All valid design points for a layer shape, skipping invalid combos."""
    points = []
    for cg in cgs:
        if in_channels % cg or out_channels % cg:
            continue
        for co in cos:
            try:
                SCCConfig(in_channels, out_channels, cg, co)
            except ValueError:
                continue
            flops, params = layer_costs(in_channels, out_channels, cg, spatial)
            cd = cyclic_distance(in_channels, cg, co, out_channels)
            points.append(DesignPoint(cg=cg, co=co, flops=flops, params=params, cyclic_dist=cd))
    return points


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Points not dominated on (lower flops, lower params, higher accuracy).

    Points lacking an accuracy value are compared on cost alone.
    """

    def dominates(a: DesignPoint, b: DesignPoint) -> bool:
        acc_a = a.accuracy if a.accuracy is not None else 0.0
        acc_b = b.accuracy if b.accuracy is not None else 0.0
        no_worse = a.flops <= b.flops and a.params <= b.params and acc_a >= acc_b
        better = a.flops < b.flops or a.params < b.params or acc_a > acc_b
        return no_worse and better

    return [p for p in points if not any(dominates(q, p) for q in points if q is not p)]
