"""Autograd integration of SCC: Function + the drop-in nn.Module.

This is the reproduction of the paper's "integrated our SCC design with the
original Pytorch framework as the drop-in replacement of the existing DSCs":
:class:`SlidingChannelConv2d` slots anywhere a
:class:`~repro.nn.conv.PointwiseConv2d` / GPW module does, and trains
end-to-end through :mod:`repro.tensor` exactly like the CUDA kernel trains
through ``torch.autograd.Function``.
"""
from __future__ import annotations

import math

import numpy as np

from repro.core.channel_map import SCCConfig
from repro.core.scc_kernels import _StrategyBase, make_strategy
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor.function import Function
from repro.utils.rng import get_rng

class SCCFunction(Function):
    """Differentiable SCC op delegating to a kernel strategy.

    The per-call state a backend kernel saves between forward and backward
    (``strategy._saved``) is checkpointed onto the Function node, so one
    strategy instance — with its cached plan (window/segment tables, the
    Algorithm-2 reuse) — can be shared across many forward calls and the
    graph stays re-entrant.
    """

    def forward(self, x: np.ndarray, w: np.ndarray, strategy: _StrategyBase = None) -> np.ndarray:
        if strategy is None:
            raise ValueError("SCCFunction requires a kernel strategy instance")
        self.strategy = strategy
        out = strategy.forward(x, w)
        self.saved_state = strategy._saved
        return out

    def backward(self, grad_output: np.ndarray):
        strategy = self.strategy
        strategy._saved = self.saved_state
        need_x, need_w = self.needs_input_grad
        grad_x, grad_w = strategy.backward(
            grad_output, need_input_grad=need_x, need_weight_grad=need_w
        )
        return grad_x, grad_w


class SlidingChannelConv2d(Module):
    """Sliding-channel convolution layer (the paper's SCC kernel).

    Drop-in replacement for the pointwise stage of a depthwise-separable
    block.  Weight shape is ``(out_channels, group_width)`` — each filter
    owns one scalar per channel in its sliding window.

    Parameters
    ----------
    cg:
        number of channel groups; each filter reads ``in_channels / cg``
        input channels.
    co:
        overlap ratio between adjacent filters' windows, in ``[0, 1)``.
    impl:
        execution strategy: ``"dsxplore"`` (fused, default),
        ``"conv_stack"`` (*Pytorch-Opt*), or ``"channel_stack"``
        (*Pytorch-Base*).  All three compute identical math; see
        :mod:`repro.core.scc_kernels`.
    backward_design:
        for ``impl="dsxplore"`` only: ``"input_centric"`` (default) or
        ``"output_centric"`` (the DSXplore-Var ablation).
    backend:
        kernel backend the strategy dispatches through
        (:mod:`repro.backend`): ``"default"``, ``"numpy"`` or
        ``"reference"``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        cg: int,
        co: float,
        bias: bool = True,
        impl: str = "dsxplore",
        backward_design: str = "input_centric",
        backend: str = "default",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.config = SCCConfig(in_channels, out_channels, cg, co)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.cg = cg
        self.co = co
        self.impl = impl
        self.backward_design = backward_design
        self.backend = backend
        kwargs = {"backward_design": backward_design} if impl == "dsxplore" else {}
        self.strategy = make_strategy(impl, self.config, backend=backend, **kwargs)

        gen = rng if rng is not None else get_rng()
        gw = self.config.group_width
        std = math.sqrt(2.0 / gw)
        self.weight = Parameter((gen.standard_normal((out_channels, gw)) * std).astype(np.float32))
        if bias:
            bound = 1.0 / math.sqrt(gw)
            self.bias = Parameter(gen.uniform(-bound, bound, size=(out_channels,)).astype(np.float32))
        else:
            self.bias = None
        # Set by repro.nn.fuse.fuse_inference: absorbed bias/BN/activation
        # stages applied per cycle-position slab inside the SCC forward.
        self._fused_epilogue = None

    def forward(self, x: Tensor) -> Tensor:
        ep = self._fused_epilogue
        if ep is not None:
            return self._forward_fused(x, ep)
        out = SCCFunction.apply(x, self.weight, strategy=self.strategy)
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return out

    def _forward_fused(self, x: Tensor, ep) -> Tensor:
        from repro.tensor.tensor import is_grad_enabled

        if not self.training and not is_grad_enabled():
            out = self.strategy.forward(
                x.data, self.weight.data, epilogue=ep.kernel_args()
            )
            return Tensor(out)
        out = SCCFunction.apply(x, self.weight, strategy=self.strategy)
        return ep.apply_composed(out)

    @property
    def cyclic_dist(self) -> int:
        return self.strategy.cyclic_dist

    def set_impl(self, impl: str, backward_design: str | None = None) -> None:
        """Swap execution strategy in place (weights unchanged)."""
        self.impl = impl
        if backward_design is not None:
            self.backward_design = backward_design
        kwargs = (
            {"backward_design": self.backward_design} if impl == "dsxplore" else {}
        )
        object.__setattr__(
            self,
            "strategy",
            make_strategy(impl, self.config, backend=self.backend, **kwargs),
        )

    def __repr__(self) -> str:
        return (
            f"SlidingChannelConv2d({self.in_channels}, {self.out_channels}, "
            f"cg={self.cg}, co={self.co:.2f}, impl={self.impl}, "
            f"bias={self.bias is not None})"
        )
