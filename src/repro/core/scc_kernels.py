"""The three SCC execution strategies (paper Section IV) as ndarray kernels.

SCC is spatially 1x1 (it replaces the PW stage of a DW+PW block), so an SCC
layer is fully described by the input ``x (N, Cin, H, W)``, the weight
``w (Cout, group_width)`` and the window matrix from
:mod:`repro.core.channel_map`.

Strategy classes (each bundles forward + full backward, mirroring one of the
paper's implementations, and exposes instrumentation counters that
:mod:`repro.gpusim` cross-checks):

================  =====================================================
ChannelStack      *Pytorch-Base*: gather every filter's window into one
                  huge (N, Cout, gw, H, W) stacked tensor (massive data
                  duplication), then one grouped reduction.  Backward
                  keeps the stacked tensor and scatter-adds the input
                  gradient (the "conflict update" of paper Fig. 4a).
ConvStackCC       *Pytorch-Opt*: channel-cyclic optimisation — only the
                  ``cyclic_dist`` distinct windows of the first cycle are
                  gathered (copied); each drives one small GEMM.
Dsxplore          the fused kernel: output-centric forward reading input
                  channels through zero-copy views (no gather, no
                  duplication), input-centric backward computing each
                  input-gradient pixel as a "pull" reduction with zero
                  scatter/atomic traffic.  ``backward_design`` can be set
                  to ``"output_centric"`` to get the paper's
                  *DSXplore-Var* ablation (scatter/atomics emulated with
                  ``np.add.at``, which serialises conflicting updates
                  exactly like GPU atomics do).
================  =====================================================

Execution routes through :mod:`repro.backend`: every strategy shares the
per-configuration :class:`~repro.backend.plan.SCCPlan` (window matrix,
channel cycle, segment table — paper Algorithms 1+2, computed once per
process) and dispatches the actual kernel through the registry.  The
``numpy`` backend implements all three strategies; the ``reference``
backend runs the defining loop equation for any of them.

CPU/GPU mapping note (DESIGN.md section 2): relative costs transfer because
the dominant effects — materialised bytes, number of distinct kernel
invocations, and serialised conflicting updates — exist on both targets.
``np.add.at`` is NumPy's unbuffered scatter-add: conflicting updates are
applied sequentially, which is the same serialisation GPU atomics pay.
"""
from __future__ import annotations

import inspect

import numpy as np

from repro.backend import KernelStats, dispatch_plan, get_kernel, scc_plan
from repro.backend.reference import scc_forward_loops
from repro.core.channel_map import SCCConfig

__all__ = [
    "KernelStats",
    "ChannelStack",
    "ConvStackCC",
    "Dsxplore",
    "STRATEGIES",
    "make_strategy",
    "scc_forward_reference",
]


def scc_forward_reference(x: np.ndarray, w: np.ndarray, windows: np.ndarray) -> np.ndarray:
    """Dead-simple loop implementation of paper Eq. for SCC; tests only."""
    return scc_forward_loops(x, w, windows)


class _StrategyBase:
    """Shared plumbing: cached plan, registry dispatch, saved-state handling."""

    name: str = ""

    def __init__(self, config: SCCConfig, backend: str = "default") -> None:
        self.config = config
        self.backend = backend
        self.plan = scc_plan(config)
        self.stats = KernelStats()
        self._forward_kernel = get_kernel("scc_forward", backend)
        self._backward_kernel = get_kernel("scc_backward", backend)
        self._backward_kwargs: dict = {}
        # Per-call state the kernel saves between forward and backward; the
        # autograd wrapper (repro.core.scc) checkpoints this dict so one
        # strategy instance stays re-entrant across many forward calls.
        self._saved: dict | None = None

    @property
    def windows(self) -> np.ndarray:
        return self.plan.windows

    @property
    def cycle(self) -> list:
        return self.plan.cycle

    @property
    def cyclic_dist(self) -> int:
        return self.plan.cyclic_dist

    def _check_shapes(self, x: np.ndarray, w: np.ndarray) -> None:
        cfg = self.config
        if x.ndim != 4 or x.shape[1] != cfg.in_channels:
            raise ValueError(
                f"expected input (N, {cfg.in_channels}, H, W), got {x.shape}"
            )
        if w.shape != (cfg.out_channels, cfg.group_width):
            raise ValueError(
                f"expected weight ({cfg.out_channels}, {cfg.group_width}), got {w.shape}"
            )

    def forward(self, x: np.ndarray, w: np.ndarray, epilogue=None) -> np.ndarray:
        self._check_shapes(x, w)
        self.stats.reset()
        # The kwarg is passed only when set, so backends (or test doubles)
        # with the pre-fusion signature keep working unfused.
        kwargs = {} if epilogue is None else {"epilogue": epilogue}
        # Strategies bind their kernel at construction, so only the plan's
        # tuned worker count applies here (apply_backend=False): a recorded
        # backend cannot re-steer an already-resolved kernel.
        with dispatch_plan(self.plan, apply_backend=False):
            out, self._saved = self._forward_kernel(
                self.plan, x, w, strategy=self.name, stats=self.stats, **kwargs
            )
        return out

    def backward(
        self, grad_out: np.ndarray, need_input_grad: bool = True, need_weight_grad: bool = True
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        if self._saved is None:
            raise RuntimeError(f"{type(self).__name__}.backward called before forward")
        with dispatch_plan(self.plan, apply_backend=False):
            return self._backward_kernel(
                self.plan,
                self._saved,
                grad_out,
                strategy=self.name,
                stats=self.stats,
                need_input_grad=need_input_grad,
                need_weight_grad=need_weight_grad,
                **self._backward_kwargs,
            )


class ChannelStack(_StrategyBase):
    """*Pytorch-Base*: channel-stack implementation (paper Fig. 3a).

    Steps 1-4 of the paper: index -> extract -> concatenate -> grouped conv.
    The concatenated tensor has ``Cout * group_width`` channels — ``cg``-fold
    larger than the input even before overlap, which is why this strategy
    OOMs at ImageNet scale (paper Section V-C).
    """

    name = "channel_stack"


class ConvStackCC(_StrategyBase):
    """*Pytorch-Opt*: convolution-stack with channel-cyclic optimisation.

    Only the first cycle of distinct windows is extracted (paper Fig. 6b);
    filters ``p, p+cd, p+2cd, ...`` share window ``p`` and run as one GPW-like
    GEMM.  Output channels are written strided (the "concatenation" step is
    an interleave, done without an extra buffer here).
    """

    name = "conv_stack"


class Dsxplore(_StrategyBase):
    """The fused DSXplore kernel (paper Section IV-B).

    Forward — *output-centric*: every output pixel ``out[n, o, y, x]`` is an
    independent dot product ``w[o, :] . x[n, win(o), y, x]`` (one GPU thread
    each in the paper).  Vectorised as one contraction per cycle position
    *per contiguous window segment*, reading ``x`` through zero-copy
    channel-slice views — no gather, no duplication.

    Backward — *input-centric* by default: the dense per-output-channel
    weight matrix ``W_full (Cout, Cin)`` (zeros outside each filter's
    window) turns the input gradient into one pull-style GEMM
    ``grad_x = grad_out . W_full`` with zero scatter traffic; each
    input-gradient pixel is produced by exactly one reduction, the CPU
    analog of "one thread per input pixel, no atomics" (paper Fig. 4b).
    ``backward_design="output_centric"`` switches to the *DSXplore-Var*
    push design: materialise per-filter contributions and scatter-add them
    into the input gradient, conflicts serialised by ``np.add.at`` the way
    GPU atomics serialise colliding updates.
    """

    name = "dsxplore"

    def __init__(
        self,
        config: SCCConfig,
        backward_design: str = "input_centric",
        backend: str = "default",
    ) -> None:
        if backward_design not in ("input_centric", "output_centric"):
            raise ValueError(
                f"backward_design must be 'input_centric' or 'output_centric', "
                f"got {backward_design!r}"
            )
        super().__init__(config, backend=backend)
        self.backward_design = backward_design
        self._backward_kwargs = {"backward_design": backward_design}


STRATEGIES = {
    "channel_stack": ChannelStack,
    "conv_stack": ConvStackCC,
    "dsxplore": Dsxplore,
}


def make_strategy(name: str, config: SCCConfig, **kwargs) -> _StrategyBase:
    """Instantiate a strategy by paper name (see module docstring table)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown SCC strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None
    params = inspect.signature(cls).parameters
    unknown = sorted(set(kwargs) - set(params))
    if unknown:
        accepted = sorted(k for k in params if k != "config")
        raise ValueError(
            f"strategy {name!r} got unexpected keyword argument(s) "
            f"{', '.join(map(repr, unknown))}; {name!r} accepts: {accepted}"
        )
    return cls(config, **kwargs)
