"""The three SCC execution strategies (paper Section IV) as ndarray kernels.

SCC is spatially 1x1 (it replaces the PW stage of a DW+PW block), so an SCC
layer is fully described by the input ``x (N, Cin, H, W)``, the weight
``w (Cout, group_width)`` and the window matrix from
:mod:`repro.core.channel_map`.

Strategy classes (each bundles forward + full backward, mirroring one of the
paper's implementations, and exposes instrumentation counters that
:mod:`repro.gpusim` cross-checks):

================  =====================================================
ChannelStack      *Pytorch-Base*: gather every filter's window into one
                  huge (N, Cout, gw, H, W) stacked tensor (massive data
                  duplication), then one grouped reduction.  Backward
                  keeps the stacked tensor and scatter-adds the input
                  gradient (the "conflict update" of paper Fig. 4a).
ConvStackCC       *Pytorch-Opt*: channel-cyclic optimisation — only the
                  ``cyclic_dist`` distinct windows of the first cycle are
                  gathered (copied); each drives one small GEMM.
Dsxplore          the fused kernel: output-centric forward reading input
                  channels through zero-copy views (no gather, no
                  duplication), input-centric backward computing each
                  input-gradient pixel as a "pull" reduction with zero
                  scatter/atomic traffic.  ``backward_design`` can be set
                  to ``"output_centric"`` to get the paper's
                  *DSXplore-Var* ablation (scatter/atomics emulated with
                  ``np.add.at``, which serialises conflicting updates
                  exactly like GPU atomics do).
================  =====================================================

CPU/GPU mapping note (DESIGN.md section 2): relative costs transfer because
the dominant effects — materialised bytes, number of distinct kernel
invocations, and serialised conflicting updates — exist on both targets.
``np.add.at`` is NumPy's unbuffered scatter-add: conflicting updates are
applied sequentially, which is the same serialisation GPU atomics pay.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.channel_map import (
    SCCConfig,
    channel_windows,
    compute_channel_cycle,
    window_segments,
)


@dataclass
class KernelStats:
    """Instrumentation counters accumulated by one strategy invocation."""

    bytes_materialized: int = 0      # temporary buffers allocated (data duplication)
    gemm_calls: int = 0              # distinct contraction launches
    scatter_adds: int = 0            # elementwise updates via scatter (atomic analog)
    conflicting_scatter_adds: int = 0  # scatter updates hitting already-touched cells

    def reset(self) -> None:
        self.bytes_materialized = 0
        self.gemm_calls = 0
        self.scatter_adds = 0
        self.conflicting_scatter_adds = 0


def scc_forward_reference(x: np.ndarray, w: np.ndarray, windows: np.ndarray) -> np.ndarray:
    """Dead-simple loop implementation of paper Eq. for SCC; tests only."""
    n, cin, h, wdt = x.shape
    cout, gw = w.shape
    out = np.zeros((n, cout, h, wdt), dtype=np.result_type(x, w))
    for o in range(cout):
        for g in range(gw):
            out[:, o] += w[o, g] * x[:, windows[o, g]]
    return out.astype(x.dtype)


class _StrategyBase:
    """Shared config plumbing for the three strategies."""

    def __init__(self, config: SCCConfig) -> None:
        self.config = config
        self.windows = channel_windows(
            config.in_channels, config.out_channels, config.cg, config.co
        )
        self.cycle = compute_channel_cycle(
            config.in_channels, config.cg, config.co, config.out_channels
        )
        self.cyclic_dist = len(self.cycle)
        self.stats = KernelStats()

    def _check_shapes(self, x: np.ndarray, w: np.ndarray) -> None:
        cfg = self.config
        if x.ndim != 4 or x.shape[1] != cfg.in_channels:
            raise ValueError(
                f"expected input (N, {cfg.in_channels}, H, W), got {x.shape}"
            )
        if w.shape != (cfg.out_channels, cfg.group_width):
            raise ValueError(
                f"expected weight ({cfg.out_channels}, {cfg.group_width}), got {w.shape}"
            )

    def forward(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(
        self, grad_out: np.ndarray, need_input_grad: bool = True, need_weight_grad: bool = True
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        raise NotImplementedError


class ChannelStack(_StrategyBase):
    """*Pytorch-Base*: channel-stack implementation (paper Fig. 3a).

    Steps 1-4 of the paper: index -> extract -> concatenate -> grouped conv.
    The concatenated tensor has ``Cout * group_width`` channels — ``cg``-fold
    larger than the input even before overlap, which is why this strategy
    OOMs at ImageNet scale (paper Section V-C).
    """

    def forward(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        self._check_shapes(x, w)
        self.stats.reset()
        # Steps 1-3: one fancy-index gather == slice+concat of every window.
        stacked = x[:, self.windows]                      # (N, Cout, gw, H, W) copy
        self.stats.bytes_materialized += stacked.nbytes
        self.stats.gemm_calls += 1
        self._x = x
        self._w = w
        self._stacked = stacked
        # Step 4: grouped convolution with groups == Cout.
        return np.einsum("noghw,og->nohw", stacked, w, optimize=True)

    def backward(self, grad_out, need_input_grad=True, need_weight_grad=True):
        w, stacked = self._w, self._stacked
        grad_x = grad_w = None
        if need_weight_grad:
            grad_w = np.einsum("nohw,noghw->og", grad_out, stacked, optimize=True)
            self.stats.gemm_calls += 1
        if need_input_grad:
            # Reverse of the concat/extract: scatter the stacked gradient
            # back, with conflicts wherever windows overlap.
            grad_stacked = np.einsum("nohw,og->noghw", grad_out, w, optimize=True)
            self.stats.bytes_materialized += grad_stacked.nbytes
            self.stats.gemm_calls += 1
            grad_x = np.zeros_like(self._x)
            n = grad_out.shape[0]
            idx_n = np.arange(n)[:, None, None]
            np.add.at(grad_x, (idx_n, self.windows[None, :, :]), grad_stacked)
            self._count_scatter(grad_stacked.size)
        return grad_x, grad_w

    def _count_scatter(self, total_updates: int) -> None:
        cfg = self.config
        self.stats.scatter_adds += total_updates
        # Each input channel is read by Cout*gw/Cin filters on average; every
        # read beyond the first conflicts during the scatter.
        reads_per_channel = cfg.out_channels * cfg.group_width / cfg.in_channels
        conflict_fraction = max(0.0, 1.0 - 1.0 / reads_per_channel)
        self.stats.conflicting_scatter_adds += int(total_updates * conflict_fraction)


class ConvStackCC(_StrategyBase):
    """*Pytorch-Opt*: convolution-stack with channel-cyclic optimisation.

    Only the first cycle of distinct windows is extracted (paper Fig. 6b);
    filters ``p, p+cd, p+2cd, ...`` share window ``p`` and run as one GPW-like
    GEMM.  Output channels are written strided (the "concatenation" step is
    an interleave, done without an extra buffer here).
    """

    def forward(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        self._check_shapes(x, w)
        self.stats.reset()
        cfg = self.config
        cd = self.cyclic_dist
        n, _, h, wdt = x.shape
        out = np.empty((n, cfg.out_channels, h, wdt), dtype=x.dtype)
        self._gathered: list[np.ndarray] = []
        gw = cfg.group_width
        for p, (start, _end) in enumerate(self.cycle):
            idx = (start + np.arange(gw)) % cfg.in_channels
            win = x[:, idx]                               # (N, gw, H, W) copy
            self.stats.bytes_materialized += win.nbytes
            self._gathered.append(win)
            out[:, p::cd] = np.einsum("nghw,og->nohw", win, w[p::cd], optimize=True)
            self.stats.gemm_calls += 1
        self._x = x
        self._w = w
        return out

    def backward(self, grad_out, need_input_grad=True, need_weight_grad=True):
        cfg = self.config
        cd = self.cyclic_dist
        gw = cfg.group_width
        w = self._w
        grad_x = np.zeros_like(self._x) if need_input_grad else None
        grad_w = np.empty_like(w) if need_weight_grad else None
        for p, (start, _end) in enumerate(self.cycle):
            idx = (start + np.arange(gw)) % cfg.in_channels
            g = grad_out[:, p::cd]
            if need_weight_grad:
                grad_w[p::cd] = np.einsum("nohw,nghw->og", g, self._gathered[p], optimize=True)
                self.stats.gemm_calls += 1
            if need_input_grad:
                contrib = np.einsum("nohw,og->nghw", g, w[p::cd], optimize=True)
                self.stats.bytes_materialized += contrib.nbytes
                self.stats.gemm_calls += 1
                # Within one cycle position the window channels are distinct,
                # so a fancy-index += is conflict-free; conflicts across
                # cycle positions are resolved by this serial per-p loop
                # (framework-level serialisation, the paper's point about
                # composed-operator implementations).
                grad_x[:, idx] += contrib
                self.stats.scatter_adds += contrib.size
        return grad_x, grad_w


class Dsxplore(_StrategyBase):
    """The fused DSXplore kernel (paper Section IV-B).

    Forward — *output-centric*: every output pixel ``out[n, o, y, x]`` is an
    independent dot product ``w[o, :] . x[n, win(o), y, x]`` (one GPU thread
    each in the paper).  Vectorised here as one contraction per cycle
    position *per contiguous window segment*, reading ``x`` through
    zero-copy channel-slice views — no gather, no duplication.

    Backward — *input-centric* by default: the dense per-output-channel
    weight matrix ``W_full (Cout, Cin)`` (zeros outside each filter's
    window) turns the input gradient into one pull-style GEMM
    ``grad_x = grad_out . W_full`` with zero scatter traffic; each
    input-gradient pixel is produced by exactly one reduction, the CPU
    analog of "one thread per input pixel, no atomics" (paper Fig. 4b).
    ``backward_design="output_centric"`` switches to the *DSXplore-Var*
    push design: materialise per-filter contributions and scatter-add them
    into the input gradient, conflicts serialised by ``np.add.at`` the way
    GPU atomics serialise colliding updates.
    """

    def __init__(self, config: SCCConfig, backward_design: str = "input_centric") -> None:
        super().__init__(config)
        if backward_design not in ("input_centric", "output_centric"):
            raise ValueError(
                f"backward_design must be 'input_centric' or 'output_centric', "
                f"got {backward_design!r}"
            )
        self.backward_design = backward_design
        # Algorithm 2: the per-cycle segment table is computed once and
        # reused by every forward/backward call (channel-cyclic index reuse).
        self._segments = [
            window_segments(start, config.group_width, config.in_channels)
            for start, _ in self.cycle
        ]

    def forward(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        self._check_shapes(x, w)
        self.stats.reset()
        cfg = self.config
        cd = self.cyclic_dist
        n, _, h, wdt = x.shape
        out = np.zeros((n, cfg.out_channels, h, wdt), dtype=x.dtype)
        for p, segments in enumerate(self._segments):
            wp = w[p::cd]
            for chan_slice, col_slice in segments:
                # x[:, chan_slice] is a view — zero bytes materialised.
                out[:, p::cd] += np.einsum(
                    "nchw,oc->nohw", x[:, chan_slice], wp[:, col_slice], optimize=True
                )
                self.stats.gemm_calls += 1
        self._x = x
        self._w = w
        return out

    def backward(self, grad_out, need_input_grad=True, need_weight_grad=True):
        grad_w = self._backward_weight(grad_out) if need_weight_grad else None
        grad_x = None
        if need_input_grad:
            if self.backward_design == "input_centric":
                grad_x = self._backward_input_pull(grad_out)
            else:
                grad_x = self._backward_input_push(grad_out)
        return grad_x, grad_w

    def _backward_weight(self, grad_out: np.ndarray) -> np.ndarray:
        cd = self.cyclic_dist
        x = self._x
        grad_w = np.empty_like(self._w)
        for p, segments in enumerate(self._segments):
            g = grad_out[:, p::cd]
            for chan_slice, col_slice in segments:
                grad_w[p::cd, col_slice] = np.einsum(
                    "nohw,nchw->oc", g, x[:, chan_slice], optimize=True
                )
                self.stats.gemm_calls += 1
        return grad_w

    def _backward_input_pull(self, grad_out: np.ndarray) -> np.ndarray:
        """Input-centric: one dense pull GEMM, zero scatter updates."""
        cfg = self.config
        w_full = np.zeros((cfg.out_channels, cfg.in_channels), dtype=self._w.dtype)
        oid = np.arange(cfg.out_channels)[:, None]
        w_full[oid, self.windows] = self._w     # collision-free: rows distinct
        self.stats.bytes_materialized += w_full.nbytes
        grad_x = np.einsum("nohw,oc->nchw", grad_out, w_full, optimize=True)
        self.stats.gemm_calls += 1
        return grad_x.astype(self._x.dtype, copy=False)

    def _backward_input_push(self, grad_out: np.ndarray) -> np.ndarray:
        """Output-centric (*DSXplore-Var*): push with serialised conflicts."""
        cfg = self.config
        contrib = np.einsum("nohw,og->noghw", grad_out, self._w, optimize=True)
        self.stats.bytes_materialized += contrib.nbytes
        self.stats.gemm_calls += 1
        grad_x = np.zeros_like(self._x)
        n = grad_out.shape[0]
        idx_n = np.arange(n)[:, None, None]
        np.add.at(grad_x, (idx_n, self.windows[None, :, :]), contrib)
        self.stats.scatter_adds += contrib.size
        reads_per_channel = cfg.out_channels * cfg.group_width / cfg.in_channels
        conflict_fraction = max(0.0, 1.0 - 1.0 / reads_per_channel)
        self.stats.conflicting_scatter_adds += int(contrib.size * conflict_fraction)
        return grad_x


STRATEGIES = {
    "channel_stack": ChannelStack,
    "conv_stack": ConvStackCC,
    "dsxplore": Dsxplore,
}


def make_strategy(name: str, config: SCCConfig, **kwargs) -> _StrategyBase:
    """Instantiate a strategy by paper name (see module docstring table)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown SCC strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None
    return cls(config, **kwargs)
