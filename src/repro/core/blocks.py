"""Depthwise-separable blocks and the drop-in model conversion pass.

The paper evaluates three block flavours built on the same DW stage:

- ``DW+PW`` — the MobileNet/Xception baseline (paper Eq. 2+3),
- ``DW+GPW-cgX`` — grouped pointwise, no overlap,
- ``DW+SCC-cgX-coY%`` — the paper's contribution.

:func:`convert_model` is the "drop-in replacement" integration: it walks any
:class:`~repro.nn.module.Module` tree and swaps each standard convolution
(kernel > 1, groups == 1) for a DW + <pointwise-stage> block with the same
shape signature, skipping the RGB stem and layers too narrow to group —
matching the paper's rule that cg must respect the smallest channel count
and that already-lightweight 1x1 convolutions (e.g. ResNet bottleneck PWs,
downsample shortcuts) are left alone.
"""
from __future__ import annotations

from typing import Callable

import numpy as np

from repro import nn
from repro.core.scc import SlidingChannelConv2d
from repro.tensor import Tensor

SCHEMES = ("pw", "gpw", "scc")


def _pointwise_stage(
    scheme: str,
    in_channels: int,
    out_channels: int,
    cg: int,
    co: float,
    bias: bool,
    impl: str,
    backend: str,
    rng: np.random.Generator | None,
) -> nn.Module:
    if scheme == "pw":
        return nn.PointwiseConv2d(in_channels, out_channels, bias=bias,
                                  backend=backend, rng=rng)
    if scheme == "gpw":
        return nn.GroupPointwiseConv2d(in_channels, out_channels, groups=cg, bias=bias,
                                       backend=backend, rng=rng)
    if scheme == "scc":
        return SlidingChannelConv2d(
            in_channels, out_channels, cg=cg, co=co, bias=bias, impl=impl,
            backend=backend, rng=rng
        )
    raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")


class DepthwiseSeparableBlock(nn.Module):
    """DW (spatial) + BN + ReLU + {PW|GPW|SCC} (channel fusion) + BN + ReLU."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        kernel_size: int = 3,
        scheme: str = "pw",
        cg: int = 2,
        co: float = 0.5,
        with_bn: bool = True,
        impl: str = "dsxplore",
        final_act: bool = True,
        backend: str = "default",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.scheme = scheme
        padding = kernel_size // 2
        self.depthwise = nn.DepthwiseConv2d(
            in_channels, kernel_size=kernel_size, stride=stride, padding=padding,
            backend=backend, rng=rng
        )
        self.bn1 = nn.BatchNorm2d(in_channels) if with_bn else nn.Identity()
        self.act1 = nn.ReLU()
        self.pointwise = _pointwise_stage(
            scheme, in_channels, out_channels, cg, co, bias=not with_bn, impl=impl,
            backend=backend, rng=rng
        )
        self.bn2 = nn.BatchNorm2d(out_channels) if with_bn else nn.Identity()
        # final_act=False keeps the block linear at its output, for use as a
        # conv replacement feeding a residual add.
        self.act2 = nn.ReLU() if final_act else nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        x = self.act1(self.bn1(self.depthwise(x)))
        return self.act2(self.bn2(self.pointwise(x)))

    def __repr__(self) -> str:
        return f"DepthwiseSeparableBlock(scheme={self.scheme})\n" + super().__repr__()


def make_separable_block(
    in_channels: int,
    out_channels: int,
    stride: int = 1,
    scheme: str = "scc",
    cg: int = 2,
    co: float = 0.5,
    kernel_size: int = 3,
    impl: str = "dsxplore",
    final_act: bool = True,
    backend: str = "default",
    rng: np.random.Generator | None = None,
) -> DepthwiseSeparableBlock:
    """Factory used by the model zoo and by :func:`convert_model`."""
    return DepthwiseSeparableBlock(
        in_channels,
        out_channels,
        stride=stride,
        kernel_size=kernel_size,
        scheme=scheme,
        cg=cg,
        co=co,
        impl=impl,
        final_act=final_act,
        backend=backend,
        rng=rng,
    )


def _should_convert(module: nn.Conv2d, min_channels: int, cg: int) -> bool:
    return (
        module.kernel_size > 1
        and module.groups == 1
        and module.in_channels >= min_channels
        and module.in_channels % cg == 0
        and module.out_channels % cg == 0
    )


def convert_model(
    model: nn.Module,
    scheme: str = "scc",
    cg: int = 2,
    co: float = 0.5,
    min_channels: int = 8,
    impl: str = "dsxplore",
    backend: str = "default",
    rng: np.random.Generator | None = None,
) -> tuple[nn.Module, int]:
    """Replace standard convolutions with DW+{PW,GPW,SCC} blocks, in place.

    Returns ``(model, n_replaced)``.  Rules (paper Section V-B):

    - only standard convolutions (kernel > 1, ungrouped) are replaced;
    - the RGB stem (``in_channels < min_channels``) is kept;
    - 1x1 convolutions (bottleneck PWs, residual downsamples) are kept —
      they are already lightweight;
    - SCC / GPW pointwise stages inside existing separable blocks can be
      swapped by building the model with the target scheme instead
      (see :mod:`repro.models.mobilenet`).
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    replaced = 0
    for _, parent in model.named_modules():
        for child_name, child in list(parent._modules.items()):
            if isinstance(child, nn.Conv2d) and not isinstance(child, nn.DepthwiseConv2d):
                if _should_convert(child, min_channels, cg):
                    block = make_separable_block(
                        child.in_channels,
                        child.out_channels,
                        stride=child.stride,
                        scheme=scheme,
                        cg=cg,
                        co=co,
                        kernel_size=child.kernel_size,
                        impl=impl,
                        backend=backend,
                        rng=rng,
                    )
                    setattr(parent, child_name, block)
                    replaced += 1
    return model, replaced


def set_scc_impl(model: nn.Module, impl: str, backward_design: str | None = None) -> int:
    """Switch the execution strategy of every SCC layer in ``model``.

    This is how the runtime benchmarks compare Pytorch-Base / Pytorch-Opt /
    DSXplore on the *same trained weights*.  Returns the number of layers
    switched.
    """
    count = 0
    for _, module in model.named_modules():
        if isinstance(module, SlidingChannelConv2d):
            module.set_impl(impl, backward_design)
            count += 1
    return count
