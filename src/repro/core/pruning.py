"""Factorized kernels + pruning (paper Section II-C's "potential research
direction").

The paper argues its kernel redesign is orthogonal to weight pruning and
flags the combination as future work.  This module implements the simplest
principled combination: global magnitude pruning of SCC weights with mask
re-application after each optimizer step (the standard masked-training
recipe), plus sparsity-aware cost accounting so the design-space tools can
include pruned points.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.core.scc import SlidingChannelConv2d


@dataclass
class PruningReport:
    """What a pruning pass did to a model."""

    layers_pruned: int
    weights_total: int
    weights_zeroed: int

    @property
    def sparsity(self) -> float:
        return self.weights_zeroed / max(self.weights_total, 1)


class SCCPruner:
    """Global magnitude pruning over every SCC layer in a model.

    ``sparsity`` is the global fraction of SCC weights to zero; the
    threshold is computed over all SCC layers jointly, so thin layers are
    not forced to the same local sparsity as wide ones.
    """

    def __init__(self, model: nn.Module, sparsity: float) -> None:
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
        self.model = model
        self.sparsity = sparsity
        self.masks: dict[int, np.ndarray] = {}
        self._layers = [
            m for _, m in model.named_modules() if isinstance(m, SlidingChannelConv2d)
        ]
        if not self._layers:
            raise ValueError("model contains no SCC layers to prune")

    def prune(self) -> PruningReport:
        """Compute masks from current magnitudes and zero the weights."""
        magnitudes = np.concatenate(
            [np.abs(layer.weight.data).reshape(-1) for layer in self._layers]
        )
        if self.sparsity == 0.0:
            threshold = -np.inf
        else:
            threshold = np.quantile(magnitudes, self.sparsity)
        zeroed = 0
        for layer in self._layers:
            mask = (np.abs(layer.weight.data) > threshold).astype(np.float32)
            self.masks[id(layer)] = mask
            layer.weight.data = layer.weight.data * mask
            zeroed += int((mask == 0).sum())
        return PruningReport(
            layers_pruned=len(self._layers),
            weights_total=int(magnitudes.size),
            weights_zeroed=zeroed,
        )

    def reapply(self) -> None:
        """Re-zero pruned positions (call after each optimizer step)."""
        if not self.masks:
            raise RuntimeError("reapply() before prune(); no masks computed")
        for layer in self._layers:
            layer.weight.data = layer.weight.data * self.masks[id(layer)]

    def effective_parameters(self) -> int:
        """Nonzero SCC weights (for sparsity-aware cost reporting)."""
        return int(sum((layer.weight.data != 0).sum() for layer in self._layers))
