"""Shift convolution (paper Section II-B, ref [10]) — the zero-FLOP spatial op.

The paper cites Shift convolution as the other post-DW factorized-kernel
idea: replace the depthwise *convolution* with a per-channel spatial
*shift* (zero FLOPs, zero parameters) and let the following pointwise stage
do all the learning.  We include it so the factorized-kernel taxonomy of
Figure 1 is complete and Shift+SCC blocks can be explored as a design point
beyond the paper's DW+SCC.

Channels are assigned the 9 displacement vectors of a 3x3 neighbourhood
round-robin (the grouping used by the original Shift paper); shifted-in
borders are zero.
"""
from __future__ import annotations

import numpy as np

from repro import nn
from repro.tensor import Tensor
from repro.tensor.function import Function


def shift_offsets(channels: int, kernel_size: int = 3) -> np.ndarray:
    """(channels, 2) integer (dy, dx) displacement per channel."""
    if kernel_size % 2 == 0 or kernel_size < 1:
        raise ValueError(f"kernel_size must be odd and positive, got {kernel_size}")
    half = kernel_size // 2
    grid = [(dy, dx) for dy in range(-half, half + 1) for dx in range(-half, half + 1)]
    return np.array([grid[c % len(grid)] for c in range(channels)], dtype=np.int64)


def _apply_shift(x: np.ndarray, offsets: np.ndarray, reverse: bool = False) -> np.ndarray:
    """Shift each channel by its (dy, dx), zero-filling exposed borders."""
    out = np.zeros_like(x)
    h, w = x.shape[2], x.shape[3]
    for c in range(x.shape[1]):
        dy, dx = offsets[c]
        if reverse:
            dy, dx = -dy, -dx
        src_y = slice(max(0, -dy), min(h, h - dy))
        src_x = slice(max(0, -dx), min(w, w - dx))
        dst_y = slice(max(0, dy), min(h, h + dy))
        dst_x = slice(max(0, dx), min(w, w + dx))
        out[:, c, dst_y, dst_x] = x[:, c, src_y, src_x]
    return out


class ShiftFunction(Function):
    """Autograd shift op; the VJP of a shift is the opposite shift."""

    def forward(self, x: np.ndarray, offsets: np.ndarray = None) -> np.ndarray:
        if offsets is None or offsets.shape != (x.shape[1], 2):
            raise ValueError(
                f"offsets must be (C, 2) for C={x.shape[1]}, got "
                f"{None if offsets is None else offsets.shape}"
            )
        self.offsets = offsets
        return _apply_shift(x, offsets)

    def backward(self, grad: np.ndarray):
        return (_apply_shift(grad, self.offsets, reverse=True),)


class ShiftConv2d(nn.Module):
    """Per-channel spatial shift: zero FLOPs, zero parameters."""

    def __init__(self, channels: int, kernel_size: int = 3) -> None:
        super().__init__()
        self.channels = channels
        self.kernel_size = kernel_size
        self.offsets = shift_offsets(channels, kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[1] != self.channels:
            raise ValueError(
                f"ShiftConv2d({self.channels}) got {x.shape[1]} channels"
            )
        return ShiftFunction.apply(x, offsets=self.offsets)

    def __repr__(self) -> str:
        return f"ShiftConv2d({self.channels}, k={self.kernel_size})"


class ShiftSCCBlock(nn.Module):
    """Shift (spatial) + BN + ReLU + SCC (channel fusion) — a design point
    beyond the paper's DW+SCC: zero spatial FLOPs and params."""

    def __init__(self, in_channels: int, out_channels: int, cg: int = 2,
                 co: float = 0.5, impl: str = "dsxplore",
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        from repro.core.scc import SlidingChannelConv2d

        self.shift = ShiftConv2d(in_channels)
        self.bn1 = nn.BatchNorm2d(in_channels)
        self.act1 = nn.ReLU()
        self.pointwise = SlidingChannelConv2d(in_channels, out_channels, cg=cg,
                                              co=co, bias=False, impl=impl, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.act2 = nn.ReLU()

    def forward(self, x: Tensor) -> Tensor:
        x = self.act1(self.bn1(self.shift(x)))
        return self.act2(self.bn2(self.pointwise(x)))
