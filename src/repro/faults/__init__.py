"""Deterministic fault injection for the serving/backend stack.

See :mod:`repro.faults.plane` for the model: seeded, clock-free fire
decisions per ``(site, key, attempt)``; poisoned request ids for
deterministic per-request failures; ``max_fires`` budgets for scripted
outages.  The serving stack's tolerance layers — bisect-retry isolation,
backoff retries, circuit breakers, backend degradation — are tested and
benchmarked against this plane (``tests/test_faults.py``,
``benchmarks/bench_fault_tolerance.py``).
"""
from repro.faults.plane import (
    FAULT_SITES,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    PoisonedRequest,
    active_faults,
    clear_faults,
    derive_worker_seed,
    install_faults,
    use_faults,
)

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "PoisonedRequest",
    "active_faults",
    "clear_faults",
    "derive_worker_seed",
    "install_faults",
    "use_faults",
]
