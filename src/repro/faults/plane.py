"""The deterministic fault-injection plane.

Production serving treats partial failure as the normal case; this module
makes failure *schedulable* so the serving stack's tolerance machinery
(bisect-retry isolation, backoff retries, circuit breakers, backend
degradation — see :mod:`repro.serve`) can be exercised deterministically,
in the same pure, injected style as the scheduling policies in
:mod:`repro.serve.sched`: no wall clock, no ``random`` module state, no
dependence on thread interleaving for the *decision* of whether a fault
fires.

Every fire decision is a pure function of ``(seed, site, key, attempt)``
hashed through CRC-32 — two runs with the same seed and the same request
trace inject the identical faults, and a retry of the same batch draws a
*different* (but equally deterministic) value because the attempt number
is part of the hash.  That is what lets the chaos soak assert bitwise
identity against a fault-free run: the faults perturb *when* work executes,
never *what* it computes.

Injection sites (``FaultSpec.site``):

``kernel``
    the model forward of one executed batch raises :class:`InjectedFault`
    (transient — a retry may succeed) or :class:`PoisonedRequest`
    (deterministic — any batch containing a poisoned request id raises,
    every time, which is what the bisect-retry isolation converges on);
``slow_batch``
    one executed batch is delayed by ``FaultSpec.delay`` seconds (through
    the transport's injected ``sleep``, so virtual-clock tests never
    actually block);
``plan_build``
    building the batch's :class:`~repro.backend.ModelPlan` raises;
``plan_db_row``
    a :class:`~repro.backend.plan_db.PlanDatabase` record is truncated as
    it is written (a torn write the tolerant loader must survive);
``pool_submit``
    submitting a batch to the shared worker pool raises.

The plane is activated per-process with :func:`install_faults` /
:func:`use_faults`; when no injector is installed every hook is a single
``None`` check (the production path costs nothing and changes nothing).
"""
from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "PoisonedRequest",
    "active_faults",
    "clear_faults",
    "derive_worker_seed",
    "install_faults",
    "use_faults",
]

#: Every place the serving/backend stack consults the plane.
FAULT_SITES = (
    "kernel", "slow_batch", "plan_build", "plan_db_row", "pool_submit",
)


class InjectedFault(RuntimeError):
    """A fault the plane injected (transient unless :class:`PoisonedRequest`).

    Carries its ``site`` so tolerance layers can classify it; transports
    treat it exactly like a real failure of the same site — the plane
    exists so those paths are exercised on demand, not special-cased.
    """

    def __init__(self, site: str, detail: str, key: tuple = ()) -> None:
        super().__init__(f"injected {site} fault: {detail}")
        self.site = site
        self.key = key


class PoisonedRequest(InjectedFault):
    """A *deterministic* kernel fault tied to specific request ids.

    Any batch whose request ids intersect the poison set raises this,
    every time — no retry can succeed, so the only correct response is to
    isolate the poisoned id(s) away from their co-batched neighbours
    (:meth:`repro.serve.engine.ModelExecutor.run_resilient`) and fail just
    them with :class:`~repro.serve.engine.RequestFailed`.
    """

    def __init__(self, ids: Sequence[int], model: str | None = None) -> None:
        self.ids = tuple(sorted(ids))
        self.model = model
        tag = f" of model {model!r}" if model else ""
        super().__init__(
            "kernel", f"poisoned request(s) {list(self.ids)}{tag}", key=self.ids
        )


@dataclass
class FaultSpec:
    """One configured fault source: where, how often, and for whom.

    ``rate`` is the per-opportunity fire probability (each check at the
    spec's site is one opportunity; a retry is a fresh opportunity).
    ``models`` / ``backends`` restrict the spec to matching model names /
    executing kernel backends (``None`` = all) — a backend filter is how
    the degradation tests model "this accelerator is broken": demoting the
    workload off the faulty backend makes the faults stop, which is the
    observable recovery.  ``max_fires`` caps total fires, scripting
    transient outages that end (breaker half-open probes then succeed and
    close the breaker).  ``delay`` is the injected seconds for
    ``slow_batch`` specs.
    """

    site: str
    rate: float = 1.0
    models: tuple[str, ...] | None = None
    backends: tuple[str, ...] | None = None
    max_fires: int | None = None
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"site must be one of {FAULT_SITES}, got {self.site!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {self.max_fires}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.models is not None:
            self.models = tuple(self.models)
        if self.backends is not None:
            self.backends = tuple(self.backends)

    def applies(self, model: str | None, backend: str | None) -> bool:
        if self.models is not None and model not in self.models:
            return False
        if self.backends is not None and backend not in self.backends:
            return False
        return True


def _u01(seed: int, *parts: object) -> float:
    """Deterministic uniform [0, 1) draw from a CRC-32 of the parts."""
    text = ":".join(str(p) for p in parts)
    crc = zlib.crc32(f"{seed}:{text}".encode())
    return crc / 4294967296.0


def derive_worker_seed(seed: int, worker_index: int) -> int:
    """The per-process seed one worker's fault plane derives from the parent's."""
    return zlib.crc32(f"{seed}:worker:{worker_index}".encode())


class FaultInjector:
    """The configured fault plane one chaos run installs.

    Parameters
    ----------
    specs:
        the :class:`FaultSpec` sources to draw from.
    seed:
        hash seed for every fire/poison/jitter decision.
    poison_ids:
        explicit ``(model, request_id)`` pairs (or bare ids, matching any
        model) that poison every batch containing them.
    poison_rate:
        probability that any given request id is poisoned, drawn
        deterministically per ``(seed, model, id)`` — the statistical way
        to poison a trace without enumerating ids.

    Fire decisions are pure functions of the draw key; only the
    ``max_fires`` budgets and the observability counters are mutable state
    (under a lock, so concurrent transports may share one injector).
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        seed: int = 0,
        poison_ids: Sequence[int | tuple[str | None, int]] = (),
        poison_rate: float = 0.0,
        poison_models: Sequence[str] | None = None,
    ) -> None:
        if not 0.0 <= poison_rate <= 1.0:
            raise ValueError(f"poison_rate must be in [0, 1], got {poison_rate}")
        self.specs = list(specs)
        self.seed = seed
        self.poison_rate = poison_rate
        self.poison_models = (
            tuple(poison_models) if poison_models is not None else None
        )
        self._poison: set[tuple[str | None, int]] = set()
        for entry in poison_ids:
            if isinstance(entry, tuple):
                self._poison.add((entry[0], int(entry[1])))
            else:
                self._poison.add((None, int(entry)))
        self._lock = threading.Lock()
        self._spec_fires = [0] * len(self.specs)
        self._site_fires: dict[str, int] = {site: 0 for site in FAULT_SITES}
        self._poison_hits = 0

    # -- decisions -------------------------------------------------------------

    def _fire(
        self,
        site: str,
        key: tuple,
        attempt: int,
        model: str | None,
        backend: str | None,
    ) -> FaultSpec | None:
        """The first matching spec that fires for this opportunity, if any."""
        for index, spec in enumerate(self.specs):
            if spec.site != site or not spec.applies(model, backend):
                continue
            if _u01(self.seed, site, index, model, key, attempt) >= spec.rate:
                continue
            with self._lock:
                if (
                    spec.max_fires is not None
                    and self._spec_fires[index] >= spec.max_fires
                ):
                    continue
                self._spec_fires[index] += 1
                self._site_fires[site] += 1
            return spec
        return None

    def poisoned_subset(
        self, ids: Sequence[int], model: str | None = None
    ) -> list[int]:
        """The poisoned ids among ``ids`` (explicit set plus rate draws)."""
        hit = []
        for rid in ids:
            if (model, rid) in self._poison or (None, rid) in self._poison:
                hit.append(rid)
                continue
            if self.poison_rate > 0.0 and (
                self.poison_models is None or model in self.poison_models
            ):
                if _u01(self.seed, "poison", model, rid) < self.poison_rate:
                    hit.append(rid)
        return hit

    def poison(self, request_id: int, model: str | None = None) -> None:
        """Explicitly poison one request id (optionally model-scoped)."""
        with self._lock:
            self._poison.add((model, int(request_id)))

    def for_worker(self, worker_index: int) -> "FaultInjector":
        """A derived injector for one worker/shard process.

        Process-backed execution forks the parent (so every child inherits
        the installed injector verbatim); without re-seeding, N workers
        would replay the parent's exact fault sequence N times — correlated
        chaos, not independent chaos.  The derivation keeps the *config*
        (specs, explicit poison set, poison rate) identical but re-derives
        the seed from ``(seed, worker_index)`` through the same CRC-32 hash
        as every other decision, so each process draws an independent yet
        fully seed-deterministic sequence.  Explicit poison entries carry
        over unchanged: poisoning is the deterministic component and must
        fire identically wherever the poisoned request lands.
        """
        derived = FaultInjector(
            specs=[FaultSpec(site=s.site, rate=s.rate, models=s.models,
                             backends=s.backends, max_fires=s.max_fires,
                             delay=s.delay)
                   for s in self.specs],
            seed=derive_worker_seed(self.seed, worker_index),
            poison_rate=self.poison_rate,
            poison_models=self.poison_models,
        )
        with self._lock:
            derived._poison = set(self._poison)
        return derived

    # -- hooks the stack calls -------------------------------------------------

    def check(
        self,
        site: str,
        key: tuple = (),
        attempt: int = 0,
        model: str | None = None,
        backend: str | None = None,
    ) -> None:
        """Raise :class:`InjectedFault` when a matching spec fires."""
        spec = self._fire(site, key, attempt, model, backend)
        if spec is not None:
            raise InjectedFault(
                site,
                f"model={model!r} key={key} attempt={attempt}"
                + (f" backend={backend!r}" if backend else ""),
                key=key,
            )

    def kernel_fault(
        self,
        ids: Sequence[int],
        key: tuple = (),
        attempt: int = 0,
        model: str | None = None,
        backend: str | None = None,
    ) -> None:
        """The batch-forward hook: poison first, then transient draws.

        Poison is checked before the rate specs because it is the
        deterministic component — a batch carrying a poisoned id must fail
        identically on every attempt or the bisect isolation could not
        converge on it.
        """
        poisoned = self.poisoned_subset(ids, model)
        if poisoned:
            with self._lock:
                self._poison_hits += 1
            raise PoisonedRequest(poisoned, model)
        self.check("kernel", key=tuple(ids) + key, attempt=attempt,
                   model=model, backend=backend)

    def batch_delay(
        self,
        key: tuple = (),
        attempt: int = 0,
        model: str | None = None,
        backend: str | None = None,
    ) -> float:
        """Injected extra seconds for this batch (0.0 when nothing fires)."""
        spec = self._fire("slow_batch", key, attempt, model, backend)
        return spec.delay if spec is not None else 0.0

    def corrupt_row(self, line: str, key: tuple = ()) -> str:
        """Possibly truncate one serialized plan-DB row (a torn write)."""
        spec = self._fire("plan_db_row", key, 0, None, None)
        if spec is None:
            return line
        return line[: max(1, len(line) // 2)]

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """Fire counts per site plus poison hits (for soak accounting)."""
        with self._lock:
            return {
                "site_fires": dict(self._site_fires),
                "spec_fires": list(self._spec_fires),
                "poison_hits": self._poison_hits,
            }


# ---------------------------------------------------------------------------
# The process-wide active injector
# ---------------------------------------------------------------------------

_ACTIVE_LOCK = threading.Lock()
_ACTIVE: FaultInjector | None = None


def install_faults(injector: FaultInjector | None) -> FaultInjector | None:
    """Install (or clear, with ``None``) the process-wide fault injector."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = injector
    return injector


def clear_faults() -> None:
    """Remove the active injector (every hook returns to the no-op path)."""
    install_faults(None)


def active_faults() -> FaultInjector | None:
    """The injector the stack's hooks consult, or ``None`` (no faults)."""
    return _ACTIVE


@contextmanager
def use_faults(injector: FaultInjector | None) -> Iterator[FaultInjector | None]:
    """Scoped :func:`install_faults` (tests, chaos runs): restores on exit."""
    with _ACTIVE_LOCK:
        previous = _ACTIVE
    install_faults(injector)
    try:
        yield injector
    finally:
        install_faults(previous)
