"""Simulated data-parallel training (the paper's multi-GPU setting).

Executes the exact data-parallel algorithm — shard the batch across ``K``
virtual devices, compute gradients per shard, all-reduce (average), take one
synchronous step — on one CPU, device by device.  The *math* is identical to
K-GPU synchronous SGD (verified in tests against single-device large-batch
training); the *time* a real K-GPU run would take is modelled by
:mod:`repro.gpusim.multigpu`, which is what benchmark Fig. 14 reports.
"""
from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.tensor import Tensor
from repro.train.loss import cross_entropy
from repro.train.optim import SGD


class DataParallelTrainer:
    """Synchronous data-parallel SGD over ``num_devices`` virtual devices."""

    def __init__(
        self,
        model: nn.Module,
        num_devices: int = 2,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        self.model = model
        self.num_devices = num_devices
        self.optimizer = SGD(
            model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay
        )
        self.params = list(model.parameters())

    def _shard(self, images: np.ndarray, labels: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        n = images.shape[0]
        k = self.num_devices
        if n < k:
            raise ValueError(f"batch of {n} cannot be sharded across {k} devices")
        bounds = np.linspace(0, n, k + 1).astype(int)
        return [
            (images[bounds[i] : bounds[i + 1]], labels[bounds[i] : bounds[i + 1]])
            for i in range(k)
        ]

    def train_step(self, images: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
        """One globally-synchronous step; returns (mean loss, accuracy)."""
        self.model.train()
        shards = self._shard(images, labels)
        n_total = images.shape[0]
        # Gradient accumulators == the all-reduce buffer.
        reduced = [np.zeros_like(p.data) for p in self.params]
        losses, correct = [], 0
        for shard_images, shard_labels in shards:
            self.optimizer.zero_grad()
            logits = self.model(Tensor(shard_images))
            # Weight each shard by its size so uneven shards still reproduce
            # the exact full-batch gradient.
            loss = cross_entropy(logits, shard_labels)
            scale = shard_labels.shape[0] / n_total
            loss.backward()
            for buf, p in zip(reduced, self.params):
                if p.grad is not None:
                    buf += scale * p.grad
            losses.append(float(loss.data) * scale)
            correct += int((logits.data.argmax(axis=1) == shard_labels).sum())
        # "All-reduce" complete: install averaged gradients, step once.
        for buf, p in zip(reduced, self.params):
            p.grad = buf
        self.optimizer.step()
        return float(sum(losses)), correct / n_total

    def gradient_bytes(self) -> int:
        """Bytes all-reduced per step (input to the ring-allreduce model)."""
        return int(sum(p.data.nbytes for p in self.params))
