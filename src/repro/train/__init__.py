"""Training substrate: optimizers, losses, trainer loop, data-parallel sim."""
from repro.train.optim import SGD, StepLR, CosineLR
from repro.train.loss import cross_entropy
from repro.train.trainer import Trainer, TrainConfig, EpochStats
from repro.train.parallel import DataParallelTrainer

__all__ = [
    "SGD",
    "StepLR",
    "CosineLR",
    "cross_entropy",
    "Trainer",
    "TrainConfig",
    "EpochStats",
    "DataParallelTrainer",
]
