"""SGD with momentum / weight decay, and learning-rate schedules."""
from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Classic SGD: ``v = mu*v + g + wd*p;  p -= lr*v`` (PyTorch semantics)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = g.copy()
                else:
                    self._velocity[i] = self.momentum * self._velocity[i] + g
                g = (
                    g + self.momentum * self._velocity[i]
                    if self.nesterov
                    else self._velocity[i]
                )
            p.data = p.data - self.lr * g


class StepLR:
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineLR:
    """Cosine annealing from base lr to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: SGD, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs < 1:
            raise ValueError(f"total_epochs must be >= 1, got {total_epochs}")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.total_epochs)
        t = self.epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1 + math.cos(math.pi * t)
        )
