"""Classification losses."""
from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.tensor import Tensor


def cross_entropy(
    logits: Tensor, labels: np.ndarray, label_smoothing: float = 0.0
) -> Tensor:
    """Mean cross-entropy between logits (N, C) and integer labels (N,)."""
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got shape {logits.shape}")
    if not 0.0 <= label_smoothing < 1.0:
        raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
    n, c = logits.shape
    target = F.one_hot(np.asarray(labels), c)
    if label_smoothing:
        target = (1.0 - label_smoothing) * target + label_smoothing / c
    logp = F.log_softmax(logits, axis=-1)
    return -(logp * Tensor(target)).sum() / float(n)
