"""End-to-end training / evaluation loops with per-epoch metric history."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import nn
from repro.data.loaders import DataLoader
from repro.nn import functional as F
from repro.tensor import Tensor, no_grad
from repro.train.loss import cross_entropy
from repro.train.optim import SGD


@dataclass
class TrainConfig:
    epochs: int = 5
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    label_smoothing: float = 0.0
    grad_clip: float | None = None
    verbose: bool = False


@dataclass
class EpochStats:
    epoch: int
    train_loss: float
    train_acc: float
    test_acc: float | None = None


@dataclass
class History:
    epochs: list[EpochStats] = field(default_factory=list)

    @property
    def final_test_acc(self) -> float | None:
        for stats in reversed(self.epochs):
            if stats.test_acc is not None:
                return stats.test_acc
        return None

    @property
    def best_test_acc(self) -> float | None:
        accs = [e.test_acc for e in self.epochs if e.test_acc is not None]
        return max(accs) if accs else None

    @property
    def losses(self) -> list[float]:
        return [e.train_loss for e in self.epochs]


def clip_gradients(model: nn.Module, max_norm: float) -> float:
    """Global-norm gradient clipping; returns the pre-clip norm."""
    grads = [p.grad for p in model.parameters() if p.grad is not None]
    total = float(np.sqrt(sum(float((g.astype(np.float64) ** 2).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Trainer:
    """Single-device trainer (the paper's 1-GPU setting, on CPU).

    ``model_plan`` (a :class:`repro.backend.ModelPlan`, or the one attached
    by ``build_model(..., plan_input_shape=...)``) makes the warm path
    explicit: every layer plan is cache-resident before step 1, so no step
    pays a plan build.  ``planned_steps`` counts the steps that ran at the
    plan's exact batch shape (a ragged final batch runs the plain, possibly
    cold path), so plan coverage of a training run is observable.
    """

    def __init__(
        self,
        model: nn.Module,
        config: TrainConfig | None = None,
        scheduler_factory: Callable[[SGD], object] | None = None,
        model_plan=None,
    ) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = SGD(
            model.parameters(),
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self.scheduler = scheduler_factory(self.optimizer) if scheduler_factory else None
        self.history = History()
        self.model_plan = model_plan if model_plan is not None else getattr(
            model, "model_plan", None
        )
        self.planned_steps = 0

    def train_step(self, images: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
        """One optimisation step; returns (loss, accuracy) on the batch."""
        self.model.train()
        self.optimizer.zero_grad()
        plan = self.model_plan
        if plan is not None and plan.include_backward and plan.matches(images.shape):
            # The batch is already a contiguous array at the planned shape;
            # staging/padding is the serving path's job.  Here the plan's
            # value is the warmth guarantee, tracked for observability.
            self.planned_steps += 1
        logits = self.model(Tensor(images))
        loss = cross_entropy(logits, labels, self.config.label_smoothing)
        loss.backward()
        if self.config.grad_clip is not None:
            clip_gradients(self.model, self.config.grad_clip)
        self.optimizer.step()
        return float(loss.data), F.accuracy(logits, labels)

    def evaluate(self, loader: DataLoader) -> float:
        self.model.eval()
        correct = total = 0
        with no_grad():
            for images, labels in loader:
                logits = self.model(Tensor(images))
                correct += int((logits.data.argmax(axis=1) == labels).sum())
                total += labels.shape[0]
        return correct / max(total, 1)

    def fit(self, train_loader: DataLoader, test_loader: DataLoader | None = None) -> History:
        for epoch in range(self.config.epochs):
            losses, accs = [], []
            for images, labels in train_loader:
                loss, acc = self.train_step(images, labels)
                losses.append(loss)
                accs.append(acc)
            if self.scheduler is not None:
                self.scheduler.step()
            stats = EpochStats(
                epoch=epoch,
                train_loss=float(np.mean(losses)),
                train_acc=float(np.mean(accs)),
                test_acc=self.evaluate(test_loader) if test_loader else None,
            )
            self.history.epochs.append(stats)
            if self.config.verbose:
                test = f" test_acc={stats.test_acc:.3f}" if stats.test_acc is not None else ""
                print(
                    f"epoch {epoch}: loss={stats.train_loss:.4f} "
                    f"train_acc={stats.train_acc:.3f}{test}"
                )
        return self.history
