"""Analytic cost accounting: exact FLOPs (MACs) and parameter counts.

The paper reports "MFLOPs" that match multiply-accumulate counts (its
standard-convolution formula ``Fw*Fw*Cout*W*W*Cin`` is MACs, not 2x MACs);
we follow that convention so the cost columns of Tables II-IV are directly
comparable.
"""
from repro.analysis.count import (
    LayerCost,
    ModelProfile,
    profile_model,
    conv_macs,
    separable_macs,
)

__all__ = [
    "LayerCost",
    "ModelProfile",
    "profile_model",
    "conv_macs",
    "separable_macs",
]
