"""FLOPs/params profiler.

:func:`profile_model` attaches forward hooks to every leaf module, runs one
batch-1 forward pass to observe real activation shapes (this follows any
custom ``forward``, residual connections included), and converts shapes +
layer hyper-parameters into exact MAC counts.

Conventions (matching the paper's formulas in Section II):

- standard/grouped conv:  ``Hout*Wout * Cout * (Cin/groups) * K*K`` MACs
- depthwise conv:         the ``groups == Cin`` case of the above
- PW / GPW / SCC:         ``Hout*Wout * Cout * group_width`` MACs
- linear:                 ``in_features * out_features``
- BN / activations / pooling: 0 (the paper ignores them)
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.core.scc import SlidingChannelConv2d
from repro.tensor import Tensor, no_grad


@dataclass
class LayerCost:
    name: str
    kind: str
    macs: float
    params: int
    out_shape: tuple[int, ...]


@dataclass
class ModelProfile:
    """Aggregate cost report for one model at one input shape."""

    layers: list[LayerCost] = field(default_factory=list)

    @property
    def total_macs(self) -> float:
        return sum(l.macs for l in self.layers)

    @property
    def total_params(self) -> int:
        return sum(l.params for l in self.layers)

    @property
    def mflops(self) -> float:
        """Paper-convention MFLOPs (MACs / 1e6)."""
        return self.total_macs / 1e6

    @property
    def params_m(self) -> float:
        return self.total_params / 1e6

    def by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for l in self.layers:
            out[l.kind] = out.get(l.kind, 0.0) + l.macs
        return out


def conv_macs(
    cout: int, cin: int, kernel: int, hout: int, wout: int, groups: int = 1
) -> float:
    """Paper Section II formula for standard/grouped convolution MACs."""
    return float(hout) * wout * cout * (cin // groups) * kernel * kernel


def separable_macs(cin: int, cout: int, kernel: int, hout: int, wout: int) -> float:
    """DW+PW MACs (paper: ``Cin*Fw*Fw*W*W + Cout*Fw*Fw*Cin``)."""
    return float(hout) * wout * cin * kernel * kernel + float(hout) * wout * cout * cin


def _module_params(module: nn.Module) -> int:
    return sum(p.size for p in module._parameters.values() if p is not None)


def _layer_cost(module: nn.Module, out_shape: tuple[int, ...], name: str) -> LayerCost | None:
    params = _module_params(module)
    if isinstance(module, SlidingChannelConv2d):
        _, cout, h, w = out_shape
        macs = float(h) * w * cout * module.config.group_width
        return LayerCost(name, "scc", macs, params, out_shape)
    if isinstance(module, nn.Conv2d):
        _, cout, h, w = out_shape
        kind = "conv"
        if module.groups == module.in_channels == module.out_channels:
            kind = "dw"
        elif module.kernel_size == 1:
            kind = "pw" if module.groups == 1 else "gpw"
        elif module.groups > 1:
            kind = "gc"
        macs = conv_macs(
            module.out_channels, module.in_channels, module.kernel_size, h, w, module.groups
        )
        return LayerCost(name, kind, macs, params, out_shape)
    if isinstance(module, nn.Linear):
        macs = float(module.in_features) * module.out_features
        return LayerCost(name, "linear", macs, params, out_shape)
    if isinstance(module, nn.BatchNorm2d):
        return LayerCost(name, "bn", 0.0, params, out_shape)
    if params:
        # Any other parametric leaf must be accounted; refuse to silently
        # under-count.
        raise TypeError(
            f"no cost rule for parametric module {type(module).__name__} at {name!r}"
        )
    return None


_CONTAINER_TYPES = (nn.Sequential, nn.ModuleList)


def profile_model(model: nn.Module, input_shape: tuple[int, ...]) -> ModelProfile:
    """Profile ``model`` on a zero batch of ``input_shape`` (C, H, W)."""
    profile = ModelProfile()
    handles = []
    for name, module in model.named_modules():
        if isinstance(module, _CONTAINER_TYPES) or module is model:
            continue
        if module._modules and not isinstance(module, (nn.Conv2d, SlidingChannelConv2d, nn.Linear)):
            continue  # only leaves carry cost rules

        def hook(mod, inputs, output, name=name):
            cost = _layer_cost(mod, output.shape, name)
            if cost is not None:
                profile.layers.append(cost)

        handles.append(module.register_forward_hook(hook))

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            x = Tensor(np.zeros((1, *input_shape), dtype=np.float32))
            model(x)
    finally:
        for h in handles:
            h.remove()
        model.train(was_training)
    return profile
