"""``python -m repro.tune`` — tune the gate workload set into a plan database.

Typical invocations::

    python -m repro.tune --db plans.jsonl            # the full gate set
    python -m repro.tune --db plans.jsonl --quick    # one small workload (CI)

Point later runs at the produced file with ``REPRO_PLAN_DB=plans.jsonl``.
"""
from __future__ import annotations

import argparse
import os
import sys

from repro.backend.plan_db import PlanDatabase, env_stamp
from repro.tune import gate_workloads, tune_workloads


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--db",
        default=os.environ.get("REPRO_PLAN_DB") or None,
        help="plan database file to append tuned records to "
        "(default: $REPRO_PLAN_DB; omit both for a dry run)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="target worker count to tune for (default: the usable CPUs)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="traced measurement repeats per candidate (best-of, default 2)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tune one small workload only (CI smoke)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="tune the gate set at full benchmark sizes",
    )
    args = parser.parse_args(argv)

    db = PlanDatabase(args.db) if args.db else None
    if db is None:
        print("# dry run (no --db / REPRO_PLAN_DB): results are not persisted")
    print(f"# env: {env_stamp()}")

    results = tune_workloads(
        gate_workloads(full=args.full, quick=args.quick),
        db=db,
        workers=args.workers,
        repeats=args.repeats,
    )
    for res in results:
        marker = " (off-table)" if res.record and res.record.get("off_table") else ""
        print(
            f"{res.name}{marker}: best {res.best.describe()} "
            f"{res.best.score_s * 1e3:.3f}ms | static {res.static.describe()} "
            f"{res.static.score_s * 1e3:.3f}ms | "
            f"speedup x{res.speedup_vs_static:.2f} "
            f"[{len(res.candidates)} candidates]"
        )
    if db is not None and db.path is not None:
        print(f"# recorded {len(results)} plans -> {db.path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
