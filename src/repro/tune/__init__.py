"""``repro.tune`` — the per-workload schedule auto-tuner.

Today's schedule decisions (tile sizes, backend choice, worker shard
counts) come from the hand-written static tables in
:mod:`repro.backend.schedule`; any workload outside those six
``CONV_SCHEDULES`` entries runs on a guessed heuristic, and every fresh
process guesses again.  This module closes that loop, topi-style
(``gen_schedule.py``): **sweep the discrete schedule space of one
workload, measure every candidate, persist the winner** in a
:class:`~repro.backend.plan_db.PlanDatabase` keyed by
``(Workload, env stamp)`` — so any later process (or any server in a
fleet sharing one database file) warm-starts on the best measured
schedule via ``REPRO_PLAN_DB``.

**How candidates are measured.**  Each tile combination is executed once
per repeat under :func:`repro.backend.parallel.trace_parallel`, which
forces every parallel region serial while recording clean per-task wall
times.  From one trace the tuner then *models* every backend / worker
count without re-running anything:

- ``numpy`` (serial canonical tiles): the traced serial wall;
- ``threaded`` at ``w`` workers: time outside parallel regions plus the
  LPT :func:`~repro.backend.parallel.makespan` of each region's recorded
  tasks on ``w`` lanes;
- ``numba`` (when the op has a registered numba kernel): measured wall
  after a JIT warmup run.

This is the same measure-serially/model-the-parallel-schedule move
``bench_backend_scaling`` makes, and it is what keeps tuning results
meaningful on loaded or core-starved hosts (CI containers): concurrent
shards time-slicing one core would otherwise poison every comparison.

The static-table schedule is always in the candidate set, so the winner's
modelled cost is **never worse than static by construction** — at worst
the tuner re-records the static schedule.  Tile overrides are applied via
:func:`~repro.backend.schedule.tile_override` (call-time resolution), so
tuning never pollutes the plan cache.

Typical use::

    from repro.backend import PlanDatabase
    from repro.tune import tune_conv2d, tune_pull_gemm

    db = PlanDatabase("plans.jsonl")
    result = tune_conv2d((6, 24, 24, 24), (40, 24, 3, 3), db=db)
    print(result.best, result.speedup_vs_static)

    # Later processes:  REPRO_PLAN_DB=plans.jsonl python ...

or from the command line (the CI smoke job does exactly this)::

    python -m repro.tune --db plans.jsonl --quick
"""
from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from repro.backend import (
    KernelStats,
    available_backends,
    conv2d_plan,
    get_kernel,
    scc_plan,
    tile_override,
)
from repro.backend.parallel import default_num_workers, makespan, trace_parallel
from repro.backend.plan_db import PlanDatabase, env_stamp
from repro.backend.schedule import (
    CONV_SCHEDULES,
    PULL_SCHEDULES,
    conv_schedule,
    pull_tile_for,
)
from repro.backend.workload import Workload

__all__ = [
    "Candidate",
    "TuningResult",
    "gate_workloads",
    "tune_conv2d",
    "tune_pull_gemm",
    "tune_workloads",
]


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Candidate:
    """One point of the discrete schedule space, with its modelled cost."""

    backend: str
    workers: int
    tiles: dict = field(hash=False)
    score_s: float = 0.0

    def describe(self) -> str:
        tiles = ",".join(f"{k}={v}" for k, v in sorted(self.tiles.items()))
        return f"{self.backend}@{self.workers}w [{tiles or 'untiled'}]"


@dataclass
class TuningResult:
    """The outcome of tuning one workload."""

    name: str
    workload: Workload
    op: str
    candidates: list[Candidate]
    best: Candidate
    static: Candidate          # best candidate *at the static-table tiles*
    static_tiles: dict
    record: dict | None        # the database record written (None: dry run)

    @property
    def speedup_vs_static(self) -> float:
        """Modelled static cost / modelled tuned cost (>= 1 by construction)."""
        return self.static.score_s / self.best.score_s if self.best.score_s else 1.0

    @property
    def off_table(self) -> bool:
        """Whether the static schedule came from the fallback heuristic."""
        return self.record is not None and self.record.get("off_table", False)


# ---------------------------------------------------------------------------
# The sweep engine
# ---------------------------------------------------------------------------

def _tile_candidates(extent: int, static: int) -> list[int]:
    """Discrete tile candidates around the heuristic: the untiled case, the
    static choice, and ~2/4/8-way partitions of the extent."""
    cands = {0, int(static)}
    for parts in (2, 4, 8):
        if extent >= parts:
            cands.add(-(-extent // parts))
    return sorted(cands)


def _worker_candidates(target: int) -> list[int]:
    """Worker counts to model: powers of two up to the target, + the target."""
    ws = {w for w in (2, 4, 8, 16) if w < target}
    if target > 1:
        ws.add(target)
    return sorted(ws)


def _measure_combo(run, tiles: dict, repeats: int) -> tuple[float, list, float]:
    """Trace one tile combination serially; return (wall, regions, outside).

    Best-of-``repeats`` by serial wall: the least-interfered-with run is
    the cleanest estimate of true per-task cost on a shared host.
    """
    best = None
    with tile_override(**tiles):
        for _ in range(repeats):
            with trace_parallel() as regions:
                start = time.perf_counter()
                run("threaded")
                wall = time.perf_counter() - start
            if best is None or wall < best[0]:
                best = (wall, regions)
    wall, regions = best
    region_serial = sum(r.total_seconds for r in regions)
    return wall, regions, max(0.0, wall - region_serial)


def _sweep(
    name: str,
    workload: Workload,
    op: str,
    run,
    tile_axes: dict[str, list[int]],
    static_tiles: dict[str, int],
    workers: int | None,
    repeats: int,
    db: PlanDatabase | None,
    off_table: bool,
) -> TuningResult:
    target = workers if workers is not None else default_num_workers()
    worker_cands = _worker_candidates(max(1, target))

    names = list(tile_axes)
    combos = [
        dict(zip(names, values))
        for values in itertools.product(*(tile_axes[n] for n in names))
    ]
    if static_tiles not in combos:  # pragma: no cover - axes always include it
        combos.append(dict(static_tiles))

    candidates: list[Candidate] = []
    for tiles in combos:
        wall, regions, outside = _measure_combo(run, tiles, repeats)
        candidates.append(Candidate("numpy", 1, tiles, wall))
        for w in worker_cands:
            modeled = outside + sum(
                makespan(r.task_seconds, w) for r in regions
            )
            candidates.append(Candidate("threaded", w, tiles, modeled))

    if "numba" in available_backends(op):
        # JIT backends ignore schedule tiles; measure the compiled wall
        # (first run pays compilation and is discarded).
        run("numba")
        start = time.perf_counter()
        run("numba")
        candidates.append(
            Candidate("numba", 1, dict(static_tiles),
                      time.perf_counter() - start)
        )

    best = min(candidates, key=lambda c: c.score_s)
    static = min(
        (c for c in candidates if c.tiles == static_tiles),
        key=lambda c: c.score_s,
    )

    record = None
    if db is not None:
        record = db.record(
            workload,
            {"backend": best.backend, "workers": best.workers, **best.tiles},
            score_ms=round(best.score_s * 1e3, 6),
            static_score_ms=round(static.score_s * 1e3, 6),
            op=op,
            off_table=off_table,
            source="repro.tune",
        )
    return TuningResult(
        name=name,
        workload=workload,
        op=op,
        candidates=candidates,
        best=best,
        static=static,
        static_tiles=dict(static_tiles),
        record=record,
    )


# ---------------------------------------------------------------------------
# Op-specific entry points
# ---------------------------------------------------------------------------

def tune_conv2d(
    x_shape: tuple,
    w_shape: tuple,
    stride: int = 1,
    padding: int = 1,
    groups: int = 1,
    dtype: str = "float32",
    workers: int | None = None,
    repeats: int = 2,
    db: PlanDatabase | None = None,
    name: str | None = None,
    seed: int = 0,
) -> TuningResult:
    """Tune one dense conv2d workload's ``k_tile`` / ``gradw_tile`` /
    backend / worker count; record the winner in ``db`` when given.

    Grouped convolutions have no tile axes (they shard over groups); only
    ``groups == 1`` workloads are tunable here.
    """
    if groups != 1:
        raise ValueError("only dense (groups == 1) conv2d workloads are tunable")
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(x_shape).astype(dtype)
    w = rng.standard_normal(w_shape).astype(dtype)
    plan = conv2d_plan(x.shape, w.shape, stride, padding, groups, x.dtype)
    grad = rng.standard_normal(plan.out_shape).astype(dtype)
    workload = Workload.make(
        "conv2d", x_shape, w_shape, dtype,
        stride=stride, padding=padding, groups=groups,
    )
    # workload=None: the *static* resolution, bypassing any active database.
    static = conv_schedule(x_shape, w_shape, stride, groups, workload=None)
    static_tiles = {"k_tile": static.k_tile, "gradw_tile": static.gradw_tile}
    n, cin = x_shape[0], x_shape[1]
    cout, _, kh, _ = w_shape
    off_table = (cin, cout, kh, stride) not in CONV_SCHEDULES

    def run(backend: str):
        out, ctx = get_kernel("conv2d", backend)(plan, x, w)
        get_kernel("conv2d_backward", backend)(plan, ctx, grad)

    return _sweep(
        name or f"conv2d-{cin}x{cout}k{kh}s{stride}n{n}",
        workload,
        "conv2d",
        run,
        tile_axes={
            "k_tile": _tile_candidates(cin, static.k_tile),
            "gradw_tile": _tile_candidates(n, static.gradw_tile),
        },
        static_tiles=static_tiles,
        workers=workers,
        repeats=repeats,
        db=db,
        off_table=off_table,
    )


def tune_pull_gemm(
    cfg: tuple,
    n: int = 6,
    hw: int = 24,
    dtype: str = "float32",
    workers: int | None = None,
    repeats: int = 2,
    db: PlanDatabase | None = None,
    name: str | None = None,
    seed: int = 0,
) -> TuningResult:
    """Tune the SCC input-centric pull-GEMM's contracted ``pull_tile`` for
    one ``(cin, cout, cg, co)`` configuration."""
    from repro.core.channel_map import SCCConfig

    config = SCCConfig(*cfg)
    plan = scc_plan(config)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, config.in_channels, hw, hw)).astype(dtype)
    w = rng.standard_normal(
        (config.out_channels, config.group_width)
    ).astype(dtype)
    grad = rng.standard_normal((n, config.out_channels, hw, hw)).astype(dtype)
    workload = Workload.make(
        "scc_plan",
        cin=config.in_channels,
        cout=config.out_channels,
        cg=config.cg,
        co=config.co,
    )
    static_tile = pull_tile_for(
        config.in_channels, config.out_channels, workload=None
    )
    off_table = (config.in_channels, config.out_channels) not in PULL_SCHEDULES

    def run(backend: str):
        get_kernel("scc_backward", backend)(
            plan, {"x": x, "w": w}, grad,
            strategy="dsxplore", backward_design="input_centric",
            need_weight_grad=False, stats=KernelStats(),
        )

    return _sweep(
        name or f"pull-gemm-{config.in_channels}x{config.out_channels}",
        workload,
        "scc_backward",
        run,
        tile_axes={
            "pull_tile": _tile_candidates(config.out_channels, static_tile)
        },
        static_tiles={"pull_tile": static_tile},
        workers=workers,
        repeats=repeats,
        db=db,
        off_table=off_table,
    )


# ---------------------------------------------------------------------------
# The standard workload set (bench_plan_tuner + the CLI tune these)
# ---------------------------------------------------------------------------

def gate_workloads(full: bool = False, quick: bool = False) -> list[dict]:
    """The tuner's gate set: the scaling bench's tiled gate workloads plus
    one deliberately off-table conv whose fallback heuristic leaves the
    forward untiled (the case a tuner exists to fix).

    Each spec is a kwargs dict for :func:`tune_workloads`.
    """
    n, hw = (8, 32) if full else (6, 24)
    if quick:
        n, hw = 4, 12
        return [
            {"kind": "conv2d", "name": "conv-dense-quick",
             "x_shape": (n, 24, hw, hw), "w_shape": (40, 24, 3, 3),
             "stride": 1, "padding": 1},
        ]
    return [
        # bench_backend_scaling's tiled gate workloads, identically shaped.
        {"kind": "conv2d", "name": "conv-dense-large",
         "x_shape": (n, 64, hw, hw), "w_shape": (128, 64, 3, 3),
         "stride": 1, "padding": 1},
        {"kind": "pull_gemm", "name": "pull-gemm-large",
         "cfg": (64, 128, 4, 0.25), "n": n, "hw": hw},
        # Off the schedule table: cin=24 < 2*min_tile, so the static
        # fallback leaves the forward contraction untiled (unshardable).
        {"kind": "conv2d", "name": "conv-dense-offtable",
         "x_shape": (n, 24, hw, hw), "w_shape": (40, 24, 3, 3),
         "stride": 1, "padding": 1},
    ]


def tune_workloads(
    specs: list[dict],
    db: PlanDatabase | None = None,
    workers: int | None = None,
    repeats: int = 2,
) -> list[TuningResult]:
    """Tune every spec (see :func:`gate_workloads`), returning all results."""
    results = []
    for spec in specs:
        spec = dict(spec)
        kind = spec.pop("kind")
        if kind == "conv2d":
            results.append(
                tune_conv2d(workers=workers, repeats=repeats, db=db, **spec)
            )
        elif kind == "pull_gemm":
            results.append(
                tune_pull_gemm(workers=workers, repeats=repeats, db=db, **spec)
            )
        else:
            raise ValueError(f"unknown tuning spec kind {kind!r}")
    return results
