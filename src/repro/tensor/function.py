"""Differentiable-operation base class and graph bookkeeping.

A :class:`Function` instance is one node in the reverse-mode graph.  Calling
``SomeOp.apply(*inputs)`` runs the forward kernel and, when gradients are
enabled and at least one input requires them, records the node so
``Tensor.backward`` can replay the chain rule in reverse topological order.

The contract mirrors ``torch.autograd.Function`` closely on purpose: the
paper integrates its CUDA SCC kernels into PyTorch through exactly this
interface, and our reproduction integrates its NumPy SCC kernels the same
way (:mod:`repro.core.scc`).
"""
from __future__ import annotations

from typing import Any

import numpy as np


class Function:
    """Base class for differentiable operations.

    Subclasses implement::

        def forward(self, *arrays, **kwargs) -> np.ndarray
        def backward(self, grad_output: np.ndarray) -> tuple[np.ndarray | None, ...]

    ``forward`` receives raw ndarrays (already unwrapped from Tensors) and
    returns a raw ndarray.  ``backward`` returns one gradient per *tensor*
    input, or ``None`` for inputs that do not require grad.
    """

    def __init__(self) -> None:
        self.inputs: tuple[Any, ...] = ()
        self.needs_input_grad: tuple[bool, ...] = ()
        self.saved: tuple[Any, ...] = ()

    # -- subclass API ------------------------------------------------------
    def save_for_backward(self, *items: Any) -> None:
        self.saved = items

    def forward(self, *arrays: np.ndarray, **kwargs: Any) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> tuple[np.ndarray | None, ...]:
        raise NotImplementedError

    # -- graph construction ------------------------------------------------
    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> "Tensor":
        from repro.tensor.tensor import Tensor, is_grad_enabled

        ctx = cls()
        tensor_inputs = [a for a in args if isinstance(a, Tensor)]
        raw_args = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = ctx.forward(*raw_args, **kwargs)

        requires = is_grad_enabled() and any(t.requires_grad for t in tensor_inputs)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            ctx.inputs = tuple(tensor_inputs)
            ctx.needs_input_grad = tuple(t.requires_grad for t in tensor_inputs)
            out._ctx = ctx
        return out


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting.

    The VJP of broadcasting is summation over the broadcast axes; this is the
    single helper every binary elementwise op uses, so broadcasting semantics
    stay consistent across the op library.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)
