"""The Tensor type: an ndarray with a gradient and a reverse-mode graph node.

Gradient propagation is a single reverse topological walk over the recorded
:class:`~repro.tensor.function.Function` nodes.  Gradients accumulate with
``+=`` into leaf tensors, matching PyTorch semantics (call
:meth:`Tensor.zero_grad` / ``optimizer.zero_grad`` between steps).
"""
from __future__ import annotations

import contextlib
import threading
from typing import Any, Iterator, Sequence

import numpy as np

DEFAULT_DTYPE = np.float32

# Grad mode is *thread-local* (as in PyTorch): each serving worker or
# client thread toggles recording for itself only.  A process-global flag
# would race under the multi-model router — two overlapping no_grad()
# blocks on different threads could interleave their save/restore and
# leave recording disabled for the whole process.
_grad_state = threading.local()


def is_grad_enabled() -> bool:
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph recording on this thread (inference / update steps)."""
    prev = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = prev


class Tensor:
    """ndarray + grad + graph node.  See module docstring."""

    __slots__ = ("data", "grad", "requires_grad", "_ctx")
    __array_priority__ = 100.0  # make ndarray <op> Tensor dispatch to Tensor

    def __init__(self, data: Any, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype != DEFAULT_DTYPE and np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(DEFAULT_DTYPE)
        elif not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._ctx = None  # Function that produced this tensor, if any

    # -- basic introspection -------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_tag})\n{self.data!r}"

    # -- grad management -------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse-mode accumulation starting from this tensor.

        ``grad`` defaults to ones (i.e. this tensor should be a scalar loss).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    f"backward() without an explicit gradient requires a scalar output, "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order over Function nodes reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited or node._ctx is None:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._ctx.inputs:
                if parent._ctx is not None and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        if self._ctx is None:
            self.grad = grad if self.grad is None else self.grad + grad
            return

        for node in reversed(topo):
            ctx = node._ctx
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            input_grads = ctx.backward(node_grad)
            if not isinstance(input_grads, tuple):
                input_grads = (input_grads,)
            if len(input_grads) != len(ctx.inputs):
                raise RuntimeError(
                    f"{type(ctx).__name__}.backward returned {len(input_grads)} grads "
                    f"for {len(ctx.inputs)} inputs"
                )
            for parent, g in zip(ctx.inputs, input_grads):
                if g is None or not parent.requires_grad:
                    continue
                if g.shape != parent.data.shape:
                    raise RuntimeError(
                        f"{type(ctx).__name__} produced grad of shape {g.shape} "
                        f"for input of shape {parent.data.shape}"
                    )
                if parent._ctx is None:
                    parent.grad = g.copy() if parent.grad is None else parent.grad + g
                else:
                    acc = grads.get(id(parent))
                    grads[id(parent)] = g if acc is None else acc + g

    # -- operators (implemented in ops.py, bound below) -----------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor.ops import Sum

        return Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor.ops import Mean

        return Mean.apply(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor.ops import Max

        return Max.apply(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.tensor.ops import Reshape

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Reshape.apply(self, shape=shape)

    def transpose(self, *axes: int) -> "Tensor":
        from repro.tensor.ops import Permute

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return Permute.apply(self, axes=axes)

    def relu(self) -> "Tensor":
        from repro.tensor.ops import ReLU

        return ReLU.apply(self)

    def exp(self) -> "Tensor":
        from repro.tensor.ops import Exp

        return Exp.apply(self)

    def log(self) -> "Tensor":
        from repro.tensor.ops import Log

        return Log.apply(self)

    def sqrt(self) -> "Tensor":
        from repro.tensor.ops import Pow

        return Pow.apply(self, exponent=0.5)

    def __add__(self, other: Any) -> "Tensor":
        from repro.tensor.ops import Add

        return Add.apply(self, _wrap(other))

    __radd__ = __add__

    def __sub__(self, other: Any) -> "Tensor":
        from repro.tensor.ops import Sub

        return Sub.apply(self, _wrap(other))

    def __rsub__(self, other: Any) -> "Tensor":
        from repro.tensor.ops import Sub

        return Sub.apply(_wrap(other), self)

    def __mul__(self, other: Any) -> "Tensor":
        from repro.tensor.ops import Mul

        return Mul.apply(self, _wrap(other))

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "Tensor":
        from repro.tensor.ops import Div

        return Div.apply(self, _wrap(other))

    def __rtruediv__(self, other: Any) -> "Tensor":
        from repro.tensor.ops import Div

        return Div.apply(_wrap(other), self)

    def __neg__(self) -> "Tensor":
        from repro.tensor.ops import Neg

        return Neg.apply(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.tensor.ops import Pow

        return Pow.apply(self, exponent=float(exponent))

    def __matmul__(self, other: Any) -> "Tensor":
        from repro.tensor.ops import MatMul

        return MatMul.apply(self, _wrap(other))

    def __getitem__(self, index: Any) -> "Tensor":
        from repro.tensor.ops import GetItem

        return GetItem.apply(self, index=index)

    def pad2d(self, padding: int) -> "Tensor":
        from repro.tensor.ops import Pad2d

        return Pad2d.apply(self, padding=padding)


def _wrap(value: Any) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# -- constructors ---------------------------------------------------------------
def tensor(data: Any, requires_grad: bool = False) -> Tensor:
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(*shape: int, requires_grad: bool = False, rng: np.random.Generator | None = None) -> Tensor:
    from repro.utils.rng import get_rng

    gen = rng if rng is not None else get_rng()
    return Tensor(gen.standard_normal(shape).astype(DEFAULT_DTYPE), requires_grad=requires_grad)


def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    from repro.tensor.ops import Concat

    return Concat.apply(*tensors, axis=axis)
