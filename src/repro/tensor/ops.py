"""Elementwise, reduction and movement ops with their VJPs.

Each op is a :class:`~repro.tensor.function.Function`; forwards operate on raw
ndarrays.  Binary ops support full NumPy broadcasting; the backward pass
reduces gradients back with :func:`~repro.tensor.function.unbroadcast`.
"""
from __future__ import annotations

from typing import Any

import numpy as np

from repro.tensor.function import Function, unbroadcast


class Add(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a.shape, b.shape)
        return a + b

    def backward(self, grad: np.ndarray):
        a_shape, b_shape = self.saved
        return unbroadcast(grad, a_shape), unbroadcast(grad, b_shape)


class Sub(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a.shape, b.shape)
        return a - b

    def backward(self, grad: np.ndarray):
        a_shape, b_shape = self.saved
        return unbroadcast(grad, a_shape), unbroadcast(-grad, b_shape)


class Mul(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad: np.ndarray):
        a, b = self.saved
        return unbroadcast(grad * b, a.shape), unbroadcast(grad * a, b.shape)


class Div(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad: np.ndarray):
        a, b = self.saved
        ga = unbroadcast(grad / b, a.shape)
        gb = unbroadcast(-grad * a / (b * b), b.shape)
        return ga, gb


class Neg(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        return -a

    def backward(self, grad: np.ndarray):
        return (-grad,)


class Pow(Function):
    def forward(self, a: np.ndarray, exponent: float) -> np.ndarray:
        self.exponent = exponent
        self.save_for_backward(a)
        return a**exponent

    def backward(self, grad: np.ndarray):
        (a,) = self.saved
        return (grad * self.exponent * a ** (self.exponent - 1),)


class Exp(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad: np.ndarray):
        (out,) = self.saved
        return (grad * out,)


class Log(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad: np.ndarray):
        (a,) = self.saved
        return (grad / a,)


class ReLU(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        mask = a > 0
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad: np.ndarray):
        (mask,) = self.saved
        return (grad * mask,)


class MatMul(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a @ b

    def backward(self, grad: np.ndarray):
        a, b = self.saved
        if a.ndim == 2 and b.ndim == 2:
            return grad @ b.T, a.T @ grad
        # General batched case: contract over batch dims, then unbroadcast.
        ga = grad @ np.swapaxes(b, -1, -2)
        gb = np.swapaxes(a, -1, -2) @ grad
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)


class Sum(Function):
    def forward(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        self.in_shape = a.shape
        self.axis = axis
        self.keepdims = keepdims
        return a.sum(axis=axis, keepdims=keepdims)

    def backward(self, grad: np.ndarray):
        grad = _expand_reduced(grad, self.in_shape, self.axis, self.keepdims)
        return (np.broadcast_to(grad, self.in_shape).copy(),)


class Mean(Function):
    def forward(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        self.in_shape = a.shape
        self.axis = axis
        self.keepdims = keepdims
        self.count = a.size if axis is None else np.prod(
            [a.shape[i] for i in _normalize_axes(axis, a.ndim)]
        )
        return a.mean(axis=axis, keepdims=keepdims)

    def backward(self, grad: np.ndarray):
        grad = _expand_reduced(grad, self.in_shape, self.axis, self.keepdims)
        return (np.broadcast_to(grad / self.count, self.in_shape).astype(grad.dtype),)


class Max(Function):
    def forward(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        self.axis = axis
        self.keepdims = keepdims
        out = a.max(axis=axis, keepdims=keepdims)
        out_b = a.max(axis=axis, keepdims=True) if not keepdims and axis is not None else out
        if axis is None:
            mask = a == out
        else:
            mask = a == out_b
        # Ties split the gradient evenly, matching the subgradient convention.
        self.save_for_backward(mask, mask.sum(axis=axis, keepdims=True))
        self.in_shape = a.shape
        return out

    def backward(self, grad: np.ndarray):
        mask, counts = self.saved
        grad = _expand_reduced(grad, self.in_shape, self.axis, self.keepdims)
        return ((mask * grad / counts).astype(grad.dtype),)


class Reshape(Function):
    def forward(self, a: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        self.in_shape = a.shape
        return a.reshape(shape)

    def backward(self, grad: np.ndarray):
        return (grad.reshape(self.in_shape),)


class Permute(Function):
    def forward(self, a: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
        self.axes = axes
        return np.ascontiguousarray(a.transpose(axes))

    def backward(self, grad: np.ndarray):
        inverse = np.argsort(self.axes)
        return (np.ascontiguousarray(grad.transpose(inverse)),)


class GetItem(Function):
    def forward(self, a: np.ndarray, index: Any) -> np.ndarray:
        self.in_shape = a.shape
        self.index = index
        out = a[index]
        return out if isinstance(out, np.ndarray) else np.asarray(out)

    def backward(self, grad: np.ndarray):
        out = np.zeros(self.in_shape, dtype=grad.dtype)
        np.add.at(out, self.index, grad)
        return (out,)


class Concat(Function):
    def forward(self, *arrays: np.ndarray, axis: int = 0) -> np.ndarray:
        self.axis = axis
        self.sizes = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad: np.ndarray):
        splits = np.cumsum(self.sizes)[:-1]
        return tuple(np.ascontiguousarray(g) for g in np.split(grad, splits, axis=self.axis))


class Pad2d(Function):
    """Zero-pad the trailing two (spatial) axes of an NCHW tensor."""

    def forward(self, a: np.ndarray, padding: int) -> np.ndarray:
        self.padding = padding
        if padding == 0:
            return a
        pad_width = [(0, 0)] * (a.ndim - 2) + [(padding, padding), (padding, padding)]
        return np.pad(a, pad_width)

    def backward(self, grad: np.ndarray):
        p = self.padding
        if p == 0:
            return (grad,)
        return (np.ascontiguousarray(grad[..., p:-p, p:-p]),)


def _normalize_axes(axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _expand_reduced(grad: np.ndarray, in_shape: tuple[int, ...], axis, keepdims: bool) -> np.ndarray:
    """Re-insert reduced axes so the gradient broadcasts against the input."""
    if axis is None or keepdims:
        return grad if keepdims or axis is not None else np.asarray(grad).reshape(
            (1,) * len(in_shape)
        )
    axes = _normalize_axes(axis, len(in_shape))
    shape = list(in_shape)
    for a in axes:
        shape[a] = 1
    return grad.reshape(shape)
