"""Minimal reverse-mode autograd engine over NumPy arrays.

This subpackage is the substrate that replaces PyTorch's core in the
DSXplore reproduction (see DESIGN.md section 2).  It provides:

- :class:`~repro.tensor.tensor.Tensor` — an ndarray wrapper carrying a
  gradient and a backward graph node,
- :class:`~repro.tensor.function.Function` — the differentiable-op base
  class used to define new kernels (the SCC kernels in
  :mod:`repro.core` plug in here exactly the way a custom CUDA op plugs
  into ``torch.autograd.Function``),
- a library of elementwise / reduction / movement / convolution ops.

Design notes follow the HPC guides for this session: all hot paths are
vectorized NumPy (no per-element Python loops), backward rules avoid
materialising copies where a view or an einsum suffices, and the graph is a
plain topological walk (no tape indirection).
"""
from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled, tensor, zeros, ones, randn
from repro.tensor.function import Function

__all__ = [
    "Tensor",
    "Function",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "zeros",
    "ones",
    "randn",
]
