"""Convolution, pooling and batch-norm autograd kernels (NCHW layout).

These are the "cuDNN primitives" of the reproduction: the standard / grouped
convolution here is what the paper's *Pytorch-Base* and *Pytorch-Opt* SCC
strategies composite (Section IV-A), while the fused DSXplore SCC kernel
lives in :mod:`repro.core.scc_kernels`.

Execution routes through the :mod:`repro.backend` registry: each Function
resolves its workload to a cached execution plan (geometry + contraction
paths, see :mod:`repro.backend.plan`) and dispatches to the selected
backend — ``"numpy"`` (zero-copy ``as_strided`` patch views + planned
einsum, the default) or ``"reference"`` (loop kernels).  Repeated-shape
calls reuse the plan; only the first call of a shape-class pays the
``np.einsum_path`` search and geometry checks.
"""
from __future__ import annotations

import numpy as np

from repro.backend import (
    conv2d_plan,
    conv_out_size,
    dispatch_plan,
    get_kernel,
    pool2d_plan,
)
from repro.tensor.function import Function

__all__ = [
    "conv_out_size",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm2d",
]


class Conv2d(Function):
    """Standard / grouped 2D convolution.

    ``weight`` has shape ``(Cout, Cin // groups, KH, KW)``.  Depthwise
    convolution is the ``groups == Cin`` special case; pointwise is
    ``KH == KW == 1`` — exactly the taxonomy of paper Figure 1.
    """

    def forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        backend: str = "default",
    ) -> np.ndarray:
        plan = conv2d_plan(x.shape, weight.shape, stride, padding, groups, x.dtype)
        # Tuned execution fields ride on the plan; an explicit backend=
        # argument still wins (the override only steers "default" dispatch).
        with dispatch_plan(plan):
            out, ctx = get_kernel("conv2d", backend)(plan, x, weight)
        self.plan = plan
        self.ctx = ctx
        self.backend = backend
        return out

    def backward(self, grad: np.ndarray):
        need_x = self.needs_input_grad[0]
        need_w = len(self.needs_input_grad) > 1 and self.needs_input_grad[1]
        with dispatch_plan(self.plan):
            grad_x, grad_w = get_kernel("conv2d_backward", self.backend)(
                self.plan, self.ctx, grad,
                need_input_grad=need_x, need_weight_grad=need_w,
            )
        results = [grad_x]
        if len(self.needs_input_grad) > 1:
            results.append(grad_w)
        return tuple(results)


class MaxPool2d(Function):
    """Max pooling with optional padding; supports overlapping windows."""

    def forward(
        self,
        x: np.ndarray,
        kernel: int,
        stride: int,
        padding: int = 0,
        backend: str = "default",
    ) -> np.ndarray:
        plan = pool2d_plan("max", x.shape, kernel, stride, padding, x.dtype)
        out, ctx = get_kernel("maxpool2d", backend)(plan, x)
        self.plan = plan
        self.ctx = ctx
        self.backend = backend
        return out

    def backward(self, grad: np.ndarray):
        gx = get_kernel("maxpool2d_backward", self.backend)(self.plan, self.ctx, grad)
        return (gx,)


class AvgPool2d(Function):
    """Average pooling (non-overlapping fast path via reshape)."""

    def forward(
        self,
        x: np.ndarray,
        kernel: int,
        stride: int | None = None,
        backend: str = "default",
    ) -> np.ndarray:
        stride = kernel if stride is None else stride
        plan = pool2d_plan("avg", x.shape, kernel, stride, 0, x.dtype)
        out, ctx = get_kernel("avgpool2d", backend)(plan, x)
        self.plan = plan
        self.ctx = ctx
        self.backend = backend
        return out

    def backward(self, grad: np.ndarray):
        gx = get_kernel("avgpool2d_backward", self.backend)(self.plan, self.ctx, grad)
        return (gx,)


class BatchNorm2d(Function):
    """Training-mode batch normalisation over (N, H, W) per channel.

    A fused kernel (rather than composing mean/var ops) because BN sits in
    every residual block and dominates graph-node count otherwise.
    """

    def forward(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        eps: float = 1e-5,
    ) -> np.ndarray:
        axes = (0, 2, 3)
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps)
        xhat = (x - mean) * inv_std
        self.save_for_backward(xhat, inv_std, gamma)
        self.batch_mean = mean.reshape(-1)
        self.batch_var = var.reshape(-1)
        return gamma.reshape(1, -1, 1, 1) * xhat + beta.reshape(1, -1, 1, 1)

    def backward(self, grad: np.ndarray):
        xhat, inv_std, gamma = self.saved
        axes = (0, 2, 3)
        m = grad.shape[0] * grad.shape[2] * grad.shape[3]
        grad_gamma = (grad * xhat).sum(axis=axes)
        grad_beta = grad.sum(axis=axes)
        g = grad * gamma.reshape(1, -1, 1, 1)
        grad_x = (
            inv_std
            / m
            * (
                m * g
                - g.sum(axis=axes, keepdims=True)
                - xhat * (g * xhat).sum(axis=axes, keepdims=True)
            )
        ).astype(grad.dtype)
        results = [grad_x]
        if len(self.needs_input_grad) > 1:
            results.append(grad_gamma.astype(grad.dtype))
        if len(self.needs_input_grad) > 2:
            results.append(grad_beta.astype(grad.dtype))
        return tuple(results)
