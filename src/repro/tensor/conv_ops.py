"""Convolution, pooling and batch-norm autograd kernels (NCHW layout).

These are the "cuDNN primitives" of the reproduction: the standard / grouped
convolution here is what the paper's *Pytorch-Base* and *Pytorch-Opt* SCC
strategies composite (Section IV-A), while the fused DSXplore SCC kernel
lives in :mod:`repro.core.scc_kernels`.

Implementation idiom (per the session HPC guides): the input patch matrix is
a zero-copy strided *view* (``as_strided``), reductions are ``einsum`` calls
over that view so no im2col buffer is ever materialised, and the data-grad
scatter runs as ``KH*KW`` strided accumulations instead of a per-element
``np.add.at`` scatter.
"""
from __future__ import annotations

import numpy as np

from repro.tensor.function import Function


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution/pooling window sweep."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces empty output: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def _patch_view(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Zero-copy (N, C, Ho, Wo, KH, KW) sliding-window view of padded input."""
    n, c, h, w = x.shape
    ho = (h - kh) // stride + 1
    wo = (w - kw) // stride + 1
    if ho <= 0 or wo <= 0:
        raise ValueError(
            f"window of {kh}x{kw} (stride {stride}) produces empty output on "
            f"{h}x{w} input — input too small for this layer stack"
        )
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, ho, wo, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


class Conv2d(Function):
    """Standard / grouped 2D convolution.

    ``weight`` has shape ``(Cout, Cin // groups, KH, KW)``.  Depthwise
    convolution is the ``groups == Cin`` special case; pointwise is
    ``KH == KW == 1`` — exactly the taxonomy of paper Figure 1.
    """

    def forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
    ) -> np.ndarray:
        n, cin, h, w = x.shape
        cout, cin_g, kh, kw = weight.shape
        if cin % groups or cout % groups:
            raise ValueError(f"groups={groups} must divide Cin={cin} and Cout={cout}")
        if cin_g != cin // groups:
            raise ValueError(
                f"weight expects {cin_g} input channels per group but input provides "
                f"{cin // groups} (Cin={cin}, groups={groups})"
            )
        self.stride, self.padding, self.groups = stride, padding, groups

        xp = x if padding == 0 else np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        self.save_for_backward(xp, weight, x.shape)
        patches = _patch_view(xp, kh, kw, stride)
        out_per_group = cout // groups
        if groups == 1:
            return np.einsum("nchwij,ocij->nohw", patches, weight, optimize=True)
        outs = np.empty(
            (n, cout, patches.shape[2], patches.shape[3]), dtype=x.dtype
        )
        cg = cin // groups
        for g in range(groups):
            outs[:, g * out_per_group : (g + 1) * out_per_group] = np.einsum(
                "nchwij,ocij->nohw",
                patches[:, g * cg : (g + 1) * cg],
                weight[g * out_per_group : (g + 1) * out_per_group],
                optimize=True,
            )
        return outs

    def backward(self, grad: np.ndarray):
        xp, weight, x_shape = self.saved
        stride, padding, groups = self.stride, self.padding, self.groups
        cout, cin_g, kh, kw = weight.shape
        n = xp.shape[0]
        ho, wo = grad.shape[2], grad.shape[3]

        patches = _patch_view(xp, kh, kw, stride)
        cg = xp.shape[1] // groups
        og = cout // groups

        need_x = self.needs_input_grad[0]
        need_w = len(self.needs_input_grad) > 1 and self.needs_input_grad[1]

        grad_w = np.zeros_like(weight) if need_w else None
        grad_xp = np.zeros_like(xp) if need_x else None

        for g in range(groups):
            gsl = slice(g * og, (g + 1) * og)
            csl = slice(g * cg, (g + 1) * cg)
            gout = grad[:, gsl]
            if need_w:
                grad_w[gsl] = np.einsum(
                    "nohw,nchwij->ocij", gout, patches[:, csl], optimize=True
                )
            if need_x:
                # Scatter the data gradient as KH*KW strided accumulations.
                wg = weight[gsl]
                for i in range(kh):
                    for j in range(kw):
                        contrib = np.einsum("nohw,oc->nchw", gout, wg[:, :, i, j], optimize=True)
                        grad_xp[:, csl, i : i + ho * stride : stride, j : j + wo * stride : stride] += contrib

        grad_x = None
        if need_x:
            if padding:
                grad_x = np.ascontiguousarray(
                    grad_xp[:, :, padding:-padding, padding:-padding]
                )
            else:
                grad_x = grad_xp
        results = [grad_x]
        if len(self.needs_input_grad) > 1:
            results.append(grad_w)
        return tuple(results)


class MaxPool2d(Function):
    """Max pooling with optional padding; supports overlapping windows."""

    def forward(self, x: np.ndarray, kernel: int, stride: int, padding: int = 0) -> np.ndarray:
        self.kernel, self.stride, self.padding = kernel, stride, padding
        self.in_shape = x.shape
        if padding:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                constant_values=-np.inf,
            )
        self.padded_shape = x.shape
        patches = _patch_view(x, kernel, kernel, stride)
        n, c, ho, wo = patches.shape[:4]
        flat = patches.reshape(n, c, ho, wo, kernel * kernel)
        self.argmax = flat.argmax(axis=-1)
        return flat.max(axis=-1)

    def backward(self, grad: np.ndarray):
        kernel, stride, padding = self.kernel, self.stride, self.padding
        n, c, hp, wp = self.padded_shape
        ho, wo = grad.shape[2], grad.shape[3]
        gxp = np.zeros((n, c, hp, wp), dtype=grad.dtype)
        ki = self.argmax // kernel
        kj = self.argmax % kernel
        ni, ci, yi, xi = np.indices(grad.shape, sparse=False)
        rows = yi * stride + ki
        cols = xi * stride + kj
        np.add.at(gxp, (ni, ci, rows, cols), grad)
        if padding:
            gxp = np.ascontiguousarray(gxp[:, :, padding:-padding, padding:-padding])
        return (gxp,)


class AvgPool2d(Function):
    """Average pooling (non-overlapping fast path via reshape)."""

    def forward(self, x: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
        stride = kernel if stride is None else stride
        if stride != kernel:
            raise NotImplementedError("AvgPool2d supports stride == kernel only")
        n, c, h, w = x.shape
        if h % kernel or w % kernel:
            raise ValueError(f"spatial dims ({h},{w}) not divisible by kernel {kernel}")
        self.kernel = kernel
        self.in_shape = x.shape
        return x.reshape(n, c, h // kernel, kernel, w // kernel, kernel).mean(axis=(3, 5))

    def backward(self, grad: np.ndarray):
        k = self.kernel
        scale = 1.0 / (k * k)
        g = np.repeat(np.repeat(grad, k, axis=2), k, axis=3) * scale
        return (g.astype(grad.dtype),)


class BatchNorm2d(Function):
    """Training-mode batch normalisation over (N, H, W) per channel.

    A fused kernel (rather than composing mean/var ops) because BN sits in
    every residual block and dominates graph-node count otherwise.
    """

    def forward(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        eps: float = 1e-5,
    ) -> np.ndarray:
        axes = (0, 2, 3)
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps)
        xhat = (x - mean) * inv_std
        self.save_for_backward(xhat, inv_std, gamma)
        self.batch_mean = mean.reshape(-1)
        self.batch_var = var.reshape(-1)
        return gamma.reshape(1, -1, 1, 1) * xhat + beta.reshape(1, -1, 1, 1)

    def backward(self, grad: np.ndarray):
        xhat, inv_std, gamma = self.saved
        axes = (0, 2, 3)
        m = grad.shape[0] * grad.shape[2] * grad.shape[3]
        grad_gamma = (grad * xhat).sum(axis=axes)
        grad_beta = grad.sum(axis=axes)
        g = grad * gamma.reshape(1, -1, 1, 1)
        grad_x = (
            inv_std
            / m
            * (
                m * g
                - g.sum(axis=axes, keepdims=True)
                - xhat * (g * xhat).sum(axis=axes, keepdims=True)
            )
        ).astype(grad.dtype)
        results = [grad_x]
        if len(self.needs_input_grad) > 1:
            results.append(grad_gamma.astype(grad.dtype))
        if len(self.needs_input_grad) > 2:
            results.append(grad_beta.astype(grad.dtype))
        return tuple(results)
