"""The ``numpy`` backend: vectorised einsum / ``as_strided`` fast paths.

These are the "cuDNN primitives" of the reproduction.  Implementation idiom
(per the session HPC guides): input patch matrices are zero-copy strided
*views*, reductions are einsum calls over those views (no im2col buffer),
the data-grad scatter runs as ``KH*KW`` strided accumulations, and every
contraction fetches its ``np.einsum_path`` plan from the execution-plan
cache instead of re-searching per call.

SCC kernels implement all three of the paper's execution strategies behind
one registered op pair (``scc_forward`` / ``scc_backward``) parameterised by
``strategy``; see :mod:`repro.core.scc_kernels` for the paper mapping.
"""
from __future__ import annotations

import numpy as np

from repro.backend.plan import (
    Conv2dPlan,
    EpilogueArgs,
    FusedConv2dPlan,
    Pool2dPlan,
    SCCPlan,
    combine_partials_tree,
    planned_einsum,
)
from repro.backend.registry import register_kernel
from repro.backend.schedule import (
    effective_gradw_tile,
    effective_k_tile,
    effective_pull_tile,
    tile_slices,
)
from repro.backend.stats import KernelStats, scc_conflict_fraction


def _patch_view(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Zero-copy (N, C, Ho, Wo, KH, KW) sliding-window view of padded input."""
    n, c, h, w = x.shape
    ho = (h - kh) // stride + 1
    wo = (w - kw) // stride + 1
    if ho <= 0 or wo <= 0:
        raise ValueError(
            f"window of {kh}x{kw} (stride {stride}) produces empty output on "
            f"{h}x{w} input — input too small for this layer stack"
        )
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, ho, wo, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def _pad2d(x: np.ndarray, padding: int, **kwargs) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), **kwargs
    )


# ---------------------------------------------------------------------------
# conv2d
# ---------------------------------------------------------------------------

def dense_fwd_partial(patches: np.ndarray, weight: np.ndarray, sl: slice) -> np.ndarray:
    """One input-channel tile of the dense forward contraction.

    Shared verbatim by the ``numpy`` and ``threaded`` backends: identical
    einsum call, identical operand views, path served from the plan cache —
    the per-tile results are bitwise-equal across backends by construction.
    """
    return planned_einsum("nchwij,ocij->nohw", patches[:, sl], weight[:, sl])


def dense_gradw_partial(grad: np.ndarray, patches: np.ndarray, sl: slice) -> np.ndarray:
    """One batch tile of the dense grad-weight contraction (see above)."""
    return planned_einsum("nohw,nchwij->ocij", grad[sl], patches[sl])


def pull_gemm_partial(grad_out: np.ndarray, w_full: np.ndarray, sl: slice) -> np.ndarray:
    """One contracted output-channel tile of the SCC pull-GEMM (see above)."""
    return planned_einsum("nohw,oc->nchw", grad_out[:, sl], w_full[sl])


def _dense_forward(plan: Conv2dPlan, patches: np.ndarray, weight: np.ndarray):
    """Dense (groups == 1) forward: tiled canonical order, serial tiles."""
    k_slices = tile_slices(plan.x_shape[1], effective_k_tile(plan.k_tile))
    if len(k_slices) == 1:
        return np.einsum("nchwij,ocij->nohw", patches, weight, optimize=plan.fwd_path)
    return combine_partials_tree(
        [dense_fwd_partial(patches, weight, sl) for sl in k_slices]
    )


def _dense_gradw(plan: Conv2dPlan, grad: np.ndarray, patches: np.ndarray):
    """Dense (groups == 1) grad-weight: batch-tiled canonical order."""
    n_slices = tile_slices(grad.shape[0], effective_gradw_tile(plan.gradw_tile))
    if len(n_slices) == 1:
        return np.einsum("nohw,nchwij->ocij", grad, patches, optimize=plan.gradw_path)
    return combine_partials_tree(
        [dense_gradw_partial(grad, patches, sl) for sl in n_slices]
    )


@register_kernel("conv2d", "numpy")
def conv2d(plan: Conv2dPlan, x: np.ndarray, weight: np.ndarray):
    kh, kw = plan.kernel
    xp = _pad2d(x, plan.padding)
    patches = _patch_view(xp, kh, kw, plan.stride)
    groups = plan.groups
    if groups == 1:
        out = _dense_forward(plan, patches, weight)
    else:
        n, cout = plan.out_shape[0], plan.out_shape[1]
        out = np.empty(plan.out_shape, dtype=x.dtype)
        og = cout // groups
        cg = plan.x_shape[1] // groups
        for g in range(groups):
            out[:, g * og : (g + 1) * og] = np.einsum(
                "nchwij,ocij->nohw",
                patches[:, g * cg : (g + 1) * cg],
                weight[g * og : (g + 1) * og],
                optimize=plan.fwd_path,
            )
    return out, {"xp": xp, "w": weight}


@register_kernel("conv2d_backward", "numpy")
def conv2d_backward(
    plan: Conv2dPlan,
    ctx: dict,
    grad: np.ndarray,
    need_input_grad: bool = True,
    need_weight_grad: bool = True,
):
    xp, weight = ctx["xp"], ctx["w"]
    stride, padding, groups = plan.stride, plan.padding, plan.groups
    cout, _, kh, kw = weight.shape
    ho, wo = grad.shape[2], grad.shape[3]

    patches = _patch_view(xp, kh, kw, stride)
    cg = xp.shape[1] // groups
    og = cout // groups

    grad_w = np.zeros_like(weight) if need_weight_grad else None
    grad_xp = np.zeros_like(xp) if need_input_grad else None

    if need_weight_grad and groups == 1:
        grad_w[:] = _dense_gradw(plan, grad, patches)

    for g in range(groups):
        gsl = slice(g * og, (g + 1) * og)
        csl = slice(g * cg, (g + 1) * cg)
        gout = grad[:, gsl]
        if need_weight_grad and groups > 1:
            grad_w[gsl] = np.einsum(
                "nohw,nchwij->ocij", gout, patches[:, csl], optimize=plan.gradw_path
            )
        if need_input_grad:
            # Scatter the data gradient as KH*KW strided accumulations.
            wg = weight[gsl]
            for i in range(kh):
                for j in range(kw):
                    contrib = np.einsum(
                        "nohw,oc->nchw", gout, wg[:, :, i, j], optimize=plan.gradx_path
                    )
                    grad_xp[
                        :, csl,
                        i : i + ho * stride : stride,
                        j : j + wo * stride : stride,
                    ] += contrib

    grad_x = None
    if need_input_grad:
        if padding:
            grad_x = np.ascontiguousarray(
                grad_xp[:, :, padding:-padding, padding:-padding]
            )
        else:
            grad_x = grad_xp
    return grad_x, grad_w


@register_kernel("conv2d_fused", "numpy")
def conv2d_fused(
    fplan: FusedConv2dPlan, x: np.ndarray, weight: np.ndarray, epilogue: EpilogueArgs
):
    """Inference-only conv2d with its staged epilogue applied per output
    slab while it is cache-hot — no intermediate bias/BN/activation tensors
    are materialized.  Returns the output only (no backward context)."""
    plan = fplan.base
    kh, kw = plan.kernel
    xp = _pad2d(x, plan.padding)
    patches = _patch_view(xp, kh, kw, plan.stride)
    groups = plan.groups
    if groups == 1:
        out = _dense_forward(plan, patches, weight)
        epilogue.apply(out)
    else:
        n, cout = plan.out_shape[0], plan.out_shape[1]
        out = np.empty(plan.out_shape, dtype=x.dtype)
        og = cout // groups
        cg = plan.x_shape[1] // groups
        for g in range(groups):
            gsl = slice(g * og, (g + 1) * og)
            out[:, gsl] = np.einsum(
                "nchwij,ocij->nohw",
                patches[:, g * cg : (g + 1) * cg],
                weight[gsl],
                optimize=plan.fwd_path,
            )
            epilogue.apply(out[:, gsl], gsl)
    return out


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

@register_kernel("maxpool2d", "numpy")
def maxpool2d(plan: Pool2dPlan, x: np.ndarray):
    k = plan.kernel
    xp = _pad2d(x, plan.padding, constant_values=-np.inf)
    patches = _patch_view(xp, k, k, plan.stride)
    n, c, ho, wo = patches.shape[:4]
    flat = patches.reshape(n, c, ho, wo, k * k)
    argmax = flat.argmax(axis=-1)
    return flat.max(axis=-1), {"argmax": argmax}


@register_kernel("maxpool2d_backward", "numpy")
def maxpool2d_backward(plan: Pool2dPlan, ctx: dict, grad: np.ndarray):
    k, stride, padding = plan.kernel, plan.stride, plan.padding
    argmax = ctx["argmax"]
    gxp = np.zeros(plan.padded_shape, dtype=grad.dtype)
    ki = argmax // k
    kj = argmax % k
    ni, ci, yi, xi = np.indices(grad.shape, sparse=False)
    rows = yi * stride + ki
    cols = xi * stride + kj
    np.add.at(gxp, (ni, ci, rows, cols), grad)
    if padding:
        gxp = np.ascontiguousarray(gxp[:, :, padding:-padding, padding:-padding])
    return gxp


@register_kernel("avgpool2d", "numpy")
def avgpool2d(plan: Pool2dPlan, x: np.ndarray):
    n, c, h, w = x.shape
    k = plan.kernel
    out = x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))
    return out, {}


@register_kernel("avgpool2d_backward", "numpy")
def avgpool2d_backward(plan: Pool2dPlan, ctx: dict, grad: np.ndarray):
    k = plan.kernel
    g = np.repeat(np.repeat(grad, k, axis=2), k, axis=3) * (1.0 / (k * k))
    return g.astype(grad.dtype)


# ---------------------------------------------------------------------------
# SCC: the three execution strategies (paper Section IV)
# ---------------------------------------------------------------------------

def _count_push_scatter(plan: SCCPlan, stats: KernelStats, total_updates: int) -> None:
    cfg = plan.config
    stats.scatter_adds += total_updates
    fraction = scc_conflict_fraction(
        cfg.in_channels, cfg.out_channels, cfg.group_width
    )
    stats.conflicting_scatter_adds += int(total_updates * fraction)


def _channel_stack_forward(plan, x, w, stats, epilogue=None):
    # Steps 1-3 of Pytorch-Base: one fancy-index gather == slice+concat of
    # every window into the (N, Cout, gw, H, W) stacked tensor.
    stacked = x[:, plan.windows]
    stats.bytes_materialized += stacked.nbytes
    stats.gemm_calls += 1
    # Step 4: grouped convolution with groups == Cout.
    out = planned_einsum("noghw,og->nohw", stacked, w)
    if epilogue is not None:
        epilogue.apply(out)
    return out, {"x": x, "w": w, "stacked": stacked}


def _channel_stack_backward(plan, saved, grad_out, need_x, need_w, stats):
    w, stacked = saved["w"], saved["stacked"]
    grad_x = grad_w = None
    if need_w:
        grad_w = planned_einsum("nohw,noghw->og", grad_out, stacked)
        stats.gemm_calls += 1
    if need_x:
        # Reverse of the concat/extract: scatter the stacked gradient back,
        # with conflicts wherever windows overlap.
        grad_stacked = planned_einsum("nohw,og->noghw", grad_out, w)
        stats.bytes_materialized += grad_stacked.nbytes
        stats.gemm_calls += 1
        grad_x = np.zeros_like(saved["x"])
        idx_n = np.arange(grad_out.shape[0])[:, None, None]
        np.add.at(grad_x, (idx_n, plan.windows[None, :, :]), grad_stacked)
        _count_push_scatter(plan, stats, grad_stacked.size)
    return grad_x, grad_w


def _conv_stack_forward(plan, x, w, stats, epilogue=None):
    cfg = plan.config
    cd = plan.cyclic_dist
    n, _, h, wdt = x.shape
    out = np.empty((n, cfg.out_channels, h, wdt), dtype=x.dtype)
    gathered = []
    for p, idx in enumerate(plan.cycle_index):
        win = x[:, idx]                               # (N, gw, H, W) copy
        stats.bytes_materialized += win.nbytes
        gathered.append(win)
        out[:, p::cd] = planned_einsum("nghw,og->nohw", win, w[p::cd])
        stats.gemm_calls += 1
        if epilogue is not None:
            epilogue.apply(out[:, p::cd], slice(p, None, cd))
    return out, {"x": x, "w": w, "gathered": gathered}


def _conv_stack_backward(plan, saved, grad_out, need_x, need_w, stats):
    cd = plan.cyclic_dist
    w, gathered = saved["w"], saved["gathered"]
    grad_x = np.zeros_like(saved["x"]) if need_x else None
    grad_w = np.empty_like(w) if need_w else None
    for p, idx in enumerate(plan.cycle_index):
        g = grad_out[:, p::cd]
        if need_w:
            grad_w[p::cd] = planned_einsum("nohw,nghw->og", g, gathered[p])
            stats.gemm_calls += 1
        if need_x:
            contrib = planned_einsum("nohw,og->nghw", g, w[p::cd])
            stats.bytes_materialized += contrib.nbytes
            stats.gemm_calls += 1
            # Within one cycle position the window channels are distinct, so
            # a fancy-index += is conflict-free; conflicts across cycle
            # positions are resolved by this serial per-p loop
            # (framework-level serialisation, the paper's point about
            # composed-operator implementations).
            grad_x[:, idx] += contrib
            stats.scatter_adds += contrib.size
    return grad_x, grad_w


def _dsxplore_forward(plan, x, w, stats, epilogue=None):
    cfg = plan.config
    cd = plan.cyclic_dist
    n, _, h, wdt = x.shape
    out = np.zeros((n, cfg.out_channels, h, wdt), dtype=x.dtype)
    for p, segments in enumerate(plan.segments):
        wp = w[p::cd]
        for chan_slice, col_slice in segments:
            # x[:, chan_slice] is a view — zero bytes materialised.
            out[:, p::cd] += planned_einsum(
                "nchw,oc->nohw", x[:, chan_slice], wp[:, col_slice]
            )
            stats.gemm_calls += 1
        if epilogue is not None:
            epilogue.apply(out[:, p::cd], slice(p, None, cd))
    return out, {"x": x, "w": w}


def _pull_gemm(plan: SCCPlan, grad_out: np.ndarray, w_full: np.ndarray) -> np.ndarray:
    """The input-centric pull-GEMM, tiled over the contracted output-channel
    axis in the canonical order (shared partials + fixed pairwise tree)."""
    o_slices = tile_slices(w_full.shape[0], effective_pull_tile(plan.pull_tile))
    if len(o_slices) == 1:
        return planned_einsum("nohw,oc->nchw", grad_out, w_full)
    return combine_partials_tree(
        [pull_gemm_partial(grad_out, w_full, sl) for sl in o_slices]
    )


def _dsxplore_backward(plan, saved, grad_out, need_x, need_w, stats, backward_design):
    if backward_design not in ("input_centric", "output_centric"):
        raise ValueError(
            f"backward_design must be 'input_centric' or 'output_centric', "
            f"got {backward_design!r}"
        )
    x, w = saved["x"], saved["w"]
    cd = plan.cyclic_dist
    grad_w = None
    if need_w:
        grad_w = np.empty_like(w)
        for p, segments in enumerate(plan.segments):
            g = grad_out[:, p::cd]
            for chan_slice, col_slice in segments:
                grad_w[p::cd, col_slice] = planned_einsum(
                    "nohw,nchw->oc", g, x[:, chan_slice]
                )
                stats.gemm_calls += 1
    grad_x = None
    if need_x:
        if backward_design == "input_centric":
            # One dense pull GEMM, zero scatter updates.  The W_full scratch
            # workspace comes from the plan cache (refilled, not rebuilt).
            w_full = plan.w_full(w)
            stats.bytes_materialized += w_full.nbytes
            grad_x = _pull_gemm(plan, grad_out, w_full)
            stats.gemm_calls += 1
            grad_x = grad_x.astype(x.dtype, copy=False)
        else:
            # Output-centric (*DSXplore-Var*): push with serialised conflicts.
            contrib = planned_einsum("nohw,og->noghw", grad_out, w)
            stats.bytes_materialized += contrib.nbytes
            stats.gemm_calls += 1
            grad_x = np.zeros_like(x)
            idx_n = np.arange(grad_out.shape[0])[:, None, None]
            np.add.at(grad_x, (idx_n, plan.windows[None, :, :]), contrib)
            _count_push_scatter(plan, stats, contrib.size)
    return grad_x, grad_w


_FORWARD = {
    "channel_stack": _channel_stack_forward,
    "conv_stack": _conv_stack_forward,
    "dsxplore": _dsxplore_forward,
}

_BACKWARD = {
    "channel_stack": _channel_stack_backward,
    "conv_stack": _conv_stack_backward,
}


@register_kernel("scc_forward", "numpy")
def scc_forward(
    plan: SCCPlan,
    x: np.ndarray,
    w: np.ndarray,
    *,
    strategy: str = "dsxplore",
    stats: KernelStats | None = None,
    epilogue: EpilogueArgs | None = None,
):
    try:
        fwd = _FORWARD[strategy]
    except KeyError:
        raise ValueError(
            f"unknown SCC strategy {strategy!r}; available: {sorted(_FORWARD)}"
        ) from None
    return fwd(
        plan, x, w, stats if stats is not None else KernelStats(), epilogue=epilogue
    )


@register_kernel("scc_backward", "numpy")
def scc_backward(
    plan: SCCPlan,
    saved: dict,
    grad_out: np.ndarray,
    *,
    strategy: str = "dsxplore",
    backward_design: str = "input_centric",
    need_input_grad: bool = True,
    need_weight_grad: bool = True,
    stats: KernelStats | None = None,
):
    stats = stats if stats is not None else KernelStats()
    if strategy == "dsxplore":
        return _dsxplore_backward(
            plan, saved, grad_out, need_input_grad, need_weight_grad, stats,
            backward_design,
        )
    try:
        bwd = _BACKWARD[strategy]
    except KeyError:
        raise ValueError(
            f"unknown SCC strategy {strategy!r}; available: "
            f"{sorted(_BACKWARD) + ['dsxplore']}"
        ) from None
    return bwd(plan, saved, grad_out, need_input_grad, need_weight_grad, stats)
