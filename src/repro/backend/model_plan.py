"""Whole-model execution plans: every layer's plan built once, up front.

The per-op :data:`~repro.backend.workload.PLAN_CACHE` amortises plan
construction *lazily* — the first training step or inference request of each
shape-class still pays every ``np.einsum_path`` search and index-table
build.  A :class:`ModelPlan` moves that cost to model-construction time, the
analog of topi's per-workload schedule tables compiled ahead of a run:

- it harvests the ordered list of layer geometries from one probe forward
  pass (:func:`repro.gpusim.extract_layer_shapes`, batch-parameterized),
- derives each planned layer's :class:`~repro.backend.workload.Workload`
  and pre-builds its execution plan into the global cache,
- runs one warmup forward (and, for training plans, backward) so plans
  only reachable through execution — pooling geometry, backward contraction
  paths — are resident too, and
- pre-allocates the staging/accounting workspaces of a full forward or
  forward/backward at the plan's batch size.

After construction, every step or request at the plan's shapes runs 100%
on plan-cache hits; :class:`repro.serve.Server` keeps one ``ModelPlan`` per
shape bucket and :class:`repro.train.Trainer` accepts one to make the warm
path explicit.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.workload import PLAN_CACHE, Workload
from repro.backend.plan import conv2d_plan, scc_plan

DTYPE = np.float32
DTYPE_BYTES = 4  # canonical float32 width; repro.gpusim.workloads imports it

_CONV_KINDS = ("conv", "dw", "pw", "gpw", "gc")


@dataclass(frozen=True)
class PlannedLayer:
    """One plan-cache-keyed layer occurrence inside a model plan."""

    name: str
    kind: str
    workload: Workload
    plan: object


def layer_workload(shape, batch_size: int) -> Workload | None:
    """The :class:`Workload` one harvested layer geometry keys, if any.

    Conv-family and SCC layers dispatch through cached plans; BN, linear and
    elementwise layers have no plan-cache entry and return ``None``.
    """
    if shape.kind in _CONV_KINDS:
        return Workload.make(
            "conv2d",
            (batch_size, shape.cin, shape.hin, shape.win),
            (shape.cout, shape.cin // shape.groups, shape.kernel, shape.kernel),
            DTYPE,
            stride=shape.stride,
            padding=shape.padding,
            groups=shape.groups,
        )
    if shape.kind == "scc":
        return Workload.make(
            "scc_plan",
            cin=shape.cin,
            cout=shape.cout,
            cg=shape.scc.cg,
            co=shape.scc.co,
        )
    return None


class ModelPlan:
    """Pre-built execution plans + workspaces for one (model, batch) pair.

    Parameters
    ----------
    model:
        the :class:`repro.nn.Module` to plan for.
    input_shape:
        per-sample ``(C, H, W)`` input geometry.
    batch_size:
        the batch every planned step/request runs at.
    include_backward:
        build training plans (forward + backward + gradient workspaces);
        ``False`` gives an inference-only plan (the serving case).
    warmup:
        run the probe execution that pre-builds plans.  Leave on; ``False``
        exists for tests that want the harvest without the build cost.
    """

    def __init__(
        self,
        model,
        input_shape: tuple[int, int, int],
        batch_size: int = 1,
        include_backward: bool = True,
        warmup: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        # Imported lazily: repro.gpusim imports repro.backend at module level.
        from repro.gpusim.workloads import extract_layer_shapes

        self.model = model
        self.input_shape = tuple(input_shape)
        self.batch_size = batch_size
        self.include_backward = include_backward
        self.layers = extract_layer_shapes(model, self.input_shape, batch_size=batch_size)
        # Layers carrying a fused epilogue (repro.nn.fuse): their inference
        # dispatch goes through conv2d_fused / SCC epilogue plans, which the
        # warmup probe below makes cache-resident.
        self.fused_layers = sum(
            1
            for _, m in model.named_modules()
            if getattr(m, "_fused_epilogue", None) is not None
        )

        base_builds = PLAN_CACHE.stats()["builds"]
        self.planned_layers = self._prebuild_layer_plans()
        if warmup:
            self._warmup_execution()
        self.prebuilt_plans = PLAN_CACHE.stats()["builds"] - base_builds

        # Staging/accounting workspaces: the batch-assembly buffer the
        # serving/training front-ends fill in place, plus the activation and
        # gradient footprints a full pass at this batch size touches.
        self.input_buffer = np.zeros((batch_size, *self.input_shape), dtype=DTYPE)
        self.activation_bytes = sum(
            s.out_elements(batch_size) * DTYPE_BYTES for s in self.layers
        )
        self.gradient_bytes = self.activation_bytes if include_backward else 0

    # -- construction ---------------------------------------------------------

    def _prebuild_layer_plans(self) -> list[PlannedLayer]:
        from repro.core.channel_map import SCCConfig

        planned: list[PlannedLayer] = []
        for shape in self.layers:
            workload = layer_workload(shape, self.batch_size)
            if workload is None:
                continue
            if shape.kind == "scc":
                plan = scc_plan(
                    SCCConfig(shape.cin, shape.cout, shape.scc.cg, shape.scc.co)
                )
            else:
                plan = conv2d_plan(
                    workload.in_shape, workload.weight_shape,
                    shape.stride, shape.padding, shape.groups, workload.dtype,
                )
            planned.append(
                PlannedLayer(name=shape.name, kind=shape.kind, workload=workload, plan=plan)
            )
        return planned

    def _warmup_execution(self) -> None:
        """One probe pass so execution-only plans (pooling geometry, backward
        contraction paths) are built now rather than on the first real step."""
        from repro.tensor import Tensor, no_grad

        x = np.zeros((self.batch_size, *self.input_shape), dtype=DTYPE)
        was_training = self.model.training
        if self.include_backward:
            # The probe mutates BN running stats and parameter grads; snapshot
            # and restore so planning leaves the model bit-identical.
            state = self.model.state_dict()
            self.model.train()
            out = self.model(Tensor(x, requires_grad=False))
            out.sum().backward()
            self.model.zero_grad()
            self.model.load_state_dict(state)
        else:
            self.model.eval()
            with no_grad():
                self.model(Tensor(x))
        self.model.train(was_training)

    # -- staging --------------------------------------------------------------

    def stage_batch(self, images: np.ndarray) -> np.ndarray:
        """Copy up to ``batch_size`` images into the pre-allocated input
        buffer, zero-padding the tail, and return the full staged batch.

        This is how the serving front-end assembles a shape bucket without a
        per-request allocation: partial buckets run at the planned batch size
        (so every lookup hits a warm plan) and the padded rows are discarded
        by the caller.
        """
        images = np.asarray(images, dtype=DTYPE)
        n = images.shape[0]
        if n > self.batch_size or images.shape[1:] != self.input_shape:
            raise ValueError(
                f"cannot stage batch of shape {images.shape} into plan for "
                f"batch_size={self.batch_size}, input_shape={self.input_shape}"
            )
        self.input_buffer[:n] = images
        if n < self.batch_size:
            self.input_buffer[n:] = 0.0
        return self.input_buffer

    def matches(self, batch_shape: tuple) -> bool:
        """Whether a concrete input batch shape runs on this plan's entries."""
        return tuple(batch_shape) == (self.batch_size, *self.input_shape)

    # -- observability --------------------------------------------------------

    def stats(self) -> dict:
        return {
            "layers": len(self.layers),
            "planned_layers": len(self.planned_layers),
            "fused_layers": self.fused_layers,
            "prebuilt_plans": self.prebuilt_plans,
            "batch_size": self.batch_size,
            "input_shape": self.input_shape,
            "include_backward": self.include_backward,
            "activation_bytes": self.activation_bytes,
            "gradient_bytes": self.gradient_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelPlan(batch={self.batch_size}, input={self.input_shape}, "
            f"layers={len(self.layers)}, planned={len(self.planned_layers)}, "
            f"backward={self.include_backward})"
        )
