"""The optional ``numba`` backend: JIT-compiled SCC segment/tap loops.

Everything is gated on the ``numba`` import: in the project's bare-NumPy
container the import fails, **nothing registers**, and backend selection
(``REPRO_BACKEND=numba`` or ``backend="default"``) falls through the
registry's preference order to ``numpy`` silently — a missing JIT must
never break the build.  When numba *is* installed, the hot loops the
``threaded`` backend shards — the SCC cycle-position segment loops and the
conv2d data-grad tap scatter — run as ``@njit(parallel=True)`` kernels
instead, and every other op aliases the ``numpy`` implementation so the
backend is complete.

Unlike ``threaded``, the JIT kernels re-associate reductions (a fused loop
sums in a different order than a BLAS contraction), so outputs match the
``numpy`` backend to float tolerance, **not** bitwise — tests compare with
``allclose`` and skip when numba is absent.  Stats follow the fused-kernel
convention of the DSXplore forward: zero materialised temporaries, one
logical contraction per cycle position / tap.
"""
from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # the container's bare-NumPy environment
    njit = prange = None
    NUMBA_AVAILABLE = False

__all__ = ["NUMBA_AVAILABLE"]


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    from repro.backend import numpy_backend
    from repro.backend.plan import Conv2dPlan, SCCPlan
    from repro.backend.registry import register_kernel
    from repro.backend.stats import KernelStats

    @njit(cache=True, parallel=True)
    def _scc_forward_jit(x, w, windows, out):
        n, _, h, wdt = x.shape
        cout, gw = w.shape
        for o in prange(cout):
            for b in range(n):
                for g in range(gw):
                    c = windows[o, g]
                    coeff = w[o, g]
                    for y in range(h):
                        for z in range(wdt):
                            out[b, o, y, z] += coeff * x[b, c, y, z]

    @njit(cache=True, parallel=True)
    def _scc_backward_jit(grad_out, x, w, windows, grad_x, grad_w,
                          need_x, need_w):
        n, cout, h, wdt = grad_out.shape
        gw = w.shape[1]
        if need_w:
            for o in prange(cout):
                for g in range(gw):
                    c = windows[o, g]
                    acc = 0.0
                    for b in range(n):
                        for y in range(h):
                            for z in range(wdt):
                                acc += grad_out[b, o, y, z] * x[b, c, y, z]
                    grad_w[o, g] = acc
        if need_x:
            # Pull design: one independent reduction per input cell, the
            # numba analog of "one thread per input pixel, no atomics".
            cin = x.shape[1]
            for c in prange(cin):
                for o in range(cout):
                    for g in range(gw):
                        if windows[o, g] == c:
                            coeff = w[o, g]
                            for b in range(n):
                                for y in range(h):
                                    for z in range(wdt):
                                        grad_x[b, c, y, z] += (
                                            coeff * grad_out[b, o, y, z]
                                        )

    @njit(cache=True, parallel=True)
    def _conv_tap_scatter_jit(grad, weight, grad_xp, stride, og, cg):
        n, cout, ho, wo = grad.shape
        _, _, kh, kw = weight.shape
        groups = cout // og
        for g in prange(groups):
            for b in range(n):
                for oo in range(og):
                    o = g * og + oo
                    for cc in range(cg):
                        c = g * cg + cc
                        for i in range(kh):
                            for j in range(kw):
                                coeff = weight[o, cc, i, j]
                                for y in range(ho):
                                    for z in range(wo):
                                        grad_xp[b, c, y * stride + i,
                                                z * stride + j] += (
                                            coeff * grad[b, o, y, z]
                                        )

    _STRATEGIES = ("channel_stack", "conv_stack", "dsxplore")

    def _check_strategy(strategy: str) -> None:
        # Same contract as the numpy/threaded backends: the fused JIT
        # computes any strategy's math, but a typo'd name must still fail
        # loudly rather than silently run (and mislabel) the fused kernel.
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown SCC strategy {strategy!r}; available: "
                f"{sorted(_STRATEGIES)}"
            )

    @register_kernel("scc_forward", "numba")
    def scc_forward(plan: SCCPlan, x, w, *, strategy: str = "dsxplore",
                    stats: KernelStats | None = None, epilogue=None):
        _check_strategy(strategy)
        stats = stats if stats is not None else KernelStats()
        cfg = plan.config
        n, _, h, wdt = x.shape
        out = np.zeros((n, cfg.out_channels, h, wdt), dtype=x.dtype)
        _scc_forward_jit(x, np.asarray(w, dtype=x.dtype), plan.windows, out)
        stats.record(gemm_calls=plan.cyclic_dist)  # fused-loop convention
        if epilogue is not None:
            epilogue.apply(out)
        return out, {"x": x, "w": w}

    @register_kernel("scc_backward", "numba")
    def scc_backward(plan: SCCPlan, saved, grad_out, *,
                     strategy: str = "dsxplore",
                     backward_design: str = "input_centric",
                     need_input_grad: bool = True,
                     need_weight_grad: bool = True,
                     stats: KernelStats | None = None):
        _check_strategy(strategy)
        if backward_design not in ("input_centric", "output_centric"):
            raise ValueError(
                f"backward_design must be 'input_centric' or "
                f"'output_centric', got {backward_design!r}"
            )
        stats = stats if stats is not None else KernelStats()
        x, w = saved["x"], saved["w"]
        grad_x = np.zeros_like(x) if need_input_grad else np.zeros((0, 0, 0, 0), x.dtype)
        grad_w = np.zeros_like(w) if need_weight_grad else np.zeros((0, 0), w.dtype)
        _scc_backward_jit(grad_out, x, w, plan.windows, grad_x, grad_w,
                          need_input_grad, need_weight_grad)
        stats.record(gemm_calls=plan.cyclic_dist)
        return (grad_x if need_input_grad else None,
                grad_w if need_weight_grad else None)

    @register_kernel("conv2d", "numba")
    def conv2d(plan: Conv2dPlan, x, weight):
        return numpy_backend.conv2d(plan, x, weight)

    @register_kernel("conv2d_backward", "numba")
    def conv2d_backward(plan: Conv2dPlan, ctx, grad,
                        need_input_grad=True, need_weight_grad=True):
        xp, weight = ctx["xp"], ctx["w"]
        if not need_input_grad:
            return numpy_backend.conv2d_backward(
                plan, ctx, grad, need_input_grad, need_weight_grad
            )
        # Weight grad via the planned einsum; data grad via the JIT scatter.
        _, grad_w = numpy_backend.conv2d_backward(
            plan, ctx, grad, need_input_grad=False,
            need_weight_grad=need_weight_grad,
        )
        grad_xp = np.zeros_like(xp)
        cout = weight.shape[0]
        _conv_tap_scatter_jit(
            grad, weight, grad_xp, plan.stride,
            cout // plan.groups, xp.shape[1] // plan.groups,
        )
        padding = plan.padding
        if padding:
            grad_x = np.ascontiguousarray(
                grad_xp[:, :, padding:-padding, padding:-padding]
            )
        else:
            grad_x = grad_xp
        return grad_x, grad_w

    register_kernel("maxpool2d", "numba")(numpy_backend.maxpool2d)
    register_kernel("maxpool2d_backward", "numba")(numpy_backend.maxpool2d_backward)
    register_kernel("avgpool2d", "numba")(numpy_backend.avgpool2d)
    register_kernel("avgpool2d_backward", "numba")(numpy_backend.avgpool2d_backward)
