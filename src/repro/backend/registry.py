"""The kernel registry: named ops dispatched to pluggable backends.

Every execution primitive of the reproduction — ``conv2d``, ``scc_forward``,
``scc_backward``, pooling — is registered here under one or more backend
names.  Callers dispatch with :func:`get_kernel`:

- ``"reference"`` — naive loop kernels, the ground truth every fast path is
  tested against;
- ``"numpy"`` — the vectorised einsum / ``as_strided`` fast paths, fed by
  cached execution plans;
- ``"default"`` — auto-selects the best available backend (numpy when
  registered, reference otherwise).

The registry is intentionally dumb: a two-level dict plus a preference
order.  Backends self-register at import time via the
:func:`register_kernel` decorator, so adding a backend (numba, threaded,
...) is one new module that never touches call sites.
"""
from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Iterator

#: Auto-selection order for ``backend="default"``.
DEFAULT_BACKEND_ORDER = ("numpy", "reference")

# Thread-local "default" redirection: while set, default-dispatched ops
# prefer the named backend (falling through to the normal order per op).
# This is the mechanism behind per-workload graceful degradation — the
# serving engine demotes a fault-prone workload down the backend chain by
# wrapping just that workload's batch forward in backend_override().
_OVERRIDE = threading.local()


@contextmanager
def backend_override(backend: str | None) -> Iterator[None]:
    """Prefer ``backend`` for default-dispatched ops on this thread.

    Explicit ``backend=`` arguments at call sites still win — the override
    only redirects ``"default"`` resolution, and only for ops where the
    named backend is registered (others fall through to the normal order,
    so overriding to an absent accelerator can never break dispatch).
    ``None`` is a no-op, letting callers write one ``with`` regardless of
    whether a demotion is active.
    """
    if backend is None:
        yield
        return
    previous = getattr(_OVERRIDE, "name", None)
    _OVERRIDE.name = backend
    try:
        yield
    finally:
        _OVERRIDE.name = previous


def current_backend_override() -> str | None:
    """The thread's active default-dispatch override, if any."""
    return getattr(_OVERRIDE, "name", None)


def env_backend_order(
    default_order: tuple[str, ...] = DEFAULT_BACKEND_ORDER,
    env: str | None = None,
) -> tuple[str, ...]:
    """The ``default`` preference order, honouring ``REPRO_BACKEND``.

    A set ``REPRO_BACKEND`` (e.g. ``threaded``, ``numba``) is *prepended*
    to the base order rather than replacing it: resolution falls through to
    the next registered backend per op, so ``REPRO_BACKEND=numba`` on a
    host without numba (where the numba module registers nothing) silently
    selects ``numpy`` instead of failing — an optional accelerator must
    never break the bare container.
    """
    name = (os.environ.get("REPRO_BACKEND", "") if env is None else env).strip()
    if not name or name == "default":
        return default_order
    return (name,) + tuple(b for b in default_order if b != name)


class KernelRegistry:
    """Two-level dispatch table: op name -> backend name -> kernel callable."""

    def __init__(self, default_order: tuple[str, ...] = DEFAULT_BACKEND_ORDER) -> None:
        self._kernels: dict[str, dict[str, Callable]] = {}
        self.default_order = default_order

    def register(self, op: str, backend: str) -> Callable[[Callable], Callable]:
        """Decorator registering ``fn`` as the ``backend`` implementation of ``op``."""

        def decorator(fn: Callable) -> Callable:
            self._kernels.setdefault(op, {})[backend] = fn
            return fn

        return decorator

    def get(self, op: str, backend: str = "default") -> Callable:
        """Resolve one kernel; raises ``ValueError`` naming the alternatives."""
        try:
            impls = self._kernels[op]
        except KeyError:
            raise ValueError(
                f"unknown kernel op {op!r}; registered ops: {self.ops()}"
            ) from None
        if backend in (None, "default"):
            override = current_backend_override()
            if override is not None and override in impls:
                return impls[override]
            for name in self.default_order:
                if name in impls:
                    return impls[name]
            return next(iter(impls.values()))
        try:
            return impls[backend]
        except KeyError:
            raise ValueError(
                f"op {op!r} has no backend {backend!r}; "
                f"available: {self.backends(op)} (or 'default')"
            ) from None

    def resolve_name(self, op: str, backend: str = "default") -> str:
        """The concrete backend name ``get(op, backend)`` would dispatch to."""
        fn = self.get(op, backend)
        for name, impl in self._kernels[op].items():
            if impl is fn:
                return name
        raise AssertionError("unreachable: resolved kernel not in registry")

    def backends(self, op: str) -> tuple[str, ...]:
        return tuple(sorted(self._kernels.get(op, {})))

    def ops(self) -> tuple[str, ...]:
        return tuple(sorted(self._kernels))


#: The process-wide registry all layers and benchmarks dispatch through.
REGISTRY = KernelRegistry()


def register_kernel(op: str, backend: str) -> Callable[[Callable], Callable]:
    return REGISTRY.register(op, backend)


def get_kernel(op: str, backend: str = "default") -> Callable:
    return REGISTRY.get(op, backend)


def available_backends(op: str) -> tuple[str, ...]:
    return REGISTRY.backends(op)
