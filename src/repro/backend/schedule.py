"""Per-workload tile schedules + the numerical precision tier.

This module is the repo's analog of topi's hand-written per-workload
schedule tables (``gen_schedule.py`` in topi-intel): a small explicit table
of tile sizes for the workload classes the benchmarks exercise, with a
measured-default heuristic for everything else.  The tiles drive the
**tiled contraction kernels** of :mod:`repro.backend.numpy_backend` /
:mod:`repro.backend.threaded_backend`:

- ``conv2d`` forward at ``groups == 1`` tiles the **input-channel** axis,
- ``conv2d`` grad-weight at ``groups == 1`` tiles the **batch** axis,
- the SCC input-centric pull-GEMM tiles the contracted **output-channel**
  axis.

The canonical result of a tiled contraction is defined as the fixed-order
pairwise-tree combination (:func:`repro.backend.plan.combine_partials_tree`)
of the per-tile partial products.  Both the ``numpy`` backend (serial tiles)
and the ``threaded`` backend (tiles on the worker pool) compute exactly this
order, so results are bitwise-identical on any machine and any
``REPRO_NUM_WORKERS`` — which is what finally lets a *lone* GEMM scale with
workers without breaking the bitwise contract.

**Precision tiers.**  ``REPRO_PRECISION`` selects how the threaded backend
combines tiles:

``bitwise`` (default)
    partials are combined in the canonical pairwise-tree order; outputs are
    bit-identical to the ``numpy`` backend.
``fast``
    partials are accumulated in **completion order** under a lock — one
    fewer pass over the partial buffers and no join barrier ordering, at
    the cost of run-to-run reassociation.  Results match the canonical
    order to float tolerance (``allclose``), never bitwise.

The tier only affects the threaded combine; the ``numpy`` backend is always
canonical.

**Tuned schedules.**  When a persistent plan database is active
(``REPRO_PLAN_DB``, see :mod:`repro.backend.plan_db`), workloads the
auto-tuner has measured resolve their tiles from the database *before* the
static tables — :func:`conv_schedule` and :func:`pull_tile_for` consult it
per missing field, so a tuned record may override just ``k_tile`` and
inherit the static ``gradw_tile``.  No database → the static tables and
heuristics below, bit-for-bit.
"""
from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator

from repro.backend.plan_db import tuned_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backend.workload import Workload

__all__ = [
    "TileSchedule",
    "conv_schedule",
    "pull_tile_for",
    "tile_slices",
    "tile_override",
    "current_tile_override",
    "precision_tier",
    "set_precision_tier",
    "precision",
    "schedule_table",
]

PRECISION_TIERS = ("bitwise", "fast")

_STATE = threading.local()
_PRECISION_LOCK = threading.Lock()
_PRECISION: str | None = None  # resolved lazily from REPRO_PRECISION


def _env_precision() -> str:
    value = os.environ.get("REPRO_PRECISION", "").strip().lower() or "bitwise"
    if value not in PRECISION_TIERS:
        raise ValueError(
            f"REPRO_PRECISION must be one of {PRECISION_TIERS}, got {value!r}"
        )
    return value


def precision_tier() -> str:
    """The active combine tier: ``"bitwise"`` or ``"fast"``."""
    override = getattr(_STATE, "precision", None)
    if override is not None:
        return override
    global _PRECISION
    with _PRECISION_LOCK:
        if _PRECISION is None:
            _PRECISION = _env_precision()
        return _PRECISION


def set_precision_tier(tier: str) -> None:
    """Set the process-wide combine tier (see module docstring)."""
    if tier not in PRECISION_TIERS:
        raise ValueError(f"tier must be one of {PRECISION_TIERS}, got {tier!r}")
    global _PRECISION
    with _PRECISION_LOCK:
        _PRECISION = tier


@contextmanager
def precision(tier: str) -> Iterator[None]:
    """Thread-locally pin the combine tier inside the block (tests/benches)."""
    if tier not in PRECISION_TIERS:
        raise ValueError(f"tier must be one of {PRECISION_TIERS}, got {tier!r}")
    previous = getattr(_STATE, "precision", None)
    _STATE.precision = tier
    try:
        yield
    finally:
        _STATE.precision = previous


# ---------------------------------------------------------------------------
# Tile schedules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TileSchedule:
    """Tile sizes of one conv2d workload class (0 = untiled)."""

    k_tile: int = 0       # forward: input-channel tile (groups == 1 only)
    gradw_tile: int = 0   # grad-weight: batch tile (groups == 1 only)


def _default_tile(extent: int, min_tile: int = 16, target_tiles: int = 4) -> int:
    """Measured-default fallback: aim for ``target_tiles`` tiles of at least
    ``min_tile``; extents too small to yield two ``min_tile`` tiles stay
    untiled (tiling overhead would dominate the tiny contraction)."""
    if extent < 2 * min_tile:
        return 0
    return max(min_tile, -(-extent // target_tiles))


def _default_gradw_tile(n: int, min_tile: int = 2, target_tiles: int = 4) -> int:
    """Batch-tile fallback of the dense grad-weight, with the same
    minimum-extent guard shape as :func:`_default_tile`: a batch too small
    to yield two ``min_tile`` tiles stays untiled, and the tile never drops
    below ``min_tile`` — ``ceil(n/4)`` alone shredded batch 4 into four
    singleton tiles whose per-tile einsum + combine overhead dominates the
    tiny contraction it was meant to parallelise."""
    if n < 2 * min_tile:
        return 0
    return max(min_tile, -(-n // target_tiles))


# Explicit per-workload entries, topi-style: the workload classes the
# benchmarks (and the serving model zoo at their native widths) hit, keyed
# by (cin, cout, kernel, stride).  Dense (groups == 1) only — grouped convs
# parallelize over groups and are never K-tiled.  Values were picked from
# the bench_tiled_gemm tile sweep: ~4 tiles is the sweet spot — a 2-4
# worker LPT schedule fills its lanes, while each per-tile einsum keeps a
# large enough contracted extent to run at BLAS efficiency (8+ tiles cut
# the per-tile K so fine the serial tiled path costs 2-3x the lone einsum
# and the pool only wins that overhead back).
CONV_SCHEDULES: dict[tuple[int, int, int, int], TileSchedule] = {
    # bench_backend_scaling / bench_tiled_gemm dense workload
    (64, 128, 3, 1): TileSchedule(k_tile=16, gradw_tile=2),
    (128, 128, 3, 1): TileSchedule(k_tile=32, gradw_tile=2),
    # VGG/ResNet trunk widths (3x3, stride 1)
    (128, 256, 3, 1): TileSchedule(k_tile=32, gradw_tile=2),
    (256, 256, 3, 1): TileSchedule(k_tile=64, gradw_tile=2),
    (256, 512, 3, 1): TileSchedule(k_tile=64, gradw_tile=2),
    (512, 512, 3, 1): TileSchedule(k_tile=128, gradw_tile=2),
}

# SCC input-centric pull-GEMM: contracted output-channel tile, keyed by
# (cin, cout).
PULL_SCHEDULES: dict[tuple[int, int], int] = {
    (64, 128): 32,    # the bench SCC configuration
    (128, 256): 64,
    (256, 512): 128,
}


def conv_schedule(
    x_shape: tuple,
    w_shape: tuple,
    stride: int,
    groups: int,
    workload: "Workload | None" = None,
) -> TileSchedule:
    """Resolve the tile schedule of one conv2d workload.

    Resolution order: a tuned record in the active plan database (when
    ``workload`` is given and ``REPRO_PLAN_DB`` / ``set_plan_db`` installed
    one) > explicit table entries > the measured-default heuristic.
    Grouped convolutions are never tiled — their parallelism axis is the
    group loop.
    """
    if groups != 1:
        return TileSchedule()
    n, cin = x_shape[0], x_shape[1]
    cout, _, kh, _ = w_shape
    entry = CONV_SCHEDULES.get((cin, cout, kh, stride))
    if entry is None:
        entry = TileSchedule(
            k_tile=_default_tile(cin),
            gradw_tile=_default_gradw_tile(n),
        )
    tuned = tuned_plan(workload)
    if tuned is not None:
        entry = TileSchedule(
            k_tile=int(tuned.get("k_tile", entry.k_tile)),
            gradw_tile=int(tuned.get("gradw_tile", entry.gradw_tile)),
        )
    return entry


def pull_tile_for(
    cin: int, cout: int, workload: "Workload | None" = None
) -> int:
    """The pull-GEMM's contracted output-channel tile for one SCC config.

    Same resolution order as :func:`conv_schedule`: tuned database record
    (per field) > explicit table entry > measured-default heuristic.
    """
    tile = PULL_SCHEDULES.get((cin, cout))
    if tile is None:
        tile = _default_tile(cout)
    tuned = tuned_plan(workload)
    if tuned is not None:
        tile = int(tuned.get("pull_tile", tile))
    return tile


def schedule_table() -> dict:
    """The explicit schedule entries (for docs / bench introspection)."""
    return {
        "conv2d": {k: (v.k_tile, v.gradw_tile) for k, v in CONV_SCHEDULES.items()},
        "pull_gemm": dict(PULL_SCHEDULES),
    }


def tile_slices(extent: int, tile: int) -> list[slice]:
    """Partition ``range(extent)`` into fixed-order contiguous tiles.

    ``tile <= 0`` or ``tile >= extent`` yields the single full slice — the
    untiled (monolithic-contraction) case.
    """
    if tile <= 0 or tile >= extent:
        return [slice(0, extent)]
    return [slice(s, min(s + tile, extent)) for s in range(0, extent, tile)]


# ---------------------------------------------------------------------------
# Tile overrides (tests / the bench_tiled_gemm sweep)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _TileOverride:
    k_tile: int | None = None
    gradw_tile: int | None = None
    pull_tile: int | None = None


def current_tile_override() -> "_TileOverride | None":
    return getattr(_STATE, "tiles", None)


@contextmanager
def tile_override(
    k_tile: int | None = None,
    gradw_tile: int | None = None,
    pull_tile: int | None = None,
) -> Iterator[None]:
    """Thread-locally force tile sizes, bypassing the schedule table.

    Tiles change only the *partitioning* of a contraction, never the plan
    geometry, so overriding is safe against the plan cache: kernels resolve
    the effective tile at call time (override first, then the tile the plan
    resolved from the schedule table at build).  Pass ``0`` to force the
    monolithic untiled contraction.
    """
    previous = current_tile_override()
    base = previous or _TileOverride()
    _STATE.tiles = replace(
        base,
        **{
            k: v
            for k, v in (
                ("k_tile", k_tile),
                ("gradw_tile", gradw_tile),
                ("pull_tile", pull_tile),
            )
            if v is not None
        },
    )
    try:
        yield
    finally:
        _STATE.tiles = previous


def effective_k_tile(plan_tile: int) -> int:
    ov = current_tile_override()
    return ov.k_tile if ov is not None and ov.k_tile is not None else plan_tile


def effective_gradw_tile(plan_tile: int) -> int:
    ov = current_tile_override()
    return ov.gradw_tile if ov is not None and ov.gradw_tile is not None else plan_tile


def effective_pull_tile(plan_tile: int) -> int:
    ov = current_tile_override()
    return ov.pull_tile if ov is not None and ov.pull_tile is not None else plan_tile
