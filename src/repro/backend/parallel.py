"""Pluggable execution tiers behind one pooled-parallelism surface.

Every host-parallel consumer in the process — the ``threaded`` kernel
backend (:mod:`repro.backend.threaded_backend`), the multi-model serving
router's cross-model batch overlap (:meth:`repro.serve.router.Router.flush`)
and the async gateway's batch offload — funnels through three calls:
:func:`parallel_map`, :func:`submit_pooled` and :func:`trace_parallel`.
Behind that surface sits an :class:`Executor` *tier* selected by
``REPRO_EXECUTOR``:

============  =============================================================
``thread``    the default — one lazily-created shared
              :class:`~concurrent.futures.ThreadPoolExecutor`, sized by
              ``REPRO_NUM_WORKERS`` (else the usable CPU count);
              bit-for-bit the historical behavior
``process``   :class:`repro.backend.procpool.ProcessExecutor` — a
              fork-based process pool that ships *process-safe* tasks
              (registered module-level functions over ndarrays) through
              shared-memory transport, escaping the GIL; everything else
              transparently runs on the in-process thread lane, so results
              stay bitwise-identical at every process count
``inline``    no pool at all: every region runs serially on the calling
              thread (debugging, signal-clean profiling)
============  =============================================================

:func:`get_executor` resolves the tier lazily; :func:`set_executor` /
:func:`use_executor` override it at runtime.

Three properties every tier preserves (the kernel backend depends on them):

- **owner propagation** — :func:`parallel_map` captures the submitting
  thread's :func:`~repro.backend.workload.plan_owner` tag and re-installs it
  inside every task, so plan-cache traffic from pooled kernel shards is
  still attributed to the right serving model;
- **nested calls run inline** — a task already executing on the pool that
  reaches another ``parallel_map`` (a router-overlapped batch whose model
  forward hits a threaded kernel) runs that inner region serially on its
  own worker instead of re-submitting, which both avoids pool-starvation
  deadlock and expresses the right policy: model-level overlap outranks
  kernel-level sharding;
- **region tracing** — :func:`trace_parallel` records every region's
  per-task wall times while forcing serial execution, so a benchmark on a
  core-starved host can *measure* clean per-shard costs and *model* the
  makespan at any worker count (:func:`makespan`). This is the same
  measure-on-CPU/model-the-parallel-hardware move the gpusim makes for GPU
  kernels, applied to the host pool itself.
"""
from __future__ import annotations

import concurrent.futures
import itertools
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.backend.workload import current_plan_owner, plan_owner
from repro.faults import active_faults

__all__ = [
    "EXECUTOR_TIERS",
    "Executor",
    "InlineExecutor",
    "ShardError",
    "ThreadExecutor",
    "default_num_workers",
    "get_executor",
    "get_num_workers",
    "set_executor",
    "set_num_workers",
    "num_workers",
    "parallel_map",
    "shard_slices",
    "submit_pooled",
    "trace_parallel",
    "use_executor",
    "worker_limit",
    "RegionTrace",
    "makespan",
]

#: The execution substrates ``REPRO_EXECUTOR`` may name.
EXECUTOR_TIERS = ("thread", "process", "inline")


def _describe_item(item: Any) -> str:
    """A compact, attribution-friendly description of one region item."""
    shape = getattr(item, "shape", None)
    if shape is not None:
        return f"{type(item).__name__}(shape={tuple(shape)})"
    if isinstance(item, slice):
        return f"slice({item.start}, {item.stop})"
    text = repr(item)
    return text if len(text) <= 80 else text[:77] + "..."


class ShardError(RuntimeError):
    """One :func:`parallel_map` task failed, wrapped with workload context.

    A fault deep inside a threaded kernel shard otherwise surfaces as a
    bare exception with no hint of *which* region, shard, or operand
    triggered it.  The wrapper names the region ``op``, the shard index,
    and a shape-aware summary of the item; the original exception rides
    along as ``cause`` (and ``__cause__``), and its ``repr`` is embedded in
    the message so existing ``pytest.raises(..., match=...)`` patterns on
    the underlying error keep matching.
    """

    def __init__(self, op: str, shard: int, total: int, item: Any,
                 cause: BaseException) -> None:
        super().__init__(
            f"parallel region {op!r} shard {shard}/{total} failed on "
            f"{_describe_item(item)}: {cause!r}"
        )
        self.op = op
        self.shard = shard
        self.cause = cause
        self.__cause__ = cause


# Sequence number feeding the fault plane's pool_submit draws: each
# submission is a distinct opportunity even at an identical call site.
_SUBMIT_SEQ = itertools.count()

_LOCK = threading.Lock()
_EXECUTOR: ThreadPoolExecutor | None = None
_EXECUTOR_WORKERS: int | None = None   # size the live executor was built with
_NUM_WORKERS: int | None = None        # None = not resolved yet (env/cpu count)
_IN_WORKER = threading.local()         # set while executing a pooled task
_WORKER_LIMIT = threading.local()      # thread-scoped cap (worker_limit ctx)

# Region tracing (benchmark instrumentation; driver-thread use only).
_TRACE_SINK: list | None = None


def _usable_cpu_count() -> int:
    """CPUs this *process* may run on, not CPUs the host has.

    ``os.cpu_count()`` reports the physical host, which overshoots badly in
    cgroup/affinity-limited environments (a CI container pinned to 2 cores
    of a 64-core host would get a 64-thread pool — 32x oversubscribed).
    The scheduler affinity mask is the real bound where the platform
    exposes it; elsewhere fall back to the host count.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def default_num_workers() -> int:
    """``REPRO_NUM_WORKERS`` when set, else the usable CPU count (>= 1).

    "Usable" means the process's scheduler-affinity mask where available
    (cgroup-limited CI runners, ``taskset``), not the raw host CPU count.
    """
    env = os.environ.get("REPRO_NUM_WORKERS", "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_NUM_WORKERS must be an integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(f"REPRO_NUM_WORKERS must be >= 1, got {value}")
        return value
    return _usable_cpu_count()


def _base_num_workers() -> int:
    """The configured pool size, ignoring any thread-local :func:`worker_limit`.

    Pool construction must key on this, not :func:`get_num_workers`: a
    scoped cap changes how many shards a region *cuts*, never the size of
    the shared pool (rebuilding the pool per scoped cap would churn threads
    and strand queued work).
    """
    global _NUM_WORKERS
    with _LOCK:
        if _NUM_WORKERS is None:
            _NUM_WORKERS = default_num_workers()
        return _NUM_WORKERS


def get_num_workers() -> int:
    """The worker count parallel regions shard for (resolved lazily).

    Honours the innermost :func:`worker_limit` cap on the calling thread —
    a plan-recorded ``workers`` field or a sharded front-end pinning its
    drain width sees the capped value, while the pool itself stays sized by
    :func:`_base_num_workers`.
    """
    base = _base_num_workers()
    limit = getattr(_WORKER_LIMIT, "limit", None)
    if limit is None:
        return base
    return max(1, min(base, limit))


def set_num_workers(workers: int) -> None:
    """Re-size the shared pool; the executor is rebuilt on next use.

    Safe against concurrent regions: the stale pool is shut down without
    cancelling its queued tasks (in-flight regions finish there), and a
    region caught mid-submission resumes its remaining tasks on the fresh
    pool (see the retry loop in :func:`parallel_map`).
    """
    if workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {workers}")
    global _NUM_WORKERS, _EXECUTOR, _EXECUTOR_WORKERS
    with _LOCK:
        _NUM_WORKERS = workers
        stale, _EXECUTOR, _EXECUTOR_WORKERS = _EXECUTOR, None, None
    if stale is not None:
        stale.shutdown(wait=False)


@contextmanager
def num_workers(workers: int) -> Iterator[None]:
    """Temporarily pin the pool size (tests, deterministic benchmark runs).

    ``num_workers(1)`` is the serialisation switch: every parallel region
    inside the block runs inline on the calling thread, which restores the
    exact pre-pool execution order (used where determinism of shared-cache
    access order matters more than overlap).
    """
    previous = get_num_workers()
    set_num_workers(workers)
    try:
        yield
    finally:
        set_num_workers(previous)


@contextmanager
def worker_limit(workers: int | None) -> Iterator[None]:
    """Cap the worker count *this thread's* regions shard for.

    Unlike :func:`num_workers` this is thread-local and never touches the
    shared pool: regions entered inside the block cut at most ``workers``
    shards (``1`` runs them inline), while concurrent threads and the pool
    size itself are unaffected.  This is how a plan-recorded ``workers``
    field (:func:`repro.backend.plan_db.tuned_plan`) is applied at dispatch
    without perturbing unrelated traffic.  ``None`` lifts any enclosing cap.
    """
    if workers is not None and workers < 1:
        raise ValueError(f"worker_limit must be >= 1, got {workers}")
    previous = getattr(_WORKER_LIMIT, "limit", None)
    _WORKER_LIMIT.limit = workers
    try:
        yield
    finally:
        _WORKER_LIMIT.limit = previous


def _executor() -> ThreadPoolExecutor:
    global _EXECUTOR, _EXECUTOR_WORKERS
    workers = _base_num_workers()
    with _LOCK:
        if _EXECUTOR is None or _EXECUTOR_WORKERS != workers:
            if _EXECUTOR is not None:
                _EXECUTOR.shutdown(wait=False)
            _EXECUTOR = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-worker"
            )
            _EXECUTOR_WORKERS = workers
        return _EXECUTOR


def shard_slices(total: int, parts: int) -> list[slice]:
    """Split ``range(total)`` into at most ``parts`` balanced slices."""
    parts = max(1, min(parts, total))
    base, extra = divmod(total, parts)
    slices, start = [], 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


@dataclass
class RegionTrace:
    """One traced parallel region: what ran, and how long each task took."""

    op: str
    tasks: int
    task_seconds: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(self.task_seconds)


def makespan(task_seconds: Sequence[float], workers: int) -> float:
    """LPT-scheduled completion time of ``task_seconds`` on ``workers`` lanes.

    Longest-processing-time-first greedy assignment — the standard 4/3
    bound — models what the pool achieves with ``workers`` unloaded cores.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    lanes = [0.0] * min(workers, max(1, len(task_seconds)))
    for t in sorted(task_seconds, reverse=True):
        lane = min(range(len(lanes)), key=lanes.__getitem__)
        lanes[lane] += t
    return max(lanes) if lanes else 0.0


@contextmanager
def trace_parallel() -> Iterator[list[RegionTrace]]:
    """Record every parallel region run in the block, forcing serial execution.

    Serial execution matters for what the trace means: on a host with fewer
    free cores than workers, concurrently-scheduled shards time-slice one
    core and each task's wall time is inflated by its neighbours.  Running
    the shards back-to-back on the calling thread yields clean per-task
    costs, from which :func:`makespan` models the region's completion time
    at any worker count.  Driver-thread instrumentation only — not safe to
    nest or to enable from concurrent threads.
    """
    global _TRACE_SINK
    if _TRACE_SINK is not None:
        raise RuntimeError("trace_parallel does not nest")
    sink: list[RegionTrace] = []
    _TRACE_SINK = sink
    try:
        yield sink
    finally:
        _TRACE_SINK = None


def _is_terminal_submit_error(exc: RuntimeError, executor: ThreadPoolExecutor) -> bool:
    """Whether a failed ``submit`` can ever succeed by retrying.

    ``ThreadPoolExecutor.submit`` raises ``RuntimeError`` in two very
    different situations that the resize-retry loops must tell apart:

    - a concurrent :func:`set_num_workers` shut the stale pool down
      ("cannot schedule new futures after shutdown") — *retryable*:
      re-fetching the executor yields the freshly built pool;
    - the interpreter is exiting ("cannot schedule new futures after
      interpreter shutdown") — *terminal*: no rebuild will ever accept
      work again, and retrying forever is an infinite spin that hangs
      process teardown.

    The message check catches the interpreter case explicitly; the
    identity check catches every other terminal cause (a pool that is dead
    without anyone having resized it re-resolves to the *same* object, so
    retrying would re-raise identically forever).
    """
    if "interpreter shutdown" in str(exc):
        return True
    return _executor() is executor


def _pooled_run(fn: Callable[..., Any], args: tuple) -> Callable[[], Any]:
    """Wrap ``fn(*args)`` with the pooled-worker discipline.

    The submitting thread's plan-cache owner tag is captured here and
    re-installed inside the task, and the task is marked as a pooled worker
    so any nested parallel region runs inline on its own lane (no
    pool-starvation deadlock).  Every executor tier submits through this
    wrapper for in-process execution, which is what keeps the discipline
    tier-invariant.
    """
    owner = current_plan_owner()

    def run() -> Any:
        _IN_WORKER.active = True
        try:
            with plan_owner(owner):
                return fn(*args)
        finally:
            _IN_WORKER.active = False

    return run


class Executor:
    """One execution substrate behind the pooled-parallelism surface.

    The protocol the ``REPRO_EXECUTOR`` tiers implement; consumers never
    see it directly — they call :func:`parallel_map` / :func:`submit_pooled`
    and the active tier decides *where* tasks run.  Implementations:

    - :class:`ThreadExecutor` (``thread``) — the shared thread pool;
    - :class:`repro.backend.procpool.ProcessExecutor` (``process``) — a
      process pool with shared-memory ndarray transport and an in-process
      thread lane for non-shippable tasks;
    - :class:`InlineExecutor` (``inline``) — serial execution on the
      calling thread.

    ``serial`` declares that parallel regions should not fan out at all;
    :func:`parallel_map` then takes its inline path, which is what makes
    the tier trivially bitwise-equal to every other.
    """

    name: str = "executor"
    #: When True, :func:`parallel_map` runs regions inline (no futures).
    serial: bool = False

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> concurrent.futures.Future:
        """Schedule one task; returns its future (:func:`submit_pooled`)."""
        raise NotImplementedError

    def map_region(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        run: Callable[[int, Any], Any],
    ) -> list[concurrent.futures.Future]:
        """Futures (one per task, in order) for a :func:`parallel_map` region.

        ``run(index, item)`` is the fully-wrapped in-process task (owner
        propagation, nested-region marking, :class:`ShardError`
        attribution); ``fn`` and ``tasks`` are the *raw* region so a
        cross-process tier can ship them without closure baggage when they
        qualify.  Every task must be scheduled exactly once.
        """
        raise NotImplementedError

    def shutdown(self, wait: bool = False) -> None:
        """Release tier-owned resources (worker processes, private pools)."""

    def describe(self) -> dict:
        """Introspection block for benchmarks/metrics env stamps."""
        return {"tier": self.name, "workers": get_num_workers()}


class ThreadExecutor(Executor):
    """The default tier: the process-wide shared thread pool.

    Submission retries transparently across a concurrent
    :func:`set_num_workers` rebuild and propagates terminal failures
    (interpreter shutdown, a dead pool nobody rebuilt) — see
    :func:`_is_terminal_submit_error`.  Bit-for-bit the historical
    behavior of this module before execution tiers existed.
    """

    name = "thread"

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> concurrent.futures.Future:
        run = _pooled_run(fn, args)
        while True:
            executor = _executor()
            try:
                return executor.submit(run)
            except RuntimeError as exc:
                # Pool resized mid-submit: re-fetch and retry.  A terminal
                # failure (interpreter shutdown, or a dead pool nobody
                # rebuilt) propagates instead of spinning forever.
                if _is_terminal_submit_error(exc, executor):
                    raise
                continue

    def map_region(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        run: Callable[[int, Any], Any],
    ) -> list[concurrent.futures.Future]:
        # Exactly-once submission that survives a concurrent
        # set_num_workers(): a resize shuts the stale pool down (making
        # further submits raise RuntimeError) but never cancels
        # already-queued tasks, so on a raise we resume submitting the
        # *remainder* on the fresh pool.  Terminal submit failures
        # (interpreter shutdown) propagate — see _is_terminal_submit_error —
        # after waiting out whatever was already queued, so no in-flight
        # shard outlives the caller.
        futures: list[concurrent.futures.Future] = []
        remaining = list(enumerate(tasks))
        while remaining:
            executor = _executor()
            try:
                while remaining:
                    futures.append(executor.submit(run, *remaining[0]))
                    remaining.pop(0)
            except RuntimeError as exc:  # pool resized mid-loop?
                if _is_terminal_submit_error(exc, executor):
                    concurrent.futures.wait(futures)
                    raise
                continue
        return futures


class InlineExecutor(Executor):
    """The no-pool tier: every task runs serially on the calling thread.

    ``serial`` short-circuits :func:`parallel_map` into its inline path;
    :meth:`submit` still honours the future-returning contract (the async
    gateway awaits batch futures regardless of tier) by resolving the
    future synchronously.
    """

    name = "inline"
    serial = True

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> concurrent.futures.Future:
        future: concurrent.futures.Future = concurrent.futures.Future()
        run = _pooled_run(fn, args)
        try:
            future.set_result(run())
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def map_region(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        run: Callable[[int, Any], Any],
    ) -> list[concurrent.futures.Future]:
        futures: list[concurrent.futures.Future] = []
        for index, item in enumerate(tasks):
            future: concurrent.futures.Future = concurrent.futures.Future()
            try:
                future.set_result(run(index, item))
            except BaseException as exc:
                future.set_exception(exc)
            futures.append(future)
        return futures


# ---------------------------------------------------------------------------
# The process-wide active tier (REPRO_EXECUTOR)
# ---------------------------------------------------------------------------

_TIER_LOCK = threading.Lock()
_ACTIVE_TIER: Executor | None = None   # None = resolve from env on next use


def _make_executor(name: str) -> Executor:
    tier = name.strip().lower() or "thread"
    if tier == "thread":
        return ThreadExecutor()
    if tier == "inline":
        return InlineExecutor()
    if tier == "process":
        from repro.backend.procpool import ProcessExecutor

        return ProcessExecutor()
    raise ValueError(
        f"REPRO_EXECUTOR must be one of {EXECUTOR_TIERS}, got {name!r}"
    )


def get_executor() -> Executor:
    """The active execution tier (resolved lazily from ``REPRO_EXECUTOR``)."""
    global _ACTIVE_TIER
    with _TIER_LOCK:
        if _ACTIVE_TIER is None:
            _ACTIVE_TIER = _make_executor(os.environ.get("REPRO_EXECUTOR", "thread"))
        return _ACTIVE_TIER


def set_executor(executor: "Executor | str | None") -> "Executor | None":
    """Install the process-wide execution tier; returns the previous one.

    A tier name (``"thread"`` / ``"process"`` / ``"inline"``) builds the
    implementation; ``None`` resets to lazy ``REPRO_EXECUTOR`` resolution.
    The previous tier is returned un-shutdown so callers (and
    :func:`use_executor`) can restore it.
    """
    if isinstance(executor, str):
        executor = _make_executor(executor)
    global _ACTIVE_TIER
    with _TIER_LOCK:
        previous, _ACTIVE_TIER = _ACTIVE_TIER, executor
    return previous


@contextmanager
def use_executor(executor: "Executor | str") -> Iterator[Executor]:
    """Scoped :func:`set_executor` (tests, benchmarks): restores on exit.

    When given a tier *name* the built implementation is also shut down on
    exit (its worker processes must not outlive the block); a caller-owned
    :class:`Executor` instance is handed back untouched.
    """
    built = isinstance(executor, str)
    tier = _make_executor(executor) if built else executor
    previous = set_executor(tier)
    try:
        yield tier
    finally:
        set_executor(previous)
        if built:
            tier.shutdown()


def submit_pooled(fn: Callable[..., Any], /, *args: Any) -> concurrent.futures.Future:
    """Submit one task to the active execution tier; returns its future.

    The single-task sibling of :func:`parallel_map`, for consumers that
    need a *future* rather than blocking results — the asyncio serving
    gateway wraps it with ``asyncio.wrap_future`` to await batch execution
    without tying up the event loop.  Same worker discipline as a
    ``parallel_map`` task: the submitting thread's plan-cache owner tag is
    re-installed inside the task, the task is marked as a pooled worker so
    any nested parallel region runs inline on its own worker (no
    pool-starvation deadlock), and thread-tier submission retries
    transparently across a concurrent :func:`set_num_workers` rebuild.
    """
    inj = active_faults()
    if inj is not None:
        inj.check(
            "pool_submit",
            key=(getattr(fn, "__qualname__", str(fn)),),
            attempt=next(_SUBMIT_SEQ),
        )
    return get_executor().submit(fn, *args)


def parallel_map(
    fn: Callable[[Any], Any], items: Sequence[Any], op: str = "region"
) -> list[Any]:
    """Run ``fn`` over ``items``, on the active execution tier when it helps.

    Falls back to an inline serial loop when the region is trivial
    (``<= 1`` task), the pool is sized (or :func:`worker_limit`-capped) to
    one worker, the caller is itself a pooled task (nested regions run on
    their own worker — see module docstring), the active tier is serial
    (``inline``), or a :func:`trace_parallel` block is active.  The first
    task exception propagates to the caller either way — wrapped in
    :class:`ShardError` naming the region, shard index and item, so a
    fault deep in a threaded shard is attributable without a debugger; in
    the pooled case remaining tasks still run to completion first (futures
    are not cancelled), so shared output buffers are never abandoned
    half-written to a racing shard.
    """
    tasks = list(items)

    def call(index: int, item: Any) -> Any:
        try:
            return fn(item)
        except ShardError:
            raise  # a nested region already attributed it
        except Exception as exc:
            raise ShardError(op, index, len(tasks), item, exc) from exc

    if _TRACE_SINK is not None:
        trace = RegionTrace(op=op, tasks=len(tasks))
        _TRACE_SINK.append(trace)
        results = []
        for index, item in enumerate(tasks):
            start = time.perf_counter()
            results.append(call(index, item))
            trace.task_seconds.append(time.perf_counter() - start)
        return results
    if (
        len(tasks) <= 1
        or getattr(_IN_WORKER, "active", False)
        or get_num_workers() == 1
        or get_executor().serial
    ):
        return [call(index, item) for index, item in enumerate(tasks)]

    owner = current_plan_owner()

    def run(index: int, item: Any) -> Any:
        _IN_WORKER.active = True
        try:
            with plan_owner(owner):
                return call(index, item)
        finally:
            _IN_WORKER.active = False

    futures = get_executor().map_region(fn, tasks, run)
    results = []
    try:
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except ShardError:
                raise
            except Exception as exc:
                # A task shipped across a process boundary surfaces its
                # original exception; attribute it here exactly as the
                # in-process wrapper would have.
                raise ShardError(op, index, len(tasks), tasks[index], exc) from exc
        return results
    except BaseException:
        # A shard failed: wait out the rest before propagating, so no
        # worker is still writing a shared output buffer after the caller
        # has resumed (and possibly reused or freed it).
        concurrent.futures.wait(futures)
        raise
