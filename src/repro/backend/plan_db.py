"""The persistent plan database: measured schedules keyed by workload + env.

This is the disk-backed half of the plan auto-tuner (:mod:`repro.tune`) —
the repo's analog of topi's generated per-workload schedule tables
(``gen_schedule.py`` in topi-intel), except *measured and persisted*
instead of hand-written.  A :class:`PlanDatabase` is a JSON-lines file of
records::

    {"workload": "<Workload.to_key() string>",
     "env":      {"backend": ..., "num_workers": ..., "host_cpus": ...},
     "plan":     {"backend": ..., "workers": ..., "k_tile": ...,
                  "gradw_tile": ..., "pull_tile": ...},
     "score_ms": ..., "static_score_ms": ..., "source": "repro.tune"}

Records are append-only and the **last record wins** per
``(workload, env)`` pair, so a fleet of servers can share one database
file: every process appends its tuning results and every fresh process
warm-starts on the best schedule measured anywhere on the same
environment class.

The *env stamp* is the same ``backend / num_workers / host_cpus`` block
``benchmarks/common.emit`` writes into every result JSON
(:func:`env_stamp` is now the single source of truth for both), because it
names exactly the configuration a measured schedule is valid for: a tile
size tuned for a 2-worker threaded pool is not evidence about a 16-worker
one, just as the perf comparator refuses to diff across those envs.

**Activation.**  The env var ``REPRO_PLAN_DB`` names the database file;
when it is unset (and :func:`set_plan_db` was never called) no database is
active and every schedule decision falls through to the static tables in
:mod:`repro.backend.schedule` — bit-for-bit the pre-tuner behavior.  The
path may not exist yet: it loads as an empty database that tuning runs
append to, so fleets can point at a shared path before the first tune.

Schedules resolve at *plan build* time (see
:func:`repro.backend.schedule.conv_schedule`), so a database installed
after plans are cached does not retroactively retile them — call
:func:`repro.backend.clear_plan_cache` (or install the database before
first use, as ``REPRO_PLAN_DB`` does) to pick tuned schedules up.
"""
from __future__ import annotations

import json
import logging
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.backend.workload import Workload
from repro.faults import active_faults

_LOG = logging.getLogger(__name__)

__all__ = [
    "PlanDatabase",
    "active_plan_db",
    "env_stamp",
    "load_plan_db",
    "set_plan_db",
    "tuned_plan",
    "use_plan_db",
]


def env_stamp() -> dict:
    """The execution-relevant environment: backend, pool size, host CPUs.

    The exact block ``benchmarks/common.emit`` stamps result JSONs with
    (that helper delegates here).  ``num_workers`` is *configuration* only
    when explicitly pinned via ``REPRO_NUM_WORKERS`` or when the active
    backend actually schedules on the pool; otherwise it echoes a machine
    property and is recorded as ``None`` so same-machine runs with
    different idle pool sizes still match.
    """
    from repro.backend import REGISTRY, get_num_workers  # lazy: needs registration

    backend = REGISTRY.resolve_name("conv2d", "default")
    configured = backend == "threaded" or bool(
        os.environ.get("REPRO_NUM_WORKERS", "").strip()
    )
    return {
        "backend": backend,
        "num_workers": get_num_workers() if configured else None,
        "host_cpus": os.cpu_count() or 1,
    }


def _env_key(env: dict) -> str:
    return json.dumps(env, sort_keys=True, separators=(",", ":"))


def _safe_env_stamp() -> dict | str:
    """:func:`env_stamp` guarded for log paths (it needs full registration)."""
    try:
        return env_stamp()
    except Exception:  # pragma: no cover - mid-import quarantine logging
        return "<unavailable>"


class PlanDatabase:
    """Disk-backed (JSON-lines) table of tuned per-workload schedules.

    Thread-safe; :meth:`record` appends to the backing file immediately
    (one line per record, so concurrent appenders on one shared file
    interleave whole records) and :meth:`reload` folds in records other
    processes have appended since.  A database constructed with
    ``path=None`` is purely in-memory (tests, dry-run tuning).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, str], dict] = {}
        self._loaded = 0    # valid records folded in across all loads
        self._skipped = 0   # corrupt/malformed rows quarantined across all loads
        if self.path is not None and self.path.exists():
            self._load_lines(self.path.read_text())

    # -- IO --------------------------------------------------------------------

    def _load_lines(self, text: str) -> None:
        """Fold JSONL rows in, quarantining corrupt/malformed ones.

        A torn write (process killed mid-append, full disk) must not take
        down every future process pointed at the shared file: bad rows are
        skipped and counted (:meth:`load_report`), with one env-stamped
        quarantine log line naming the file and line numbers, and loading
        continues — last *valid* record still wins per (workload, env).
        """
        bad_lines: list[int] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise TypeError(f"record is {type(record).__name__}, not dict")
                if not isinstance(record["workload"], str):
                    raise TypeError("workload key is not a string")
                if not isinstance(record["env"], dict):
                    raise TypeError("env block is not a dict")
                if not isinstance(record["plan"], dict):
                    raise TypeError("plan block is not a dict")
            except (json.JSONDecodeError, KeyError, TypeError):
                bad_lines.append(lineno)
                continue
            self._insert(record)
            self._loaded += 1
        if bad_lines:
            self._skipped += len(bad_lines)
            _LOG.warning(
                "plan db %s: quarantined %d corrupt row(s) at line(s) %s "
                "(env %s); loading continued with the remaining records",
                self.path if self.path is not None else "<in-memory>",
                len(bad_lines),
                ",".join(map(str, bad_lines[:10]))
                + ("..." if len(bad_lines) > 10 else ""),
                _safe_env_stamp(),
            )

    def _insert(self, record: dict) -> None:
        self._entries[(record["workload"], _env_key(record["env"]))] = record

    def load_report(self) -> dict:
        """Accounting of every load so far: path, valid rows, quarantined rows."""
        with self._lock:
            return {
                "path": str(self.path) if self.path is not None else None,
                "loaded": self._loaded,
                "skipped": self._skipped,
            }

    def reload(self) -> "PlanDatabase":
        """Re-read the backing file (picking up other processes' appends)."""
        if self.path is not None and self.path.exists():
            text = self.path.read_text()
            with self._lock:
                self._load_lines(text)
        return self

    # -- lookup / record -------------------------------------------------------

    def lookup(self, workload: Workload, env: dict | None = None) -> dict | None:
        """The tuned plan dict for ``(workload, env)``, or ``None``.

        ``env`` defaults to the *current* :func:`env_stamp`, which is the
        semantics schedule resolution wants: a record tuned under a
        different backend or pool configuration is not applicable here.
        """
        if env is None:
            env = env_stamp()
        with self._lock:
            record = self._entries.get((workload.to_key(), _env_key(env)))
        return dict(record["plan"]) if record is not None else None

    def record(
        self,
        workload: Workload,
        plan: dict,
        env: dict | None = None,
        **extra: Any,
    ) -> dict:
        """Insert (and persist, when file-backed) one tuned-plan record."""
        if env is None:
            env = env_stamp()
        record = {
            "workload": workload.to_key(),
            "env": dict(env),
            "plan": dict(plan),
            **extra,
        }
        with self._lock:
            self._insert(record)
            if self.path is not None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                line = json.dumps(record, sort_keys=True)
                inj = active_faults()
                if inj is not None:
                    # Simulated torn write: the on-disk row may be truncated
                    # (what a killed process leaves behind) while the
                    # in-memory entry stays correct — exactly the corruption
                    # the tolerant loader is tested against.
                    line = inj.corrupt_row(line, key=(record["workload"],))
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
        return record

    # -- introspection ---------------------------------------------------------

    def records(self) -> list[dict]:
        with self._lock:
            return [dict(r) for r in self._entries.values()]

    def workloads(self) -> list[Workload]:
        with self._lock:
            keys = [wl_key for wl_key, _ in self._entries]
        return [Workload.from_key(k) for k in keys]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# ---------------------------------------------------------------------------
# The process-wide active database (REPRO_PLAN_DB)
# ---------------------------------------------------------------------------

_ACTIVE_LOCK = threading.Lock()
_ACTIVE: PlanDatabase | None = None
_RESOLVED = False  # REPRO_PLAN_DB is read once, lazily


def active_plan_db() -> PlanDatabase | None:
    """The database schedule resolution consults, or ``None`` (static only).

    Resolved lazily from ``REPRO_PLAN_DB`` on first call;
    :func:`set_plan_db` / :func:`load_plan_db` override it at runtime.
    """
    global _ACTIVE, _RESOLVED
    with _ACTIVE_LOCK:
        if not _RESOLVED:
            _RESOLVED = True
            path = os.environ.get("REPRO_PLAN_DB", "").strip()
            if path:
                _ACTIVE = PlanDatabase(path)
        return _ACTIVE


def set_plan_db(db: "PlanDatabase | str | Path | None") -> PlanDatabase | None:
    """Install (a path loads it) or clear (``None``) the active database.

    Plans already resident in the plan cache keep the schedule they were
    built with — clear the cache to re-resolve under the new database.
    """
    if isinstance(db, (str, Path)):
        db = PlanDatabase(db)
    global _ACTIVE, _RESOLVED
    with _ACTIVE_LOCK:
        _ACTIVE = db
        _RESOLVED = True
    return db


def load_plan_db(path: str | Path) -> PlanDatabase:
    """Load ``path`` and install it as the active plan database."""
    db = set_plan_db(path)
    assert db is not None
    return db


@contextmanager
def use_plan_db(db: "PlanDatabase | str | Path | None") -> Iterator[PlanDatabase | None]:
    """Scoped :func:`set_plan_db` (tests, tuning runs): restores on exit."""
    global _ACTIVE, _RESOLVED
    with _ACTIVE_LOCK:
        previous = (_ACTIVE, _RESOLVED)
    installed = set_plan_db(db)
    try:
        yield installed
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE, _RESOLVED = previous


def tuned_plan(workload: Workload | None) -> dict | None:
    """The active database's plan for ``workload`` under the current env.

    The single consult point schedule resolution goes through: returns
    ``None`` — and costs one ``None`` check — when no database is active,
    keeping the no-database path bit-for-bit the static-table behavior.
    """
    if workload is None:
        return None
    db = active_plan_db()
    if db is None:
        return None
    return db.lookup(workload)
