"""The ``process`` execution tier: a fork-based pool that escapes the GIL.

:class:`ProcessExecutor` implements the :class:`repro.backend.parallel.Executor`
protocol on top of :class:`concurrent.futures.ProcessPoolExecutor`.  Two
design points distinguish it from naive process offload:

**Shared-memory ndarray transport.**  Activations are the dominant payload
of every shipped task; pickling them through the call queue would spend
more time serialising than the GIL ever cost.  Instead, every ndarray
argument above :data:`SHM_MIN_BYTES` is copied once into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and crosses the
process boundary as a ``(name, shape, dtype)`` descriptor; the worker maps
it zero-copy, and ndarray *results* come back the same way.  The parent
unlinks every segment as soon as its task resolves, so segments never
outlive the region that created them.

**Explicit shippability, thread-lane fallback.**  Only functions registered
with :func:`process_safe` — module-level, importable, pure functions over
ndarrays/primitives — are ever shipped.  Everything else (closures over
shared output buffers, bound methods, tasks mutating in-process state:
i.e. every existing ``threaded``-backend shard and the serving router's
drain) transparently runs on an in-process
:class:`~repro.backend.parallel.ThreadExecutor` lane.  That fallback is the
bitwise-equality story: under ``REPRO_EXECUTOR=process`` a task either runs
the *identical* in-process code path, or is a registered pure function
whose result is bit-for-bit the same wherever it executes — so the tier-1
suite passes bitwise-identically at any process count.

Worker processes are forked (fork start method where available — inherited
plan caches, kernel registries and fault planes come for free), pin their
*nested* parallelism to one worker (a shipped task must not fan out a
thread pool inside every process), and re-seed any inherited fault
injector per worker index (:meth:`repro.faults.FaultInjector.for_worker`)
so chaos runs stay deterministic per process rather than replaying the
parent's exact draw sequence in every child.
"""
from __future__ import annotations

import concurrent.futures
import importlib
import multiprocessing
import threading
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.backend.parallel import (
    Executor,
    ThreadExecutor,
    _base_num_workers,
    set_num_workers,
)
from repro.faults import active_faults, install_faults

__all__ = [
    "ProcessExecutor",
    "SHM_MIN_BYTES",
    "is_process_safe",
    "process_safe",
    "shippable_args",
]

#: ndarrays below this byte size ride the pickle path — a shared-memory
#: segment (shm_open + mmap + unlink) costs more than pickling a few KB.
SHM_MIN_BYTES = 64 * 1024

#: Primitives that may cross the process boundary as plain pickles.
_SCALAR_TYPES = (bool, int, float, complex, str, bytes, type(None))

# Registry of shippable functions, keyed by (module, qualname) — the form
# the worker resolves them from.  Identity is also tracked so a decorated
# alias (functools.wraps etc.) still qualifies.
_SAFE_LOCK = threading.Lock()
_SAFE_KEYS: set[tuple[str, str]] = set()


def process_safe(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Register ``fn`` as shippable to worker processes (decorator-friendly).

    The function must be module-level and importable — workers resolve it
    by ``(module, qualname)``, never by pickling the callable — and must be
    pure over its arguments: no closure state, no in-place mutation of
    argument arrays (a worker sees shared-memory *copies*, so a mutation
    would be silently invisible to the parent).
    """
    qualname = getattr(fn, "__qualname__", "")
    module = getattr(fn, "__module__", "")
    if not module or not qualname or "." in qualname or "<" in qualname:
        raise ValueError(
            f"process_safe requires a module-level function, got {fn!r}"
        )
    with _SAFE_LOCK:
        _SAFE_KEYS.add((module, qualname))
    return fn


def is_process_safe(fn: Callable[..., Any]) -> bool:
    """Whether :func:`process_safe` registered ``fn`` (by module + qualname)."""
    key = (getattr(fn, "__module__", ""), getattr(fn, "__qualname__", ""))
    with _SAFE_LOCK:
        return key in _SAFE_KEYS


def shippable_args(args: Sequence[Any]) -> bool:
    """Whether every argument can cross the boundary (ndarray / primitives)."""
    return all(_shippable_value(a) for a in args)


def _shippable_value(value: Any) -> bool:
    if isinstance(value, np.ndarray):
        return True
    if isinstance(value, _SCALAR_TYPES):
        return True
    if isinstance(value, slice):
        return all(isinstance(p, (int, type(None)))
                   for p in (value.start, value.stop, value.step))
    if isinstance(value, tuple):
        return all(_shippable_value(v) for v in value)
    return False


# ---------------------------------------------------------------------------
# Encoding: ndarrays <-> shared-memory descriptors
# ---------------------------------------------------------------------------

def _encode_value(value: Any, segments: list) -> Any:
    """Encode one argument/result for the queue, spilling big arrays to shm.

    ``segments`` collects every :class:`SharedMemory` created here; the
    caller owns their lifecycle (the parent unlinks argument segments when
    the task resolves; the parent unlinks result segments after copying
    out).
    """
    if isinstance(value, np.ndarray):
        if value.nbytes >= SHM_MIN_BYTES:
            shm = shared_memory.SharedMemory(create=True, size=value.nbytes)
            staged = np.ndarray(value.shape, dtype=value.dtype, buffer=shm.buf)
            staged[...] = value
            segments.append(shm)
            return ("shm", shm.name, value.shape, value.dtype.str)
        return ("arr", value)
    if isinstance(value, tuple):
        return ("tup", tuple(_encode_value(v, segments) for v in value))
    return ("raw", value)


def _decode_value(encoded: Any, attached: list) -> Any:
    """Decode one encoded value, mapping shm descriptors zero-copy.

    ``attached`` collects the mapped segments so the caller can close (and,
    on the parent side, unlink) them once the arrays are no longer needed;
    decoded shm arrays are *views* into those segments and must be copied
    before the segment is released.
    """
    kind, payload = encoded[0], encoded[1:]
    if kind == "shm":
        name, shape, dtype = payload
        shm = shared_memory.SharedMemory(name=name)
        attached.append(shm)
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    if kind == "arr":
        return payload[0]
    if kind == "tup":
        return tuple(_decode_value(v, attached) for v in payload[0])
    return payload[0]


def _release(segments: Sequence, unlink: bool) -> None:
    for shm in segments:
        try:
            shm.close()
            if unlink:
                shm.unlink()
        except Exception:  # pragma: no cover - teardown best-effort
            pass


# ---------------------------------------------------------------------------
# Worker-side entry points (module-level: resolvable without pickling code)
# ---------------------------------------------------------------------------

_WORKER_INDEX = 0


def _worker_init(counter) -> None:
    """Per-process initializer: claim an index, pin nested parallelism, re-seed.

    Nested parallelism is pinned to one worker because the process tier
    *is* the fan-out — a shipped task spinning up a thread pool inside
    every worker process would oversubscribe the host by ``workers^2``.
    The inherited fault injector (fork copies the parent's installed one)
    is replaced with a per-worker derivation so each process draws an
    independent — but still seed-deterministic — fault sequence.
    """
    global _WORKER_INDEX
    with counter.get_lock():
        counter.value += 1
        _WORKER_INDEX = int(counter.value)
    set_num_workers(1)
    inherited = active_faults()
    if inherited is not None:
        install_faults(inherited.for_worker(_WORKER_INDEX))


def _invoke(module: str, qualname: str, encoded_args: tuple) -> Any:
    """Run one shipped task inside a worker: resolve, map, call, encode."""
    fn = getattr(importlib.import_module(module), qualname)
    attached: list = []
    try:
        args = tuple(_decode_value(a, attached) for a in encoded_args)
        result = fn(*args)
        result_segments: list = []
        encoded = _encode_value(result, result_segments)
        # Result segments are closed here but NOT unlinked: the parent maps
        # them, copies out, and unlinks.  Argument segments are only closed
        # (the parent owns and unlinks them).
        _release(result_segments, unlink=False)
        return encoded
    finally:
        _release(attached, unlink=False)


# ---------------------------------------------------------------------------
# The executor tier
# ---------------------------------------------------------------------------

class ProcessExecutor(Executor):
    """``REPRO_EXECUTOR=process``: shippable tasks fan out across processes.

    The pool is created lazily on the first *shipped* submission (selecting
    the tier costs nothing until a task actually qualifies) and sized like
    the thread pool (``REPRO_NUM_WORKERS`` else usable CPUs).  Tasks that
    do not qualify — unregistered callables, closure arguments — run on the
    embedded in-process thread lane with identical semantics to the
    ``thread`` tier.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        self._requested_workers = max_workers
        self._thread_lane = ThreadExecutor()
        self._lock = threading.Lock()
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._pool_workers: int | None = None
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix platforms
            self._ctx = multiprocessing.get_context()

    # -- pool management -------------------------------------------------------

    def _workers(self) -> int:
        return self._requested_workers or _base_num_workers()

    def _get_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        workers = self._workers()
        with self._lock:
            if self._pool is None or self._pool_workers != workers:
                if self._pool is not None:
                    self._pool.shutdown(wait=False)
                counter = self._ctx.Value("i", 0)
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=self._ctx,
                    initializer=_worker_init,
                    initargs=(counter,),
                )
                self._pool_workers = workers
            return self._pool

    def shutdown(self, wait: bool = False) -> None:
        with self._lock:
            pool, self._pool, self._pool_workers = self._pool, None, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def describe(self) -> dict:
        info = super().describe()
        info["start_method"] = self._ctx.get_start_method()
        return info

    # -- shipping --------------------------------------------------------------

    def can_ship(self, fn: Callable[..., Any], args: Sequence[Any]) -> bool:
        """Whether ``fn(*args)`` qualifies for cross-process execution."""
        return is_process_safe(fn) and shippable_args(args)

    def _ship(self, fn: Callable[..., Any], args: tuple) -> concurrent.futures.Future:
        segments: list = []
        try:
            encoded = tuple(_encode_value(a, segments) for a in args)
            raw = self._get_pool().submit(
                _invoke, fn.__module__, fn.__qualname__, encoded
            )
        except BaseException:
            _release(segments, unlink=True)
            raise
        future: concurrent.futures.Future = concurrent.futures.Future()
        future.set_running_or_notify_cancel()

        def _resolve(done: concurrent.futures.Future) -> None:
            _release(segments, unlink=True)
            try:
                payload = done.result()
            except BaseException as exc:
                future.set_exception(exc)
                return
            attached: list = []
            try:
                decoded = _materialize(_decode_value(payload, attached))
                future.set_result(decoded)
            except BaseException as exc:  # pragma: no cover - decode teardown
                future.set_exception(exc)
            finally:
                _release(attached, unlink=True)

        raw.add_done_callback(_resolve)
        return future

    # -- Executor protocol -----------------------------------------------------

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> concurrent.futures.Future:
        if self.can_ship(fn, args):
            try:
                return self._ship(fn, args)
            except BrokenProcessPool:
                # A dead pool (OOM-killed worker, torn-down fork server)
                # degrades to in-process execution rather than failing the
                # task; the next submission rebuilds the pool lazily.
                self.shutdown(wait=False)
        return self._thread_lane.submit(fn, *args)

    def map_region(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        run: Callable[[int, Any], Any],
    ) -> list[concurrent.futures.Future]:
        if is_process_safe(fn) and all(_shippable_value(t) for t in tasks):
            try:
                return [self._ship(fn, (item,)) for item in tasks]
            except BrokenProcessPool:
                self.shutdown(wait=False)
        return self._thread_lane.map_region(fn, tasks, run)


def _materialize(value: Any) -> Any:
    """Copy decoded shm views into process-owned arrays (segments die next)."""
    if isinstance(value, np.ndarray):
        return np.array(value, copy=True)
    if isinstance(value, tuple):
        return tuple(_materialize(v) for v in value)
    return value


# The kernel tile partials are the canonical shippable workloads: pure
# module-level contractions over (ndarray, ndarray, slice) used identically
# by the numpy and threaded backends, so their results are bitwise
# tier-invariant by construction.
def _register_kernel_partials() -> None:
    from repro.backend import numpy_backend

    for name in ("dense_fwd_partial", "dense_gradw_partial", "pull_gemm_partial"):
        process_safe(getattr(numpy_backend, name))


_register_kernel_partials()
