"""The ``reference`` backend: dead-simple loop kernels.

Every op the registry dispatches has a naive implementation here — the
ground truth the vectorised ``numpy`` backend is tested against.  These
kernels loop over filters, taps and windows; they are orders of magnitude
slower and exist for correctness only (tests, cross-checks, debugging a new
backend).  Instrumentation: reference kernels materialise nothing and count
one "gemm" per filter reduction, so :class:`KernelStats` stays meaningful
when a strategy runs on this backend.
"""
from __future__ import annotations

import numpy as np

from repro.backend.plan import Conv2dPlan, Pool2dPlan, SCCPlan
from repro.backend.registry import register_kernel
from repro.backend.stats import KernelStats


def scc_forward_loops(x: np.ndarray, w: np.ndarray, windows: np.ndarray) -> np.ndarray:
    """Loop implementation of the paper's SCC equation (one term at a time)."""
    n, cin, h, wdt = x.shape
    cout, gw = w.shape
    out = np.zeros((n, cout, h, wdt), dtype=np.result_type(x, w))
    for o in range(cout):
        for g in range(gw):
            out[:, o] += w[o, g] * x[:, windows[o, g]]
    return out.astype(x.dtype)


def scc_backward_loops(
    grad_out: np.ndarray,
    x: np.ndarray,
    w: np.ndarray,
    windows: np.ndarray,
    need_input_grad: bool = True,
    need_weight_grad: bool = True,
):
    """Loop VJP of :func:`scc_forward_loops` (the test-suite reference)."""
    cout, gw = w.shape
    grad_x = np.zeros_like(x) if need_input_grad else None
    grad_w = np.zeros_like(w) if need_weight_grad else None
    for o in range(cout):
        for g in range(gw):
            if need_weight_grad:
                grad_w[o, g] = (grad_out[:, o] * x[:, windows[o, g]]).sum()
            if need_input_grad:
                grad_x[:, windows[o, g]] += grad_out[:, o] * w[o, g]
    return grad_x, grad_w


@register_kernel("scc_forward", "reference")
def scc_forward(
    plan: SCCPlan,
    x: np.ndarray,
    w: np.ndarray,
    *,
    strategy: str = "dsxplore",
    stats: KernelStats | None = None,
    epilogue=None,
):
    # All three strategies compute the same function; the reference backend
    # runs the defining equation directly regardless of ``strategy``.
    if stats is not None:
        stats.gemm_calls += plan.config.out_channels
    out = scc_forward_loops(x, w, plan.windows)
    if epilogue is not None:
        epilogue.apply(out)
    return out, {"x": x, "w": w}


@register_kernel("scc_backward", "reference")
def scc_backward(
    plan: SCCPlan,
    saved: dict,
    grad_out: np.ndarray,
    *,
    strategy: str = "dsxplore",
    backward_design: str = "input_centric",
    need_input_grad: bool = True,
    need_weight_grad: bool = True,
    stats: KernelStats | None = None,
):
    if stats is not None:
        stats.gemm_calls += plan.config.out_channels
    return scc_backward_loops(
        grad_out, saved["x"], saved["w"], plan.windows,
        need_input_grad, need_weight_grad,
    )


@register_kernel("conv2d", "reference")
def conv2d(plan: Conv2dPlan, x: np.ndarray, weight: np.ndarray):
    stride, padding, groups = plan.stride, plan.padding, plan.groups
    cout, cin_g, kh, kw = weight.shape
    _, _, ho, wo = plan.out_shape
    xp = x if padding == 0 else np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )
    og = cout // groups
    out = np.zeros(plan.out_shape, dtype=np.result_type(x, weight))
    for o in range(cout):
        g = o // og
        for c in range(cin_g):
            chan = xp[:, g * cin_g + c]
            for i in range(kh):
                for j in range(kw):
                    out[:, o] += weight[o, c, i, j] * chan[
                        :, i : i + ho * stride : stride, j : j + wo * stride : stride
                    ]
    return out.astype(x.dtype), {"xp": xp, "w": weight}


@register_kernel("conv2d_backward", "reference")
def conv2d_backward(
    plan: Conv2dPlan,
    ctx: dict,
    grad: np.ndarray,
    need_input_grad: bool = True,
    need_weight_grad: bool = True,
):
    xp, weight = ctx["xp"], ctx["w"]
    stride, padding, groups = plan.stride, plan.padding, plan.groups
    cout, cin_g, kh, kw = weight.shape
    ho, wo = grad.shape[2], grad.shape[3]
    og = cout // groups

    grad_w = np.zeros_like(weight) if need_weight_grad else None
    grad_xp = np.zeros_like(xp) if need_input_grad else None
    for o in range(cout):
        g = o // og
        gout = grad[:, o]
        for c in range(cin_g):
            chan = g * cin_g + c
            for i in range(kh):
                for j in range(kw):
                    isl = slice(i, i + ho * stride, stride)
                    jsl = slice(j, j + wo * stride, stride)
                    if need_weight_grad:
                        grad_w[o, c, i, j] = (gout * xp[:, chan, isl, jsl]).sum()
                    if need_input_grad:
                        grad_xp[:, chan, isl, jsl] += weight[o, c, i, j] * gout

    grad_x = None
    if need_input_grad:
        if padding:
            grad_x = np.ascontiguousarray(
                grad_xp[:, :, padding:-padding, padding:-padding]
            )
        else:
            grad_x = grad_xp
    return grad_x, grad_w


@register_kernel("maxpool2d", "reference")
def maxpool2d(plan: Pool2dPlan, x: np.ndarray):
    k, stride, padding = plan.kernel, plan.stride, plan.padding
    xp = x if padding == 0 else np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        constant_values=-np.inf,
    )
    n, c, ho, wo = plan.out_shape
    out = np.empty(plan.out_shape, dtype=x.dtype)
    argmax = np.empty(plan.out_shape, dtype=np.int64)
    for y in range(ho):
        for xx in range(wo):
            win = xp[:, :, y * stride : y * stride + k, xx * stride : xx * stride + k]
            flat = win.reshape(n, c, k * k)
            argmax[:, :, y, xx] = flat.argmax(axis=-1)
            out[:, :, y, xx] = flat.max(axis=-1)
    return out, {"argmax": argmax}


@register_kernel("maxpool2d_backward", "reference")
def maxpool2d_backward(plan: Pool2dPlan, ctx: dict, grad: np.ndarray):
    k, stride, padding = plan.kernel, plan.stride, plan.padding
    argmax = ctx["argmax"]
    n, c, ho, wo = grad.shape
    gxp = np.zeros(plan.padded_shape, dtype=grad.dtype)
    ni, ci = np.indices((n, c), sparse=False)
    for y in range(ho):
        for xx in range(wo):
            am = argmax[:, :, y, xx]
            # One winning cell per (n, c): conflict-free fancy-index +=.
            gxp[ni, ci, y * stride + am // k, xx * stride + am % k] += grad[:, :, y, xx]
    if padding:
        gxp = np.ascontiguousarray(gxp[:, :, padding:-padding, padding:-padding])
    return gxp


@register_kernel("avgpool2d", "reference")
def avgpool2d(plan: Pool2dPlan, x: np.ndarray):
    k = plan.kernel
    n, c, ho, wo = plan.out_shape
    out = np.empty(plan.out_shape, dtype=x.dtype)
    for y in range(ho):
        for xx in range(wo):
            out[:, :, y, xx] = x[
                :, :, y * k : (y + 1) * k, xx * k : (xx + 1) * k
            ].mean(axis=(2, 3))
    return out, {}


@register_kernel("avgpool2d_backward", "reference")
def avgpool2d_backward(plan: Pool2dPlan, ctx: dict, grad: np.ndarray):
    k = plan.kernel
    gx = np.zeros(plan.x_shape, dtype=grad.dtype)
    scale = 1.0 / (k * k)
    n, c, ho, wo = grad.shape
    for y in range(ho):
        for xx in range(wo):
            gx[:, :, y * k : (y + 1) * k, xx * k : (xx + 1) * k] = (
                grad[:, :, y, xx, None, None] * scale
            )
    return gx
