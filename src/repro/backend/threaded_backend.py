"""The ``threaded`` backend: numpy kernels sharded over the shared worker pool.

Registered purely through :func:`~repro.backend.registry.register_kernel` —
no call site changes — and selected with ``backend="threaded"`` or
``REPRO_BACKEND=threaded``.  Work is split across the process-wide pool of
:mod:`repro.backend.parallel`, sized by ``REPRO_NUM_WORKERS``.

**Bitwise contract.**  Every output (and every gradient) is bit-identical
to the ``numpy`` backend on any machine.  That rules out the obvious
sharding — slicing an einsum operand changes the BLAS kernel's blocking for
some shapes, which perturbs the last ulp — so regions are only cut along
axes where each task runs the *identical* contraction calls the ``numpy``
backend runs, on the identical operands, writing disjoint outputs:

- ``conv2d`` forward / weight-grad shard over **groups** (each group is
  already an independent einsum in the ``numpy`` kernel); at ``groups == 1``
  the lone contraction is sharded over **schedule-table tiles** of the
  contracted axis: each tile runs the identical ``planned_einsum`` partial
  the ``numpy`` backend computes serially, and the partials are combined in
  the canonical fixed-order pairwise tree
  (:func:`~repro.backend.plan.combine_partials_tree`) — bitwise-equal by
  construction on any worker count.  Under ``REPRO_PRECISION=fast`` the
  partials instead accumulate in completion order under a lock (allclose
  tier, never bitwise);
- the ``conv2d`` data-grad tap scatter shards over **disjoint tap groups**:
  taps with equal ``(group, i % stride, j % stride)`` write the same
  strided lattice and different keys never touch the same cell, so groups
  run concurrently while each group applies its taps in the canonical
  ``(i, j)`` order.  When only one tap group exists (``groups == 1``,
  ``stride == 1``) the per-tap *contractions* are computed in parallel
  waves and applied serially in canonical order — accumulation order per
  cell is preserved either way;
- SCC kernels shard the **segment loops over cycle positions** (each cycle
  position owns the disjoint output interleave ``out[:, p::cd]``); the
  channel-stack gather and both push-style scatters (``np.add.at``) shard
  over **batch rows**, which moves bytes without re-associating any
  reduction.  The input-centric pull GEMM shards over output-channel tiles
  with the same canonical tree combine as dense ``conv2d``; only the
  channel-stack grouped GEMM stays inline (its contraction axis is the
  group width — too small to tile).

**Stats contract.**  Counters report the same *logical* quantities as the
``numpy`` backend — bit-for-bit equal totals — so the gpusim crosscheck is
backend-invariant.  Size-proportional counters (materialised bytes) are
recorded into per-worker :class:`~repro.backend.stats.KernelStats` deltas
and merged at join (shard sizes sum exactly to the numpy totals); logical
launch counts and the conflict-fraction arithmetic are recorded once by the
coordinating thread, because per-shard ``int()`` rounding of the conflict
estimate would drift from the single-call value.
"""
from __future__ import annotations

import threading

import numpy as np

from repro.backend import numpy_backend
from repro.backend.numpy_backend import (
    _count_push_scatter,
    _pad2d,
    _patch_view,
    dense_fwd_partial,
    dense_gradw_partial,
    pull_gemm_partial,
)
from repro.backend.parallel import get_num_workers, parallel_map, shard_slices
from repro.backend.plan import (
    Conv2dPlan,
    EpilogueArgs,
    FusedConv2dPlan,
    SCCPlan,
    combine_partials_tree,
    planned_einsum,
)
from repro.backend.registry import register_kernel
from repro.backend.schedule import (
    effective_gradw_tile,
    effective_k_tile,
    effective_pull_tile,
    precision_tier,
    tile_slices,
)
from repro.backend.stats import KernelStats


def _chunks(seq: list, size: int):
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def _parallel_tiled(partial_fn, slices, out_shape, dtype, op: str) -> np.ndarray:
    """Per-tile partials on the pool, combined per the active precision tier.

    ``bitwise``: partials come back in submission order and fold through the
    canonical fixed-order pairwise tree — identical to the ``numpy``
    backend's serial combine.  ``fast``: each worker accumulates its partial
    into a shared zeros buffer under a lock, in completion order (allclose
    tier only).
    """
    if precision_tier() == "fast":
        out = np.zeros(out_shape, dtype=dtype)
        lock = threading.Lock()

        def run(sl: slice) -> None:
            part = partial_fn(sl)
            with lock:
                np.add(out, part, out=out)

        parallel_map(run, slices, op=op)
        return out
    return combine_partials_tree(parallel_map(partial_fn, slices, op=op))


# ---------------------------------------------------------------------------
# conv2d
# ---------------------------------------------------------------------------

def _dense_forward(plan: Conv2dPlan, patches: np.ndarray, weight: np.ndarray):
    """Dense (groups == 1) forward: input-channel tiles on the pool."""
    k_slices = tile_slices(plan.x_shape[1], effective_k_tile(plan.k_tile))
    if len(k_slices) == 1:
        # Untiled: one contraction, inline, identical to the numpy kernel.
        return np.einsum("nchwij,ocij->nohw", patches, weight, optimize=plan.fwd_path)
    return _parallel_tiled(
        lambda sl: dense_fwd_partial(patches, weight, sl),
        k_slices,
        plan.out_shape,
        weight.dtype,
        op="conv2d.fwd.ktiles",
    )


@register_kernel("conv2d", "threaded")
def conv2d(plan: Conv2dPlan, x: np.ndarray, weight: np.ndarray):
    kh, kw = plan.kernel
    xp = _pad2d(x, plan.padding)
    patches = _patch_view(xp, kh, kw, plan.stride)
    groups = plan.groups
    if groups == 1:
        out = _dense_forward(plan, patches, weight)
    else:
        cout = plan.out_shape[1]
        out = np.empty(plan.out_shape, dtype=x.dtype)
        og = cout // groups
        cg = plan.x_shape[1] // groups

        def run_group(g: int) -> None:
            out[:, g * og : (g + 1) * og] = np.einsum(
                "nchwij,ocij->nohw",
                patches[:, g * cg : (g + 1) * cg],
                weight[g * og : (g + 1) * og],
                optimize=plan.fwd_path,
            )

        parallel_map(run_group, range(groups), op="conv2d.fwd.groups")
    return out, {"xp": xp, "w": weight}


@register_kernel("conv2d_backward", "threaded")
def conv2d_backward(
    plan: Conv2dPlan,
    ctx: dict,
    grad: np.ndarray,
    need_input_grad: bool = True,
    need_weight_grad: bool = True,
):
    xp, weight = ctx["xp"], ctx["w"]
    stride, padding, groups = plan.stride, plan.padding, plan.groups
    cout, _, kh, kw = weight.shape
    ho, wo = grad.shape[2], grad.shape[3]

    patches = _patch_view(xp, kh, kw, stride)
    cg = xp.shape[1] // groups
    og = cout // groups

    grad_w = np.zeros_like(weight) if need_weight_grad else None
    grad_xp = np.zeros_like(xp) if need_input_grad else None

    if need_weight_grad:
        if groups == 1:
            n_slices = tile_slices(
                grad.shape[0], effective_gradw_tile(plan.gradw_tile)
            )
            if len(n_slices) == 1:
                grad_w[:] = np.einsum(
                    "nohw,nchwij->ocij", grad, patches, optimize=plan.gradw_path
                )
            else:
                grad_w[:] = _parallel_tiled(
                    lambda sl: dense_gradw_partial(grad, patches, sl),
                    n_slices,
                    weight.shape,
                    weight.dtype,
                    op="conv2d.gradw.ntiles",
                )
        else:

            def run_gradw(g: int) -> None:
                gsl = slice(g * og, (g + 1) * og)
                csl = slice(g * cg, (g + 1) * cg)
                grad_w[gsl] = np.einsum(
                    "nohw,nchwij->ocij", grad[:, gsl], patches[:, csl],
                    optimize=plan.gradw_path,
                )

            parallel_map(run_gradw, range(groups), op="conv2d.gradw.groups")

    if need_input_grad:
        taps = [(g, i, j) for g in range(groups) for i in range(kh) for j in range(kw)]

        def tap_contrib(tap: tuple) -> np.ndarray:
            g, i, j = tap
            gsl = slice(g * og, (g + 1) * og)
            return np.einsum(
                "nohw,oc->nchw", grad[:, gsl], weight[gsl][:, :, i, j],
                optimize=plan.gradx_path,
            )

        def tap_apply(tap: tuple, contrib: np.ndarray) -> None:
            g, i, j = tap
            grad_xp[
                :, g * cg : (g + 1) * cg,
                i : i + ho * stride : stride,
                j : j + wo * stride : stride,
            ] += contrib

        # Disjoint tap groups: equal (group, i % stride, j % stride) means
        # the same destination lattice; distinct keys never share a cell.
        tap_groups: dict[tuple, list[tuple]] = {}
        for tap in taps:
            key = (tap[0], tap[1] % stride, tap[2] % stride)
            tap_groups.setdefault(key, []).append(tap)

        if len(tap_groups) > 1:

            def run_tap_group(key: tuple) -> None:
                for tap in tap_groups[key]:  # canonical (i, j) order per cell
                    tap_apply(tap, tap_contrib(tap))

            parallel_map(run_tap_group, list(tap_groups), op="conv2d.gradx.tapgroups")
        else:
            # Single lattice (groups == 1, stride == 1): overlap the tap
            # *contractions* in worker-sized waves, then apply each wave in
            # canonical order — per-cell accumulation order is untouched.
            for wave in _chunks(taps, max(2, get_num_workers())):
                contribs = parallel_map(tap_contrib, wave, op="conv2d.gradx.taps")
                for tap, contrib in zip(wave, contribs):
                    tap_apply(tap, contrib)

    grad_x = None
    if need_input_grad:
        if padding:
            grad_x = np.ascontiguousarray(
                grad_xp[:, :, padding:-padding, padding:-padding]
            )
        else:
            grad_x = grad_xp
    return grad_x, grad_w


@register_kernel("conv2d_fused", "threaded")
def conv2d_fused(
    fplan: FusedConv2dPlan, x: np.ndarray, weight: np.ndarray, epilogue: EpilogueArgs
):
    """Inference-only conv2d + staged epilogue (see the numpy kernel): the
    contraction is tiled/sharded exactly like ``conv2d``, and the epilogue
    runs per output slab while it is cache-hot (inside each group worker for
    grouped convs, after the tree combine for dense)."""
    plan = fplan.base
    kh, kw = plan.kernel
    xp = _pad2d(x, plan.padding)
    patches = _patch_view(xp, kh, kw, plan.stride)
    groups = plan.groups
    if groups == 1:
        out = _dense_forward(plan, patches, weight)
        epilogue.apply(out)
    else:
        cout = plan.out_shape[1]
        out = np.empty(plan.out_shape, dtype=x.dtype)
        og = cout // groups
        cg = plan.x_shape[1] // groups

        def run_group(g: int) -> None:
            gsl = slice(g * og, (g + 1) * og)
            out[:, gsl] = np.einsum(
                "nchwij,ocij->nohw",
                patches[:, g * cg : (g + 1) * cg],
                weight[gsl],
                optimize=plan.fwd_path,
            )
            epilogue.apply(out[:, gsl], gsl)

        parallel_map(run_group, range(groups), op="conv2d_fused.groups")
    return out


# ---------------------------------------------------------------------------
# Pooling: memory-bound single-pass kernels — reuse the numpy implementations
# so a model pinned wholesale to backend="threaded" dispatches every op.
# ---------------------------------------------------------------------------

register_kernel("maxpool2d", "threaded")(numpy_backend.maxpool2d)
register_kernel("maxpool2d_backward", "threaded")(numpy_backend.maxpool2d_backward)
register_kernel("avgpool2d", "threaded")(numpy_backend.avgpool2d)
register_kernel("avgpool2d_backward", "threaded")(numpy_backend.avgpool2d_backward)


# ---------------------------------------------------------------------------
# SCC: the three execution strategies, sharded over cycle positions / batch
# ---------------------------------------------------------------------------

def _merge_deltas(stats: KernelStats, deltas: list[KernelStats]) -> None:
    for delta in deltas:
        stats.merge(delta)


def _channel_stack_forward(plan, x, w, stats, epilogue=None):
    n = x.shape[0]
    stacked = np.empty((n,) + plan.windows.shape + x.shape[2:], dtype=x.dtype)
    shards = shard_slices(n, get_num_workers())
    deltas = [KernelStats() for _ in shards]

    def gather(i: int) -> None:
        sl = shards[i]
        stacked[sl] = x[sl][:, plan.windows]
        deltas[i].bytes_materialized += stacked[sl].nbytes

    parallel_map(gather, range(len(shards)), op="scc.channel_stack.gather")
    _merge_deltas(stats, deltas)
    stats.record(gemm_calls=1)  # one logical grouped contraction
    out = planned_einsum("noghw,og->nohw", stacked, w)
    if epilogue is not None:
        epilogue.apply(out)
    return out, {"x": x, "w": w, "stacked": stacked}


def _channel_stack_backward(plan, saved, grad_out, need_x, need_w, stats):
    w, stacked = saved["w"], saved["stacked"]
    grad_x = grad_w = None
    if need_w:
        grad_w = planned_einsum("nohw,noghw->og", grad_out, stacked)
        stats.record(gemm_calls=1)
    if need_x:
        grad_stacked = planned_einsum("nohw,og->noghw", grad_out, w)
        stats.record(bytes_materialized=grad_stacked.nbytes, gemm_calls=1)
        grad_x = np.zeros_like(saved["x"])
        shards = shard_slices(grad_out.shape[0], get_num_workers())

        def scatter(sl: slice) -> None:
            gs = grad_stacked[sl]
            idx_n = np.arange(gs.shape[0])[:, None, None]
            np.add.at(grad_x[sl], (idx_n, plan.windows[None, :, :]), gs)

        parallel_map(scatter, shards, op="scc.channel_stack.scatter")
        _count_push_scatter(plan, stats, grad_stacked.size)
    return grad_x, grad_w


def _conv_stack_forward(plan, x, w, stats, epilogue=None):
    cfg = plan.config
    cd = plan.cyclic_dist
    n, _, h, wdt = x.shape
    out = np.empty((n, cfg.out_channels, h, wdt), dtype=x.dtype)
    gathered: list = [None] * cd
    deltas = [KernelStats() for _ in range(cd)]

    def run(p: int) -> None:
        win = x[:, plan.cycle_index[p]]
        gathered[p] = win
        deltas[p].bytes_materialized += win.nbytes
        out[:, p::cd] = planned_einsum("nghw,og->nohw", win, w[p::cd])
        deltas[p].gemm_calls += 1
        if epilogue is not None:
            epilogue.apply(out[:, p::cd], slice(p, None, cd))

    parallel_map(run, range(cd), op="scc.conv_stack.fwd")
    _merge_deltas(stats, deltas)
    return out, {"x": x, "w": w, "gathered": gathered}


def _conv_stack_backward(plan, saved, grad_out, need_x, need_w, stats):
    cd = plan.cyclic_dist
    w, gathered = saved["w"], saved["gathered"]
    grad_x = np.zeros_like(saved["x"]) if need_x else None
    grad_w = np.empty_like(w) if need_w else None
    deltas = [KernelStats() for _ in range(cd)]
    contribs: list = [None] * cd

    def run(p: int) -> None:
        g = grad_out[:, p::cd]
        if need_w:
            grad_w[p::cd] = planned_einsum("nohw,nghw->og", g, gathered[p])
            deltas[p].gemm_calls += 1
        if need_x:
            contrib = planned_einsum("nohw,og->nghw", g, w[p::cd])
            contribs[p] = contrib
            deltas[p].bytes_materialized += contrib.nbytes
            deltas[p].gemm_calls += 1

    parallel_map(run, range(cd), op="scc.conv_stack.bwd")
    _merge_deltas(stats, deltas)
    if need_x:
        # Ordered serial apply: windows overlap *across* cycle positions, so
        # the cross-p conflicts stay serialised in the numpy kernel's order
        # (contributions above were computed in parallel, bitwise-identical).
        for p in range(cd):
            grad_x[:, plan.cycle_index[p]] += contribs[p]
            stats.scatter_adds += contribs[p].size
    return grad_x, grad_w


def _dsxplore_forward(plan, x, w, stats, epilogue=None):
    cfg = plan.config
    cd = plan.cyclic_dist
    n, _, h, wdt = x.shape
    out = np.zeros((n, cfg.out_channels, h, wdt), dtype=x.dtype)
    deltas = [KernelStats() for _ in range(cd)]

    def run(p: int) -> None:
        wp = w[p::cd]
        for chan_slice, col_slice in plan.segments[p]:
            out[:, p::cd] += planned_einsum(
                "nchw,oc->nohw", x[:, chan_slice], wp[:, col_slice]
            )
            deltas[p].gemm_calls += 1
        if epilogue is not None:
            epilogue.apply(out[:, p::cd], slice(p, None, cd))

    parallel_map(run, range(cd), op="scc.dsxplore.fwd")
    _merge_deltas(stats, deltas)
    return out, {"x": x, "w": w}


def _dsxplore_backward(plan, saved, grad_out, need_x, need_w, stats, backward_design):
    if backward_design not in ("input_centric", "output_centric"):
        raise ValueError(
            f"backward_design must be 'input_centric' or 'output_centric', "
            f"got {backward_design!r}"
        )
    x, w = saved["x"], saved["w"]
    cd = plan.cyclic_dist
    grad_w = None
    if need_w:
        grad_w = np.empty_like(w)
        deltas = [KernelStats() for _ in range(cd)]

        def run_gradw(p: int) -> None:
            g = grad_out[:, p::cd]
            for chan_slice, col_slice in plan.segments[p]:
                grad_w[p::cd, col_slice] = planned_einsum(
                    "nohw,nchw->oc", g, x[:, chan_slice]
                )
                deltas[p].gemm_calls += 1

        parallel_map(run_gradw, range(cd), op="scc.dsxplore.gradw")
        _merge_deltas(stats, deltas)
    grad_x = None
    if need_x:
        if backward_design == "input_centric":
            # The dense pull GEMM: output-channel tiles on the pool, combined
            # in the canonical tree order (see module docstring).
            w_full = plan.w_full(w)
            stats.record(bytes_materialized=w_full.nbytes)
            o_slices = tile_slices(
                w_full.shape[0], effective_pull_tile(plan.pull_tile)
            )
            if len(o_slices) == 1:
                grad_x = planned_einsum("nohw,oc->nchw", grad_out, w_full)
            else:
                pull_shape = (grad_out.shape[0], w_full.shape[1]) + grad_out.shape[2:]
                grad_x = _parallel_tiled(
                    lambda sl: pull_gemm_partial(grad_out, w_full, sl),
                    o_slices,
                    pull_shape,
                    np.result_type(grad_out.dtype, w_full.dtype),
                    op="scc.dsxplore.pulltiles",
                )
            stats.record(gemm_calls=1)  # one logical pull contraction
            grad_x = grad_x.astype(x.dtype, copy=False)
        else:
            contrib = planned_einsum("nohw,og->noghw", grad_out, w)
            stats.record(bytes_materialized=contrib.nbytes, gemm_calls=1)
            grad_x = np.zeros_like(x)
            shards = shard_slices(grad_out.shape[0], get_num_workers())

            def scatter(sl: slice) -> None:
                cs = contrib[sl]
                idx_n = np.arange(cs.shape[0])[:, None, None]
                np.add.at(grad_x[sl], (idx_n, plan.windows[None, :, :]), cs)

            parallel_map(scatter, shards, op="scc.dsxplore.scatter")
            _count_push_scatter(plan, stats, contrib.size)
    return grad_x, grad_w


_FORWARD = {
    "channel_stack": _channel_stack_forward,
    "conv_stack": _conv_stack_forward,
    "dsxplore": _dsxplore_forward,
}

_BACKWARD = {
    "channel_stack": _channel_stack_backward,
    "conv_stack": _conv_stack_backward,
}


@register_kernel("scc_forward", "threaded")
def scc_forward(
    plan: SCCPlan,
    x: np.ndarray,
    w: np.ndarray,
    *,
    strategy: str = "dsxplore",
    stats: KernelStats | None = None,
    epilogue: EpilogueArgs | None = None,
):
    try:
        fwd = _FORWARD[strategy]
    except KeyError:
        raise ValueError(
            f"unknown SCC strategy {strategy!r}; available: {sorted(_FORWARD)}"
        ) from None
    return fwd(
        plan, x, w, stats if stats is not None else KernelStats(), epilogue=epilogue
    )


@register_kernel("scc_backward", "threaded")
def scc_backward(
    plan: SCCPlan,
    saved: dict,
    grad_out: np.ndarray,
    *,
    strategy: str = "dsxplore",
    backward_design: str = "input_centric",
    need_input_grad: bool = True,
    need_weight_grad: bool = True,
    stats: KernelStats | None = None,
):
    stats = stats if stats is not None else KernelStats()
    if strategy == "dsxplore":
        return _dsxplore_backward(
            plan, saved, grad_out, need_input_grad, need_weight_grad, stats,
            backward_design,
        )
    try:
        bwd = _BACKWARD[strategy]
    except KeyError:
        raise ValueError(
            f"unknown SCC strategy {strategy!r}; available: "
            f"{sorted(_BACKWARD) + ['dsxplore']}"
        ) from None
    return bwd(plan, saved, grad_out, need_input_grad, need_weight_grad, stats)
