"""Kernel instrumentation counters shared by every backend.

:class:`KernelStats` is the measured counterpart of the analytic
:class:`repro.gpusim.kernel.KernelLaunch` descriptions: each backend kernel
increments these counters while it runs, and
:func:`repro.gpusim.crosscheck.crosscheck_scc_stats` verifies the two views
agree on the quantities the paper's comparisons hinge on (materialised
bytes, contraction launches, scatter/atomic traffic).
"""
from __future__ import annotations

from dataclasses import dataclass


@dataclass
class KernelStats:
    """Instrumentation counters accumulated by one strategy invocation.

    ``bytes_materialized`` counts *logically* materialised temporaries: a
    scratch workspace reused from the plan cache still counts, because the
    quantity models the kernel's data-duplication traffic, not the
    allocator's behaviour.
    """

    bytes_materialized: int = 0      # temporary buffers (data duplication)
    gemm_calls: int = 0              # distinct contraction launches
    scatter_adds: int = 0            # elementwise updates via scatter (atomic analog)
    conflicting_scatter_adds: int = 0  # scatter updates hitting already-touched cells

    def reset(self) -> None:
        self.bytes_materialized = 0
        self.gemm_calls = 0
        self.scatter_adds = 0
        self.conflicting_scatter_adds = 0

    def snapshot(self) -> "KernelStats":
        """Point-in-time copy (e.g. forward-only counters before backward)."""
        return KernelStats(
            self.bytes_materialized,
            self.gemm_calls,
            self.scatter_adds,
            self.conflicting_scatter_adds,
        )


def scc_conflict_fraction(in_channels: int, out_channels: int, group_width: int) -> float:
    """Fraction of SCC scatter updates hitting an already-written input cell.

    Each input channel is read by ``Cout * gw / Cin`` filters on average;
    every read beyond the first conflicts during a push-style scatter.  Used
    by both the measuring kernels and the gpusim analytic model so the two
    stay consistent by construction.
    """
    reads_per_channel = out_channels * group_width / in_channels
    return max(0.0, 1.0 - 1.0 / reads_per_channel)
