"""Kernel instrumentation counters shared by every backend.

:class:`KernelStats` is the measured counterpart of the analytic
:class:`repro.gpusim.kernel.KernelLaunch` descriptions: each backend kernel
increments these counters while it runs, and
:func:`repro.gpusim.crosscheck.crosscheck_scc_stats` verifies the two views
agree on the quantities the paper's comparisons hinge on (materialised
bytes, contraction launches, scatter/atomic traffic).
"""
from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class KernelStats:
    """Instrumentation counters accumulated by one strategy invocation.

    ``bytes_materialized`` counts *logically* materialised temporaries: a
    scratch workspace reused from the plan cache still counts, because the
    quantity models the kernel's data-duplication traffic, not the
    allocator's behaviour.

    **Threading contract.**  Kernels running on a single thread may bump
    the fields directly (the ``numpy``/``reference`` backends do).  Any
    concurrent mutation must go through the locked :meth:`record` /
    :meth:`merge` / :meth:`reset` methods — in practice the ``threaded``
    backend gives each pooled shard its own private ``KernelStats`` delta
    and :meth:`merge`\\ s the deltas into the caller's object at join, so
    totals stay exact (unlocked ``+=`` from worker threads would race and
    lose updates).
    """

    bytes_materialized: int = 0      # temporary buffers (data duplication)
    gemm_calls: int = 0              # distinct contraction launches
    scatter_adds: int = 0            # elementwise updates via scatter (atomic analog)
    conflicting_scatter_adds: int = 0  # scatter updates hitting already-touched cells
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record(
        self,
        bytes_materialized: int = 0,
        gemm_calls: int = 0,
        scatter_adds: int = 0,
        conflicting_scatter_adds: int = 0,
    ) -> None:
        """Atomically add deltas to the counters (safe from any thread)."""
        with self._lock:
            self.bytes_materialized += bytes_materialized
            self.gemm_calls += gemm_calls
            self.scatter_adds += scatter_adds
            self.conflicting_scatter_adds += conflicting_scatter_adds

    def merge(self, other: "KernelStats") -> None:
        """Fold another stats object's counts into this one (atomic here).

        The per-worker-delta join of the ``threaded`` backend: workers
        mutate only their private delta, so reading ``other`` unlocked is
        safe by the time the coordinator merges.
        """
        self.record(
            other.bytes_materialized,
            other.gemm_calls,
            other.scatter_adds,
            other.conflicting_scatter_adds,
        )

    def reset(self) -> None:
        with self._lock:
            self.bytes_materialized = 0
            self.gemm_calls = 0
            self.scatter_adds = 0
            self.conflicting_scatter_adds = 0

    def snapshot(self) -> "KernelStats":
        """Point-in-time copy (e.g. forward-only counters before backward)."""
        with self._lock:
            return KernelStats(
                self.bytes_materialized,
                self.gemm_calls,
                self.scatter_adds,
                self.conflicting_scatter_adds,
            )


def scc_conflict_fraction(in_channels: int, out_channels: int, group_width: int) -> float:
    """Fraction of SCC scatter updates hitting an already-written input cell.

    Each input channel is read by ``Cout * gw / Cin`` filters on average;
    every read beyond the first conflicts during a push-style scatter.  Used
    by both the measuring kernels and the gpusim analytic model so the two
    stay consistent by construction.
    """
    reads_per_channel = out_channels * group_width / in_channels
    return max(0.0, 1.0 - 1.0 / reads_per_channel)
